"""Figure 1: the six miss scenarios, timed per machine model.

Regenerates the paper's qualitative timeline arguments as cycle counts
and asserts each scenario's ordering claim.
"""

from repro.harness import MODELS, run_all_scenarios
from repro.harness.scenarios import SCENARIOS


def test_figure1_scenarios(once):
    results = once(run_all_scenarios)

    header = f"{'scenario':44s} " + " ".join(f"{m:>10s}" for m in MODELS)
    print("\n" + header)
    for key, cycles in results.items():
        title = SCENARIOS[key]().title
        print(f"(1{key}) {title:39s} "
              + " ".join(f"{cycles[m]:10d}" for m in MODELS))

    a, b, c = results["a"], results["b"], results["c"]
    d, e, f = results["d"], results["e"], results["f"]

    # (1a) lone miss: Runahead provides no benefit; SLTP/iCFP do.
    assert a["runahead"] >= a["in-order"] - 10
    assert a["icfp"] < a["in-order"] - 30
    assert a["sltp"] < a["in-order"] - 30

    # (1b) independent misses: every scheme overlaps them.
    for model in ("runahead", "multipass", "sltp", "icfp"):
        assert b[model] < b["in-order"] - 100

    # (1c) dependent misses: RA ineffective, iCFP at least as good as SLTP.
    assert abs(c["runahead"] - c["in-order"]) < 80
    assert c["icfp"] <= c["sltp"] + 10
    assert c["icfp"] < c["in-order"] - 50

    # (1d) chains: RA overlaps the chains; iCFP no worse than RA.
    assert d["runahead"] < d["in-order"] - 100
    assert d["icfp"] <= d["runahead"] + 30

    # (1e)/(1f): secondary D$ misses under an L2 miss — iCFP handles
    # both patterns without the block-vs-poison dilemma.
    assert e["icfp"] < e["in-order"] - 100
    assert f["icfp"] < f["in-order"] - 50
    assert e["icfp"] <= e["runahead"] + 10
    assert f["icfp"] <= f["runahead"] + 10
