"""Section 3.2 / 5.2: chain-table sizing.

The paper: "A 64-entry chain table reduces performance — relative to a
512-entry table — by 0.3% on average with a maximum of 4% (ammp)."
Asserts the small table stays within a few percent of the large one.
"""

from repro.harness import chain_table_sweep, format_sweep

WORKLOADS = ("ammp_like", "swim_like", "galgel_like", "bzip2_like",
             "gzip_like", "equake_like")


def test_chain_table_sizing(once):
    sweep = once(lambda: chain_table_sweep(sizes=(64, 512),
                                           workloads=WORKLOADS))
    print("\n" + format_sweep(sweep, reference=512))

    rel = sweep.relative_to(512)
    # 64 entries within a few percent of 512 on average...
    assert rel[64] > -3.0
    # ...and within ~6% on every individual benchmark.
    per64, per512 = sweep.ratios[64], sweep.ratios[512]
    for workload in WORKLOADS:
        loss = (per64[workload] / per512[workload] - 1.0) * 100.0
        assert loss > -6.0, (workload, loss)
