"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures.  They are *not*
micro-benchmarks: each runs a full simulation campaign once (pedantic
mode, one round) and prints the paper-format table, then asserts the
paper's qualitative claims (who wins, roughly by how much).

Budgets come from the environment:

* ``REPRO_INSTRUCTIONS`` — dynamic instructions per kernel (default 6000)
* ``REPRO_WORKLOADS``    — comma-separated kernel subset
* ``REPRO_JOBS``         — campaign worker processes (default: all CPUs);
  campaigns run through :mod:`repro.exec`, so results are identical at
  any worker count
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _run(fn):
        return run_once(benchmark, fn)

    return _run
