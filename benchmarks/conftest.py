"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures.  They are *not*
micro-benchmarks: each runs a full simulation campaign once (pedantic
mode, one round) and prints the paper-format table, then asserts the
paper's qualitative claims (who wins, roughly by how much).

Budgets come from the environment:

* ``REPRO_INSTRUCTIONS`` — dynamic instructions per kernel (default 6000)
* ``REPRO_WORKLOADS``    — comma-separated kernel subset
* ``REPRO_JOBS``         — campaign worker processes (default: all CPUs);
  campaigns run through :mod:`repro.exec`, so results are identical at
  any worker count
"""

import pytest


@pytest.fixture(autouse=True)
def hermetic_result_store(tmp_path, monkeypatch):
    """Benchmarks must not read or pollute a developer's .repro-cache/."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    monkeypatch.delenv("REPRO_STORE", raising=False)
    # Ambient chaos / retry knobs would skew every timing below;
    # fault-tolerance benchmarking injects its own plan explicitly.
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_JOB_TIMEOUT", raising=False)
    # Each bench phase chooses its own batch width explicitly.
    monkeypatch.delenv("REPRO_BATCH", raising=False)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _run(fn):
        return run_once(benchmark, fn)

    return _run
