"""Table 2: per-benchmark miss rates, MLP, and iCFP rally overhead.

Asserts the table's structural claims:

* the suite's miss-rate spread brackets the paper's (mcf/art extreme,
  a near-zero compute group);
* iCFP's MLP is at least Runahead's, which is at least in-order's, on
  the kernels with exploitable parallelism;
* iCFP's rally overhead is largest on the dependent-miss chaser (mcf).
"""

from repro.harness import format_table2, table2


def test_table2_diagnostics(once):
    rows = once(table2)
    print("\n" + format_table2(rows))
    by_name = {r.workload: r for r in rows}

    mcf = by_name["mcf_like"]
    assert mcf.d_miss_per_ki > 100 and mcf.l2_miss_per_ki > 50
    assert by_name["art_like"].d_miss_per_ki > 80
    for cool in ("mesa_like", "vortex_like"):
        assert by_name[cool].d_miss_per_ki < 8

    # MLP ordering (iO <= RA <= iCFP within tolerance) on MLP-rich kernels.
    for name in ("art_like", "gap_like", "mcf_like"):
        row = by_name[name]
        io, ra, icfp = (row.d_mlp["in-order"], row.d_mlp["runahead"],
                        row.d_mlp["icfp"])
        assert icfp >= io - 0.1, name
        assert icfp >= ra - 0.5, name

    # Rally overhead concentrates on dependent-miss workloads.
    assert mcf.rally_per_ki == max(r.rally_per_ki for r in rows)
    assert mcf.rally_per_ki > 100
    assert by_name["mesa_like"].rally_per_ki < 50
