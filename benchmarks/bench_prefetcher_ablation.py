"""Ablation: hardware stream-buffer prefetching (Table 1 substrate).

Section 5.1 stresses that "the baseline processor includes stream
buffer prefetching" — the reported speedups are on top of it.  This
ablation quantifies the substrate choice: disabling the prefetchers
must hurt streaming kernels on the in-order baseline, and iCFP must
still improve on in-order either way (its mechanism is orthogonal).
"""

from repro.harness import ExperimentConfig, run_suite

WORKLOADS = ("art_like", "applu_like", "swim_like")


def test_prefetcher_ablation(once):
    def sweep():
        return {
            n: run_suite(
                ("in-order", "icfp"), WORKLOADS,
                ExperimentConfig(instructions=6000, stream_buffers=n),
            )
            for n in (0, 8)
        }

    results = once(sweep)
    print("\nstream-buffer ablation (cycles, lower is better):")
    print(f"{'kernel':12s} {'iO pf=0':>10s} {'iO pf=8':>10s} "
          f"{'iCFP pf=0':>10s} {'iCFP pf=8':>10s}")
    for w in WORKLOADS:
        print(f"{w:12s} {results[0][w]['in-order'].cycles:10d} "
              f"{results[8][w]['in-order'].cycles:10d} "
              f"{results[0][w]['icfp'].cycles:10d} "
              f"{results[8][w]['icfp'].cycles:10d}")

    for w in WORKLOADS:
        # Prefetching helps (or at least does not hurt) the baseline...
        assert (results[8][w]["in-order"].cycles
                <= results[0][w]["in-order"].cycles * 1.05), w
        # ...and iCFP improves on in-order with and without it.
        assert results[0][w]["icfp"].cycles < results[0][w]["in-order"].cycles
        assert results[8][w]["icfp"].cycles < results[8][w]["in-order"].cycles
