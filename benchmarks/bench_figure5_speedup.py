"""Figure 5: Runahead, Multipass, SLTP, and iCFP speedup over in-order.

Regenerates the paper's headline comparison over the full 24-kernel
suite and asserts its main claims:

* iCFP delivers the best (or tied-best) geometric-mean speedup of the
  four schemes, on SPECfp, SPECint, and overall;
* memory-bound kernels (mcf/art/vpr/ammp-class) see large speedups;
* low-miss kernels (mesa/eon/vortex-class) are essentially unmoved;
* no scheme collapses the baseline (geomean stays positive except for
  SLTP, whose SRL pathologies the paper itself reports as occasional
  slowdowns).
"""

from repro.harness import figure5, format_figure5


def test_figure5_speedup(once):
    fig = once(figure5)
    print("\n" + format_figure5(fig))

    icfp = fig.geomeans["icfp"]
    # The headline: iCFP wins every group mean.
    for other in ("runahead", "multipass", "sltp"):
        for group in ("SPECfp", "SPECint", "SPEC"):
            assert icfp[group] >= fig.geomeans[other][group] - 0.5, (
                f"iCFP should lead {other} on {group}"
            )
    # iCFP meaningfully improves on in-order overall.
    assert icfp["SPEC"] > 5.0

    # Memory-bound kernels benefit substantially under iCFP.
    hot = [w for w in ("art_like", "gap_like", "parser_like")
           if w in fig.workloads]
    for workload in hot:
        assert fig.percent["icfp"][workload] > 15.0, workload

    # Cache-resident kernels are close to unmoved (within a few %).
    cool = [w for w in ("mesa_like", "vortex_like", "perlbmk_like")
            if w in fig.workloads]
    for workload in cool:
        assert abs(fig.percent["icfp"][workload]) < 8.0, workload
