"""Section 3.4: poison-vector width study.

The paper: "8 poison bits provide a 1.5% average performance gain over
a single bit.  mcf sees a 6% benefit."  Asserts that widening the
vector never hurts on average and that the dependent-miss chaser
benefits most.
"""

from repro.harness import format_sweep, poison_bits_sweep

WORKLOADS = ("mcf_like", "vpr_like", "ammp_like", "art_like",
             "gap_like", "twolf_like")


def test_poison_vector_width(once):
    sweep = once(lambda: poison_bits_sweep(widths=(1, 8),
                                           workloads=WORKLOADS))
    print("\n" + format_sweep(sweep, reference=1))

    gm = sweep.gmeans()
    assert gm[8] >= gm[1] * 0.995  # never a real loss on average

    # mcf-class chains benefit the most from selective rallies.
    per1, per8 = sweep.ratios[1], sweep.ratios[8]
    mcf_gain = per8["mcf_like"] / per1["mcf_like"] - 1.0
    other_gains = [per8[w] / per1[w] - 1.0 for w in WORKLOADS
                   if w != "mcf_like"]
    assert mcf_gain >= max(min(other_gains), -0.01)
