"""Ablation: slice-buffer and store-buffer capacity (DESIGN.md §4).

Table 1 sizes both structures at 128 entries.  Undersizing them forces
iCFP into its simple-runahead fallback (Section 3.4), which commits
nothing — so performance should degrade gracefully as capacity shrinks
and saturate near the paper's sizes.
"""

import dataclasses

from repro.core.icfp import ICFPFeatures
from repro.harness import ExperimentConfig, geomean, run_suite

WORKLOADS = ("mcf_like", "ammp_like", "art_like", "twolf_like")


def ratios_for(features, workloads=WORKLOADS, instructions=6000):
    base = ExperimentConfig(instructions=instructions)
    io = run_suite(("in-order",), workloads, base)
    cfg = dataclasses.replace(base, icfp_features=features)
    runs = run_suite(("icfp",), workloads, cfg)
    return geomean(
        io[w]["in-order"].cycles / runs[w]["icfp"].cycles for w in workloads
    )


def test_slice_buffer_capacity_ablation(once):
    def sweep():
        return {
            entries: ratios_for(ICFPFeatures(slice_entries=entries))
            for entries in (16, 64, 128)
        }

    results = once(sweep)
    print("\nslice-buffer capacity ablation (geomean speedup vs in-order):")
    for entries, ratio in results.items():
        print(f"  {entries:4d} entries: {ratio:6.3f}x")

    # Bigger never hurts materially, and 128 beats a starved 16.
    assert results[128] >= results[16] - 0.02
    assert results[64] >= results[16] - 0.02


def test_store_buffer_capacity_ablation(once):
    workloads = ("swim_like", "galgel_like", "equake_like")

    def sweep():
        return {
            entries: ratios_for(
                ICFPFeatures(store_buffer_entries=entries),
                workloads=workloads,
            )
            for entries in (16, 128)
        }

    results = once(sweep)
    print("\nstore-buffer capacity ablation (geomean speedup vs in-order):")
    for entries, ratio in results.items():
        print(f"  {entries:4d} entries: {ratio:6.3f}x")
    assert results[128] >= results[16] - 0.02
