"""Figure 7: the iCFP feature build from SLTP.

Walks the paper's ladder — SLTP's SRL memory system, then the chained
store buffer, then multiple non-blocking rallies, then 8-bit poison
vectors, then multithreaded rallies — and asserts that the build is
(geomean) monotone and that non-blocking rallies are the big step for
dependent-miss workloads.
"""

from repro.harness import figure7, format_figure7
from repro.harness.figures import FIGURE7_BARS


def test_figure7_feature_build(once):
    fig = once(figure7)
    print("\n" + format_figure7(fig))

    bars = [b[0] for b in FIGURE7_BARS]
    gmeans = [fig.percent[b]["gmean"] for b in bars]

    # The full build (iCFP) beats the SLTP starting point decisively.
    assert gmeans[-1] > gmeans[0] + 3.0

    # Each feature is roughly monotone in the geomean (small regressions
    # within noise are tolerated, as in the paper's build).
    for earlier, later in zip(gmeans, gmeans[1:]):
        assert later >= earlier - 2.0

    # Non-blocking rallies are the load-bearing feature for the
    # dependent-miss workloads (mcf/vpr), per the paper.
    blocking, nonblocking = bars[1], bars[2]
    for workload in ("mcf_like", "vpr_like"):
        if workload in fig.workloads:
            assert (fig.percent[nonblocking][workload]
                    >= fig.percent[blocking][workload] - 1.0), workload
