"""Campaign throughput: the Figure 5 grid at jobs=1 vs jobs=N.

Usable three ways:

* ``python benchmarks/bench_throughput.py [--jobs N] [-n INSTR] [-w a,b]``
  runs the full comparison and prints one machine-readable JSON object
  (wall-clock, simulated instructions/sec, speedup) to stdout.
* ``--output BENCH_throughput.json`` additionally writes a compact
  trend record (schema: commit, jobs, grid, sims/sec) — ``make bench``
  uses this, and the checked-in ``BENCH_throughput.json`` at the repo
  root is the baseline the trajectory starts from.
* under pytest it asserts the parallel run reproduces the sequential
  results exactly, on a reduced grid.

All paths bypass the result memo (``memo=False``) — this measures
execution, not cache hits — but share traces the way any campaign does.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.exec import default_jobs, run_jobs  # noqa: E402
from repro.harness.experiment import (  # noqa: E402
    MODELS,
    ExperimentConfig,
    selected_workloads,
    suite_jobs,
)


def run_grid(jobs: int, config: ExperimentConfig, workloads) -> dict:
    """One timed pass over the models x workloads grid.

    Traces are generated (and cached) before the clock starts, so both
    the sequential and the parallel pass time pure simulation — the
    sequential side must not pay trace generation that the parallel
    side then inherits through fork.
    """
    from repro.exec import TRACE_CACHE

    specs = suite_jobs(MODELS, workloads, config)
    for workload in workloads:
        TRACE_CACHE.get(workload, config.instructions)
    start = time.perf_counter()
    results = run_jobs(specs, workers=jobs, memo=False)
    wall = time.perf_counter() - start
    simulated = sum(r.instructions for r in results)
    return {
        "jobs": jobs,
        "simulations": len(specs),
        "wall_clock_s": round(wall, 3),
        "simulated_instructions": simulated,
        "instructions_per_s": round(simulated / wall, 1),
        "cycles": {f"{r.workload}/{r.model}": r.cycles for r in results},
    }


def campaign_throughput(parallel_jobs: int | None = None,
                        config: ExperimentConfig | None = None,
                        workloads=None) -> dict:
    """jobs=1 vs jobs=N over the Figure 5 grid, with an equality check."""
    config = config if config is not None else ExperimentConfig()
    workloads = workloads if workloads is not None else selected_workloads()
    parallel_jobs = (parallel_jobs if parallel_jobs is not None
                     else max(2, default_jobs()))
    sequential = run_grid(1, config, workloads)
    parallel = run_grid(parallel_jobs, config, workloads)
    report = {
        "benchmark": "figure5_campaign_throughput",
        "instructions_per_kernel": config.instructions,
        "workloads": list(workloads),
        "models": list(MODELS),
        "cpu_count": os.cpu_count(),
        "sequential": sequential,
        "parallel": parallel,
        "speedup": round(sequential["wall_clock_s"]
                         / parallel["wall_clock_s"], 2),
        "results_identical": sequential["cycles"] == parallel["cycles"],
    }
    for side in (sequential, parallel):
        del side["cycles"]  # bulky; the equality verdict is what matters
    return report


def test_campaign_throughput(once):
    """Benchmark-suite entry: reduced grid, full equality assertion."""
    cfg = ExperimentConfig(instructions=min(ExperimentConfig().instructions,
                                            1500))
    workloads = selected_workloads()[:6]
    report = once(lambda: campaign_throughput(config=cfg,
                                              workloads=workloads))
    print("\n" + json.dumps(report, indent=2))
    assert report["results_identical"], "parallel run diverged from sequential"
    assert report["parallel"]["simulated_instructions"] == \
        report["sequential"]["simulated_instructions"]


def git_commit() -> str:
    """Short commit id of the benchmarked tree ("unknown" outside git)."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def bench_record(report: dict) -> dict:
    """The compact machine-readable trend record for BENCH_throughput.json.

    Schema: commit, jobs, grid, sims/sec — enough for a dashboard to
    plot the throughput trajectory across PRs without re-parsing the
    full report.
    """
    sequential = report["sequential"]
    parallel = report["parallel"]
    return {
        "schema": "bench_throughput/v1",
        "commit": git_commit(),
        "jobs": {"sequential": 1, "parallel": parallel["jobs"]},
        "grid": {
            "models": report["models"],
            "workloads": report["workloads"],
            "instructions_per_kernel": report["instructions_per_kernel"],
            "simulations": sequential["simulations"],
        },
        "sims_per_sec": {
            "jobs1": round(sequential["simulations"]
                           / sequential["wall_clock_s"], 2),
            "jobsN": round(parallel["simulations"]
                           / parallel["wall_clock_s"], 2),
        },
        "instructions_per_s": {
            "jobs1": sequential["instructions_per_s"],
            "jobsN": parallel["instructions_per_s"],
        },
        "wall_clock_s": {
            "jobs1": sequential["wall_clock_s"],
            "jobsN": parallel["wall_clock_s"],
        },
        "results_identical": report["results_identical"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="parallel worker count (default REPRO_JOBS/CPUs)")
    parser.add_argument("-n", "--instructions", type=int, default=None,
                        help="dynamic instructions per kernel")
    parser.add_argument("-w", "--workloads", type=str, default=None,
                        help="comma-separated kernel subset")
    parser.add_argument("-o", "--output", type=str, default=None,
                        help="also write the compact trend record "
                             "(commit, jobs, grid, sims/sec) to this path")
    args = parser.parse_args(argv)
    config = ExperimentConfig()
    if args.instructions is not None:
        import dataclasses

        config = dataclasses.replace(config, instructions=args.instructions)
    workloads = ([w.strip() for w in args.workloads.split(",") if w.strip()]
                 if args.workloads else None)
    report = campaign_throughput(args.jobs, config, workloads)
    json.dump(report, sys.stdout, indent=2)
    print()
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(bench_record(report), handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"trend record written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
