"""Campaign throughput: the Figure 5 grid at jobs=1 vs jobs=N.

Usable two ways:

* ``python benchmarks/bench_throughput.py [--jobs N] [-n INSTR] [-w a,b]``
  runs the full comparison and prints one machine-readable JSON object
  (wall-clock, simulated instructions/sec, speedup) to stdout.
* under pytest it asserts the parallel run reproduces the sequential
  results exactly, on a reduced grid.

Both paths bypass the result memo (``memo=False``) — this measures
execution, not cache hits — but share traces the way any campaign does.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.exec import default_jobs, run_jobs  # noqa: E402
from repro.harness.experiment import (  # noqa: E402
    MODELS,
    ExperimentConfig,
    selected_workloads,
    suite_jobs,
)


def run_grid(jobs: int, config: ExperimentConfig, workloads) -> dict:
    """One timed pass over the models x workloads grid.

    Traces are generated (and cached) before the clock starts, so both
    the sequential and the parallel pass time pure simulation — the
    sequential side must not pay trace generation that the parallel
    side then inherits through fork.
    """
    from repro.exec import TRACE_CACHE

    specs = suite_jobs(MODELS, workloads, config)
    for workload in workloads:
        TRACE_CACHE.get(workload, config.instructions)
    start = time.perf_counter()
    results = run_jobs(specs, workers=jobs, memo=False)
    wall = time.perf_counter() - start
    simulated = sum(r.instructions for r in results)
    return {
        "jobs": jobs,
        "simulations": len(specs),
        "wall_clock_s": round(wall, 3),
        "simulated_instructions": simulated,
        "instructions_per_s": round(simulated / wall, 1),
        "cycles": {f"{r.workload}/{r.model}": r.cycles for r in results},
    }


def campaign_throughput(parallel_jobs: int | None = None,
                        config: ExperimentConfig | None = None,
                        workloads=None) -> dict:
    """jobs=1 vs jobs=N over the Figure 5 grid, with an equality check."""
    config = config if config is not None else ExperimentConfig()
    workloads = workloads if workloads is not None else selected_workloads()
    parallel_jobs = (parallel_jobs if parallel_jobs is not None
                     else max(2, default_jobs()))
    sequential = run_grid(1, config, workloads)
    parallel = run_grid(parallel_jobs, config, workloads)
    report = {
        "benchmark": "figure5_campaign_throughput",
        "instructions_per_kernel": config.instructions,
        "workloads": list(workloads),
        "models": list(MODELS),
        "cpu_count": os.cpu_count(),
        "sequential": sequential,
        "parallel": parallel,
        "speedup": round(sequential["wall_clock_s"]
                         / parallel["wall_clock_s"], 2),
        "results_identical": sequential["cycles"] == parallel["cycles"],
    }
    for side in (sequential, parallel):
        del side["cycles"]  # bulky; the equality verdict is what matters
    return report


def test_campaign_throughput(once):
    """Benchmark-suite entry: reduced grid, full equality assertion."""
    cfg = ExperimentConfig(instructions=min(ExperimentConfig().instructions,
                                            1500))
    workloads = selected_workloads()[:6]
    report = once(lambda: campaign_throughput(config=cfg,
                                              workloads=workloads))
    print("\n" + json.dumps(report, indent=2))
    assert report["results_identical"], "parallel run diverged from sequential"
    assert report["parallel"]["simulated_instructions"] == \
        report["sequential"]["simulated_instructions"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="parallel worker count (default REPRO_JOBS/CPUs)")
    parser.add_argument("-n", "--instructions", type=int, default=None,
                        help="dynamic instructions per kernel")
    parser.add_argument("-w", "--workloads", type=str, default=None,
                        help="comma-separated kernel subset")
    args = parser.parse_args(argv)
    config = ExperimentConfig()
    if args.instructions is not None:
        import dataclasses

        config = dataclasses.replace(config, instructions=args.instructions)
    workloads = ([w.strip() for w in args.workloads.split(",") if w.strip()]
                 if args.workloads else None)
    report = campaign_throughput(args.jobs, config, workloads)
    json.dump(report, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
