"""Campaign throughput: the Figure 5 grid, engine speed vs cache power.

Six measurements, separated so the trend record can tell them apart:

* **engine speed** — jobs=1 (and, on multi-core hosts, jobs=N) over the
  grid with every memo tier off (``memo=False``): pure simulation
  throughput.  On a single-core host the pooled pass is *skipped* and
  flagged — with one CPU a process pool only adds fork/IPC overhead, so
  a "parallel" number there is an anti-measurement (the v5 records
  showed jobs=N *slower* than jobs=1 for exactly this reason).  Pass
  ``--jobs`` to force it.
* **batched execution** — a sweep-shaped campaign (one L2-latency sweep
  per (workload, model), the shape `plan_batches` groups into
  lane-vectors) run scalar (``REPRO_BATCH=1``) vs batched
  (``REPRO_BATCH=auto``), byte-identity checked.  The Figure 5 grid
  itself is width-1 — every (workload, model) appears under one config —
  so batching is bypassed there by construction; this phase measures
  the shape that actually batches.
* **store effectiveness** — a cold pass (empty disk store, results
  flushed to it) vs a warm pass (RAM memo cleared, every cell loaded
  back from the store): what an incremental re-run of a completed
  campaign actually costs.
* **generated-suite throughput** — a seeded ``repro.wgen`` suite
  through the same engine: spec -> program materialisation cost and
  simulation rate over generated workloads.
* **phase-attribution overhead** — the suite's multi-phase specs with
  per-phase attribution on vs off over identical traces.
* **fault-tolerance overhead** — the same pooled grid with faults off
  vs ~10% deterministic worker death (pool teardown, resurrection,
  retries).
* **fabric throughput** — the grid through the lease-based campaign
  fabric (coordinator + 2 forked workers over a fresh ledger + store
  per rep) vs plain sequential execution: what the durable
  coordination layer costs end to end (fork, leases, heartbeats,
  store round-trip), byte-identity checked.
* **obs overhead** — the sequential grid with ``REPRO_TRACE`` unset vs
  set: what span tracing + metrics actually cost when on, and a pin
  that the off side stays at ~zero (a single module-level check),
  byte-identity checked.

Methodology: every on-vs-off comparison (engine jobs=1 vs jobs=N,
batch scalar vs batched, attribution on vs off, faults clean vs chaos)
takes the **min of three timed reps per side, interleaved A/B/A/B**, so
machine drift hits both sides alike — on shared hosts wall clocks drift
+-10% over tens of seconds, which is enough to flip the sign of a
single-shot comparison.  Residual sign surprises that survive min-of-3
are real effects and get flagged, not averaged away: on a 1-CPU host
the chaos pass's degradation to sequential execution genuinely beats
the worker pool, so its "overhead" reads negative with an attached
``single_core_note``.

Usable three ways:

* ``python benchmarks/bench_throughput.py [--jobs N] [-n INSTR] [-w a,b]``
  runs every phase and prints one machine-readable JSON object.
  ``--store-dir`` persists the store between invocations (second runs
  are store-hot); ``--store-only`` skips everything but the store phase.
* ``--output BENCH_throughput.json`` additionally writes the compact
  trend record (schema v8: commit, jobs, grid, batch widths, sims/sec,
  store cold/warm, generated-suite rates, attribution delta,
  fault-recovery delta, fabric rate, obs-overhead delta, env) — ``make bench`` uses this.  When the
  output file already holds a previous record, the new one is compared
  against it first and any >20% throughput regression is shouted to
  stderr (the checked-in ``BENCH_throughput.json`` is the baseline).
* under pytest it asserts every byte-identity verdict — and that each
  comparative phase really used the interleaved min-of-3 methodology —
  on a reduced grid.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.exec import (  # noqa: E402
    RESULT_CACHE,
    CampaignReport,
    FaultPlan,
    ResultStore,
    SimJob,
    default_jobs,
    injected_faults,
    run_jobs,
    run_jobs_fabric,
)
from repro.exec.store import result_to_payload  # noqa: E402
from repro.harness.experiment import (  # noqa: E402
    MODELS,
    ExperimentConfig,
    selected_workloads,
    suite_jobs,
)
from repro.wgen import resolve_workloads, workload_name  # noqa: E402

#: Timed reps per side of every comparative phase (min-of-N, interleaved).
COMPARE_REPS = 3
#: Stamped into each comparative phase so consumers (and the bench's own
#: pytest entry) can assert the documented methodology was actually used.
METHODOLOGY = f"min-of-{COMPARE_REPS}-interleaved"


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def _payloads(results):
    return [result_to_payload(r) for r in results]


def run_engine_phase(config: ExperimentConfig, workloads,
                     parallel_jobs: int | None) -> dict:
    """jobs=1 (and jobs=N unless skipped) over the models x workloads grid.

    Traces are generated (and cached) before any clock starts, so every
    pass times pure simulation; an untimed jobs=1 prime pass then pays
    bytecode/warm-snapshot costs once, outside the measurement.  The two
    sides are interleaved rep by rep and each reports its min wall.
    """
    from repro.exec import TRACE_CACHE

    specs = suite_jobs(MODELS, workloads, config)
    for workload in workloads:
        TRACE_CACHE.get(workload, config.instructions)

    def one_pass(jobs):
        return _timed(lambda: run_jobs(specs, workers=jobs, memo=False))

    one_pass(1)  # prime: bytecode + warm snapshots, inherited by forks
    seq_walls, par_walls = [], []
    seq_results = par_results = None
    for _ in range(COMPARE_REPS):
        wall, seq_results = one_pass(1)
        seq_walls.append(wall)
        if parallel_jobs is not None:
            wall, par_results = one_pass(parallel_jobs)
            par_walls.append(wall)

    def side(jobs, walls, results):
        wall = min(walls)
        simulated = sum(r.instructions for r in results)
        return {
            "jobs": jobs,
            "batch": 1,  # grid cells are unique (workload, model) pairs
            "reps": len(walls),
            "simulations": len(specs),
            "wall_clock_s": round(wall, 3),
            "simulated_instructions": simulated,
            "sims_per_sec": round(len(specs) / wall, 2),
            "instructions_per_s": round(simulated / wall, 1),
        }

    phase = {"methodology": METHODOLOGY,
             "sequential": side(1, seq_walls, seq_results)}
    if parallel_jobs is not None:
        phase["parallel"] = side(parallel_jobs, par_walls, par_results)
        phase["speedup"] = round(min(seq_walls) / min(par_walls), 2)
        phase["results_identical"] = (_payloads(seq_results)
                                      == _payloads(par_results))
    return phase


#: The batch phase's sweep: one L2-latency axis per (workload, model),
#: so ``plan_batches`` folds each (workload, model) run into one
#: 8-lane ``BatchJob`` over a shared trace.
BATCH_SWEEP_L2 = (6, 10, 20, 40, 80, 160, 300, 500)
BATCH_WORKLOADS = ("mcf_like", "gzip_like")


def run_batch_phase(config: ExperimentConfig) -> dict:
    """Scalar vs lane-batched execution over a sweep-shaped campaign.

    Same jobs, same worker count, same memo tiers (all off) — the only
    difference is ``REPRO_BATCH``: ``1`` runs every config through the
    scalar engine, ``auto`` lets the scheduler group each (workload,
    model) sweep into one lane-vector.  Byte-identity of the full
    payloads is the batched backend's core contract; the speedup is the
    honest in-process number (the trace cache and warm-snapshot store
    already amortise most of what batching shares, so expect ~1x here
    until the per-lane stepping itself is vectorised).
    """
    from repro.engine.batch import BatchJob, plan_batches
    from repro.exec import TRACE_CACHE

    jobs = [SimJob(model, workload,
                   dataclasses.replace(config, l2_hit_latency=latency))
            for workload in BATCH_WORKLOADS
            for model in MODELS
            for latency in BATCH_SWEEP_L2]
    for workload in BATCH_WORKLOADS:
        TRACE_CACHE.get(workload, config.instructions)
    groups = plan_batches(jobs, 0)
    lane_counts = sorted({len(g.jobs) for g in groups
                          if isinstance(g, BatchJob)})

    def one_pass(width: str):
        os.environ["REPRO_BATCH"] = width
        try:
            return _timed(lambda: run_jobs(jobs, workers=1,
                                           memo=False, store=False))
        finally:
            os.environ.pop("REPRO_BATCH", None)

    one_pass("1")  # prime
    scalar_walls, batched_walls = [], []
    scalar = batched = None
    for _ in range(COMPARE_REPS):
        wall, scalar = one_pass("1")
        scalar_walls.append(wall)
        wall, batched = one_pass("auto")
        batched_walls.append(wall)
    scalar_wall, batched_wall = min(scalar_walls), min(batched_walls)
    sims = len(jobs)
    return {
        "methodology": METHODOLOGY,
        "width": "auto",
        "simulations": sims,
        "groups": len(groups),
        "lanes_per_group": lane_counts,
        "sweep_l2_latencies": list(BATCH_SWEEP_L2),
        "workloads": list(BATCH_WORKLOADS),
        "reps": COMPARE_REPS,
        "scalar_wall_s": round(scalar_wall, 3),
        "batched_wall_s": round(batched_wall, 3),
        "scalar_sims_per_sec": round(sims / scalar_wall, 2),
        "batched_sims_per_sec": round(sims / batched_wall, 2),
        "speedup": round(scalar_wall / batched_wall, 2),
        "results_identical": _payloads(scalar) == _payloads(batched),
    }


def run_store_phase(config: ExperimentConfig, workloads,
                    store_dir: str | None = None) -> dict:
    """Cold-vs-warm over the grid through the disk store.

    Cold: RAM memo cleared, the store consulted and then flushed — for
    an empty store this is full simulation plus record writes.  Warm:
    RAM memo cleared again, same store — every cell must now load from
    disk.  Both passes report the store's hit/miss/write counters, so a
    pre-populated persistent store (where the "cold" pass is already
    hot) reads honestly.
    """
    from repro.exec import TRACE_CACHE

    ephemeral = store_dir is None
    if ephemeral:
        store_dir = tempfile.mkdtemp(prefix="repro-bench-store-")
    store = ResultStore(store_dir)
    specs = suite_jobs(MODELS, workloads, config)
    for workload in workloads:
        TRACE_CACHE.get(workload, config.instructions)

    def timed_pass() -> dict:
        RESULT_CACHE.clear()
        counters = {name: getattr(store, name)
                    for name in ("hits", "misses", "writes", "corrupt")}
        start = time.perf_counter()
        results = run_jobs(specs, workers=1, store=store)
        wall = time.perf_counter() - start
        return {
            "wall_clock_s": round(wall, 4),
            "store_hits": store.hits - counters["hits"],
            "store_misses": store.misses - counters["misses"],
            "store_writes": store.writes - counters["writes"],
            "store_corrupt": store.corrupt - counters["corrupt"],
            "memo_entries_after": len(RESULT_CACHE),
            "payloads": _payloads(results),
        }

    cold = timed_pass()
    # Cold is inherently single-shot (the store fills on the first
    # pass), but warm can repeat: its wall is tens of milliseconds, so
    # one OS I/O hiccup can inflate a single shot several-fold and trip
    # the regression guard.  Min-of-3, same counters every rep.
    warm_reps = [timed_pass() for _ in range(COMPARE_REPS)]
    warm = min(warm_reps, key=lambda rep: rep["wall_clock_s"])
    warm["reps"] = len(warm_reps)
    identical = all(cold["payloads"] == rep["payloads"]
                    for rep in warm_reps)
    for side in (cold, *warm_reps):
        del side["payloads"]  # bulky; the equality verdict is what matters
    phase = {
        "simulations": len(specs),
        "store_dir_persistent": not ephemeral,
        "cold": cold,
        "warm": warm,
        "warm_speedup": round(cold["wall_clock_s"]
                              / max(warm["wall_clock_s"], 1e-9), 2),
        "warm_all_hits": warm["store_hits"] == len(specs),
        "results_identical": identical,
    }
    if ephemeral:
        shutil.rmtree(store_dir, ignore_errors=True)
    return phase


#: Generated-suite phase defaults: a fixed seed so the benchmarked
#: workloads are the same specs run to run (the point of a trend line).
GENERATED_COUNT = 6
GENERATED_SEED = 2009


def run_phase_attribution_phase(config: ExperimentConfig,
                                count: int = GENERATED_COUNT,
                                seed: int = GENERATED_SEED) -> dict:
    """Attribution-on vs -off sims/sec over multi-phase workloads.

    Phase attribution runs live (per-commit bucketing) only for
    multi-phase composed programs, so this phase times exactly those:
    the seeded suite's multi-phase specs, all five models, once with
    their real phase regions and once over the identical dynamic trace
    with the regions stripped.  Passes are primed (warm snapshots,
    bytecode) and follow the interleaved min-of-3 methodology.  The
    recorded overhead percentage is the trend line that keeps
    attribution's hot-path cost visible across PRs.
    """
    from repro.exec import TRACE_CACHE
    from repro.harness.experiment import make_core
    from repro.wgen import generate_suite

    specs = [s for s in generate_suite(count, seed) if len(s.phases) > 1]
    traces_on = [TRACE_CACHE.get(s, config.instructions) for s in specs]
    traces_off = [t.with_phase_regions(()) for t in traces_on]

    def timed_pass(traces) -> float:
        start = time.perf_counter()
        for trace in traces:
            for model in MODELS:
                make_core(model, trace, config).run()
        return time.perf_counter() - start

    timed_pass(traces_on)   # prime both sides before the clock matters
    timed_pass(traces_off)
    walls_on, walls_off = [], []
    for _ in range(COMPARE_REPS):
        walls_on.append(timed_pass(traces_on))
        walls_off.append(timed_pass(traces_off))
    on_wall, off_wall = min(walls_on), min(walls_off)
    sims = len(specs) * len(MODELS)
    return {
        "methodology": METHODOLOGY,
        "workloads": [spec.name for spec in specs],
        "phases_per_workload": [len(spec.phases) for spec in specs],
        "simulations": sims,
        "reps": COMPARE_REPS,
        "on_wall_s": round(on_wall, 4),
        "off_wall_s": round(off_wall, 4),
        "on_sims_per_sec": round(sims / on_wall, 2),
        "off_sims_per_sec": round(sims / off_wall, 2),
        "overhead_pct": round((on_wall - off_wall) / off_wall * 100.0, 2),
    }


def run_generated_phase(config: ExperimentConfig,
                        count: int = GENERATED_COUNT,
                        seed: int = GENERATED_SEED) -> dict:
    """Seeded wgen suite through the engine: build cost + sim rate.

    Build wall covers spec sampling, phase composition, assembly, and
    functional tracing (the work the trace cache amortises); the timed
    simulation pass then runs the models x generated-workloads grid
    memo-off, exactly like the engine-speed phases.
    """
    from repro.exec import TRACE_CACHE
    from repro.wgen import generate_suite

    specs = generate_suite(count, seed)
    build_start = time.perf_counter()
    for spec in specs:
        TRACE_CACHE.get(spec, config.instructions)
    build_wall = time.perf_counter() - build_start

    jobs = suite_jobs(MODELS, specs, config)
    start = time.perf_counter()
    results = run_jobs(jobs, workers=1, memo=False, store=False)
    wall = time.perf_counter() - start
    simulated = sum(r.instructions for r in results)
    return {
        "count": count,
        "seed": seed,
        "workloads": [spec.name for spec in specs],
        "simulations": len(jobs),
        "build_wall_s": round(build_wall, 3),
        "wall_clock_s": round(wall, 3),
        "simulated_instructions": simulated,
        "sims_per_sec": round(len(jobs) / wall, 2),
        "instructions_per_s": round(simulated / wall, 1),
    }


#: Fault-tolerance phase defaults: the target worker-death rate and the
#: pooled worker count (2 keeps the phase cheap and the recovery path —
#: one death breaks the whole pool — maximally visible).
FAULT_DEATH_RATE = 0.1
FAULT_JOBS = 2


def _fault_plan(fingerprints, rate: float = FAULT_DEATH_RATE) -> FaultPlan:
    """The first seed whose predicted first-attempt deaths hit ``rate``.

    Searched deterministically over the actual campaign fingerprints,
    so the phase always injects (a hardcoded seed could silently decay
    to a fault-free run when a config change moves the fingerprints).
    """
    need = max(1, round(rate * len(fingerprints)))
    for seed in range(500):
        plan = FaultPlan(seed=seed, worker_death=rate)
        if sum(plan.would_fail("worker_death", fp)
               for fp in fingerprints) >= need:
            return plan
    raise RuntimeError("no qualifying fault seed found")


def run_fault_tolerance_phase(config: ExperimentConfig, workloads,
                              jobs: int = FAULT_JOBS) -> dict:
    """Faults-off vs ~10% worker death over a pooled grid.

    Both passes run the same grid memo-off at the same worker count;
    the chaos pass additionally absorbs deterministic worker deaths
    (pool teardown + resurrection + retries).  Clean and chaos walls
    follow the interleaved min-of-3 methodology — pool spin-up costs
    are seconds-scale and drift with the host, so a single-shot
    comparison can (and in the v5 record did) report *negative*
    recovery overhead.  The recorded percentage is the price of
    recovery, and ``results_identical`` pins the contract that recovery
    never changes a result.
    """
    from repro.exec import TRACE_CACHE

    specs = suite_jobs(MODELS, workloads, config)
    for workload in workloads:
        TRACE_CACHE.get(workload, config.instructions)
    plan = _fault_plan([s.fingerprint for s in specs])
    predicted = sum(plan.would_fail("worker_death", s.fingerprint)
                    for s in specs)

    clean_walls, chaos_walls = [], []
    clean = chaos = None
    chaos_reports = []
    for _ in range(COMPARE_REPS):
        start = time.perf_counter()
        clean = run_jobs(specs, workers=jobs, memo=False, store=False,
                         report=CampaignReport())
        clean_walls.append(time.perf_counter() - start)
        chaos_report = CampaignReport()
        start = time.perf_counter()
        with injected_faults(plan):
            chaos = run_jobs(specs, workers=jobs, memo=False, store=False,
                             report=chaos_report)
        chaos_walls.append(time.perf_counter() - start)
        chaos_reports.append(chaos_report)

    clean_wall, chaos_wall = min(clean_walls), min(chaos_walls)
    identical = _payloads(clean) == _payloads(chaos)
    sims = len(specs)
    # The plan is a pure function of (seed, fingerprint), so every rep
    # injects identically; report the first rep's incident counters.
    first = chaos_reports[0]
    single_core_note = None
    if (os.cpu_count() or 1) <= 1 and first.degradations:
        # Not noise: after enough pool deaths the engine degrades to
        # sequential in-process execution, which *outruns* a worker
        # pool on one CPU — so recovery can be a net win here and the
        # overhead percentage reads negative.  Flagged so the trend
        # record stays interpretable.
        single_core_note = (
            "chaos pass degraded to sequential execution, which beats "
            f"a {jobs}-worker pool on a 1-CPU host; negative overhead "
            "is expected, not an anomaly")
    return {
        "methodology": METHODOLOGY,
        "simulations": sims,
        "jobs": jobs,
        "reps": COMPARE_REPS,
        "death_rate": plan.worker_death,
        "seed": plan.seed,
        "predicted_first_attempt_deaths": predicted,
        "clean_wall_s": round(clean_wall, 4),
        "chaos_wall_s": round(chaos_wall, 4),
        "clean_sims_per_sec": round(sims / clean_wall, 2),
        "chaos_sims_per_sec": round(sims / chaos_wall, 2),
        "recovery_overhead_pct": round(
            (chaos_wall - clean_wall) / clean_wall * 100.0, 2),
        "retries": first.retries,
        "pool_breaks": first.pool_breaks,
        "degradations": first.degradations,
        "single_core_note": single_core_note,
        "results_identical": identical,
    }


#: Fabric phase worker count: 2 keeps the phase cheap while still
#: exercising real multi-process lease traffic.
FABRIC_WORKERS = 2


def run_fabric_phase(config: ExperimentConfig, workloads,
                     workers: int = FABRIC_WORKERS) -> dict:
    """Sequential in-process vs the lease fabric over the same grid.

    Each fabric rep gets a *fresh* ledger and store root, so every rep
    pays the full coordination bill — fork, lease claims, heartbeats,
    content-addressed flush, collection — and none adopts a prior rep's
    records.  The sequential side is the same grid memo-off in-process.
    Byte-identity is the fabric's core contract; the throughput ratio
    is the honest price of durable coordination at this grid size
    (small grids are dominated by fork + per-cell I/O, so expect the
    overhead to shrink as campaigns grow).
    """
    from repro.exec import TRACE_CACHE

    specs = suite_jobs(MODELS, workloads, config)
    for workload in workloads:
        TRACE_CACHE.get(workload, config.instructions)

    def seq_pass():
        return _timed(lambda: run_jobs(specs, workers=1, memo=False,
                                       store=False, fabric=False))

    def fabric_pass():
        root = tempfile.mkdtemp(prefix="repro-bench-fabric-")
        report = CampaignReport()
        try:
            wall, results = _timed(
                lambda: run_jobs_fabric(specs, workers=workers, memo=False,
                                        store=ResultStore(root),
                                        report=report))
        finally:
            shutil.rmtree(root, ignore_errors=True)
        return wall, results, report

    seq_pass()  # prime: bytecode + warm snapshots, inherited by forks
    seq_walls, fabric_walls = [], []
    seq_results = fabric_results = None
    reports = []
    for _ in range(COMPARE_REPS):
        wall, seq_results = seq_pass()
        seq_walls.append(wall)
        wall, fabric_results, rep = fabric_pass()
        fabric_walls.append(wall)
        reports.append(rep)
    seq_wall, fabric_wall = min(seq_walls), min(fabric_walls)
    sims = len(specs)
    # Lease traffic is rep-dependent (scheduling races); report the
    # counters of the fastest rep, the one whose wall is recorded.
    fastest = reports[fabric_walls.index(fabric_wall)]
    return {
        "methodology": METHODOLOGY,
        "simulations": sims,
        "workers": workers,
        "reps": COMPARE_REPS,
        "sequential_wall_s": round(seq_wall, 4),
        "fabric_wall_s": round(fabric_wall, 4),
        "sequential_sims_per_sec": round(sims / seq_wall, 2),
        "sims_per_sec": round(sims / fabric_wall, 2),
        "speedup": round(seq_wall / fabric_wall, 2),
        "leases_issued": fastest.leases_issued,
        "leases_reclaimed": (fastest.leases_expired
                             + fastest.leases_stolen
                             + fastest.leases_reclaimed),
        "worker_deaths": fastest.worker_deaths,
        "degradations": fastest.degradations,
        "results_identical": (_payloads(seq_results)
                              == _payloads(fabric_results)),
    }


def run_obs_overhead_phase(config: ExperimentConfig, workloads) -> dict:
    """Trace-off vs trace-on sims/sec over the sequential grid.

    The telemetry subsystem's zero-overhead contract, measured: the off
    side is the ordinary sequential grid (``REPRO_TRACE`` unset — hot
    paths pay one module-global check), the on side runs the identical
    grid with span tracing, engine leap-audit probes, and metrics
    mirroring live, logs flushed per record to a throwaway obs dir.
    Byte-identity between the sides is the observation-only law; the
    overhead percentage is the trend line that keeps tracing honest.
    """
    from repro.exec import TRACE_CACHE
    from repro.obs import trace as obs_trace
    from repro.obs.export import merge_logs

    jobs = suite_jobs(MODELS, workloads, config)
    for workload in workloads:
        TRACE_CACHE.get(workload, config.instructions)
    obs_root = tempfile.mkdtemp(prefix="repro-bench-obs-")
    prior_trace = os.environ.pop("REPRO_TRACE", None)

    def grid():
        return run_jobs(jobs, workers=1, memo=False, store=False,
                        fabric=False)

    def pass_off():
        os.environ.pop("REPRO_TRACE", None)
        return grid()

    def pass_on():
        os.environ["REPRO_TRACE"] = obs_root
        return grid()

    try:
        off_results = pass_off()  # prime both sides before timing
        on_results = pass_on()
        walls_off, walls_on = [], []
        for _ in range(COMPARE_REPS):
            wall, _results = _timed(pass_off)
            walls_off.append(wall)
            wall, _results = _timed(pass_on)
            walls_on.append(wall)
        span_records = sum(1 for r in merge_logs(obs_root)
                           if r.get("ph") == "X")
    finally:
        os.environ.pop("REPRO_TRACE", None)
        obs_trace.deactivate()
        if prior_trace is not None:
            os.environ["REPRO_TRACE"] = prior_trace
        shutil.rmtree(obs_root, ignore_errors=True)
    off_wall, on_wall = min(walls_off), min(walls_on)
    sims = len(jobs)
    return {
        "methodology": METHODOLOGY,
        "simulations": sims,
        "reps": COMPARE_REPS,
        "off_wall_s": round(off_wall, 4),
        "on_wall_s": round(on_wall, 4),
        "off_sims_per_sec": round(sims / off_wall, 2),
        "on_sims_per_sec": round(sims / on_wall, 2),
        "overhead_pct": round((on_wall - off_wall) / off_wall * 100.0, 2),
        "span_records": span_records,
        "results_identical": (_payloads(off_results)
                              == _payloads(on_results)),
    }


def campaign_throughput(parallel_jobs: int | None = None,
                        config: ExperimentConfig | None = None,
                        workloads=None, store_dir: str | None = None,
                        store_only: bool = False) -> dict:
    """Every phase, with per-phase and overall byte-identity verdicts.

    The jobs=N engine pass is skipped (and flagged) when the host has a
    single CPU and no worker count was forced: a process pool cannot
    speed anything up there, so recording its wall as "parallel
    throughput" would poison the trend line.
    """
    config = config if config is not None else ExperimentConfig()
    workloads = workloads if workloads is not None else selected_workloads()
    cpu_count = os.cpu_count() or 1
    forced = parallel_jobs is not None
    resolved_parallel = parallel_jobs if forced else max(2, default_jobs())
    skip_parallel = cpu_count <= 1 and not forced
    # The environment must not leak into the measurements: the engine
    # phases are pure simulation (no memo tiers), the store phase uses
    # its own explicit store, and each batch pass pins its own
    # REPRO_BATCH — but warm-hierarchy checkpoints resolve the env store
    # inside core construction, so a dirty .repro-cache/ (or an ambient
    # batch width) would corrupt the trend record.  Restored afterwards.
    prior_store_env = os.environ.get("REPRO_STORE")
    prior_batch_env = os.environ.pop("REPRO_BATCH", None)
    # An ambient REPRO_FABRIC_WORKERS would silently reroute every
    # non-fabric phase's campaigns through the fabric; the fabric phase
    # passes its worker count explicitly.
    prior_fabric_env = os.environ.pop("REPRO_FABRIC_WORKERS", None)
    os.environ["REPRO_STORE"] = "0"
    try:
        report = {
            "benchmark": "figure5_campaign_throughput",
            "instructions_per_kernel": config.instructions,
            # Names, not raw refs: generated workloads (WorkloadSpec)
            # are not JSON-serialisable and the record only needs ids.
            "workloads": [workload_name(w) for w in workloads],
            "models": list(MODELS),
            "cpu_count": cpu_count,
            "repro_jobs_env": os.environ.get("REPRO_JOBS"),
        }
        if not store_only:
            engine = run_engine_phase(
                config, workloads,
                None if skip_parallel else resolved_parallel)
            report["engine_methodology"] = engine["methodology"]
            report["sequential"] = engine["sequential"]
            if skip_parallel:
                report["parallel"] = None
                report["parallel_skipped"] = (
                    f"cpu_count={cpu_count}: a process pool only adds "
                    "fork/IPC overhead on a single-core host; pass "
                    "--jobs N to force the phase")
            else:
                report["parallel"] = engine["parallel"]
                report["speedup"] = engine["speedup"]
                report["parallel_results_identical"] = \
                    engine["results_identical"]
            report["batch"] = run_batch_phase(config)
            report["generated"] = run_generated_phase(config)
            report["phase_attribution"] = run_phase_attribution_phase(config)
            report["fault_tolerance"] = run_fault_tolerance_phase(
                config, workloads)
            report["fabric"] = run_fabric_phase(config, workloads)
            report["obs"] = run_obs_overhead_phase(config, workloads)
        report["store"] = run_store_phase(config, workloads, store_dir)
        verdicts = [report["store"]["results_identical"]]
        if not store_only:
            verdicts.append(report["batch"]["results_identical"])
            verdicts.append(report["fault_tolerance"]["results_identical"])
            verdicts.append(report["fabric"]["results_identical"])
            verdicts.append(report["obs"]["results_identical"])
            if report["parallel"] is not None:
                verdicts.append(report["parallel_results_identical"])
        report["results_identical"] = all(verdicts)
    finally:
        if prior_store_env is None:
            os.environ.pop("REPRO_STORE", None)
        else:
            os.environ["REPRO_STORE"] = prior_store_env
        if prior_batch_env is not None:
            os.environ["REPRO_BATCH"] = prior_batch_env
        if prior_fabric_env is not None:
            os.environ["REPRO_FABRIC_WORKERS"] = prior_fabric_env
    return report


def test_campaign_throughput(once):
    """Benchmark-suite entry: reduced grid, full verdict assertions."""
    cfg = ExperimentConfig(instructions=min(ExperimentConfig().instructions,
                                            1500))
    workloads = selected_workloads()[:6]
    report = once(lambda: campaign_throughput(config=cfg,
                                              workloads=workloads))
    print("\n" + json.dumps(report, indent=2))
    assert report["results_identical"], "some phase's A/B runs diverged"
    assert report["engine_methodology"] == METHODOLOGY
    sequential = report["sequential"]
    assert sequential["reps"] == COMPARE_REPS
    assert sequential["sims_per_sec"] > 0
    if report["parallel"] is None:
        # Single-core host: the skip must be flagged, not silent.
        assert "cpu_count=1" in report["parallel_skipped"]
    else:
        assert report["parallel_results_identical"], \
            "parallel run diverged from sequential"
        assert report["parallel"]["simulated_instructions"] == \
            sequential["simulated_instructions"]
    batch = report["batch"]
    assert batch["results_identical"], "batched run diverged from scalar"
    assert batch["methodology"] == METHODOLOGY
    assert batch["groups"] < batch["simulations"], "nothing actually batched"
    assert batch["lanes_per_group"] == [len(BATCH_SWEEP_L2)]
    assert batch["batched_sims_per_sec"] > 0
    store = report["store"]
    assert store["results_identical"], "store-warm pass diverged from cold"
    assert store["warm_all_hits"], "warm pass missed the disk store"
    assert store["warm"]["store_writes"] == 0
    generated = report["generated"]
    assert generated["simulations"] == generated["count"] * len(MODELS)
    assert generated["sims_per_sec"] > 0
    assert generated["simulated_instructions"] > 0
    attribution = report["phase_attribution"]
    assert attribution["simulations"] > 0, "no multi-phase specs sampled"
    assert attribution["methodology"] == METHODOLOGY
    assert attribution["reps"] == COMPARE_REPS
    assert attribution["on_sims_per_sec"] > 0
    assert attribution["off_sims_per_sec"] > 0
    faults = report["fault_tolerance"]
    assert faults["results_identical"], "chaos recovery changed a result"
    assert faults["methodology"] == METHODOLOGY
    assert faults["reps"] == COMPARE_REPS
    assert faults["predicted_first_attempt_deaths"] >= 1
    assert faults["pool_breaks"] >= 1, "no worker death actually landed"
    assert faults["chaos_sims_per_sec"] > 0
    assert "single_core_note" in faults  # negative overhead stays flagged
    fabric = report["fabric"]
    assert fabric["results_identical"], "fabric campaign diverged"
    assert fabric["methodology"] == METHODOLOGY
    assert fabric["reps"] == COMPARE_REPS
    assert fabric["sims_per_sec"] > 0
    assert fabric["leases_issued"] >= 1, "no worker actually leased"
    assert fabric["worker_deaths"] == 0  # no chaos plan in this phase
    assert fabric["degradations"] == 0, "fabric fell back to in-process"
    obs = report["obs"]
    assert obs["results_identical"], "tracing changed a result"
    assert obs["methodology"] == METHODOLOGY
    assert obs["reps"] == COMPARE_REPS
    assert obs["on_sims_per_sec"] > 0
    assert obs["off_sims_per_sec"] > 0
    assert obs["span_records"] > 0, "the traced side recorded nothing"


def test_regression_guard():
    """The guard trips on >20% drops, stays quiet within noise, and
    tolerates old-schema baselines missing a metric."""
    import io

    previous = {"commit": "abc1234",
                "sims_per_sec": {"jobs1": 10.0},
                "batch": {"batched_sims_per_sec": 8.0}}
    quiet = io.StringIO()
    fresh_ok = {"sims_per_sec": {"jobs1": 9.0},
                "batch": {"batched_sims_per_sec": 7.5}}
    assert warn_on_regression(previous, fresh_ok, stream=quiet) == []
    assert quiet.getvalue() == ""
    loud = io.StringIO()
    fresh_bad = {"sims_per_sec": {"jobs1": 5.0}}  # batch metric absent: skip
    warnings = warn_on_regression(previous, fresh_bad, stream=loud)
    assert len(warnings) == 1
    assert "sims_per_sec.jobs1" in warnings[0]
    assert "abc1234" in warnings[0]
    assert "BENCH REGRESSION" in loud.getvalue()


def git_commit() -> str:
    """Short commit id of the benchmarked tree ("unknown" outside git)."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def bench_record(report: dict) -> dict:
    """The compact machine-readable trend record for BENCH_throughput.json.

    Schema v8 (over v7: adds the obs phase — trace-off vs trace-on over
    the sequential grid, the telemetry subsystem's measured overhead).
    Enough for a dashboard to plot every trajectory across PRs and to
    tell an engine regression from a cache, generator, attribution,
    batching, recovery-path, coordination-layer, or telemetry
    regression, without re-parsing the full report.
    """
    sequential = report["sequential"]
    parallel = report["parallel"]
    batch = report["batch"]
    store = report["store"]
    generated = report["generated"]
    attribution = report["phase_attribution"]
    faults = report["fault_tolerance"]
    fabric = report["fabric"]
    obs = report["obs"]
    return {
        "schema": "bench_throughput/v8",
        "commit": git_commit(),
        "methodology": METHODOLOGY,
        "jobs": {"sequential": 1,
                 "parallel": parallel["jobs"] if parallel else None},
        "grid": {
            "models": report["models"],
            "workloads": report["workloads"],
            "instructions_per_kernel": report["instructions_per_kernel"],
            "simulations": sequential["simulations"],
        },
        "env": {
            "repro_jobs": report["repro_jobs_env"],
            "cpu_count": report["cpu_count"],
            "parallel_skipped": report.get("parallel_skipped"),
        },
        "sims_per_sec": {
            "jobs1": sequential["sims_per_sec"],
            "jobsN": parallel["sims_per_sec"] if parallel else None,
        },
        "instructions_per_s": {
            "jobs1": sequential["instructions_per_s"],
            "jobsN": parallel["instructions_per_s"] if parallel else None,
        },
        "wall_clock_s": {
            "jobs1": sequential["wall_clock_s"],
            "jobsN": parallel["wall_clock_s"] if parallel else None,
            "reps": sequential["reps"],
        },
        "batch": {
            "width": batch["width"],
            "simulations": batch["simulations"],
            "groups": batch["groups"],
            "lanes_per_group": batch["lanes_per_group"],
            "reps": batch["reps"],
            "scalar_wall_s": batch["scalar_wall_s"],
            "batched_wall_s": batch["batched_wall_s"],
            "scalar_sims_per_sec": batch["scalar_sims_per_sec"],
            "batched_sims_per_sec": batch["batched_sims_per_sec"],
            "speedup": batch["speedup"],
            "results_identical": batch["results_identical"],
        },
        "store": {
            "cold_wall_s": store["cold"]["wall_clock_s"],
            "warm_wall_s": store["warm"]["wall_clock_s"],
            "warm_speedup": store["warm_speedup"],
            "cold_hits": store["cold"]["store_hits"],
            "cold_misses": store["cold"]["store_misses"],
            "cold_writes": store["cold"]["store_writes"],
            "warm_hits": store["warm"]["store_hits"],
            "warm_all_hits": store["warm_all_hits"],
            "results_identical": store["results_identical"],
        },
        "generated": {
            "count": generated["count"],
            "seed": generated["seed"],
            "simulations": generated["simulations"],
            "build_wall_s": generated["build_wall_s"],
            "wall_clock_s": generated["wall_clock_s"],
            "sims_per_sec": generated["sims_per_sec"],
            "instructions_per_s": generated["instructions_per_s"],
        },
        "phase_attribution": {
            "simulations": attribution["simulations"],
            "reps": attribution["reps"],
            "on_wall_s": attribution["on_wall_s"],
            "off_wall_s": attribution["off_wall_s"],
            "on_sims_per_sec": attribution["on_sims_per_sec"],
            "off_sims_per_sec": attribution["off_sims_per_sec"],
            "overhead_pct": attribution["overhead_pct"],
        },
        "fault_tolerance": {
            "simulations": faults["simulations"],
            "jobs": faults["jobs"],
            "reps": faults["reps"],
            "death_rate": faults["death_rate"],
            "predicted_first_attempt_deaths":
                faults["predicted_first_attempt_deaths"],
            "clean_wall_s": faults["clean_wall_s"],
            "chaos_wall_s": faults["chaos_wall_s"],
            "clean_sims_per_sec": faults["clean_sims_per_sec"],
            "chaos_sims_per_sec": faults["chaos_sims_per_sec"],
            "recovery_overhead_pct": faults["recovery_overhead_pct"],
            "pool_breaks": faults["pool_breaks"],
            "retries": faults["retries"],
            "degradations": faults["degradations"],
            "single_core_note": faults["single_core_note"],
            "results_identical": faults["results_identical"],
        },
        "fabric": {
            "simulations": fabric["simulations"],
            "workers": fabric["workers"],
            "reps": fabric["reps"],
            "sequential_wall_s": fabric["sequential_wall_s"],
            "fabric_wall_s": fabric["fabric_wall_s"],
            "sequential_sims_per_sec": fabric["sequential_sims_per_sec"],
            "sims_per_sec": fabric["sims_per_sec"],
            "speedup": fabric["speedup"],
            "leases_issued": fabric["leases_issued"],
            "leases_reclaimed": fabric["leases_reclaimed"],
            "worker_deaths": fabric["worker_deaths"],
            "degradations": fabric["degradations"],
            "results_identical": fabric["results_identical"],
        },
        "obs": {
            "simulations": obs["simulations"],
            "reps": obs["reps"],
            "off_wall_s": obs["off_wall_s"],
            "on_wall_s": obs["on_wall_s"],
            "off_sims_per_sec": obs["off_sims_per_sec"],
            "on_sims_per_sec": obs["on_sims_per_sec"],
            "overhead_pct": obs["overhead_pct"],
            "span_records": obs["span_records"],
            "results_identical": obs["results_identical"],
        },
        "results_identical": report["results_identical"],
    }


#: Throughput metrics the regression guard watches, as dotted paths
#: into the trend record.  Walls are deliberately absent (absolute
#: walls drift with the host; the rates below are min-of-3 and the
#: store ratio is host-normalised).
GUARD_METRICS = (
    "sims_per_sec.jobs1",
    "batch.batched_sims_per_sec",
    "generated.sims_per_sec",
    "store.warm_speedup",
    "fabric.sims_per_sec",
    "obs.on_sims_per_sec",
)
GUARD_THRESHOLD = 0.20


def _dig(record: dict, path: str):
    node = record
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def warn_on_regression(previous: dict, fresh: dict,
                       threshold: float = GUARD_THRESHOLD,
                       stream=None) -> list[str]:
    """Compare two trend records; shout any >threshold throughput drop.

    Returns the warning lines (empty list: no regression), and prints
    them to ``stream`` (default stderr) loudly enough that a regressed
    ``make bench`` cannot be mistaken for a clean one.  Schema-tolerant:
    metrics absent from either record (e.g. a v5 baseline without the
    batch phase) are skipped, never guessed.
    """
    stream = stream if stream is not None else sys.stderr
    warnings = []
    for metric in GUARD_METRICS:
        before, after = _dig(previous, metric), _dig(fresh, metric)
        if not isinstance(before, (int, float)) or before <= 0:
            continue
        if not isinstance(after, (int, float)):
            continue
        drop = 1.0 - after / before
        if drop > threshold:
            warnings.append(
                f"{metric} fell {drop * 100.0:.1f}%: "
                f"{before} (commit {previous.get('commit', '?')}) "
                f"-> {after}")
    if warnings:
        banner = "!" * 72
        print(banner, file=stream)
        print(f"!!! BENCH REGRESSION (> {threshold * 100.0:.0f}% "
              "vs previous record)", file=stream)
        for line in warnings:
            print(f"!!!   {line}", file=stream)
        print(banner, file=stream)
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="parallel worker count (default REPRO_JOBS/CPUs;"
                             " forces the jobs=N phase even on 1 CPU)")
    parser.add_argument("-n", "--instructions", type=int, default=None,
                        help="dynamic instructions per kernel")
    parser.add_argument("-w", "--workloads", type=str, default=None,
                        help="comma-separated workload refs (kernel names, "
                             "@specfile.json, gen:N[:SEED])")
    parser.add_argument("-o", "--output", type=str, default=None,
                        help="also write the compact trend record here; an "
                             "existing record there becomes the regression "
                             "baseline (>20%% drops are shouted to stderr)")
    parser.add_argument("--store-dir", type=str, default=None,
                        help="persistent store directory for the cold/warm "
                             "phase (default: ephemeral tmpdir; pass a path "
                             "to make second invocations store-hot)")
    parser.add_argument("--store-only", action="store_true",
                        help="skip every phase but the store cold/warm "
                             "measurement (`make bench-warm`)")
    args = parser.parse_args(argv)
    config = ExperimentConfig()
    if args.instructions is not None:
        config = dataclasses.replace(config, instructions=args.instructions)
    workloads = (resolve_workloads(
        w.strip() for w in args.workloads.split(",") if w.strip())
        if args.workloads else None)
    report = campaign_throughput(args.jobs, config, workloads,
                                 store_dir=args.store_dir,
                                 store_only=args.store_only)
    json.dump(report, sys.stdout, indent=2)
    print()
    if args.output:
        if args.store_only:
            print("--output needs the full run (drop --store-only); "
                  "skipping trend record", file=sys.stderr)
        else:
            record = bench_record(report)
            previous = None
            if os.path.exists(args.output):
                try:
                    with open(args.output) as handle:
                        previous = json.load(handle)
                except (OSError, json.JSONDecodeError):
                    print(f"previous record at {args.output} unreadable; "
                          "skipping regression check", file=sys.stderr)
            if previous is not None:
                warn_on_regression(previous, record)
            with open(args.output, "w") as handle:
                json.dump(record, handle, indent=1, sort_keys=True)
                handle.write("\n")
            print(f"trend record written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
