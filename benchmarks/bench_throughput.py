"""Campaign throughput: the Figure 5 grid, engine speed vs cache power.

Five measurements, separated so the trend record can tell them apart:

* **engine speed** — jobs=1 vs jobs=N over the grid with every memo
  tier off (``memo=False``): pure simulation throughput.
* **store effectiveness** — a cold pass (empty disk store, results
  flushed to it) vs a warm pass (RAM memo cleared, every cell loaded
  back from the store): what an incremental re-run of a completed
  campaign actually costs.  Hit counters are recorded alongside the
  wall clocks, so a pre-populated store (``make bench-warm`` against a
  persistent ``--store-dir``) is self-describing.
* **generated-suite throughput** — a seeded ``repro.wgen`` suite
  through the same engine: spec -> program materialisation cost
  (build wall) and simulation rate over generated workloads, so a
  composer or generator regression shows up as its own number instead
  of hiding inside campaign noise.
* **phase-attribution overhead** — the suite's multi-phase specs with
  per-phase attribution on (their real phase regions) vs off (regions
  stripped from the identical traces), so the live bucketing's hot-path
  cost stays visible in the perf trajectory.
* **fault-tolerance overhead** — the same pooled grid with faults off
  vs ~10% deterministic worker death (pool teardown, resurrection,
  retries), so the recovery path's price — and the byte-identical
  contract under chaos — stay visible in the perf trajectory.

Usable three ways:

* ``python benchmarks/bench_throughput.py [--jobs N] [-n INSTR] [-w a,b]``
  runs both measurements and prints one machine-readable JSON object.
  ``--store-dir`` persists the store between invocations (second runs
  are store-hot); ``--store-only`` skips the jobs=1-vs-N comparison.
* ``--output BENCH_throughput.json`` additionally writes the compact
  trend record (schema v5: commit, jobs, grid, sims/sec, store cold/warm
  wall + hit counts, generated-suite rates, phase-attribution delta,
  fault-recovery delta, env) — ``make bench`` uses this, and the checked-in
  ``BENCH_throughput.json`` at the repo root is the baseline.
* under pytest it asserts the parallel run and the store-warm pass both
  reproduce the sequential results exactly, on a reduced grid.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.exec import (  # noqa: E402
    RESULT_CACHE,
    CampaignReport,
    FaultPlan,
    ResultStore,
    default_jobs,
    injected_faults,
    run_jobs,
)
from repro.exec.store import result_to_payload  # noqa: E402
from repro.harness.experiment import (  # noqa: E402
    MODELS,
    ExperimentConfig,
    selected_workloads,
    suite_jobs,
)
from repro.wgen import resolve_workloads, workload_name  # noqa: E402


def run_grid(jobs: int, config: ExperimentConfig, workloads) -> dict:
    """One timed pass over the models x workloads grid.

    Traces are generated (and cached) before the clock starts, so both
    the sequential and the parallel pass time pure simulation — the
    sequential side must not pay trace generation that the parallel
    side then inherits through fork.
    """
    from repro.exec import TRACE_CACHE

    specs = suite_jobs(MODELS, workloads, config)
    for workload in workloads:
        TRACE_CACHE.get(workload, config.instructions)
    start = time.perf_counter()
    results = run_jobs(specs, workers=jobs, memo=False)
    wall = time.perf_counter() - start
    simulated = sum(r.instructions for r in results)
    return {
        "jobs": jobs,
        "simulations": len(specs),
        "wall_clock_s": round(wall, 3),
        "simulated_instructions": simulated,
        "instructions_per_s": round(simulated / wall, 1),
        "cycles": {f"{r.workload}/{r.model}": r.cycles for r in results},
    }


def run_store_phase(config: ExperimentConfig, workloads,
                    store_dir: str | None = None) -> dict:
    """Cold-vs-warm over the grid through the disk store.

    Cold: RAM memo cleared, the store consulted and then flushed — for
    an empty store this is full simulation plus record writes.  Warm:
    RAM memo cleared again, same store — every cell must now load from
    disk.  Both passes report the store's hit/miss/write counters, so a
    pre-populated persistent store (where the "cold" pass is already
    hot) reads honestly.
    """
    from repro.exec import TRACE_CACHE

    ephemeral = store_dir is None
    if ephemeral:
        store_dir = tempfile.mkdtemp(prefix="repro-bench-store-")
    store = ResultStore(store_dir)
    specs = suite_jobs(MODELS, workloads, config)
    for workload in workloads:
        TRACE_CACHE.get(workload, config.instructions)

    def timed_pass() -> dict:
        RESULT_CACHE.clear()
        counters = {name: getattr(store, name)
                    for name in ("hits", "misses", "writes", "corrupt")}
        start = time.perf_counter()
        results = run_jobs(specs, workers=1, store=store)
        wall = time.perf_counter() - start
        return {
            "wall_clock_s": round(wall, 4),
            "store_hits": store.hits - counters["hits"],
            "store_misses": store.misses - counters["misses"],
            "store_writes": store.writes - counters["writes"],
            "store_corrupt": store.corrupt - counters["corrupt"],
            "memo_entries_after": len(RESULT_CACHE),
            "payloads": [result_to_payload(r) for r in results],
        }

    cold = timed_pass()
    warm = timed_pass()
    identical = cold["payloads"] == warm["payloads"]
    for side in (cold, warm):
        del side["payloads"]  # bulky; the equality verdict is what matters
    phase = {
        "simulations": len(specs),
        "store_dir_persistent": not ephemeral,
        "cold": cold,
        "warm": warm,
        "warm_speedup": round(cold["wall_clock_s"]
                              / max(warm["wall_clock_s"], 1e-9), 2),
        "warm_all_hits": warm["store_hits"] == len(specs),
        "results_identical": identical,
    }
    if ephemeral:
        shutil.rmtree(store_dir, ignore_errors=True)
    return phase


#: Generated-suite phase defaults: a fixed seed so the benchmarked
#: workloads are the same specs run to run (the point of a trend line).
GENERATED_COUNT = 6
GENERATED_SEED = 2009


def run_phase_attribution_phase(config: ExperimentConfig,
                                count: int = GENERATED_COUNT,
                                seed: int = GENERATED_SEED) -> dict:
    """Attribution-on vs -off sims/sec over multi-phase workloads.

    Phase attribution runs live (per-commit bucketing) only for
    multi-phase composed programs, so this phase times exactly those:
    the seeded suite's multi-phase specs, all five models, once with
    their real phase regions and once over the identical dynamic trace
    with the regions stripped.  Passes are primed (warm snapshots,
    bytecode) and take the min of three timed reps each, interleaved
    on/off so machine drift hits both sides alike.  The recorded
    overhead percentage is the trend line that keeps attribution's
    hot-path cost visible across PRs.
    """
    from repro.exec import TRACE_CACHE
    from repro.harness.experiment import make_core
    from repro.wgen import generate_suite

    specs = [s for s in generate_suite(count, seed) if len(s.phases) > 1]
    traces_on = [TRACE_CACHE.get(s, config.instructions) for s in specs]
    traces_off = [t.with_phase_regions(()) for t in traces_on]

    def timed_pass(traces) -> float:
        start = time.perf_counter()
        for trace in traces:
            for model in MODELS:
                make_core(model, trace, config).run()
        return time.perf_counter() - start

    timed_pass(traces_on)   # prime both sides before the clock matters
    timed_pass(traces_off)
    reps = 3
    walls_on, walls_off = [], []
    for _ in range(reps):
        walls_on.append(timed_pass(traces_on))
        walls_off.append(timed_pass(traces_off))
    on_wall, off_wall = min(walls_on), min(walls_off)
    sims = len(specs) * len(MODELS)
    return {
        "workloads": [spec.name for spec in specs],
        "phases_per_workload": [len(spec.phases) for spec in specs],
        "simulations": sims,
        "reps": reps,
        "on_wall_s": round(on_wall, 4),
        "off_wall_s": round(off_wall, 4),
        "on_sims_per_sec": round(sims / on_wall, 2),
        "off_sims_per_sec": round(sims / off_wall, 2),
        "overhead_pct": round((on_wall - off_wall) / off_wall * 100.0, 2),
    }


def run_generated_phase(config: ExperimentConfig,
                        count: int = GENERATED_COUNT,
                        seed: int = GENERATED_SEED) -> dict:
    """Seeded wgen suite through the engine: build cost + sim rate.

    Build wall covers spec sampling, phase composition, assembly, and
    functional tracing (the work the trace cache amortises); the timed
    simulation pass then runs the models x generated-workloads grid
    memo-off, exactly like the engine-speed phases.
    """
    from repro.exec import TRACE_CACHE
    from repro.wgen import generate_suite

    specs = generate_suite(count, seed)
    build_start = time.perf_counter()
    for spec in specs:
        TRACE_CACHE.get(spec, config.instructions)
    build_wall = time.perf_counter() - build_start

    jobs = suite_jobs(MODELS, specs, config)
    start = time.perf_counter()
    results = run_jobs(jobs, workers=1, memo=False, store=False)
    wall = time.perf_counter() - start
    simulated = sum(r.instructions for r in results)
    return {
        "count": count,
        "seed": seed,
        "workloads": [spec.name for spec in specs],
        "simulations": len(jobs),
        "build_wall_s": round(build_wall, 3),
        "wall_clock_s": round(wall, 3),
        "simulated_instructions": simulated,
        "sims_per_sec": round(len(jobs) / wall, 2),
        "instructions_per_s": round(simulated / wall, 1),
    }


#: Fault-tolerance phase defaults: the target worker-death rate and the
#: pooled worker count (2 keeps the phase cheap and the recovery path —
#: one death breaks the whole pool — maximally visible).
FAULT_DEATH_RATE = 0.1
FAULT_JOBS = 2


def _fault_plan(fingerprints, rate: float = FAULT_DEATH_RATE) -> FaultPlan:
    """The first seed whose predicted first-attempt deaths hit ``rate``.

    Searched deterministically over the actual campaign fingerprints,
    so the phase always injects (a hardcoded seed could silently decay
    to a fault-free run when a config change moves the fingerprints).
    """
    need = max(1, round(rate * len(fingerprints)))
    for seed in range(500):
        plan = FaultPlan(seed=seed, worker_death=rate)
        if sum(plan.would_fail("worker_death", fp)
               for fp in fingerprints) >= need:
            return plan
    raise RuntimeError("no qualifying fault seed found")


def run_fault_tolerance_phase(config: ExperimentConfig, workloads,
                              jobs: int = FAULT_JOBS) -> dict:
    """Faults-off vs ~10% worker death over a pooled grid.

    Both passes run the same grid memo-off at the same worker count;
    the chaos pass additionally absorbs deterministic worker deaths
    (pool teardown + resurrection + retries).  The recorded overhead
    percentage is the price of recovery, and ``results_identical`` pins
    the contract that recovery never changes a result.
    """
    from repro.exec import TRACE_CACHE

    specs = suite_jobs(MODELS, workloads, config)
    for workload in workloads:
        TRACE_CACHE.get(workload, config.instructions)
    plan = _fault_plan([s.fingerprint for s in specs])
    predicted = sum(plan.would_fail("worker_death", s.fingerprint)
                    for s in specs)

    clean_report = CampaignReport()
    start = time.perf_counter()
    clean = run_jobs(specs, workers=jobs, memo=False, store=False,
                     report=clean_report)
    clean_wall = time.perf_counter() - start

    chaos_report = CampaignReport()
    start = time.perf_counter()
    with injected_faults(plan):
        chaos = run_jobs(specs, workers=jobs, memo=False, store=False,
                         report=chaos_report)
    chaos_wall = time.perf_counter() - start

    identical = ([result_to_payload(r) for r in clean]
                 == [result_to_payload(r) for r in chaos])
    sims = len(specs)
    return {
        "simulations": sims,
        "jobs": jobs,
        "death_rate": plan.worker_death,
        "seed": plan.seed,
        "predicted_first_attempt_deaths": predicted,
        "clean_wall_s": round(clean_wall, 4),
        "chaos_wall_s": round(chaos_wall, 4),
        "clean_sims_per_sec": round(sims / clean_wall, 2),
        "chaos_sims_per_sec": round(sims / chaos_wall, 2),
        "recovery_overhead_pct": round(
            (chaos_wall - clean_wall) / clean_wall * 100.0, 2),
        "retries": chaos_report.retries,
        "pool_breaks": chaos_report.pool_breaks,
        "degradations": chaos_report.degradations,
        "results_identical": identical,
    }


def campaign_throughput(parallel_jobs: int | None = None,
                        config: ExperimentConfig | None = None,
                        workloads=None, store_dir: str | None = None,
                        store_only: bool = False) -> dict:
    """jobs=1 vs jobs=N plus cold-vs-warm store, with equality checks."""
    config = config if config is not None else ExperimentConfig()
    workloads = workloads if workloads is not None else selected_workloads()
    parallel_jobs = (parallel_jobs if parallel_jobs is not None
                     else max(2, default_jobs()))
    # The environment's store must not leak into the measurements: the
    # jobs=1/jobs=N passes are pure simulation (no memo tiers) and the
    # store phase uses its own explicit store — but warm-hierarchy
    # checkpoints resolve the env store inside core construction, so a
    # dirty .repro-cache/ would make "cold" times differ between a
    # clean and a warmed-up checkout, corrupting the trend record.
    # Restored afterwards so importing callers keep their persistence.
    prior_store_env = os.environ.get("REPRO_STORE")
    os.environ["REPRO_STORE"] = "0"
    try:
        report = {
            "benchmark": "figure5_campaign_throughput",
            "instructions_per_kernel": config.instructions,
            # Names, not raw refs: generated workloads (WorkloadSpec)
            # are not JSON-serialisable and the record only needs ids.
            "workloads": [workload_name(w) for w in workloads],
            "models": list(MODELS),
            "cpu_count": os.cpu_count(),
            "repro_jobs_env": os.environ.get("REPRO_JOBS"),
        }
        if not store_only:
            sequential = run_grid(1, config, workloads)
            parallel = run_grid(parallel_jobs, config, workloads)
            report.update({
                "sequential": sequential,
                "parallel": parallel,
                "speedup": round(sequential["wall_clock_s"]
                                 / parallel["wall_clock_s"], 2),
                "results_identical":
                    sequential["cycles"] == parallel["cycles"],
            })
            for side in (sequential, parallel):
                del side["cycles"]  # bulky; the verdict is what matters
            report["generated"] = run_generated_phase(config)
            report["phase_attribution"] = run_phase_attribution_phase(config)
            report["fault_tolerance"] = run_fault_tolerance_phase(
                config, workloads)
        report["store"] = run_store_phase(config, workloads, store_dir)
    finally:
        if prior_store_env is None:
            os.environ.pop("REPRO_STORE", None)
        else:
            os.environ["REPRO_STORE"] = prior_store_env
    return report


def test_campaign_throughput(once):
    """Benchmark-suite entry: reduced grid, full equality assertion."""
    cfg = ExperimentConfig(instructions=min(ExperimentConfig().instructions,
                                            1500))
    workloads = selected_workloads()[:6]
    report = once(lambda: campaign_throughput(config=cfg,
                                              workloads=workloads))
    print("\n" + json.dumps(report, indent=2))
    assert report["results_identical"], "parallel run diverged from sequential"
    assert report["parallel"]["simulated_instructions"] == \
        report["sequential"]["simulated_instructions"]
    store = report["store"]
    assert store["results_identical"], "store-warm pass diverged from cold"
    assert store["warm_all_hits"], "warm pass missed the disk store"
    assert store["warm"]["store_writes"] == 0
    generated = report["generated"]
    assert generated["simulations"] == generated["count"] * len(MODELS)
    assert generated["sims_per_sec"] > 0
    assert generated["simulated_instructions"] > 0
    attribution = report["phase_attribution"]
    assert attribution["simulations"] > 0, "no multi-phase specs sampled"
    assert attribution["on_sims_per_sec"] > 0
    assert attribution["off_sims_per_sec"] > 0
    faults = report["fault_tolerance"]
    assert faults["results_identical"], "chaos recovery changed a result"
    assert faults["predicted_first_attempt_deaths"] >= 1
    assert faults["pool_breaks"] >= 1, "no worker death actually landed"
    assert faults["chaos_sims_per_sec"] > 0


def git_commit() -> str:
    """Short commit id of the benchmarked tree ("unknown" outside git)."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def bench_record(report: dict) -> dict:
    """The compact machine-readable trend record for BENCH_throughput.json.

    Schema v5: commit, jobs, grid, sims/sec (engine speed), the store's
    cold-vs-warm wall clocks with hit/miss/write counters (cache
    effectiveness), the generated-suite build/sim rates (wgen
    trajectory), the phase-attribution on-vs-off delta (attribution
    overhead trajectory), the fault-tolerance faults-off-vs-chaos delta
    (recovery overhead trajectory), and the environment (``REPRO_JOBS``,
    cpu count) — enough for a dashboard to plot every trajectory across
    PRs, and to tell an engine regression from a cache regression from
    a generator, attribution, or recovery-path regression, without
    re-parsing the full report.
    """
    sequential = report["sequential"]
    parallel = report["parallel"]
    store = report["store"]
    generated = report["generated"]
    attribution = report["phase_attribution"]
    faults = report["fault_tolerance"]
    return {
        "schema": "bench_throughput/v5",
        "commit": git_commit(),
        "jobs": {"sequential": 1, "parallel": parallel["jobs"]},
        "grid": {
            "models": report["models"],
            "workloads": report["workloads"],
            "instructions_per_kernel": report["instructions_per_kernel"],
            "simulations": sequential["simulations"],
        },
        "env": {
            "repro_jobs": report["repro_jobs_env"],
            "cpu_count": report["cpu_count"],
        },
        "sims_per_sec": {
            "jobs1": round(sequential["simulations"]
                           / sequential["wall_clock_s"], 2),
            "jobsN": round(parallel["simulations"]
                           / parallel["wall_clock_s"], 2),
        },
        "instructions_per_s": {
            "jobs1": sequential["instructions_per_s"],
            "jobsN": parallel["instructions_per_s"],
        },
        "wall_clock_s": {
            "jobs1": sequential["wall_clock_s"],
            "jobsN": parallel["wall_clock_s"],
        },
        "store": {
            "cold_wall_s": store["cold"]["wall_clock_s"],
            "warm_wall_s": store["warm"]["wall_clock_s"],
            "warm_speedup": store["warm_speedup"],
            "cold_hits": store["cold"]["store_hits"],
            "cold_misses": store["cold"]["store_misses"],
            "cold_writes": store["cold"]["store_writes"],
            "warm_hits": store["warm"]["store_hits"],
            "warm_all_hits": store["warm_all_hits"],
            "results_identical": store["results_identical"],
        },
        "generated": {
            "count": generated["count"],
            "seed": generated["seed"],
            "simulations": generated["simulations"],
            "build_wall_s": generated["build_wall_s"],
            "wall_clock_s": generated["wall_clock_s"],
            "sims_per_sec": generated["sims_per_sec"],
            "instructions_per_s": generated["instructions_per_s"],
        },
        "phase_attribution": {
            "simulations": attribution["simulations"],
            "on_wall_s": attribution["on_wall_s"],
            "off_wall_s": attribution["off_wall_s"],
            "on_sims_per_sec": attribution["on_sims_per_sec"],
            "off_sims_per_sec": attribution["off_sims_per_sec"],
            "overhead_pct": attribution["overhead_pct"],
        },
        "fault_tolerance": {
            "simulations": faults["simulations"],
            "jobs": faults["jobs"],
            "death_rate": faults["death_rate"],
            "predicted_first_attempt_deaths":
                faults["predicted_first_attempt_deaths"],
            "clean_wall_s": faults["clean_wall_s"],
            "chaos_wall_s": faults["chaos_wall_s"],
            "clean_sims_per_sec": faults["clean_sims_per_sec"],
            "chaos_sims_per_sec": faults["chaos_sims_per_sec"],
            "recovery_overhead_pct": faults["recovery_overhead_pct"],
            "pool_breaks": faults["pool_breaks"],
            "retries": faults["retries"],
            "results_identical": faults["results_identical"],
        },
        "results_identical": report["results_identical"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="parallel worker count (default REPRO_JOBS/CPUs)")
    parser.add_argument("-n", "--instructions", type=int, default=None,
                        help="dynamic instructions per kernel")
    parser.add_argument("-w", "--workloads", type=str, default=None,
                        help="comma-separated workload refs (kernel names, "
                             "@specfile.json, gen:N[:SEED])")
    parser.add_argument("-o", "--output", type=str, default=None,
                        help="also write the compact trend record "
                             "(commit, jobs, grid, sims/sec, store) here")
    parser.add_argument("--store-dir", type=str, default=None,
                        help="persistent store directory for the cold/warm "
                             "phase (default: ephemeral tmpdir; pass a path "
                             "to make second invocations store-hot)")
    parser.add_argument("--store-only", action="store_true",
                        help="skip the jobs=1-vs-N comparison and measure "
                             "only the store cold/warm phase "
                             "(`make bench-warm`)")
    args = parser.parse_args(argv)
    config = ExperimentConfig()
    if args.instructions is not None:
        import dataclasses

        config = dataclasses.replace(config, instructions=args.instructions)
    workloads = (resolve_workloads(
        w.strip() for w in args.workloads.split(",") if w.strip())
        if args.workloads else None)
    report = campaign_throughput(args.jobs, config, workloads,
                                 store_dir=args.store_dir,
                                 store_only=args.store_only)
    json.dump(report, sys.stdout, indent=2)
    print()
    if args.output:
        if args.store_only:
            print("--output needs the full run (drop --store-only); "
                  "skipping trend record", file=sys.stderr)
        else:
            with open(args.output, "w") as handle:
                json.dump(bench_record(report), handle, indent=1,
                          sort_keys=True)
                handle.write("\n")
            print(f"trend record written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
