"""Figure 8: store-buffer access disciplines.

Compares indexed-limited-forwarding, address-hash chaining, and an
idealised fully-associative search inside iCFP, asserting the paper's
findings: chaining closely tracks the associative ideal (<1% per
benchmark in the paper; we allow a slightly wider band), and the
indexed/limited scheme trails, while excess chain hops per load stay
low (<0.5 everywhere, <0.05 for most benchmarks).
"""

from repro.harness import figure8, format_figure8
from repro.harness.figures import FIGURE8_KINDS


def test_figure8_store_buffer(once):
    fig = once(figure8)
    print("\n" + format_figure8(fig))

    indexed, chained, assoc = (k[0] for k in FIGURE8_KINDS)

    # Chaining tracks the fully-associative ideal closely.
    for workload in list(fig.workloads) + ["gmean"]:
        delta = fig.percent[assoc][workload] - fig.percent[chained][workload]
        assert delta < 5.0, (workload, delta)

    # The indexed/limited-forwarding scheme never beats chaining (gmean).
    assert fig.percent[chained]["gmean"] >= fig.percent[indexed]["gmean"] - 1.0

    # Excess store-buffer hops per load stay small (Section 3.2).
    assert all(h < 0.5 for h in fig.hops_per_load.values())
    low = sum(1 for h in fig.hops_per_load.values() if h < 0.05)
    assert low >= len(fig.hops_per_load) // 2
