"""Figure 6: speedup sensitivity to L2 hit latency.

Sweeps the L2 hit latency over the six Figure 6 configurations and
asserts the paper's two findings:

* at every latency, iCFP advancing on *all* misses at least matches
  iCFP advancing on L2 misses only ("advancing on any data miss is
  profitable at virtually any L2 hit latency");
* Runahead configurations that advance under data-cache misses gain
  relative attractiveness as the L2 slows.

The paper plots equake and the SPEC mean; a representative kernel
subset keeps the sweep tractable (4 latencies x 6 configs x kernels).
"""

from repro.harness import figure6, format_figure6

SWEEP_WORKLOADS = ("equake_like", "art_like", "gap_like", "apsi_like",
                   "gzip_like", "twolf_like")
LATENCIES = (10, 20, 35, 50)


def test_figure6_latency_sensitivity(once):
    fig = once(lambda: figure6(latencies=LATENCIES,
                               workloads=SWEEP_WORKLOADS))
    print("\n" + format_figure6(fig))

    # iCFP-all >= iCFP-L2 across the sweep.
    for latency in LATENCIES:
        assert (fig.percent["iCFP-all"][latency]
                >= fig.percent["iCFP-L2"][latency] - 1.0), latency

    # iCFP-all beats every Runahead configuration at every latency.
    for latency in LATENCIES:
        for ra in ("RA-L2", "RA-L2/D$pri", "RA-all"):
            assert (fig.percent["iCFP-all"][latency]
                    >= fig.percent[ra][latency] - 1.0), (latency, ra)

    # The in-order reference degrades monotonically as the L2 slows.
    io = fig.percent["in-order"]
    assert io[10] > io[20] > io[35] > io[50]

    # Advancing under D$ misses helps RA more at slow L2s than fast ones.
    gap_fast = (fig.percent["RA-L2/D$pri"][LATENCIES[0]]
                - fig.percent["RA-L2"][LATENCIES[0]])
    gap_slow = (fig.percent["RA-L2/D$pri"][LATENCIES[-1]]
                - fig.percent["RA-L2"][LATENCIES[-1]])
    assert gap_slow >= gap_fast - 2.0
