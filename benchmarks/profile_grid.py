"""cProfile the Figure 5 sequential grid: where do the cycles go?

``make profile`` runs the full models x workloads grid once under
cProfile (memo tiers off, traces pre-materialised, one untimed prime
pass — the same protocol as the bench's engine phase, so the profile
answers for the number ``make bench`` records) and writes the top-25
functions by cumulative time to ``profile.out``, top-25 by total time
appended for the flat view.  The same table is echoed to stdout.

The point is a one-command answer to "what should the next perf PR
attack": the checked-in bench record says how fast the grid is, this
says *why*.
"""

from __future__ import annotations

import argparse
import cProfile
import dataclasses
import io
import os
import pstats
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.exec import TRACE_CACHE, run_jobs  # noqa: E402
from repro.harness.experiment import (  # noqa: E402
    MODELS,
    ExperimentConfig,
    selected_workloads,
    suite_jobs,
)
from repro.wgen import resolve_workloads  # noqa: E402

TOP = 25


def profile_grid(config: ExperimentConfig, workloads, top: int = TOP) -> str:
    """One profiled sequential pass over the grid; returns the report text."""
    specs = suite_jobs(MODELS, workloads, config)
    for workload in workloads:
        TRACE_CACHE.get(workload, config.instructions)
    run_jobs(specs, workers=1, memo=False, store=False)  # prime

    profiler = cProfile.Profile()
    profiler.enable()
    run_jobs(specs, workers=1, memo=False, store=False)
    profiler.disable()

    buffer = io.StringIO()
    buffer.write(f"# Figure 5 grid under cProfile: {len(specs)} simulations, "
                 f"{config.instructions} instructions/kernel\n")
    stats = pstats.Stats(profiler, stream=buffer)
    buffer.write(f"\n## top {top} by cumulative time\n")
    stats.sort_stats("cumulative").print_stats(top)
    buffer.write(f"\n## top {top} by total (self) time\n")
    stats.sort_stats("tottime").print_stats(top)
    return buffer.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-n", "--instructions", type=int, default=None,
                        help="dynamic instructions per kernel")
    parser.add_argument("-w", "--workloads", type=str, default=None,
                        help="comma-separated workload refs")
    parser.add_argument("--top", type=int, default=TOP,
                        help="rows per ranking (default 25)")
    parser.add_argument("-o", "--output", type=str, default="profile.out",
                        help="report destination (default profile.out)")
    args = parser.parse_args(argv)
    config = ExperimentConfig()
    if args.instructions is not None:
        config = dataclasses.replace(config, instructions=args.instructions)
    workloads = (resolve_workloads(
        w.strip() for w in args.workloads.split(",") if w.strip())
        if args.workloads else selected_workloads())
    # Hermetic like the bench: warm-state checkpoints must not resolve
    # a developer's .repro-cache/ mid-profile.
    os.environ["REPRO_STORE"] = "0"
    report = profile_grid(config, workloads, args.top)
    sys.stdout.write(report)
    with open(args.output, "w") as handle:
        handle.write(report)
    print(f"\nprofile written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
