"""Section 5.3: area overheads of the four schemes at 45 nm.

The analytical model (CACTI substitute) must land near the paper's
numbers — Runahead 0.12, Multipass 0.22, SLTP 0.36, iCFP 0.26 mm^2 —
and preserve the orderings the paper argues from: iCFP costs less than
SLTP while outperforming it, and all overheads are small against a
4-8 mm^2 two-way in-order core.
"""

from repro.area import (
    CORE_AREA_RANGE_MM2,
    PAPER_AREA_MM2,
    overhead_fraction_of_core,
    scheme_area,
)
from repro.harness import format_area_table


def test_area_overheads(once):
    table = once(format_area_table)
    print("\n" + table)

    for scheme, paper in PAPER_AREA_MM2.items():
        model = scheme_area(scheme)
        assert abs(model - paper) / paper < 0.15, (scheme, model, paper)

    # Orderings the paper argues from.
    assert scheme_area("runahead") < scheme_area("multipass")
    assert scheme_area("icfp") < scheme_area("sltp")

    # Small relative to the core (4-8 mm^2).
    lo, hi = CORE_AREA_RANGE_MM2
    for scheme in PAPER_AREA_MM2:
        assert overhead_fraction_of_core(scheme, lo) < 0.10
