"""Shared helpers for the phase-attribution test layer."""

import pytest


@pytest.fixture(scope="session")
def stats_dict():
    """Full-stats dictionary converter (every recorded statistic).

    Mirrors the golden-regression fixture shape so "byte-identical
    stats" means the same thing here as in tests/engine.
    """
    scalars = (
        "cycles", "instructions", "loads", "stores", "branches",
        "branch_mispredicts", "l1d_misses", "l2_misses", "secondary_misses",
        "advance_entries", "advance_instructions", "rally_passes",
        "rally_instructions", "slice_captures", "squashes",
        "simple_runahead_entries", "store_forward_hits", "store_forward_hops",
    )
    stall_fields = (
        "src_wait", "waw_wait", "port", "store_buffer_full", "mshr_full",
        "frontend", "slice_buffer_full", "poisoned_store_addr",
    )

    def convert(stats) -> dict:
        out = {name: getattr(stats, name) for name in scalars}
        out["stalls"] = {name: getattr(stats.stalls, name)
                         for name in stall_fields}
        for meter_name in ("d_mlp", "l2_mlp"):
            meter = getattr(stats, meter_name)
            out[meter_name] = {"count": meter.count,
                               "average": repr(meter.average())}
        return out

    return convert
