"""The conservation law of phase attribution.

Phase buckets are mirrored increments of the aggregate counters, so for
every model and every composed workload each per-phase counter must sum
*byte-exactly* to the matching whole-run aggregate — cycles partition
the run, commits/misses/advance/rally work partition their totals.
Single-phase named kernels must report exactly one bucket that *is*
the aggregate (so attribution changes nothing about today's numbers:
no golden-fixture drift, no ENGINE_VERSION bump).
"""

import pytest

from repro.core.icfp import ICFPFeatures
from repro.exec.cache import TRACE_CACHE
from repro.harness.experiment import MODELS, ExperimentConfig, run_model
from repro.pipeline.stats import PHASE_COUNTERS
from repro.wgen import WorkloadSpec, generate_suite
from repro.wgen.spec import PhaseSpec
from repro.workloads.builders import KernelParams

INSTRUCTIONS = 1500

#: A seeded generated suite plus a handcrafted 3-phase stressor whose
#: noisy branches exercise the iCFP squash path (squashes un-count
#: committed work from aggregates *and* buckets; conservation must
#: survive them).
def conservation_workloads() -> list[WorkloadSpec]:
    suite = generate_suite(4, 42)
    stressor = WorkloadSpec(
        name="conservation_stressor",
        phases=(
            PhaseSpec("pointer_chase",
                      KernelParams(iterations=24, footprint_bytes=1 << 20)),
            PhaseSpec("hash_join",
                      KernelParams(iterations=24,
                                   unpredictable_branches=0.6,
                                   footprint_bytes=1 << 20)),
            PhaseSpec("streaming",
                      KernelParams(iterations=24, stores=True,
                                   footprint_bytes=1 << 20)),
        ),
    )
    return list(suite) + [stressor]


def multi_phase_workloads():
    return [s for s in conservation_workloads() if len(s.phases) > 1]


def assert_conserved(result, expected_phases: int, context: str) -> None:
    phases = result.phase_stats
    assert phases is not None and len(phases) == expected_phases, context
    for counter in PHASE_COUNTERS:
        bucketed = sum(getattr(p, counter) for p in phases)
        aggregate = getattr(result.stats, counter)
        assert bucketed == aggregate, (
            f"{context}: {counter} buckets sum to {bucketed}, "
            f"aggregate is {aggregate}"
        )


@pytest.mark.parametrize("model", MODELS)
def test_generated_suite_conserves_every_counter(model):
    config = ExperimentConfig(instructions=INSTRUCTIONS)
    assert multi_phase_workloads(), "seed produced no multi-phase specs"
    for spec in conservation_workloads():
        trace = TRACE_CACHE.get(spec, INSTRUCTIONS)
        result = run_model(model, trace, config)
        assert_conserved(result, len(spec.phases), f"{spec.name}/{model}")


def test_conservation_survives_icfp_squashes():
    """The stressor must actually squash on iCFP — and stay conserved."""
    config = ExperimentConfig(
        instructions=INSTRUCTIONS,
        icfp_features=ICFPFeatures(advance_on="all"),
    )
    spec = conservation_workloads()[-1]
    trace = TRACE_CACHE.get(spec, INSTRUCTIONS)
    result = run_model("icfp", trace, config)
    assert result.stats.squashes > 0, (
        "stressor no longer squashes; pick noisier phases so the "
        "checkpoint-restore path stays covered"
    )
    assert_conserved(result, len(spec.phases), "stressor/icfp")


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("kernel",
                         ("mcf_like", "mesa_like", "equake_like", "gzip_like"))
def test_named_kernels_report_one_bucket_equal_to_aggregates(model, kernel):
    config = ExperimentConfig(instructions=INSTRUCTIONS)
    trace = TRACE_CACHE.get(kernel, INSTRUCTIONS)
    result = run_model(model, trace, config)
    assert_conserved(result, 1, f"{kernel}/{model}")
    bucket = result.phase_stats[0]
    assert bucket.name == kernel
    assert bucket.cycles == result.stats.cycles
    assert bucket.instructions == result.stats.instructions


def test_cycle_buckets_partition_the_run():
    """Cycles are spans: non-negative per bucket, total exactly cycles."""
    config = ExperimentConfig(instructions=INSTRUCTIONS)
    for spec in multi_phase_workloads():
        trace = TRACE_CACHE.get(spec, INSTRUCTIONS)
        for model in MODELS:
            result = run_model(model, trace, config)
            assert all(p.cycles >= 0 for p in result.phase_stats)
            assert sum(p.cycles for p in result.phase_stats) == result.cycles


def test_externally_built_programs_opt_out():
    """A Program constructed without phase regions reports no buckets."""
    from repro.functional import run_program
    from repro.isa.program import Program
    from repro.isa.assembler import Assembler
    from repro.isa.registers import R

    a = Assembler("bare")
    a.li(R.r1, 1)
    a.halt()
    assembled = a.assemble()
    bare = Program(instructions=assembled.instructions,
                   labels=assembled.labels, data=assembled.data,
                   name="bare")
    trace = run_program(bare)
    result = run_model("in-order", trace, ExperimentConfig(instructions=100))
    assert result.phase_stats is None
