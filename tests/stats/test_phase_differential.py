"""Differential probe: phase attribution is observation-only.

Running the identical trace with attribution off (no phase regions),
with the normal single whole-program region, and with a *forced*
synthetic multi-region split must produce byte-identical cycles and
full stats on every model — the forced split drives the live
per-commit bucketing path on kernels that would otherwise synthesise
their one bucket at run end, so the probe covers the hot path, not
just the fallback.

The full 24-kernel x 5-model grid carries the `slow` marker (it ignores
the smoke fast profile by design); a 4-kernel slice runs in every
profile so the invariant never goes unwatched.
"""

import pytest

from repro.exec.cache import TRACE_CACHE
from repro.harness.experiment import MODELS, ExperimentConfig, run_model
from repro.wgen import generate_suite
from repro.workloads import ALL_KERNELS

INSTRUCTIONS = 800
SMOKE_KERNELS = ("mcf_like", "mesa_like", "equake_like", "gzip_like")


def split_regions(program, pieces: int = 2):
    """Synthetic equal static splits (attribution must not care)."""
    n = len(program.instructions)
    bounds = [round(i * n / pieces) for i in range(pieces + 1)]
    return tuple((f"s{i}", bounds[i], bounds[i + 1]) for i in range(pieces))


def assert_attribution_invisible(trace, model, config, stats_dict,
                                 context: str) -> None:
    plain = run_model(model, trace, config)
    off = run_model(model, trace.with_phase_regions(()), config)
    forced = run_model(
        model, trace.with_phase_regions(split_regions(trace.program, 3)),
        config)
    reference = stats_dict(plain.stats)
    assert stats_dict(off.stats) == reference, f"{context}: off != on"
    assert stats_dict(forced.stats) == reference, f"{context}: forced split"
    assert off.phase_stats is None
    assert len(forced.phase_stats) == 3


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("kernel", SMOKE_KERNELS)
def test_attribution_is_observation_only_smoke_slice(model, kernel,
                                                     stats_dict):
    config = ExperimentConfig(instructions=INSTRUCTIONS)
    trace = TRACE_CACHE.get(kernel, INSTRUCTIONS)
    assert_attribution_invisible(trace, model, config, stats_dict,
                                 f"{kernel}/{model}")


@pytest.mark.slow
@pytest.mark.parametrize("model", MODELS)
def test_attribution_is_observation_only_full_grid(model, stats_dict):
    """All 24 named kernels (fixed budget — ignores the smoke profile)."""
    config = ExperimentConfig(instructions=INSTRUCTIONS)
    for kernel in ALL_KERNELS:
        trace = TRACE_CACHE.get(kernel, INSTRUCTIONS)
        assert_attribution_invisible(trace, model, config, stats_dict,
                                     f"{kernel}/{model}")


@pytest.mark.parametrize("model", MODELS)
def test_attribution_is_observation_only_on_generated_phases(model,
                                                             stats_dict):
    """Composed multi-phase programs: real regions on vs stripped off."""
    config = ExperimentConfig(instructions=INSTRUCTIONS)
    specs = [s for s in generate_suite(4, 42) if len(s.phases) > 1]
    assert specs
    for spec in specs:
        trace = TRACE_CACHE.get(spec, INSTRUCTIONS)
        on = run_model(model, trace, config)
        off = run_model(model, trace.with_phase_regions(()), config)
        assert stats_dict(on.stats) == stats_dict(off.stats), spec.name
        assert len(on.phase_stats) == len(spec.phases)
        assert off.phase_stats is None
