"""Shared test configuration: a hermetic disk store per test.

The on-disk result store (:mod:`repro.exec.store`) is on by default, so
without this fixture the suite would read — and pollute — whatever
``.repro-cache/`` the developer has accumulated, making test outcomes
depend on machine state.  Every test instead gets a private store root
under its own ``tmp_path``; tests that want the store off entirely set
``REPRO_STORE=0`` via ``monkeypatch`` on top of this.
"""

import pytest


@pytest.fixture(autouse=True)
def hermetic_result_store(tmp_path, monkeypatch):
    """Point REPRO_CACHE_DIR at a per-test tmpdir; neutralise REPRO_STORE.

    Fault-tolerance knobs are likewise neutralised: a developer running
    the suite under ``REPRO_FAULTS`` (or retry/timeout overrides) must
    not change test outcomes — chaos is opt-in per test.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_JOB_TIMEOUT", raising=False)
    # Batching is byte-identical by contract, but tests assert exact
    # scheduling counters (attempts, computed) — keep it opt-in per test.
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    # The lease fabric is likewise opt-in: a developer's fabric/TTL
    # settings must not reroute (or retime) test campaigns.
    monkeypatch.delenv("REPRO_FABRIC_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_LEASE_TTL", raising=False)
    monkeypatch.delenv("REPRO_HEARTBEAT", raising=False)
    # Telemetry is observation-only, but a developer's REPRO_TRACE must
    # not scatter obs logs through test stores (or flip report output).
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
    monkeypatch.delenv("REPRO_REPORT", raising=False)
    # A stray activation (or published counters) from a prior in-process
    # test must not leak into this one's registry or logs.
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    obs_trace.deactivate()
    obs_metrics.REGISTRY.clear()
    yield
    obs_trace.deactivate()
    obs_metrics.REGISTRY.clear()
