"""Unit tests for the register namespace."""

import pytest

from repro.isa.registers import (
    FP_BASE,
    NUM_REGS,
    R,
    fp_reg,
    int_reg,
    is_fp,
    parse_reg,
    reg_name,
)


def test_int_reg_range():
    assert int_reg(0) == 0
    assert int_reg(31) == 31
    with pytest.raises(ValueError):
        int_reg(32)
    with pytest.raises(ValueError):
        int_reg(-1)


def test_fp_reg_range():
    assert fp_reg(0) == FP_BASE
    assert fp_reg(15) == FP_BASE + 15
    with pytest.raises(ValueError):
        fp_reg(16)


def test_is_fp():
    assert not is_fp(int_reg(31))
    assert is_fp(fp_reg(0))


def test_reg_name_round_trip():
    for idx in range(NUM_REGS):
        assert parse_reg(reg_name(idx)) == idx


def test_reg_name_rejects_out_of_range():
    with pytest.raises(ValueError):
        reg_name(NUM_REGS)


def test_parse_reg_rejects_garbage():
    for bad in ("x3", "r", "rx", "", "f99"):
        with pytest.raises(ValueError):
            parse_reg(bad)


def test_namespace_attribute_access():
    assert R.r7 == 7
    assert R.f2 == FP_BASE + 2
    with pytest.raises(AttributeError):
        _ = R.q1
