"""Unit tests for the Program container."""

import pytest

from repro.isa import Assembler, R, pc_of, index_of
from repro.isa.program import CODE_BASE, Program


def test_pc_index_round_trip():
    for i in (0, 1, 7, 1000):
        assert index_of(pc_of(i)) == i
    assert pc_of(0) == CODE_BASE


def test_at_pc_and_label_pc():
    a = Assembler()
    a.nop()
    a.label("here")
    a.halt()
    prog = a.assemble()
    assert prog.label_pc("here") == pc_of(1)
    assert prog.at_pc(pc_of(1)).op.value == "halt"


def test_unaligned_data_rejected():
    with pytest.raises(ValueError):
        Program(data={0x1001: 5})


def test_hot_region_round_trip():
    a = Assembler()
    a.hot_region(0x1000_0, 0x2000_0)
    a.halt()
    prog = a.assemble()
    assert prog.hot_region == (0x1000_0, 0x2000_0)


def test_default_hot_region_is_none():
    a = Assembler()
    a.halt()
    assert a.assemble().hot_region is None


def test_len_counts_instructions():
    a = Assembler()
    for _ in range(5):
        a.nop()
    a.halt()
    assert len(a.assemble()) == 6
