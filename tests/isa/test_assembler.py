"""Unit tests for the builder and text assemblers."""

import pytest

from repro.isa import (
    Assembler,
    AssemblyError,
    Opcode,
    OpClass,
    R,
    assemble_text,
    pc_of,
)


def test_builder_simple_loop():
    a = Assembler("loop")
    a.li(R.r1, 0x2000)
    a.li(R.r2, 0x2040)
    a.label("loop")
    a.ld(R.r3, R.r1, 0)
    a.addi(R.r1, R.r1, 8)
    a.bne(R.r1, R.r2, "loop")
    a.halt()
    prog = a.assemble()
    assert len(prog) == 6
    assert prog.labels["loop"] == 2
    assert prog.label_pc("loop") == pc_of(2)
    assert prog.instructions[2].op is Opcode.LD
    assert prog.instructions[4].target == "loop"


def test_builder_duplicate_label_rejected():
    a = Assembler()
    a.label("x")
    a.nop()
    with pytest.raises(AssemblyError):
        a.label("x")


def test_builder_undefined_label_rejected():
    a = Assembler()
    a.j("nowhere")
    with pytest.raises(AssemblyError):
        a.assemble()


def test_builder_data_words():
    a = Assembler()
    a.words(0x1000_0, [1, 2, 3])
    a.word(0x2000_0, 9)
    a.halt()
    prog = a.assemble()
    assert prog.data[0x1000_0] == 1
    assert prog.data[0x1000_0 + 16] == 3
    assert prog.data[0x2000_0] == 9


def test_store_operand_order():
    """For stores, srcs = (base, data) so dependence tracking can tell
    address inputs from data inputs."""
    a = Assembler()
    a.st(R.r5, R.r9, 16)
    inst = a.assemble().instructions[0]
    assert inst.srcs == (R.r9, R.r5)
    assert inst.imm == 16


def test_fmadd_three_sources():
    a = Assembler()
    a.fmadd(R.f0, R.f1, R.f2, R.f3)
    inst = a.assemble().instructions[0]
    assert inst.srcs == (R.f1, R.f2, R.f3)
    assert inst.opclass is OpClass.FP_MUL


def test_text_assembler_parses_program():
    prog = assemble_text(
        """
        # simple strided sum
        li r1, 0x2000
        li r2, 0
        li r4, 0x2080
        loop:
            ld r3, r1, 0
            add r2, r2, r3
            addi r1, r1, 8
            bne r1, r4, loop
        halt
        """
    )
    assert prog.labels["loop"] == 3
    assert prog.instructions[3].op is Opcode.LD
    assert prog.instructions[-1].op is Opcode.HALT


def test_text_assembler_label_on_same_line():
    prog = assemble_text("start: nop\n j start")
    assert prog.labels["start"] == 0
    assert prog.instructions[1].op is Opcode.J


def test_text_assembler_rejects_unknown_mnemonic():
    with pytest.raises(AssemblyError):
        assemble_text("frobnicate r1, r2")


def test_text_assembler_rejects_bad_operand():
    with pytest.raises(AssemblyError):
        assemble_text("add r1, r2")  # missing operand


def test_text_all_alu_forms():
    prog = assemble_text(
        """
        add r1, r2, r3
        sub r1, r2, r3
        and r1, r2, r3
        or  r1, r2, r3
        xor r1, r2, r3
        slt r1, r2, r3
        shl r1, r2, r3
        shr r1, r2, r3
        mul r1, r2, r3
        addi r1, r2, -5
        andi r1, r2, 0xff
        ori  r1, r2, 0x10
        slti r1, r2, 7
        shli r1, r2, 3
        fadd f1, f2, f3
        fsub f1, f2, f3
        fmul f1, f2, f3
        fmadd f1, f2, f3, f4
        cvtif f1, r2
        cvtfi r1, f2
        ldf f1, r2, 8
        stf f1, r2, 8
        jal r31, end
        jr r31
        end: halt
        """
    )
    assert len(prog) == 25


def test_listing_contains_labels_and_pcs():
    a = Assembler()
    a.label("entry")
    a.nop()
    a.halt()
    listing = a.assemble().listing()
    assert "entry:" in listing
    assert "0x1000" in listing
