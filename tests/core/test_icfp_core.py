"""Integration tests for the iCFP engine on small programs.

Includes the paper's Figure 3 worked example (parallel-miss scenario
with two dependence chains and the WAW-gated merge) reproduced with
real addresses.
"""

import pytest

from repro.baselines.inorder import InOrderCore
from repro.core.icfp import ADVANCE, ICFPCore, ICFPFeatures, NORMAL
from repro.functional import run_program
from repro.isa import Assembler, R, assemble_text
from repro.pipeline import MachineConfig

# Cold addresses, all in distinct L1/L2 lines.
A1, B1, A2, B2 = 0x10000, 0x20000, 0x30000, 0x40000


def warm(core, addrs):
    """Pre-install data lines directly in the tag arrays (no MSHR/bus
    side effects, unlike issuing real accesses before cycle 0)."""
    h = core.hierarchy
    for addr in addrs:
        h.l2.insert(h.config.l2.line_addr(addr))
        h.l1d.insert(h.config.l1d.line_addr(addr))


def icfp(trace, features=None, **cfg_over):
    config = MachineConfig.hpca09(**cfg_over)
    feats = features if features is not None else ICFPFeatures(validate=True)
    return ICFPCore(trace, config=config, features=feats)


def run_and_validate(core):
    result = core.run()
    problems = core.validate_final_state()
    assert not problems, "\n".join(problems)
    assert core.mode == NORMAL
    return result


def figure3_program():
    """The Figure 3 dataflow pattern with line-separated addresses."""
    a = Assembler("figure3")
    a.word(A1, 9)
    a.word(B1, 2)
    a.word(A2, 3)
    a.word(B2, 4)
    a.li(R.r1, A1)
    a.li(R.r2, B1)
    a.ld(R.r3, R.r1, 0)       # seq 0: miss (A1 cold)
    a.ld(R.r4, R.r2, 0)       # seq 1: hit  (B1 warm) -> 2
    a.mul(R.r4, R.r3, R.r4)   # seq 2: poisoned via r3
    a.st(R.r4, R.r1, 0)       # seq 3: data-poisoned store
    a.li(R.r1, A2)            # seq 4
    a.li(R.r2, B2)            # seq 5
    a.ld(R.r3, R.r1, 0)       # seq 6: hit  (A2 warm) -> 3
    a.ld(R.r4, R.r2, 0)       # seq 7: miss (B2 cold)
    a.mul(R.r4, R.r3, R.r4)   # seq 8: poisoned via r4
    a.st(R.r4, R.r1, 0)       # seq 9: data-poisoned store
    a.halt()
    return a.assemble()


def test_figure3_worked_example():
    trace = run_program(figure3_program())
    core = icfp(trace)
    warm(core, [B1, A2])
    result = run_and_validate(core)

    # One advance episode, six sliced instructions, two rally passes.
    assert core.stats.advance_entries == 1
    assert core.stats.slice_captures == 6
    assert core.stats.rally_passes == 2

    # Architectural outcome of the merge (Figure 3c).
    assert core.main_rf.values[R.r4] == 12
    assert core.committed_memory[A1] == 18
    assert core.committed_memory[A2] == 12
    assert result.instructions == len(trace)


def test_figure3_waw_gating_observable():
    """During the first rally, r3/r4 writes must be suppressed because
    younger advance instructions (seq 6/8) are the last writers."""
    trace = run_program(figure3_program())
    core = icfp(trace)
    warm(core, [B1, A2])
    # Drive manually until the first rally pass has completed.
    while core.stats.rally_passes < 1 or core.rally_active:
        core.step_cycle()
        if core.done():
            break
    # After the first rally: r3 still holds seq-6's value (3), and r4 is
    # still poisoned (its last writer, seq 8, waits on the second miss).
    assert core.main_rf.values[R.r3] == 3
    assert core.main_rf.poison[R.r4] != 0
    core.run()
    assert not core.validate_final_state()


def test_no_miss_program_never_advances():
    trace = run_program(assemble_text(
        """
        li r1, 5
        li r2, 6
        add r3, r1, r2
        mul r4, r3, r1
        halt
        """
    ))
    core = icfp(trace)
    result = run_and_validate(core)
    assert core.stats.advance_entries == 0
    assert result.instructions == 5


def test_lone_miss_commits_independents_under_it():
    """Figure 1a: iCFP commits miss-independent work under a lone miss
    and re-executes only the two-instruction slice."""
    text = f"""
        li r1, {A1}
        ld r2, r1, 0
        addi r3, r2, 1
    """ + "\n".join(["addi r4, r4, 1"] * 60) + "\nhalt"
    trace = run_program(assemble_text(text))
    core = icfp(trace)
    result = run_and_validate(core)
    assert core.stats.advance_entries == 1
    assert core.stats.slice_captures == 2  # the load and its use
    assert core.stats.rally_instructions >= 2

    base = InOrderCore(run_program(assemble_text(text)),
                       config=MachineConfig.hpca09()).run()
    assert result.cycles < base.cycles  # filler hidden under the miss


def test_independent_misses_overlap():
    """Figure 1b: stall-on-use in-order serialises use-miss pairs; iCFP
    overlaps all of them."""
    a = Assembler("indep")
    addrs = [0x50000 + i * 0x4000 for i in range(8)]
    for i, addr in enumerate(addrs):
        a.word(addr, i)
        a.li(R.r1, addr)
        a.ld(R.r2, R.r1, 0)
        a.add(R.r3, R.r3, R.r2)  # immediate use forces in-order stall
    a.halt()
    prog = a.assemble()

    base = InOrderCore(run_program(prog), config=MachineConfig.hpca09()).run()
    core = icfp(run_program(prog))
    result = run_and_validate(core)
    assert result.cycles < base.cycles * 0.45  # overlapped vs serialised
    assert core.stats.d_mlp.average() > 2.0


def test_dependent_miss_chain_multiple_rallies():
    """Figure 1c/d: a pointer chain forces one rally pass per link."""
    a = Assembler("chain")
    chain = [0x60000, 0x70000, 0x80000, 0x90000]
    for here, there in zip(chain, chain[1:]):
        a.word(here, there)
    a.word(chain[-1], 1234)
    a.li(R.r1, chain[0])
    for _ in range(len(chain)):
        a.ld(R.r1, R.r1, 0)
    a.addi(R.r2, R.r1, 0)
    a.halt()
    trace = run_program(a.assemble())
    core = icfp(trace)
    result = run_and_validate(core)
    assert core.main_rf.values[R.r2] == 1234
    assert core.stats.rally_passes >= len(chain) - 1
    assert core.stats.rallies_per_ki() > 0


def test_store_load_forwarding_under_miss():
    """A store under a miss forwards to a younger independent load via
    the chained store buffer (no cache write until commit)."""
    text = f"""
        li r5, {A1}
        li r6, 0x2000
        li r7, 77
        ld r2, r5, 0         # cold miss -> advance
        st r7, r6, 0         # independent store under the miss
        ld r8, r6, 0         # forwards from the store buffer
        addi r3, r2, 1       # miss-dependent
        halt
    """
    trace = run_program(assemble_text(text))
    core = icfp(trace)
    result = run_and_validate(core)
    assert core.stats.store_forward_hits >= 1
    assert core.committed_memory[0x2000] == 77
    assert core.main_rf.values[R.r8] == 77


def test_poisoned_data_store_forwards_poison():
    """A load forwarding from a miss-dependent store gets poisoned and
    rallies later with the correct value."""
    text = f"""
        li r5, {A1}
        li r6, 0x2000
        ld r2, r5, 0         # miss
        addi r2, r2, 1       # dependent
        st r2, r6, 0         # data-poisoned store
        ld r8, r6, 0         # forwards poison -> sliced
        addi r9, r8, 1       # dependent on the poisoned load
        halt
    """
    trace = run_program(assemble_text(text))
    core = icfp(trace)
    run_and_validate(core)
    assert core.main_rf.values[R.r8] == trace.final_state.regs[R.r8]
    assert core.main_rf.values[R.r9] == trace.final_state.regs[R.r9]
    assert core.committed_memory[0x2000] == trace.final_state.memory[0x2000]


def test_poisoned_address_store_falls_back_to_simple_runahead():
    text = f"""
        li r5, {A1}
        li r7, 99
        ld r2, r5, 0         # miss: r2 poisoned (value is {B1})
        st r7, r2, 0         # poisoned ADDRESS store
        addi r3, r7, 1       # would-be independent work
        halt
    """
    prog = assemble_text(text)
    prog.data[A1] = B1  # the chased pointer
    trace = run_program(prog)
    core = icfp(trace)
    run_and_validate(core)
    assert core.stats.simple_runahead_entries >= 1
    assert core.committed_memory[B1] == 99


def test_slice_buffer_overflow_falls_back_and_recovers():
    a = Assembler("overflow")
    a.word(A1, 5)
    a.li(R.r1, A1)
    a.ld(R.r2, R.r1, 0)            # miss
    for _ in range(40):            # long dependent chain: 40 slices
        a.addi(R.r2, R.r2, 1)
    a.addi(R.r3, R.r2, 0)
    a.halt()
    trace = run_program(a.assemble())
    core = icfp(trace, features=ICFPFeatures(validate=True, slice_entries=8))
    run_and_validate(core)
    assert core.stats.simple_runahead_entries >= 1
    assert core.main_rf.values[R.r3] == 45


def test_poisoned_mispredicted_branch_squashes():
    """A branch whose direction depends on missed data and whose
    prediction is wrong must squash to the checkpoint at rally."""
    text = f"""
        li r5, {A1}
        li r6, 1
        ld r2, r5, 0          # miss; loaded value is 7 (odd)
        andi r3, r2, 1
        beq r3, r6, taken     # poisoned branch, actually taken
        addi r9, r9, 500      # not executed architecturally
        taken:
        addi r9, r9, 3
        halt
    """
    prog = assemble_text(text)
    prog.data[A1] = 7
    trace = run_program(prog)
    core = icfp(trace)
    run_and_validate(core)
    assert core.stats.squashes >= 1
    assert core.main_rf.values[R.r9] == 3


def test_external_store_signature_squash():
    trace = run_program(assemble_text(
        f"""
        li r5, {A1}
        li r6, 0x2000
        ld r2, r5, 0          # miss -> advance
        ld r7, r6, 0          # vulnerable cache load under the miss
        addi r3, r2, 1
        halt
        """
    ))
    core = icfp(trace)
    warm(core, [0x2000])  # the vulnerable load must hit the cache
    # Run until we are in advance mode with the vulnerable load done.
    while core.mode != ADVANCE or core.signature.empty:
        core.step_cycle()
        assert not core.done()
    assert core.external_store(0x2000) is True
    assert core.stats.squashes == 1
    assert core.external_store(0x2000) is False  # back to normal mode
    core.run()
    assert not core.validate_final_state()


def test_l2_only_trigger_ignores_l1_misses():
    """advance_on='l2' must not advance past an L1-miss/L2-hit."""
    a = Assembler("l2only")
    a.word(A1, 5)
    a.li(R.r1, A1)
    a.ld(R.r2, R.r1, 0)
    a.addi(R.r3, R.r2, 1)
    a.halt()
    trace = run_program(a.assemble())
    core = icfp(trace, features=ICFPFeatures(validate=True, advance_on="l2"))
    # A1 resident in L2 but not in L1: an L1 miss that hits the L2.
    core.hierarchy.l2.insert(core.hierarchy.config.l2.line_addr(A1))
    run_and_validate(core)
    assert core.stats.advance_entries == 0  # L2 hit: no advance


def test_trace_truncation_mid_advance_still_terminates():
    text = f"""
        li r5, {A1}
        loop:
        ld r2, r5, 0
        addi r2, r2, 1
        j loop
    """
    trace = run_program(assemble_text(text), max_instructions=30)
    core = icfp(trace)
    result = core.run()
    assert core.mode == NORMAL
    assert result.instructions == 30
