"""Unit tests for the slice buffer."""

import pytest

from repro.core.slice_buffer import SliceBuffer, SliceEntry
from repro.functional.trace import DynInst
from repro.isa.instructions import Instruction, Opcode


def dyn(i=0):
    return DynInst(i, 0x1000 + 4 * i, Instruction(Opcode.ADD, dst=1, srcs=(2, 3)))


def entry(seq, poison=0b1):
    return SliceEntry(dyn(seq), seq, {}, poison, ssn_limit=0)


def test_append_and_order():
    sb = SliceBuffer(4)
    sb.append(entry(0))
    sb.append(entry(3))
    assert len(sb) == 2
    assert [e.seq for e in sb.entries()] == [0, 3]


def test_program_order_enforced():
    sb = SliceBuffer(4)
    sb.append(entry(5))
    with pytest.raises(ValueError):
        sb.append(entry(5))
    with pytest.raises(ValueError):
        sb.append(entry(2))


def test_capacity_overflow():
    sb = SliceBuffer(2)
    sb.append(entry(0))
    sb.append(entry(1))
    assert sb.full
    with pytest.raises(OverflowError):
        sb.append(entry(2))
    assert sb.overflows == 1


def test_sparse_unpoisoning_and_reclaim():
    """Processed entries are un-poisoned in place; head reclaim frees
    only the leading processed run (the paper's sparse slice buffer)."""
    sb = SliceBuffer(8)
    for seq in range(4):
        sb.append(entry(seq))
    entries = list(sb.entries())
    entries[1].active = False  # processed mid-buffer: not reclaimable
    assert sb.reclaim_head() == 0
    assert len(sb) == 4
    entries[0].active = False
    assert sb.reclaim_head() == 2  # seq 0 and the already-done seq 1
    assert [e.seq for e in sb.entries()] == [2, 3]


def test_active_entries_filtered_by_mask():
    sb = SliceBuffer(8)
    sb.append(entry(0, poison=0b01))
    sb.append(entry(1, poison=0b10))
    sb.append(entry(2, poison=0b11))
    assert [e.seq for e in sb.active_entries(0b01)] == [0, 2]
    assert [e.seq for e in sb.active_entries(0b10)] == [1, 2]
    assert len(sb.active_entries()) == 3


def test_repoisoning_an_entry():
    """Re-circulation re-poisons the existing slot (no re-enqueue)."""
    sb = SliceBuffer(4)
    sb.append(entry(0, poison=0b01))
    e = sb.entries()[0]
    e.poison = 0b10  # miss 0 returned but a dependent miss is pending
    assert sb.pending_poison() == 0b10
    assert len(sb) == 1


def test_flush():
    sb = SliceBuffer(4)
    sb.append(entry(0))
    sb.append(entry(1))
    assert sb.flush() == 2
    assert sb.empty
