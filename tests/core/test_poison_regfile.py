"""Unit tests for poison allocation and the checkpointed register file."""

import pytest

from repro.core.poison import PoisonAllocator
from repro.core.regfile import NO_WRITER, MainRegFile, ScratchRegFile
from repro.memory.mshr import MSHR


def mshr(line=1):
    return MSHR(line_addr=line, issue_cycle=0, ready_cycle=100)


# ----------------------------------------------------------------------
# poison allocator
# ----------------------------------------------------------------------
def test_round_robin_bits():
    pa = PoisonAllocator(4)
    masks = [pa.bit_for(mshr(i)) for i in range(6)]
    assert masks == [1, 2, 4, 8, 1, 2]  # wraps around


def test_same_mshr_same_bit():
    pa = PoisonAllocator(8)
    m = mshr()
    assert pa.bit_for(m) == pa.bit_for(m)
    assert pa.allocations == 1


def test_single_bit_allocator():
    pa = PoisonAllocator(1)
    assert pa.bit_for(mshr(1)) == 1
    assert pa.bit_for(mshr(2)) == 1
    assert pa.full_mask == 1


def test_mask_of_returned():
    pa = PoisonAllocator(8)
    a, b, c = mshr(1), mshr(2), mshr(3)
    pa.bit_for(a)
    pa.bit_for(b)
    assert pa.mask_of_returned([a, b]) == 0b11
    assert pa.mask_of_returned([c]) == 0  # never poisoned
    assert pa.mask_of_returned([]) == 0


def test_rejects_zero_bits():
    with pytest.raises(ValueError):
        PoisonAllocator(0)


# ----------------------------------------------------------------------
# main register file
# ----------------------------------------------------------------------
def test_normal_write_and_read():
    rf = MainRegFile()
    rf.write_normal(3, 42)
    assert rf.read(3) == (42, 0)


def test_r0_writes_dropped():
    rf = MainRegFile()
    rf.write_normal(0, 99)
    rf.write_advance(0, 99, seq=1)
    assert rf.read(0) == (0, 0)
    assert rf.last_writer[0] == NO_WRITER


def test_checkpoint_restore():
    rf = MainRegFile()
    rf.write_normal(1, 10)
    rf.checkpoint()
    rf.write_advance(1, 20, seq=0)
    rf.write_advance(2, 30, seq=1, poison_mask=0b1)
    rf.restore()
    assert rf.read(1) == (10, 0)
    assert rf.read(2) == (0, 0)
    assert not rf.has_checkpoint


def test_checkpoint_release_keeps_advance_state():
    rf = MainRegFile()
    rf.write_normal(1, 10)
    rf.checkpoint()
    rf.write_advance(1, 20, seq=0)
    rf.release()
    assert rf.read(1) == (20, 0)
    assert rf.last_writer[1] == NO_WRITER  # seq tracking resets


def test_double_checkpoint_rejected():
    rf = MainRegFile()
    rf.checkpoint()
    with pytest.raises(RuntimeError):
        rf.checkpoint()


def test_restore_without_checkpoint_rejected():
    rf = MainRegFile()
    with pytest.raises(RuntimeError):
        rf.restore()
    with pytest.raises(RuntimeError):
        rf.release()


def test_advance_write_poisoned_keeps_old_value():
    rf = MainRegFile()
    rf.write_normal(4, 7)
    rf.checkpoint()
    rf.write_advance(4, None, seq=3, poison_mask=0b10)
    value, poison = rf.read(4)
    assert value == 7  # stale but poisoned
    assert poison == 0b10
    assert rf.last_writer[4] == 3
    assert rf.any_poisoned()


def test_rally_write_gated_by_last_writer():
    """The WAW guard of Figure 3: older slice writers are suppressed."""
    rf = MainRegFile()
    rf.checkpoint()
    rf.write_advance(3, None, seq=0, poison_mask=0b1)  # sliced load
    rf.write_advance(3, 33, seq=6)                     # younger commit
    assert not rf.write_rally(3, 9, seq=0)             # suppressed
    assert rf.read(3) == (33, 0)


def test_rally_write_lands_when_last_writer_matches():
    rf = MainRegFile()
    rf.checkpoint()
    rf.write_advance(4, None, seq=8, poison_mask=0b10)
    assert rf.write_rally(4, 12, seq=8)
    assert rf.read(4) == (12, 0)
    assert not rf.any_poisoned()


# ----------------------------------------------------------------------
# scratch register file
# ----------------------------------------------------------------------
def test_scratch_write_read_clear():
    rf = ScratchRegFile()
    rf.write(5, 99, seq=2, ready_cycle=10, poison_mask=0)
    assert rf.read(5) == (99, 0, 10)
    assert rf.writer_seq[5] == 2
    rf.clear()
    assert rf.read(5) == (0, 0, 0)
    assert rf.writer_seq[5] == NO_WRITER


def test_scratch_ignores_r0():
    rf = ScratchRegFile()
    rf.write(0, 1, seq=1, ready_cycle=1)
    assert rf.read(0) == (0, 0, 0)
