"""Regression tests for simple-runahead fallback liveness.

Two deadlocks were found during bring-up, both in the Section 3.4
fallback path; these tests pin the fixes:

1. A store-buffer-full fallback could never resume: the drain is gated
   by the live checkpoint, so waiting for the buffer to empty deadlocks.
   Once the episode's slices have all merged, the fallback must resume
   so the checkpoint can be released and the drain unblocked.
2. Entries sliced *during* a rally pass carrying that pass's own poison
   bit would never be rallied (their bit had already "returned").
"""

from repro.core.icfp import ICFPCore, ICFPFeatures, NORMAL
from repro.harness import ExperimentConfig
from repro.workloads import trace_by_name


def run_kernel(name, features, instructions=2000):
    config = ExperimentConfig(instructions=instructions)
    trace = trace_by_name(name, instructions)
    core = ICFPCore(trace, config=config.machine_config(), features=features)
    result = core.run()
    assert core.mode == NORMAL
    assert result.instructions == len(trace)
    return core


def test_tiny_store_buffer_terminates_on_store_heavy_kernel():
    """Store-heavy stream + 16-entry store buffer: the fallback must
    resume once the episode's slices merge (checkpoint release is the
    only way the gated drain can proceed)."""
    core = run_kernel("swim_like",
                      ICFPFeatures(store_buffer_entries=16, validate=True))
    assert not core.validate_final_state()
    assert core.stats.simple_runahead_entries > 0


def test_tiny_slice_buffer_terminates_on_chase_kernel():
    core = run_kernel("twolf_like",
                      ICFPFeatures(slice_entries=8, validate=True))
    assert not core.validate_final_state()
    assert core.stats.simple_runahead_entries > 0


def test_mt_rally_capture_race_terminates():
    """Entries captured mid-pass with the pass's own bit must still be
    swept up (the stale-bit re-queue in begin_cycle)."""
    core = run_kernel("twolf_like", ICFPFeatures(validate=True),
                      instructions=3000)
    assert not core.validate_final_state()
    assert core.stats.rally_passes > 0
