"""Property test: chained forwarding against a brute-force oracle.

Whatever sequence of allocations, rally updates, drains, and squashes
occurs, a chained (or indexed) store buffer's *successful* forwards
must agree with an exhaustive youngest-match search over the live
stores, and the chained kind must never miss a store the oracle finds.
"""

from hypothesis import given, settings, strategies as st

from repro.core.store_buffer import (
    ChainedStoreBuffer,
    ForwardResult,
    IndexedStall,
)

_ADDRS = [0x40 * i for i in range(1, 9)]


class _FakeHierarchy:
    def data_access(self, addr, cycle, is_store=False):
        class R:
            ready_cycle = cycle
            stalled = False
        return R()


_events = st.lists(
    st.one_of(
        st.tuples(st.just("store"), st.sampled_from(_ADDRS),
                  st.integers(0, 99)),
        st.tuples(st.just("forward"), st.sampled_from(_ADDRS)),
        st.tuples(st.just("drain"), st.just(0)),
    ),
    min_size=1, max_size=120,
)


def oracle(live, addr):
    """Youngest live store to ``addr`` (ssn, value) or None."""
    matches = [(ssn, value) for ssn, (a, value) in live.items() if a == addr]
    return max(matches) if matches else None


@settings(max_examples=200, deadline=None)
@given(_events)
def test_chained_forwarding_matches_oracle(events):
    sb = ChainedStoreBuffer(capacity=16, chain_table_size=8, kind="chained")
    hierarchy = _FakeHierarchy()
    live = {}  # ssn -> (addr, value)
    for event in events:
        if event[0] == "store":
            _, addr, value = event
            if sb.full:
                continue
            ssn = sb.allocate(addr, value, 0, seq=0)
            live[ssn] = (addr, value)
        elif event[0] == "forward":
            _, addr = event
            got = sb.forward(addr)
            want = oracle(live, addr)
            if want is None:
                assert got is None
            else:
                assert isinstance(got, ForwardResult)
                assert (got.ssn, got.value) == want
        else:
            before = sb.ssn_complete
            sb.drain_step(hierarchy, 0, {})
            for ssn in [s for s in live if s <= sb.ssn_complete]:
                del live[ssn]
            assert sb.ssn_complete >= before


@settings(max_examples=100, deadline=None)
@given(_events, st.integers(0, 30))
def test_squash_then_forward_matches_oracle(events, squash_after):
    sb = ChainedStoreBuffer(capacity=16, chain_table_size=8, kind="chained")
    live = {}
    for event in events:
        if event[0] == "store" and not sb.full:
            _, addr, value = event
            ssn = sb.allocate(addr, value, 0, seq=0)
            live[ssn] = (addr, value)
    new_tail = max(sb.ssn_complete + 1, sb.ssn_tail - squash_after)
    sb.squash_to(new_tail)
    for ssn in [s for s in live if s >= new_tail]:
        del live[ssn]
    for addr in _ADDRS:
        got = sb.forward(addr)
        want = oracle(live, addr)
        if want is None:
            assert got is None
        else:
            assert (got.ssn, got.value) == want


@settings(max_examples=100, deadline=None)
@given(_events)
def test_indexed_kind_is_conservative(events):
    """The indexed kind may stall, but when it *does* forward it must
    agree with the oracle, and when it misses the oracle must miss."""
    sb = ChainedStoreBuffer(capacity=16, chain_table_size=8, kind="indexed")
    live = {}
    for event in events:
        if event[0] == "store" and not sb.full:
            _, addr, value = event
            ssn = sb.allocate(addr, value, 0, seq=0)
            live[ssn] = (addr, value)
    for addr in _ADDRS:
        got = sb.forward(addr)
        want = oracle(live, addr)
        if isinstance(got, ForwardResult):
            assert (got.ssn, got.value) == want
        elif got is None:
            assert want is None
        else:
            assert isinstance(got, IndexedStall)
