"""Unit tests for the address-hash chained store buffer (Figure 4)."""

import pytest

from repro.core.store_buffer import ChainedStoreBuffer, ForwardResult, IndexedStall


def make(kind="chained", capacity=8, table=16):
    return ChainedStoreBuffer(capacity=capacity, chain_table_size=table, kind=kind)


def test_rejects_bad_kind_and_table():
    with pytest.raises(ValueError):
        make(kind="banana")
    with pytest.raises(ValueError):
        ChainedStoreBuffer(chain_table_size=100)


def test_allocate_assigns_ssns_in_order():
    sb = make()
    assert sb.allocate(0x40, 1, 0, seq=0) == 0
    assert sb.allocate(0x48, 2, 0, seq=1) == 1
    assert len(sb) == 2 and not sb.empty


def test_forward_youngest_matching_store():
    sb = make()
    sb.allocate(0x40, 1, 0, seq=0)
    sb.allocate(0x40, 2, 0, seq=1)  # younger store, same address
    fwd = sb.forward(0x40)
    assert isinstance(fwd, ForwardResult)
    assert fwd.value == 2 and fwd.ssn == 1


def test_forward_miss_goes_to_cache():
    sb = make()
    sb.allocate(0x40, 1, 0, seq=0)
    assert sb.forward(0x1040 + 8) is None  # different hash entirely


def test_chain_walk_counts_excess_hops():
    """Figure 4: stores to x34/x44 share a hash chain; finding the older
    one requires walking past the younger (one excess hop)."""
    sb = make(table=8)  # hash = (addr >> 3) & 7
    sb.allocate(0x34 * 8, 10, 0, seq=0)  # hash 4
    sb.allocate(0x44 * 8, 14, 0, seq=1)  # hash 4 (collides: 0x44 & 7 == 4)
    fwd = sb.forward(0x34 * 8)
    assert fwd.value == 10
    assert fwd.excess_hops == 1
    assert sb.total_excess_hops == 1
    # The younger store is at the chain root: no excess hops.
    assert sb.forward(0x44 * 8).excess_hops == 0


def test_forward_respects_before_ssn():
    """Rally loads skip stores younger than themselves (Section 3.2)."""
    sb = make()
    sb.allocate(0x40, 1, 0, seq=0)   # ssn 0 (older than the load)
    sb.allocate(0x40, 9, 0, seq=5)   # ssn 1 (younger than the load)
    fwd = sb.forward(0x40, before_ssn=1)
    assert fwd.value == 1 and fwd.ssn == 0


def test_poisoned_store_propagates_poison():
    sb = make()
    sb.allocate(0x40, None, 0b100, seq=0)
    fwd = sb.forward(0x40)
    assert fwd.poison == 0b100 and fwd.value is None


def test_update_store_fills_value():
    sb = make()
    ssn = sb.allocate(0x40, None, 0b1, seq=0)
    sb.update_store(ssn, 77, 0)
    fwd = sb.forward(0x40)
    assert fwd.value == 77 and fwd.poison == 0


def test_capacity_and_overflow():
    sb = make(capacity=2)
    sb.allocate(0x00, 0, 0, seq=0)
    sb.allocate(0x08, 0, 0, seq=1)
    assert sb.full
    with pytest.raises(OverflowError):
        sb.allocate(0x10, 0, 0, seq=2)
    assert sb.overflows == 1


def test_drain_advances_ssn_complete_and_terminates_chains():
    class FakeHierarchy:
        def data_access(self, addr, cycle, is_store=False):
            class R:
                ready_cycle = cycle + 3
                stalled = False
            return R()

    sb = make()
    sb.allocate(0x40, 5, 0, seq=0)
    mem = {}
    h = FakeHierarchy()
    assert not sb.drain_step(h, 0, mem)  # launches, not yet complete
    assert sb.drain_step(h, 3, mem)
    assert mem[0x40] == 5
    assert sb.ssn_complete == 0
    assert sb.empty
    # SSNs at/below ssn_complete act as chain-terminating null pointers.
    assert sb.forward(0x40) is None


def test_drain_gate_blocks_checkpointed_stores():
    sb = make()
    sb.allocate(0x40, 5, 0, seq=0)
    assert not sb.drain_step(None, 0, {}, before_ssn=0)


def test_drain_blocked_by_poisoned_head():
    sb = make()
    sb.allocate(0x40, None, 0b1, seq=0)
    assert not sb.drain_step(None, 0, {})
    assert sb.next_drain_event(0) is None  # woken by rally, not time


def test_squash_rebuilds_chain_table():
    sb = make()
    sb.allocate(0x40, 1, 0, seq=0)
    sb.allocate(0x40, 2, 0, seq=1)
    sb.allocate(0x48, 3, 0, seq=2)
    dropped = sb.squash_to(1)
    assert dropped == 2
    fwd = sb.forward(0x40)
    assert fwd.value == 1 and fwd.ssn == 0  # survivor re-rooted
    assert sb.forward(0x48) is None


def test_squash_forwards_rejected():
    sb = make()
    sb.allocate(0x40, 1, 0, seq=0)
    with pytest.raises(ValueError):
        sb.squash_to(5)


# ----------------------------------------------------------------------
# alternative access disciplines (Figure 8)
# ----------------------------------------------------------------------
def test_assoc_oracle_matches_chained_result():
    chained, assoc = make(), make(kind="assoc")
    for sb in (chained, assoc):
        sb.allocate(0x40, 1, 0, seq=0)
        sb.allocate(0x140, 2, 0, seq=1)
        sb.allocate(0x40, 3, 0, seq=2)
    c, a = chained.forward(0x40), assoc.forward(0x40)
    assert c.value == a.value == 3
    assert a.excess_hops == 0  # idealised: no hop cost


def test_indexed_limited_forwarding_stalls_on_hash_conflict():
    sb = make(kind="indexed", table=8)
    sb.allocate(0x34 * 8, 10, 0, seq=0)
    sb.allocate(0x44 * 8, 14, 0, seq=1)  # same hash bucket
    hit = sb.forward(0x44 * 8)
    assert isinstance(hit, ForwardResult) and hit.value == 14
    conflict = sb.forward(0x34 * 8)  # root mismatch -> cannot disambiguate
    assert isinstance(conflict, IndexedStall)
    assert conflict.ssn == 1


def test_indexed_miss_when_bucket_empty():
    sb = make(kind="indexed")
    assert sb.forward(0x40) is None


def test_live_entries_view():
    sb = make()
    sb.allocate(0x40, 1, 0, seq=0)
    sb.allocate(0x48, 2, 0, seq=1)
    assert [e.value for e in sb.live_entries()] == [1, 2]
