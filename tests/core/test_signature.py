"""Unit tests for the multiprocessor-safety load signature."""

import pytest

from repro.core.signature import LoadSignature


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        LoadSignature(bits=1000)
    with pytest.raises(ValueError):
        LoadSignature(hashes=0)


def test_insert_then_probe_hits():
    sig = LoadSignature()
    sig.insert(0x2000)
    assert sig.probe(0x2000)
    assert sig.probe_hits == 1


def test_probe_miss_on_unrelated_address():
    sig = LoadSignature(bits=4096)
    sig.insert(0x2000)
    assert not sig.probe(0x90_0008)


def test_clear_resets():
    sig = LoadSignature()
    sig.insert(0x2000)
    sig.clear()
    assert sig.empty
    assert not sig.probe(0x2000)


def test_false_positives_possible_but_bounded():
    """Bloom behaviour: a loaded-up signature may false-positive, but an
    almost-empty one should not."""
    sig = LoadSignature(bits=1024)
    for i in range(64):
        sig.insert(0x4000 + 8 * i)
    assert sig.occupancy() < 0.3
    # Every inserted address must hit (no false negatives).
    assert all(sig.probe(0x4000 + 8 * i) for i in range(64))


def test_occupancy_monotone():
    sig = LoadSignature(bits=1024)
    prev = 0.0
    for i in range(16):
        sig.insert(0x1000 * (i + 1))
        occ = sig.occupancy()
        assert occ >= prev
        prev = occ
