"""Feature-matrix tests for the parameterised iCFP engine (Figure 7/8
configurations): every combination must stay architecturally correct,
and the feature ladder must order sensibly on a dependent-miss+tail
workload."""

import itertools

import pytest

from repro.core.icfp import ICFPCore, ICFPFeatures
from repro.functional import run_program
from repro.isa import Assembler, R
from repro.pipeline import MachineConfig


def fig1e_program():
    """Dependent chain + long independent tail (the Figure 1e shape)."""
    a = Assembler("ladder")
    ch0, ch1, g = 0x60000, 0x70000, 0x80000
    a.word(ch0, ch1)
    a.word(ch1, 42)
    a.word(g, 5)
    a.li(R.r1, ch0)
    a.ld(R.r1, R.r1, 0)
    a.ld(R.r1, R.r1, 0)
    a.addi(R.r9, R.r1, 0)
    for _ in range(400):
        a.addi(R.r2, R.r2, 1)
    a.li(R.r3, g)
    a.ld(R.r4, R.r3, 0)
    a.add(R.r5, R.r4, R.r4)
    a.li(R.r6, 0x2000)
    a.st(R.r5, R.r6, 0)
    a.ld(R.r7, R.r6, 0)
    a.halt()
    return a.assemble()


@pytest.mark.parametrize("kind", ["chained", "assoc", "indexed"])
@pytest.mark.parametrize("nonblocking", [True, False])
@pytest.mark.parametrize("mt", [True, False])
def test_feature_matrix_architecturally_correct(kind, nonblocking, mt):
    trace = run_program(fig1e_program())
    feats = ICFPFeatures(store_buffer_kind=kind,
                         nonblocking_rally=nonblocking,
                         mt_rally=mt, validate=True)
    core = ICFPCore(trace, config=MachineConfig.hpca09(), features=feats)
    result = core.run()
    assert not core.validate_final_state()
    assert result.instructions == len(trace)


def run_cycles(feats):
    trace = run_program(fig1e_program())
    core = ICFPCore(trace, config=MachineConfig.hpca09(), features=feats)
    return core.run().cycles


def test_ladder_ordering_on_dependent_miss_tail():
    """Figure 7's claim in miniature: non-blocking rallies help this
    pattern, and the full feature set is the fastest point.

    On a kernel this small the lone nonblocking pass pays a few cycles
    of pass-restart overhead that the blocking rally amortises into its
    stall, so the single-feature comparison gets a small slack (same
    convention as the poison-width ladder below); the full feature set
    must win outright.
    """
    blocking = run_cycles(ICFPFeatures(nonblocking_rally=False,
                                       mt_rally=False, poison_bits=1))
    nonblocking = run_cycles(ICFPFeatures(nonblocking_rally=True,
                                          mt_rally=False, poison_bits=1))
    full = run_cycles(ICFPFeatures())
    assert nonblocking <= blocking + 4
    assert full <= blocking


def test_single_poison_bit_still_correct_under_many_misses():
    a = Assembler("manybits")
    addrs = [0x100000 + i * 0x4000 for i in range(12)]
    for i, addr in enumerate(addrs):
        a.word(addr, i)
    for addr in addrs:
        a.li(R.r1, addr)
        a.ld(R.r2, R.r1, 0)
        a.add(R.r3, R.r3, R.r2)
    a.halt()
    trace = run_program(a.assemble())
    core = ICFPCore(trace, config=MachineConfig.hpca09(),
                    features=ICFPFeatures(poison_bits=1, validate=True))
    core.run()
    assert not core.validate_final_state()


def test_wider_poison_never_slower_on_chain_mix():
    """Section 3.4: more bits let rallies skip unrelated slices."""
    a = Assembler("mix")
    chain = [0x60000, 0x70000, 0x80000, 0x90000]
    for here, there in zip(chain, chain[1:]):
        a.word(here, there)
    a.word(chain[-1], 1)
    a.li(R.r1, chain[0])
    for _ in range(len(chain)):
        a.ld(R.r1, R.r1, 0)
        # Unrelated independent misses between chain links:
        a.li(R.r4, 0x200000)
        a.ld(R.r5, R.r4, 0)
        a.add(R.r6, R.r6, R.r5)
    a.addi(R.r2, R.r1, 0)
    a.halt()
    trace = run_program(a.assemble())
    one = ICFPCore(trace, config=MachineConfig.hpca09(),
                   features=ICFPFeatures(poison_bits=1)).run().cycles
    eight = ICFPCore(run_program(a.assemble()), config=MachineConfig.hpca09(),
                     features=ICFPFeatures(poison_bits=8)).run().cycles
    assert eight <= one + 20
