"""Integration tests for Multipass and SLTP."""

from repro.baselines import InOrderCore, MultipassCore, RunaheadCore, SLTPCore
from repro.core.icfp import ICFPCore, ICFPFeatures
from repro.functional import run_program
from repro.isa import Assembler, R, assemble_text
from repro.pipeline import MachineConfig

A1 = 0x10000


def independent_miss_program(n=6, with_compute=True):
    a = Assembler("indep")
    for i in range(n):
        addr = 0x50000 + i * 0x4000
        a.word(addr, i)
        a.li(R.r1, addr)
        a.ld(R.r2, R.r1, 0)
        a.add(R.r3, R.r3, R.r2)
        if with_compute:
            for _ in range(4):
                a.mul(R.r4, R.r4, R.r4)
    a.halt()
    return a.assemble()


def run_core(cls, prog, **kw):
    return cls(run_program(prog), config=MachineConfig.hpca09(), **kw).run()


# ----------------------------------------------------------------------
# Multipass
# ----------------------------------------------------------------------
def test_multipass_commits_everything_once():
    prog = independent_miss_program()
    trace = run_program(prog)
    r = run_core(MultipassCore, prog)
    assert r.instructions == len(trace)


def test_multipass_records_and_reuses_results():
    prog = independent_miss_program()
    core = MultipassCore(run_program(prog), config=MachineConfig.hpca09())
    core.run()
    assert core.result_reuses > 0


def test_multipass_beats_runahead_on_replay_heavy_code():
    """Result reuse accelerates re-execution: Multipass >= Runahead."""
    prog = independent_miss_program(n=8)
    ra = run_core(RunaheadCore, prog, advance_on="l2_d1")
    mp = run_core(MultipassCore, prog)
    assert mp.cycles <= ra.cycles + 10


def test_multipass_beats_inorder_on_independent_misses():
    prog = independent_miss_program(n=8)
    base = run_core(InOrderCore, prog)
    mp = run_core(MultipassCore, prog)
    assert mp.cycles < base.cycles


# ----------------------------------------------------------------------
# SLTP
# ----------------------------------------------------------------------
def test_sltp_commits_everything_once_and_state_is_correct():
    prog = independent_miss_program()
    trace = run_program(prog)
    core = SLTPCore(trace, config=MachineConfig.hpca09(), advance_on="all")
    r = core.run()
    assert r.instructions == len(trace)
    assert not core.validate_final_state()


def test_sltp_speculative_lines_flushed_at_rally():
    text = f"""
        li r5, {A1}
        li r6, 0x2000
        li r7, 77
        ld r2, r5, 0          # miss -> advance
        st r7, r6, 0          # speculative cache write
        ld r8, r6, 0          # forwards through the cache
        addi r3, r2, 1        # dependent -> slice
        halt
    """
    core = SLTPCore(run_program(assemble_text(text)),
                    config=MachineConfig.hpca09(), advance_on="all")
    core.run()
    assert core.spec_line_flushes >= 1
    assert core.committed_memory[0x2000] == 77
    assert not core.validate_final_state()


def test_sltp_blocking_rally_delays_tail_misses():
    """Figure 1e: a dependent miss rallies while an independent miss
    waits at the tail.  iCFP's non-blocking rally lets the tail reach
    and overlap the independent miss; SLTP's blocking rally freezes the
    tail until the dependent miss returns."""
    a = Assembler("fig1e")
    ch0, ch1, g = 0x60000, 0x70000, 0x80000
    a.word(ch0, ch1)
    a.word(ch1, 42)
    a.word(g, 5)
    a.li(R.r1, ch0)
    a.ld(R.r1, R.r1, 0)       # miss A
    a.ld(R.r1, R.r1, 0)       # dependent miss E (found during A's rally)
    a.addi(R.r9, R.r1, 0)
    for _ in range(500):      # serial tail: fetch reaches G only after
        a.addi(R.r2, R.r2, 1)  # A's rally has begun
    a.li(R.r3, g)
    a.ld(R.r4, R.r3, 0)       # independent miss G
    a.add(R.r5, R.r4, R.r4)
    a.halt()
    prog = a.assemble()

    sltp = SLTPCore(run_program(prog), config=MachineConfig.hpca09(),
                    advance_on="all")
    sltp_result = sltp.run()
    assert not sltp.validate_final_state()

    icfp = ICFPCore(run_program(prog), config=MachineConfig.hpca09(),
                    features=ICFPFeatures(validate=True))
    icfp_result = icfp.run()
    assert not icfp.validate_final_state()
    # iCFP overlaps G with E; SLTP serialises them behind the rally.
    assert icfp_result.cycles < sltp_result.cycles - 100


def test_sltp_features_are_pinned():
    """Whatever feature set is passed, SLTP pins its defining limits."""
    core = SLTPCore(run_program(assemble_text("halt")),
                    features=ICFPFeatures(nonblocking_rally=True,
                                          mt_rally=True, poison_bits=8))
    assert core.features.nonblocking_rally is False
    assert core.features.mt_rally is False
    assert core.features.poison_bits == 1
