"""Integration tests for Runahead and its cache."""

import pytest

from repro.baselines import InOrderCore, RunaheadCache, RunaheadCore
from repro.functional import run_program
from repro.isa import Assembler, R, assemble_text
from repro.pipeline import MachineConfig

A1, B1 = 0x10000, 0x20000


def run_core(cls, prog_or_trace, **kw):
    trace = (prog_or_trace if hasattr(prog_or_trace, "insts")
             else run_program(prog_or_trace))
    return cls(trace, config=MachineConfig.hpca09(), **kw).run()


# ----------------------------------------------------------------------
# runahead cache
# ----------------------------------------------------------------------
def test_ra_cache_round_trip():
    c = RunaheadCache(16)
    c.write(0x100, 7)
    assert c.read(0x100) == (7, False)
    assert c.read(0x108) is None


def test_ra_cache_conflict_eviction_is_best_effort():
    c = RunaheadCache(4)
    c.write(0x100, 1)
    c.write(0x100 + 4 * 8, 2)  # same index, different address
    assert c.read(0x100) is None  # displaced: best-effort only
    assert c.evictions == 1


def test_ra_cache_poison_and_flush():
    c = RunaheadCache(16)
    c.write(0x100, None, poisoned=True)
    assert c.read(0x100) == (None, True)
    c.flush()
    assert c.read(0x100) is None


def test_ra_cache_rejects_bad_size():
    with pytest.raises(ValueError):
        RunaheadCache(10)


# ----------------------------------------------------------------------
# runahead core
# ----------------------------------------------------------------------
def test_all_instructions_commit_exactly_once():
    text = f"""
        li r1, {A1}
        ld r2, r1, 0
        addi r3, r2, 1
    """ + "\n".join(["addi r4, r4, 1"] * 30) + "\nhalt"
    trace = run_program(assemble_text(text))
    r = run_core(RunaheadCore, assemble_text(text))
    assert r.instructions == len(trace)


def test_lone_miss_gives_no_benefit():
    """Figure 1a: Runahead discards its advance work, so a lone miss
    with no other misses behind it buys nothing."""
    text = f"""
        li r1, {A1}
        ld r2, r1, 0
        addi r3, r2, 1
    """ + "\n".join(["addi r4, r4, 1"] * 60) + "\nhalt"
    base = run_core(InOrderCore, assemble_text(text))
    ra = run_core(RunaheadCore, assemble_text(text))
    assert ra.cycles >= base.cycles - 5  # no speedup (within noise)


def test_independent_misses_overlap():
    """Figure 1b: runahead prefetches the second miss under the first."""
    a = Assembler("indep")
    addrs = [0x50000 + i * 0x4000 for i in range(6)]
    for i, addr in enumerate(addrs):
        a.word(addr, i)
        a.li(R.r1, addr)
        a.ld(R.r2, R.r1, 0)
        a.add(R.r3, R.r3, R.r2)
    a.halt()
    prog = a.assemble()
    base = run_core(InOrderCore, prog)
    ra = run_core(RunaheadCore, prog)
    assert ra.cycles < base.cycles * 0.55
    core = RunaheadCore(run_program(prog), config=MachineConfig.hpca09())
    core.run()
    assert core.stats.advance_entries >= 1
    assert core.stats.d_mlp.average() > 1.5


def test_runahead_reexecutes_everything():
    """Unlike iCFP, runahead instructions do not commit: the advance
    instruction count shows the re-execution overhead."""
    a = Assembler("re")
    addrs = [0x50000 + i * 0x4000 for i in range(4)]
    for i, addr in enumerate(addrs):
        a.word(addr, i)
        a.li(R.r1, addr)
        a.ld(R.r2, R.r1, 0)
        a.add(R.r3, R.r3, R.r2)
    a.halt()
    core = RunaheadCore(run_program(a.assemble()), config=MachineConfig.hpca09())
    r = core.run()
    assert core.stats.advance_instructions > 0
    assert r.instructions == len(core.trace)


def test_runahead_store_forwarding_via_ra_cache():
    text = f"""
        li r5, {A1}
        li r6, 0x2000
        li r7, 77
        ld r2, r5, 0          # miss -> runahead
        st r7, r6, 0          # runahead store
        ld r8, r6, 0          # forwards from the runahead cache
        addi r9, r8, 1
        addi r3, r2, 1
        halt
    """
    core = RunaheadCore(run_program(assemble_text(text)),
                        config=MachineConfig.hpca09())
    core.run()
    assert core.ra_cache.writes >= 1
    assert core.ra_cache.hits >= 1
    # Architectural memory state comes from the normal re-execution.
    assert core.committed_memory[0x2000] == 77


def test_dollar_blocking_vs_nonblocking_configs():
    """advance_on='all' poisons secondary D$ misses instead of waiting."""
    a = Assembler("sec")
    a.word(A1, 1)
    # One long L2 miss, then a D$-missing (L2-hit) load behind it.
    a.li(R.r1, A1)
    a.li(R.r2, B1)
    a.ld(R.r3, R.r1, 0)
    a.ld(R.r4, R.r2, 0)
    a.add(R.r5, R.r3, R.r4)
    a.halt()
    prog = a.assemble()
    for mode in ("l2", "all"):
        core = RunaheadCore(run_program(prog), config=MachineConfig.hpca09(),
                            advance_on=mode)
        core.hierarchy.l2.insert(core.hierarchy.config.l2.line_addr(B1))
        r = core.run()
        assert r.instructions == len(core.trace)


def test_invalid_advance_on_rejected():
    trace = run_program(assemble_text("halt"))
    with pytest.raises(ValueError):
        RunaheadCore(trace, advance_on="sometimes")


def test_poisoned_mispredicted_branch_stalls_until_exit():
    text = f"""
        li r5, {A1}
        li r6, 1
        ld r2, r5, 0
        andi r3, r2, 1
        beq r3, r6, taken
        addi r9, r9, 500
        taken:
        addi r9, r9, 3
        halt
    """
    prog = assemble_text(text)
    prog.data[A1] = 7
    r = run_core(RunaheadCore, prog)
    trace = run_program(prog)
    assert r.instructions == len(trace)
