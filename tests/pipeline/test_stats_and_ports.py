"""Unit tests for statistics (MLP meter), ports, and config."""

import pytest

from repro.isa.instructions import OpClass
from repro.pipeline import (
    CoreStats,
    MachineConfig,
    MLPMeter,
    PortSet,
    StallBreakdown,
    port_kind,
)


# ----------------------------------------------------------------------
# MLP meter
# ----------------------------------------------------------------------
def test_mlp_empty_is_zero():
    assert MLPMeter().average() == 0.0


def test_mlp_single_interval_is_one():
    m = MLPMeter()
    m.add(0, 100)
    assert m.average() == pytest.approx(1.0)


def test_mlp_fully_overlapped_pair_is_two():
    m = MLPMeter()
    m.add(0, 100)
    m.add(0, 100)
    assert m.average() == pytest.approx(2.0)


def test_mlp_disjoint_pair_is_one():
    m = MLPMeter()
    m.add(0, 100)
    m.add(200, 300)
    assert m.average() == pytest.approx(1.0)


def test_mlp_partial_overlap():
    m = MLPMeter()
    m.add(0, 100)   # alone for 50, overlapped for 50
    m.add(50, 150)  # overlapped 50, alone 50
    # 150 active cycles, 200 miss-cycles -> 4/3.
    assert m.average() == pytest.approx(4.0 / 3.0)


def test_mlp_ignores_empty_intervals():
    m = MLPMeter()
    m.add(5, 5)
    assert m.count == 0
    assert m.average() == 0.0


def test_mlp_many_overlapping_staircase():
    m = MLPMeter()
    for i in range(4):
        m.add(i * 10, 100)
    avg = m.average()
    assert 2.0 < avg < 4.0


# ----------------------------------------------------------------------
# ports
# ----------------------------------------------------------------------
def test_port_kinds():
    assert port_kind(OpClass.INT_ALU) == "int"
    assert port_kind(OpClass.INT_MUL) == "int"
    assert port_kind(OpClass.FP_ADD) == "mem"
    assert port_kind(OpClass.LOAD) == "mem"
    assert port_kind(OpClass.BRANCH) == "mem"


def test_portset_capacity_table1():
    ports = PortSet(int_ports=2, mem_ports=1)
    assert ports.acquire(OpClass.INT_ALU)
    assert ports.acquire(OpClass.INT_MUL)
    assert not ports.acquire(OpClass.INT_ALU)  # both int ports used
    assert ports.acquire(OpClass.LOAD)
    assert not ports.acquire(OpClass.STORE)    # single mem port used
    ports.reset()
    assert ports.available(OpClass.INT_ALU)
    assert ports.available(OpClass.FP_MUL)


# ----------------------------------------------------------------------
# stats containers
# ----------------------------------------------------------------------
def test_corestats_derived_metrics():
    stats = CoreStats()
    stats.cycles = 200
    stats.instructions = 100
    stats.l1d_misses = 5
    stats.l2_misses = 2
    stats.rally_instructions = 30
    stats.loads = 50
    stats.store_forward_hops = 10
    assert stats.ipc == pytest.approx(0.5)
    assert stats.misses_per_ki() == (50.0, 20.0)
    assert stats.rallies_per_ki() == pytest.approx(300.0)
    assert stats.hops_per_load() == pytest.approx(0.2)


def test_corestats_zero_division_guards():
    stats = CoreStats()
    assert stats.ipc == 0.0
    assert stats.misses_per_ki() == (0.0, 0.0)
    assert stats.rallies_per_ki() == 0.0
    assert stats.hops_per_load() == 0.0


def test_stall_breakdown_total():
    stalls = StallBreakdown(src_wait=3, port=2, mshr_full=1)
    assert stalls.total() == 6


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
def test_machine_config_table1_defaults():
    cfg = MachineConfig.hpca09()
    assert cfg.width == 2
    assert cfg.int_ports == 2 and cfg.mem_ports == 1
    assert cfg.frontend_depth == 5  # 3 I$ + decode + reg-read
    assert cfg.store_buffer_entries == 32
    assert cfg.hierarchy.l2.hit_latency == 20
    assert cfg.hierarchy.memory_latency == 400


def test_with_l2_latency_round_trip():
    cfg = MachineConfig.hpca09()
    slow = cfg.with_l2_latency(44)
    assert slow.hierarchy.l2.hit_latency == 44
    assert cfg.hierarchy.l2.hit_latency == 20  # original untouched
    assert slow.hierarchy.l1d == cfg.hierarchy.l1d
