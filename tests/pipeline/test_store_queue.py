"""Unit tests for the conventional associative store queue."""

import pytest

from repro.memory import HierarchyConfig, MemoryHierarchy
from repro.pipeline import StoreQueue


def hierarchy():
    return MemoryHierarchy(HierarchyConfig.hpca09())


def test_push_and_capacity():
    q = StoreQueue(2)
    q.push(0x100, 1, 0)
    q.push(0x108, 2, 0)
    assert q.full and len(q) == 2
    with pytest.raises(OverflowError):
        q.push(0x110, 3, 0)


def test_forward_youngest_match():
    q = StoreQueue(4)
    q.push(0x100, 1, 0)
    q.push(0x100, 2, 1)
    entry = q.forward(0x100)
    assert entry.value == 2
    assert q.forward(0x200) is None
    assert q.forward_hits == 1 and q.forward_misses == 1


def test_drain_writes_memory_image_in_order():
    q = StoreQueue(4)
    h = hierarchy()
    h.l1d.insert(h.config.l1d.line_addr(0x100))  # warm: drains hit
    q.push(0x100, 7, 0)
    q.push(0x108, 8, 0)
    mem = {}
    cycle = 0
    while not q.empty:
        q.drain_step(h, cycle, mem)
        cycle += 1
        assert cycle < 100
    assert mem == {0x100: 7, 0x108: 8}


def test_drain_respects_miss_latency():
    q = StoreQueue(4)
    h = hierarchy()
    q.push(0x100, 7, 0)  # cold line: the drain launches a long fill
    assert not q.drain_step(h, 0, {})
    head = q.head()
    assert head.drain_ready is not None and head.drain_ready > 100


def test_flush_discards_everything():
    q = StoreQueue(4)
    q.push(0x100, 1, 0)
    q.push(0x108, 2, 0)
    assert q.flush() == 2
    assert q.empty


def test_next_event_reports_drain_time():
    q = StoreQueue(4)
    h = hierarchy()
    assert q.next_event(0) is None
    q.push(0x100, 1, 0)
    assert q.next_event(0) == 1  # not yet launched: try next cycle
    q.drain_step(h, 0, {})
    assert q.next_event(0) == q.head().drain_ready
