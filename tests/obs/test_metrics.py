"""Metrics registry: instruments, snapshots, cross-process merging.

The merge law the fleet relies on: snapshots from any number of
processes fold by addition (counters, histogram counts/sums/buckets)
or by latest sample (gauges), so per-worker registries published
through the obs log always reconstruct the campaign totals.
"""

import json

from repro.obs.metrics import MetricsRegistry, merge_snapshots


def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    reg.counter("jobs").inc()
    reg.counter("jobs").inc(4)
    assert reg.counter("jobs").value == 5
    reg.gauge("depth").set(3.5)
    reg.gauge("depth").set(2.0)
    assert reg.gauge("depth").value == 2.0
    assert reg.gauge("depth").seq == 2
    h = reg.histogram("lat")
    for v in (1, 3, 3, 100):
        h.observe(v)
    assert h.count == 4
    assert h.total == 107
    assert (h.min, h.max) == (1, 100)
    assert h.mean == 107 / 4
    # Power-of-two buckets by bit length: 1 -> 1, 3 -> 2, 100 -> 7.
    assert h.buckets == {1: 1, 2: 2, 7: 1}


def test_histogram_nonpositive_values_clamp_to_bucket_zero():
    reg = MetricsRegistry()
    h = reg.histogram("h")
    h.observe(0)
    h.observe(-5)
    assert h.buckets == {0: 2}
    assert h.min == -5


def test_count_into_mirrors_numeric_nonzero_tallies():
    reg = MetricsRegistry()
    reg.count_into("campaign", {"computed": 3, "retries": 0,
                                "label": "not-a-number", "hits": 2.0})
    snap = reg.snapshot()
    assert snap["counters"] == {"campaign.computed": 3, "campaign.hits": 2}


def test_snapshot_is_json_able_and_drops_idle_instruments():
    reg = MetricsRegistry()
    reg.counter("touched").inc()
    reg.counter("never")  # created but zero: not in the snapshot
    reg.gauge("unset")
    reg.histogram("empty")
    snap = json.loads(json.dumps(reg.snapshot()))
    assert snap["counters"] == {"touched": 1}
    assert snap["gauges"] == {}
    assert snap["histograms"] == {}


def test_merge_snapshots_adds_counters_and_buckets():
    a = MetricsRegistry()
    b = MetricsRegistry()
    for reg, n in ((a, 2), (b, 5)):
        reg.counter("done").inc(n)
        reg.histogram("kipc").observe(n)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["counters"]["done"] == 7
    hist = merged["histograms"]["kipc"]
    assert hist["count"] == 2
    assert hist["sum"] == 7.0
    assert (hist["min"], hist["max"]) == (2, 5)
    assert hist["buckets"] == {"2": 1, "3": 1}


def test_merge_snapshots_gauge_keeps_highest_seq():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.gauge("g").set(1.0)           # seq 1
    b.gauge("g").set(9.0)
    b.gauge("g").set(7.0)           # seq 2: fresher
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["gauges"]["g"]["value"] == 7.0
    # Order-independent when one side is strictly fresher.
    flipped = merge_snapshots([b.snapshot(), a.snapshot()])
    assert flipped["gauges"]["g"]["value"] == 7.0


def test_merge_snapshots_tolerates_junk_and_empty():
    good = MetricsRegistry()
    good.counter("c").inc()
    merged = merge_snapshots([None, "junk", {}, good.snapshot()])
    assert merged["counters"] == {"c": 1}
    assert merge_snapshots([]) == {"counters": {}, "gauges": {},
                                   "histograms": {}}


def test_clear_resets_the_registry():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.clear()
    assert reg.snapshot()["counters"] == {}
