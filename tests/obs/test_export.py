"""Export: merged obs logs -> Chrome trace-event JSON + summaries."""

import json

from repro.obs import trace as obs_trace
from repro.obs.export import (
    export_chrome,
    merge_logs,
    split_records,
    summarize,
    to_chrome,
)


def _write_log(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


def test_merge_logs_orders_across_processes(tmp_path):
    _write_log(tmp_path / "a-1.jsonl",
               [{"ph": "X", "name": "late", "ts": 200, "dur": 1, "pid": 1},
                {"ph": "X", "name": "early", "ts": 50, "dur": 1, "pid": 1}])
    _write_log(tmp_path / "b-2.jsonl",
               [{"ph": "X", "name": "mid", "ts": 100, "dur": 1, "pid": 2}])
    names = [r["name"] for r in merge_logs(str(tmp_path))]
    assert names == ["early", "mid", "late"]


def test_split_keeps_only_last_metrics_snapshot_per_pid():
    # A long-lived process emits a cumulative snapshot per campaign;
    # merging all of them would multiply its counts.
    records = [
        {"ph": "metrics", "ts": 1, "pid": 7,
         "metrics": {"counters": {"c": 1}}},
        {"ph": "metrics", "ts": 2, "pid": 7,
         "metrics": {"counters": {"c": 5}}},
        {"ph": "metrics", "ts": 3, "pid": 8,
         "metrics": {"counters": {"c": 2}}},
    ]
    _spans, _meta, snapshots = split_records(records)
    assert len(snapshots) == 2
    counts = sorted(s["counters"]["c"] for s in snapshots)
    assert counts == [2, 5]  # pid 7's first snapshot dropped


def test_to_chrome_normalises_and_annotates():
    records = [
        {"ph": "M", "name": "process_name", "pid": 3,
         "args": {"name": "worker-w0-3"}},
        {"ph": "X", "name": "job", "ts": 1_000_100, "dur": 40,
         "pid": 3, "tid": 9, "args": {"fp": "ab"}},
        {"ph": "i", "name": "lease.issued", "ts": 1_000_150, "pid": 3,
         "tid": 9, "args": {}},
        {"ph": "metrics", "ts": 1_000_200, "pid": 3,
         "metrics": {"counters": {"n": 2}}},
    ]
    doc = to_chrome(records)
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert meta[0]["args"] == {"name": "worker-w0-3"}
    span = next(e for e in events if e["ph"] == "X")
    assert span["ts"] == 0  # normalised to the earliest event
    assert span["dur"] == 40
    assert span["cat"] == "repro"
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["ts"] == 50
    assert instant["s"] == "t"
    assert doc["displayTimeUnit"] == "ms"
    assert doc["repro"]["metrics"]["counters"] == {"n": 2}
    assert doc["repro"]["records"] == len(records)


def test_export_chrome_round_trip(tmp_path):
    obs_dir = tmp_path / "obs"
    obs_dir.mkdir()
    tracer = obs_trace.activate(str(obs_dir), label="t")
    with obs_trace.span("campaign", jobs=1):
        with obs_trace.span("attempt", fp="ff", attempt=1):
            pass
    obs_trace.event("lease.done", fp="ff")
    tracer.emit_metrics({"counters": {"campaign.computed": 1},
                         "gauges": {}, "histograms": {}})
    obs_trace.deactivate()

    out = str(tmp_path / "trace.json")
    info = export_chrome(str(obs_dir), out)
    assert info["events"] == 3  # two spans + one instant
    assert info["tracks"] == 1
    assert info["metrics"] == 1
    with open(out, encoding="utf-8") as handle:
        doc = json.load(handle)  # valid JSON end-to-end
    assert {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"} \
        == {"campaign", "attempt"}
    assert doc["repro"]["metrics"]["counters"]["campaign.computed"] == 1


def test_summarize_histograms_span_names():
    records = [
        {"ph": "X", "name": "job", "ts": 0, "dur": 10},
        {"ph": "X", "name": "job", "ts": 5, "dur": 30},
        {"ph": "X", "name": "campaign", "ts": 0, "dur": 100},
    ]
    summary = summarize(records)
    assert summary["spans"]["job"] == {"count": 2, "total_us": 40}
    assert summary["spans"]["campaign"]["count"] == 1
