"""The observation-only law (tier-1): tracing never changes results.

Running any campaign with ``REPRO_TRACE`` set — sequential grid or
multi-worker fabric — must produce byte-identical results and stats to
the untraced run, while the obs logs it leaves behind round-trip
through the Chrome exporter with at least one span per job attempt and
one instant per lease transition.
"""

import json

from repro.exec import CampaignReport, ResultStore, SimJob, run_jobs
from repro.exec.fabric import run_jobs_fabric
from repro.exec.store import result_to_payload
from repro.harness.experiment import ExperimentConfig
from repro.obs.export import export_chrome, merge_logs
from repro.obs import trace as obs_trace

WORKLOADS = ("mesa_like", "gzip_like")
MODELS = ("in-order", "icfp")


def _jobs(instructions):
    cfg = ExperimentConfig(instructions=instructions)
    return [SimJob(m, w, cfg) for w in WORKLOADS for m in MODELS]


def _payloads(results):
    return [json.dumps(result_to_payload(r), sort_keys=True)
            for r in results]


def _clean(jobs):
    return run_jobs(jobs, workers=1, memo=False, store=False, fabric=False)


def test_traced_sequential_grid_is_byte_identical(tmp_path, monkeypatch):
    jobs = _jobs(347)
    clean = _clean(jobs)
    obs_dir = str(tmp_path / "obs")
    monkeypatch.setenv("REPRO_TRACE", obs_dir)
    traced = run_jobs(jobs, workers=1, memo=False, store=False,
                      fabric=False)
    assert _payloads(traced) == _payloads(clean)
    # ...and the run actually recorded: a campaign span, one job span
    # per cell, and the engine's leap-audit metrics.
    records = merge_logs(obs_dir)
    names = [r["name"] for r in records if r.get("ph") == "X"]
    assert names.count("campaign") == 1
    assert names.count("job") == len(jobs)
    snapshots = [r for r in records if r.get("ph") == "metrics"]
    assert snapshots, "campaign end must publish a metrics snapshot"
    counters = snapshots[-1]["metrics"]["counters"]
    assert counters.get("campaign.computed") == len(jobs)
    assert counters.get("engine.leaps", 0) > 0  # the probe saw leaps


def test_traced_fabric_campaign_is_byte_identical_and_exports(
        tmp_path, monkeypatch):
    jobs = _jobs(349)
    clean = _clean(jobs)
    obs_dir = str(tmp_path / "obs")
    monkeypatch.setenv("REPRO_TRACE", obs_dir)
    store = ResultStore(str(tmp_path / "store"))
    report = CampaignReport()
    results = run_jobs_fabric(jobs, workers=2, memo=False, store=store,
                              report=report)
    assert _payloads(results) == _payloads(clean)
    assert report.computed == len(jobs)

    # Round trip: the merged logs export to valid Chrome trace JSON...
    out = str(tmp_path / "trace.chrome.json")
    info = export_chrome(obs_dir, out)
    with open(out, encoding="utf-8") as handle:
        doc = json.load(handle)
    events = doc["traceEvents"]
    assert info["events"] == sum(1 for e in events if e["ph"] in ("X", "i"))
    # ...with the coordinator and both workers as distinct tracks...
    assert info["tracks"] >= 2

    fps = {job.fingerprint[:16] for job in jobs}
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    # ...at least one attempt span per job...
    attempted = {e["args"].get("fp") for e in spans
                 if e["name"] == "attempt"}
    assert fps <= attempted
    # ...and one instant per lease transition: every job was issued a
    # lease (fresh ledger: first claim is always "issued") and marked
    # done.
    issued = {e["args"].get("fp") for e in instants
              if e["name"] == "lease.issued"}
    done = {e["args"].get("fp") for e in instants
            if e["name"] == "lease.done"}
    assert fps <= issued
    assert fps <= done
    # Worker lifetimes and lease holds made it onto the timeline too.
    assert sum(1 for e in spans if e["name"] == "worker.lifetime") >= 2
    assert {e["args"].get("fp") for e in spans if e["name"] == "lease"} \
        >= fps
    # The fleet's merged metrics reconstruct the campaign tallies.
    counters = doc["repro"]["metrics"]["counters"]
    assert counters.get("fabric.completed", 0) == len(jobs)
    assert counters.get("campaign.computed", 0) == len(jobs)


def test_trace_off_leaves_no_logs_and_no_probe(tmp_path):
    jobs = _jobs(351)
    results = run_jobs(jobs, workers=1, memo=False, store=False,
                       fabric=False)
    assert len(results) == len(jobs)
    assert obs_trace.TRACER is None
    assert merge_logs(str(tmp_path / "obs")) == []
