"""Tracer unit contract: off by default, JSONL spans when on.

The zero-overhead side of the observation-only law: with no activation,
``span()``/``event()`` are a single module-global check returning a
shared no-op.  When on, every record is one appended, flushed JSON line
— crash-safe like the ledger — and the reader skips torn lines.
"""

import json
import os
import threading

from repro.obs import trace as obs_trace
from repro.obs.trace import Tracer, iter_events, obs_log_paths


def _records(path):
    return list(iter_events(path))


def test_tracing_is_off_by_default():
    assert obs_trace.TRACER is None
    assert not obs_trace.enabled()
    # The off path hands back the one shared no-op object — no
    # per-call allocation.
    assert obs_trace.span("anything", x=1) is obs_trace.span("else")
    obs_trace.event("ignored", x=1)  # and events are free


def test_span_emits_complete_record_with_duration(tmp_path):
    tracer = obs_trace.activate(str(tmp_path), label="t")
    with obs_trace.span("work", fp="abc", attempt=1):
        pass
    records = _records(tracer.path)
    # First line names the track, then the span.
    assert records[0]["ph"] == "M"
    assert records[0]["name"] == "process_name"
    assert records[0]["schema"] == obs_trace.OBS_SCHEMA
    span = records[1]
    assert span["ph"] == "X"
    assert span["name"] == "work"
    assert span["args"] == {"fp": "abc", "attempt": 1}
    assert span["pid"] == os.getpid()
    assert span["tid"] == threading.get_native_id()
    assert span["dur"] >= 0
    assert span["ts"] > 0


def test_span_records_exception_type_and_propagates(tmp_path):
    tracer = obs_trace.activate(str(tmp_path))
    try:
        with obs_trace.span("boom"):
            raise ValueError("no")
    except ValueError:
        pass
    else:  # pragma: no cover - the span must not swallow
        raise AssertionError("span swallowed the exception")
    span = _records(tracer.path)[-1]
    assert span["args"]["error"] == "ValueError"


def test_instant_event_record(tmp_path):
    tracer = obs_trace.activate(str(tmp_path))
    obs_trace.event("lease.issued", fp="beef", worker="w0")
    instant = _records(tracer.path)[-1]
    assert instant["ph"] == "i"
    assert instant["name"] == "lease.issued"
    assert instant["args"] == {"fp": "beef", "worker": "w0"}


def test_refresh_env_gating(tmp_path, monkeypatch):
    # Unset / falsy values keep (or turn) tracing off.
    for value in (None, "0", "false", "no", "off", ""):
        if value is None:
            monkeypatch.delenv("REPRO_TRACE", raising=False)
        else:
            monkeypatch.setenv("REPRO_TRACE", value)
        assert obs_trace.refresh() is None
    # A path value selects the obs directory directly.
    obs_dir = str(tmp_path / "mylogs")
    monkeypatch.setenv("REPRO_TRACE", obs_dir)
    tracer = obs_trace.refresh()
    assert tracer is not None
    assert tracer.root == obs_dir
    # Repeated refreshes with the same value keep the same tracer.
    assert obs_trace.refresh() is tracer
    monkeypatch.delenv("REPRO_TRACE")
    assert obs_trace.refresh() is None


def test_refresh_plain_one_uses_default_dir(tmp_path, monkeypatch):
    # REPRO_OBS_DIR wins over the store-root default.
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
    tracer = obs_trace.refresh()
    assert tracer.root == str(tmp_path / "obs")


def test_set_label_renames_the_track(tmp_path):
    tracer = obs_trace.activate(str(tmp_path), label="proc")
    obs_trace.event("first")
    tracer.set_label("worker-w3")
    obs_trace.event("second")
    assert os.path.basename(tracer.path).startswith("worker-w3-")
    names = [os.path.basename(p) for p in obs_log_paths(str(tmp_path))]
    assert any(n.startswith("proc-") for n in names)
    assert any(n.startswith("worker-w3-") for n in names)


def test_iter_events_skips_torn_and_junk_lines(tmp_path):
    path = tmp_path / "log.jsonl"
    good = {"ph": "X", "name": "ok", "ts": 1, "dur": 2}
    path.write_text(json.dumps(good) + "\n"
                    + '{"ph": "X", "name": "torn", "ts": 12'  # no newline,
                    )                                         # torn tail
    assert _records(str(path)) == [good]
    path.write_text("not json at all\n\n[1, 2]\n" + json.dumps(good) + "\n")
    assert _records(str(path)) == [good]


def test_iter_events_missing_file_is_empty():
    assert _records("/nonexistent/obs/log.jsonl") == []


def test_emit_survives_unwritable_root(tmp_path):
    # Observability must never fail the campaign: an unwritable obs
    # root silently drops events.
    blocked = tmp_path / "file-not-dir"
    blocked.write_text("occupied")
    tracer = Tracer(str(blocked / "obs"))
    tracer.emit({"ph": "i", "name": "dropped", "ts": 0})  # no raise
    tracer.close()
