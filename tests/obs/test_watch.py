"""Live watch: snapshots, rendering, torn-manifest tolerance.

Rendering is pure (snapshot dicts in, text out) and every read is
torn-tolerant: a mid-write manifest reports "initialising", never a
crash — the satellite fix pinned by ``test_status_survives_torn_
manifest``.
"""

import io
import os
import time

from repro.exec import ResultStore, SimJob
from repro.exec.fabric import Ledger, ledger_for
from repro.harness.experiment import ExperimentConfig
from repro.obs.watch import (
    WatchState,
    campaign_snapshot,
    format_snapshot,
    lease_table,
    render_screen,
    watch_loop,
)


def _ledger(tmp_path, instructions=353):
    cfg = ExperimentConfig(instructions=instructions)
    jobs = [SimJob("in-order", w, cfg) for w in ("mesa_like", "gzip_like")]
    store = ResultStore(str(tmp_path / "store"))
    return Ledger.create(ledger_for(jobs, store.root).root, jobs), jobs


def test_campaign_snapshot_reads_ledger_state(tmp_path):
    ledger, jobs = _ledger(tmp_path)
    now = time.time()
    ledger.try_claim(jobs[0].fingerprint, "w0-1", 60.0, now)
    ledger.mark_done(jobs[1].fingerprint, "w0-1")
    ledger.write_worker_stats("w0-1", {"worker": "w0-1", "completed": 1,
                                       "adopted": 0, "failed": 0})
    snap = campaign_snapshot(ledger, now + 5)
    assert not snap["initialising"]
    assert snap["total"] == 2
    assert snap["done"] == 1
    assert snap["remaining"] == 1
    assert snap["leases_held"] == 1
    [lease] = snap["leases"]
    assert lease["worker"] == "w0-1"
    assert lease["state"] == "held"
    assert 4.0 < lease["age"] < 6.0
    [worker] = snap["workers"]
    assert worker["completed"] == 1
    assert worker["flushed_ago"] is not None


def test_status_survives_torn_manifest(tmp_path):
    # A coordinator mid-create leaves a ledger directory whose manifest
    # is not yet readable; status must report "initialising", not crash.
    root = tmp_path / "store" / "fabric" / "deadbeef00"
    os.makedirs(root)
    (root / "manifest.json").write_text('{"campaign": "deadbeef00", "to')
    ledger = Ledger(str(root))
    status = ledger.status()
    assert status["initialising"]
    assert status["total"] == 0
    snap = campaign_snapshot(ledger)
    assert snap["initialising"]
    assert "initialising" in format_snapshot(snap)


def test_lease_table_states(tmp_path):
    ledger, jobs = _ledger(tmp_path, 355)
    now = time.time()
    ledger.try_claim(jobs[0].fingerprint, "held-w", 60.0, now)
    ledger.try_claim(jobs[1].fingerprint, "dead-w", 0.001, now - 10)
    rows = {r["worker"]: r["state"] for r in lease_table(ledger, now)}
    assert rows == {"held-w": "held", "dead-w": "expired"}


def test_watch_state_rate_and_eta_inputs():
    state = WatchState()
    first = state.observe(100.0, 10)
    assert first["rate"] == 0.0  # no elapsed baseline yet
    later = state.observe(110.0, 30)
    assert later["rate"] == 2.0  # (30-10)/10s, measured from first
    assert later["elapsed"] == 10.0


def test_format_snapshot_renders_throughput_and_leases():
    snap = {"campaign": "cafe", "initialising": False, "total": 10,
            "done": 4, "failed": 1, "remaining": 5, "leases_held": 2,
            "leases_expired": 1, "leases_torn": 0,
            "workers": [{"worker": "w0", "completed": 4, "adopted": 0,
                         "failed": 1, "retries": 2, "leases_issued": 5,
                         "leases_stolen": 1, "leases_lost": 0,
                         "flushed_ago": 3.0}],
            "leases": [{"fingerprint": "ab12", "worker": "w0",
                        "age": 70.0, "state": "held"}]}
    text = format_snapshot(snap, {"rate": 0.5, "elapsed": 8.0})
    assert "4/10 done (40%)" in text
    assert "0.50 sims/sec (30 cells/min)" in text
    assert "eta 10s" in text  # 5 remaining / 0.5 per sec
    assert "worker w0" in text
    assert "lease ab12" in text
    assert "age 1.2m" in text


def test_watch_loop_draws_without_clearing(tmp_path):
    ledger, _jobs = _ledger(tmp_path, 357)
    out = io.StringIO()
    drawn = watch_loop(lambda: [campaign_snapshot(ledger)], interval=0,
                       iterations=2, out=out, clear=False)
    assert drawn == 2
    text = out.getvalue()
    assert "\x1b" not in text
    assert text.count("0/2 done") == 2


def test_render_screen_empty():
    assert "no campaign ledgers found" in render_screen([], {})
