"""The observability CLI surface: --trace/--report, obs, top, watch."""

import json
import os

import pytest

from repro.harness.cli import _human_bytes, build_parser, main


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr()


def store_root():
    return os.environ["REPRO_CACHE_DIR"]  # per-test tmpdir (conftest)


def test_parser_knows_the_obs_surface():
    parser = build_parser()
    text = parser.format_help()
    assert "obs" in text and "top" in text
    args = parser.parse_args(["run", "mesa_like", "icfp", "--trace",
                              "--report"])
    assert args.trace and args.report
    args = parser.parse_args(["obs", "export", "--chrome", "-o", "t.json"])
    assert args.action == "export" and args.chrome
    args = parser.parse_args(["campaign", "status", "--watch",
                              "--interval", "0.5"])
    assert args.watch and args.interval == 0.5


def test_human_bytes():
    assert _human_bytes(0) == "0 B"
    assert _human_bytes(512) == "512 B"
    assert _human_bytes(1536) == "1.5 KiB"
    assert _human_bytes(3 * 1024 * 1024) == "3.0 MiB"
    assert _human_bytes(2 ** 31) == "2.0 GiB"


def test_trace_flag_records_and_obs_commands_read_back(capsys):
    run_cli(capsys, "run", "mesa_like", "in-order", "-n", "400", "-j", "1",
            "--trace")
    obs_dir = os.path.join(store_root(), "obs")
    assert os.path.isdir(obs_dir)

    out = run_cli(capsys, "obs", "summary").out
    assert "campaign" in out and "job" in out
    assert "campaign.computed" in out

    out = run_cli(capsys, "obs", "export", "--chrome").out
    assert "wrote" in out and "Perfetto" in out
    path = os.path.join(obs_dir, "trace.chrome.json")
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    assert doc["traceEvents"]

    # Explicit output path + obs dir selection.
    alt = os.path.join(store_root(), "alt.json")
    out = run_cli(capsys, "obs", "export", "--chrome", "-o", alt,
                  "--obs-dir", obs_dir).out
    assert os.path.exists(alt)


def test_obs_commands_refuse_empty_logs():
    for action in ("export", "summary"):
        with pytest.raises(SystemExit, match="no obs logs"):
            main(["obs", action])


def test_report_flag_prints_summary_without_incidents(capsys):
    # Unique budget: the RAM memo is process-global, and a memo hit
    # would report "0 computed".
    captured = run_cli(capsys, "run", "mesa_like", "in-order", "-n", "401",
                       "-j", "1", "--report")
    assert "campaign:" in captured.err
    assert "1 computed" in captured.err


def test_report_env_knob(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_REPORT", "1")
    captured = run_cli(capsys, "run", "mesa_like", "in-order", "-n", "420",
                       "-j", "1")
    assert "campaign:" in captured.err


def test_quiet_by_default(capsys):
    captured = run_cli(capsys, "run", "mesa_like", "in-order", "-n", "440",
                       "-j", "1")
    assert "campaign:" not in captured.err


def test_cache_stats_human_sizes_and_hit_rate(capsys):
    run_cli(capsys, "run", "mesa_like", "in-order", "-n", "460", "-j", "1")
    run_cli(capsys, "run", "mesa_like", "in-order", "-n", "460", "-j", "1")
    out = run_cli(capsys, "cache", "stats").out
    assert "KiB" in out or " B" in out
    assert "hit rate" in out


def test_top_once_with_no_ledgers(capsys):
    out = run_cli(capsys, "top", "--once").out
    assert "no campaign ledgers found" in out


def test_top_once_renders_a_submitted_campaign(capsys):
    run_cli(capsys, "campaign", "submit", "-w", "mesa_like", "-n", "480")
    out = run_cli(capsys, "top", "--once").out
    assert "0/5 done (0%)" in out
    assert "\x1b" not in out  # --once never clears the screen


def test_campaign_status_reports_initialising_on_torn_manifest(capsys):
    # Satellite fix: a mid-write manifest must render as initialising,
    # not crash the status command.
    # A coordinator mid-create writes manifest.pkl first, then the
    # json manifest: freeze that window.
    import pickle

    root = os.path.join(store_root(), "fabric", "feedface00000000")
    os.makedirs(root)
    with open(os.path.join(root, "manifest.pkl"), "wb") as handle:
        pickle.dump([], handle)
    with open(os.path.join(root, "manifest.json"), "w") as handle:
        handle.write('{"campaign": "feedface00000000", "tot')
    out = run_cli(capsys, "campaign", "status").out
    assert "initialising" in out
