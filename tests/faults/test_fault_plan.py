"""FaultPlan: parsing, determinism, and process-wide activation."""

import pytest

from repro.exec.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    active_injector,
    injected_faults,
    set_fault_plan,
)


def test_parse_basic_spec():
    plan = FaultPlan.parse("seed=7,worker_death=0.1,store_truncate=0.05")
    assert plan.seed == 7
    assert plan.worker_death == 0.1
    assert plan.store_truncate == 0.05
    assert plan.job_exception == 0.0
    assert plan.any_faults()


def test_parse_accepts_dashes_and_whitespace():
    plan = FaultPlan.parse(" worker-death = 0.5 , slow-seconds = 0.1 ")
    assert plan.worker_death == 0.5
    assert plan.slow_seconds == 0.1


def test_parse_empty_parts_and_defaults():
    assert FaultPlan.parse("") == FaultPlan()
    assert FaultPlan.parse("seed=3,") == FaultPlan(seed=3)
    assert not FaultPlan().any_faults()
    # slow_seconds alone is a parameter, not a fault rate
    assert not FaultPlan(slow_seconds=9.0).any_faults()


@pytest.mark.parametrize("bad", ["banana=1", "worker_death", "seed=x",
                                 "worker_death=fast"])
def test_parse_rejects_bad_specs(bad):
    with pytest.raises(ValueError, match="bad fault spec"):
        FaultPlan.parse(bad)


def test_to_env_round_trips():
    plan = FaultPlan(seed=9, worker_death=0.25, slow=0.5, slow_seconds=0.3)
    assert FaultPlan.parse(plan.to_env()) == plan
    assert FaultPlan().to_env() == ""


def test_roll_is_deterministic_and_rate_bounded():
    plan = FaultPlan(seed=42, job_exception=0.3)
    verdicts = [plan.roll("job_exception", f"key{i}", 1) for i in range(400)]
    assert verdicts == [plan.roll("job_exception", f"key{i}", 1)
                        for i in range(400)]
    rate = sum(verdicts) / len(verdicts)
    assert 0.15 < rate < 0.45  # Bernoulli(0.3) over 400 independent keys
    # edge rates need no hashing at all
    assert not FaultPlan(job_exception=0.0).roll("job_exception", "k", 1)
    assert FaultPlan(job_exception=1.0).roll("job_exception", "k", 1)


def test_roll_varies_with_seed_kind_and_ordinal():
    base = FaultPlan(seed=0, job_exception=0.5, slow=0.5)
    keys = [f"key{i}" for i in range(64)]

    def pattern(plan, kind, ordinal):
        return tuple(plan.roll(kind, k, ordinal) for k in keys)

    assert pattern(base, "job_exception", 1) != pattern(
        FaultPlan(seed=1, job_exception=0.5), "job_exception", 1)
    assert pattern(base, "job_exception", 1) != pattern(base, "slow", 1)
    assert pattern(base, "job_exception", 1) != pattern(
        base, "job_exception", 2)


def test_would_fail_matches_roll():
    plan = FaultPlan(seed=5, worker_death=0.4)
    for i in range(50):
        assert (plan.would_fail("worker_death", f"k{i}")
                == plan.roll("worker_death", f"k{i}", 1))


def test_injector_counts_cover_all_kinds():
    injector = FaultInjector(FaultPlan())
    assert set(injector.counts) == set(FAULT_KINDS)


def test_env_activation(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert active_injector() is None
    monkeypatch.setenv("REPRO_FAULTS", "seed=3,job_exception=0.2")
    injector = active_injector()
    assert injector is not None
    assert injector.plan == FaultPlan(seed=3, job_exception=0.2)
    # same value -> same cached injector (counters survive)
    assert active_injector() is injector
    monkeypatch.setenv("REPRO_FAULTS", "seed=4")
    assert active_injector().plan == FaultPlan(seed=4)
    monkeypatch.setenv("REPRO_FAULTS", "")
    assert active_injector() is None


def test_env_bad_spec_raises(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "nope=1")
    with pytest.raises(ValueError, match="REPRO_FAULTS"):
        active_injector()
    monkeypatch.setenv("REPRO_FAULTS", "")


def test_override_beats_env_and_restores(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "seed=1,slow=0.1")
    plan = FaultPlan(seed=2, job_exception=0.9)
    with injected_faults(plan) as injector:
        assert active_injector() is injector
        assert injector.plan is plan
    assert active_injector().plan == FaultPlan(seed=1, slow=0.1)
    monkeypatch.setenv("REPRO_FAULTS", "")
    assert active_injector() is None


def test_set_fault_plan_install_and_remove():
    injector = set_fault_plan(FaultPlan(seed=8, slow=1.0))
    try:
        assert active_injector() is injector
    finally:
        assert set_fault_plan(None) is None
