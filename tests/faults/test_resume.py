"""Crash-resume: a SIGKILL'd campaign loses only its unflushed cells.

The engine flushes each computed result to the disk store the moment it
completes, so a campaign killed mid-flight and resumed in a fresh
process must serve every already-flushed cell from the store and
recompute exactly the rest — verified by the store's hit/write
counters, not by timing luck.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.exec import CampaignReport, ResultStore, SimJob, run_jobs
from repro.exec.store import result_to_payload
from repro.harness.experiment import ExperimentConfig

WORKLOADS = ("mesa_like", "gzip_like")
MODELS = ("in-order", "runahead", "multipass", "sltp", "icfp")
INSTRUCTIONS = 311  # unique budget: no other test shares fingerprints

_CAMPAIGN = """
import sys
sys.path.insert(0, {src!r})
from repro.exec import run_jobs, SimJob
from repro.harness.experiment import ExperimentConfig
cfg = ExperimentConfig(instructions={instructions})
jobs = [SimJob(m, w, cfg) for w in {workloads!r} for m in {models!r}]
run_jobs(jobs, workers=1)
"""


def _result_records(root):
    pattern = os.path.join(root, "v*", "*", "results", "*", "*.json")
    return glob.glob(pattern)


@pytest.mark.slow
def test_sigkill_mid_campaign_resumes_without_recomputing_flushed_cells(
        tmp_path):
    root = str(tmp_path / "shared-store")
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    script = _CAMPAIGN.format(src=os.path.abspath(src),
                              instructions=INSTRUCTIONS,
                              workloads=WORKLOADS, models=MODELS)
    env = dict(os.environ,
               REPRO_CACHE_DIR=root,
               REPRO_STORE="1",
               REPRO_JOBS="1",
               # every attempt crawls: spaces the per-cell flushes out
               # so the kill lands mid-campaign, not after it
               REPRO_FAULTS="slow=1.0,slow_seconds=0.4")
    proc = subprocess.Popen([sys.executable, "-c", script], env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if len(_result_records(root)) >= 3 or proc.poll() is not None:
                break
            time.sleep(0.01)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - defensive
            proc.kill()
            proc.wait()

    flushed = len(_result_records(root))
    total = len(WORKLOADS) * len(MODELS)
    assert flushed >= 3  # the kill landed after at least three flushes

    # fresh-process resume (a fresh ResultStore instance is the same
    # thing in-process: zeroed session counters, no RAM memo overlap
    # because this budget's fingerprints are unique to this test)
    store = ResultStore(root)
    cfg = ExperimentConfig(instructions=INSTRUCTIONS)
    jobs = [SimJob(m, w, cfg) for w in WORKLOADS for m in MODELS]
    report = CampaignReport()
    results = run_jobs(jobs, workers=1, memo=False, store=store,
                       report=report)

    assert report.store_hits == flushed
    assert report.computed == total - flushed
    assert store.writes == total - flushed  # zero re-flushed cells
    assert store.corrupt == 0  # atomic writes: a kill never tears one

    # and the resumed table equals a from-scratch computation
    clean = run_jobs(jobs, workers=1, memo=False, store=False)
    assert ([json.dumps(result_to_payload(r), sort_keys=True)
             for r in results]
            == [json.dumps(result_to_payload(r), sort_keys=True)
                for r in clean])
