"""Corrupt-record quarantine: evidence preserved, store self-heals."""

import json
import os

from repro.exec import FaultPlan, ResultStore, SimJob, injected_faults
from repro.exec.store import result_to_payload
from repro.harness.cli import main as cli_main
from repro.harness.experiment import ExperimentConfig, run_model


def _computed_result(instructions=300):
    from repro.exec.cache import TRACE_CACHE

    config = ExperimentConfig(instructions=instructions)
    trace = TRACE_CACHE.get("mesa_like", instructions)
    return run_model("in-order", trace, config), SimJob(
        "in-order", "mesa_like", config).fingerprint


def test_corrupt_record_is_quarantined_not_deleted(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    result, fp = _computed_result()
    assert store.put_result(fp, result)
    path = store._record_path("results", fp)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"schema": 2, "truncated')

    assert store.get_result(fp) is None
    assert store.corrupt == 1
    assert not os.path.exists(path)  # original slot freed for the rewrite
    entries = store.quarantine_entries()
    assert len(entries) == 1
    assert entries[0]["name"] == f"results__{fp[:2]}__{fp}.json"
    quarantined = os.path.join(store.quarantine_dir(), entries[0]["name"])
    with open(quarantined, encoding="utf-8") as handle:
        assert handle.read() == '{"schema": 2, "truncated'  # evidence kept

    info = store.stats()
    assert info["quarantine"] == {"entries": 1,
                                  "bytes": len('{"schema": 2, "truncated')}

    # the recomputed record lands back in the original slot and reads
    assert store.put_result(fp, result)
    assert store.get_result(fp) is not None

    assert store.clear_quarantine() == 1
    assert store.quarantine_entries() == []
    assert not os.path.isdir(store.quarantine_dir())


def test_wrong_shape_payload_is_quarantined(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    result, fp = _computed_result()
    payload = result_to_payload(result)
    del payload["phases"]  # schema v2 requires the key: corrupt shape
    assert store.put_json("results", fp, payload)
    assert store.get_result(fp) is None
    assert store.corrupt == 1
    assert store.hits == 0  # the provisional JSON hit was rolled back
    assert len(store.quarantine_entries()) == 1


def test_injected_truncation_corrupts_then_heals(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    result, fp = _computed_result()
    with injected_faults(FaultPlan(store_truncate=1.0)) as injector:
        assert store.put_result(fp, result)  # the write itself "succeeds"
    assert injector.counts["store_truncate"] == 1
    # torn but atomic: the half-record landed as one stable file
    assert os.path.exists(store._record_path("results", fp))

    assert store.get_result(fp) is None  # detected on the next read
    assert store.corrupt == 1
    assert len(store.quarantine_entries()) == 1

    assert store.put_result(fp, result)  # chaos off: clean rewrite
    healed = store.get_result(fp)
    assert healed is not None
    assert (json.dumps(result_to_payload(healed), sort_keys=True)
            == json.dumps(result_to_payload(result), sort_keys=True))


def test_injected_corruption_ordinals_reroll_per_write(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    result, fp = _computed_result()
    plan = FaultPlan(seed=2, store_corrupt=0.5)
    basename = fp + ".json"
    verdicts = [plan.roll("store_corrupt", basename, n) for n in range(8)]
    with injected_faults(plan) as injector:
        for _ in range(8):
            assert store.put_result(fp, result)
    assert injector.counts["store_corrupt"] == sum(verdicts)


def test_clear_removes_quarantine_too(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    result, fp = _computed_result()
    assert store.put_result(fp, result)
    path = store._record_path("results", fp)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("junk")
    assert store.get_result(fp) is None  # quarantines
    assert store.put_result(fp, result)  # one live record again
    assert store.clear() == 2  # the quarantined capture + the live record
    assert store.quarantine_entries() == []


def test_cli_quarantine_lists_and_clears(tmp_path, monkeypatch, capsys):
    root = str(tmp_path / "cli-store")
    monkeypatch.setenv("REPRO_CACHE_DIR", root)
    store = ResultStore(root)
    result, fp = _computed_result()
    assert store.put_result(fp, result)
    with open(store._record_path("results", fp), "w",
              encoding="utf-8") as handle:
        handle.write("junk")
    assert store.get_result(fp) is None

    assert cli_main(["cache", "quarantine"]) == 0
    out = capsys.readouterr().out
    assert f"results__{fp[:2]}__{fp}.json" in out

    assert cli_main(["cache", "stats"]) == 0
    assert "quarantine: 1 corrupt records" in capsys.readouterr().out

    assert cli_main(["cache", "quarantine", "--clear"]) == 0
    assert "cleared 1 quarantined records" in capsys.readouterr().out

    assert cli_main(["cache", "quarantine"]) == 0
    assert "quarantine empty" in capsys.readouterr().out
