"""The engine's failure matrix: every fault the scheduler must absorb.

The contract under test (the chaos harness's whole point): any injected
fault that is eventually retried to success leaves campaign results
byte-identical to a fault-free run.
"""

import json
import math

import pytest

from repro.exec import (
    CampaignReport,
    FaultPlan,
    RESULT_CACHE,
    ResultStore,
    RetryExhaustedError,
    RetryPolicy,
    SimJob,
    injected_faults,
    run_jobs,
)
from repro.exec.store import result_to_payload
from repro.harness.experiment import ExperimentConfig

WORKLOADS = ("mesa_like", "gzip_like", "crafty_like")
MODELS = ("in-order", "icfp", "runahead")


def _jobs(instructions=300):
    cfg = ExperimentConfig(instructions=instructions)
    return [SimJob(m, w, cfg) for w in WORKLOADS for m in MODELS]


def _payloads(results):
    return [json.dumps(result_to_payload(r), sort_keys=True)
            for r in results]


def _clean(jobs):
    return run_jobs(jobs, workers=1, memo=False, store=False)


def test_injected_exception_retries_to_identical_results():
    jobs = _jobs()
    clean = _clean(jobs)
    report = CampaignReport()
    with injected_faults(FaultPlan(seed=1, job_exception=0.3)) as injector:
        faulty = run_jobs(jobs, workers=1, memo=False, store=False,
                          report=report)
    assert injector.counts["job_exception"] >= 1
    assert report.retries == injector.counts["job_exception"]
    assert report.attempts == len(jobs) + report.retries
    assert _payloads(faulty) == _payloads(clean)
    assert report.ok() and report.incidents() == report.retries


def test_retry_exhaustion_names_the_job():
    jobs = _jobs()[:1]
    fingerprint = jobs[0].fingerprint
    with injected_faults(FaultPlan(job_exception=1.0)):
        with pytest.raises(RetryExhaustedError) as excinfo:
            run_jobs(jobs, workers=1, memo=False, store=False,
                     policy=RetryPolicy(max_attempts=3, backoff_base=0.0))
    message = str(excinfo.value)
    assert "in-order on mesa_like" in message
    assert fingerprint[:16] in message
    assert "failed 3 attempts" in message
    assert isinstance(excinfo.value.__cause__, Exception)


def test_strict_false_records_failures_and_keeps_going():
    jobs = _jobs()
    report = CampaignReport()
    # only this one fingerprint always faults: rate 1.0 keyed per-job is
    # not expressible, so fault everything and retry-exhaust the lot
    with injected_faults(FaultPlan(job_exception=1.0)):
        results = run_jobs(jobs, workers=1, memo=False, store=False,
                           report=report, strict=False,
                           policy=RetryPolicy(max_attempts=2,
                                              backoff_base=0.0))
    assert results == [None] * len(jobs)
    assert len(report.failures) == len(jobs)
    assert all(f.kind == "retries-exhausted" for f in report.failures)
    assert not report.ok()


def test_genuine_exception_is_not_retried_and_carries_identity():
    cfg = ExperimentConfig(instructions=300)
    jobs = [SimJob("in-order", "doom_like", cfg)]
    report = CampaignReport()
    with pytest.raises(KeyError) as excinfo:
        run_jobs(jobs, workers=1, memo=False, store=False, report=report)
    assert report.retries == 0 and report.attempts == 1
    notes = getattr(excinfo.value, "__notes__", [])
    assert any("doom_like" in note and jobs[0].fingerprint[:16] in note
               for note in notes)


def test_failing_job_does_not_discard_siblings(tmp_path):
    cfg = ExperimentConfig(instructions=302)
    doomed = SimJob("in-order", "doom_like", cfg)
    good = SimJob("in-order", "mesa_like", cfg)
    store = ResultStore(str(tmp_path / "store"))
    with pytest.raises(KeyError):
        run_jobs([doomed, good], workers=1, memo=False, store=store)
    # the sibling computed after the failure was flushed anyway
    assert store.get_result(good.fingerprint) is not None
    # and the session counters reached counters.json (try/finally)
    assert store.read_counters().get("writes", 0) >= 1


@pytest.mark.slow
def test_pool_death_recovery_is_byte_identical():
    jobs = _jobs()
    clean = _clean(jobs)
    report = CampaignReport()
    plan = FaultPlan(seed=5, worker_death=0.3)
    assert any(plan.would_fail("worker_death", j.fingerprint) for j in jobs)
    with injected_faults(plan):
        faulty = run_jobs(jobs, workers=2, memo=False, store=False,
                          report=report)
    assert report.pool_breaks >= 1
    assert _payloads(faulty) == _payloads(clean)
    assert report.ok()


@pytest.mark.slow
def test_total_pool_loss_degrades_to_sequential():
    jobs = _jobs()
    clean = _clean(jobs)
    report = CampaignReport()
    policy = RetryPolicy(max_pool_breaks=2, backoff_base=0.0)
    with injected_faults(FaultPlan(worker_death=1.0)):
        results = run_jobs(jobs, workers=2, memo=False, store=False,
                           report=report, policy=policy)
    assert report.pool_breaks == 2
    assert report.degradations == 1
    # in-process execution has no worker to kill: the campaign finishes
    assert _payloads(results) == _payloads(clean)


@pytest.mark.slow
def test_timeout_reaps_slow_jobs_then_retries_to_success():
    jobs = _jobs()
    clean = _clean(jobs)
    report = CampaignReport()
    policy = RetryPolicy(job_timeout=0.25, max_attempts=6, backoff_base=0.0)
    with injected_faults(FaultPlan(seed=11, slow=0.4, slow_seconds=1.0)):
        results = run_jobs(jobs, workers=2, memo=False, store=False,
                           report=report, policy=policy)
    assert report.timeouts >= 1
    assert _payloads(results) == _payloads(clean)
    assert report.ok()


def test_prewarm_failure_is_isolated_to_its_workload():
    cfg = ExperimentConfig(instructions=304)
    jobs = [SimJob(m, w, cfg)
            for w in ("mesa_like", "doom_like", "gzip_like")
            for m in ("in-order", "icfp")]
    report = CampaignReport()
    results = run_jobs(jobs, workers=2, memo=False, store=False,
                       report=report, strict=False)
    by_workload = {}
    for job, result in zip(jobs, results):
        by_workload.setdefault(job.workload, []).append(result)
    assert all(r is not None for r in by_workload["mesa_like"])
    assert all(r is not None for r in by_workload["gzip_like"])
    assert by_workload["doom_like"] == [None, None]
    assert len(report.failures) == 2
    assert all(f.kind == "trace" for f in report.failures)


def _acceptance_plan(jobs):
    """A seed where >=10% of first attempts die AND >=1 write truncates.

    Searched deterministically so the test tracks fingerprint changes
    instead of hardcoding a seed that silently stops injecting.
    """
    need_deaths = max(1, math.ceil(0.1 * len(jobs)))
    for seed in range(200):
        plan = FaultPlan(seed=seed, worker_death=0.3, store_truncate=0.25)
        deaths = sum(plan.would_fail("worker_death", j.fingerprint)
                     for j in jobs)
        truncs = sum(plan.roll("store_truncate", j.fingerprint + ".json", 0)
                     for j in jobs)
        if deaths >= need_deaths and truncs >= 1:
            return plan
    raise AssertionError("no qualifying seed in range — widen the search")


@pytest.mark.slow
def test_acceptance_chaos_campaign_is_byte_identical_and_store_heals(
        tmp_path):
    jobs = _jobs(instructions=307)
    clean_store = ResultStore(str(tmp_path / "clean"))
    clean = run_jobs(jobs, workers=1, memo=False, store=clean_store)

    plan = _acceptance_plan(jobs)
    chaos_store = ResultStore(str(tmp_path / "chaos"))
    report = CampaignReport()
    with injected_faults(plan) as injector:
        faulty = run_jobs(jobs, workers=2, memo=False, store=chaos_store,
                          report=report)
    # the plan really injected: >=10% worker deaths on first attempts,
    # and at least one record write was torn (parent-side, so counted)
    assert report.pool_breaks >= 1
    assert injector.counts["store_truncate"] >= 1
    assert _payloads(faulty) == _payloads(clean)

    # the torn record reads as corrupt, is quarantined, and a re-run
    # recomputes exactly the damaged cells — byte-identical again
    resumed_report = CampaignReport()
    resumed = run_jobs(jobs, workers=1, memo=False, store=chaos_store,
                       report=resumed_report)
    assert chaos_store.corrupt >= 1
    assert chaos_store.quarantined >= 1
    assert resumed_report.store_hits + resumed_report.computed == len(jobs)
    assert resumed_report.computed >= 1
    assert _payloads(resumed) == _payloads(clean)

    # healed: with chaos off, every record now round-trips from disk
    final = run_jobs(jobs, workers=1, memo=False, store=chaos_store,
                     report=(final_report := CampaignReport()))
    assert final_report.store_hits == len(jobs)
    assert final_report.computed == 0
    assert _payloads(final) == _payloads(clean)
