"""Unit tests for the assembled memory hierarchy."""

import pytest

from repro.memory import (
    L1,
    L2,
    MEMORY,
    PENDING,
    STALL,
    STREAM,
    VICTIM,
    CacheConfig,
    HierarchyConfig,
    MemoryHierarchy,
)


def tiny_hierarchy(**overrides):
    """A small hierarchy (no prefetcher) for deterministic unit tests."""
    base = dict(
        l1i=CacheConfig("l1i", 4 * 64 * 2, 2, 64, 3),
        l1d=CacheConfig("l1d", 4 * 64 * 2, 2, 64, 3),
        l2=CacheConfig("l2", 16 * 128 * 4, 4, 128, 20),
        l1d_victim_entries=2,
        l2_victim_entries=2,
        mshr_entries=4,
        ifetch_mshr_entries=2,
        memory_latency=100,
        stream_buffers=0,
        stream_depth=0,
    )
    base.update(overrides)
    return MemoryHierarchy(HierarchyConfig(**base))


def test_default_config_is_table1():
    h = MemoryHierarchy()
    cfg = h.config
    assert cfg.l1d.size_bytes == 32 * 1024 and cfg.l1d.assoc == 4
    assert cfg.l1d.line_bytes == 64 and cfg.l1d.hit_latency == 3
    assert cfg.l2.size_bytes == 1024 * 1024 and cfg.l2.assoc == 8
    assert cfg.l2.line_bytes == 128 and cfg.l2.hit_latency == 20
    assert cfg.mshr_entries == 64
    assert cfg.memory_latency == 400
    assert cfg.stream_buffers == 8 and cfg.stream_depth == 8


def test_cold_miss_goes_to_memory_then_hits():
    h = tiny_hierarchy()
    r = h.data_access(0x2000, cycle=0)
    assert r.level == MEMORY
    assert r.l1_miss and r.l2_miss and r.new_fill
    assert r.ready_cycle >= 100
    h.retire_mshrs(r.ready_cycle)
    r2 = h.data_access(0x2000, cycle=r.ready_cycle)
    assert r2.level == L1
    assert r2.ready_cycle == r.ready_cycle + 3


def test_l2_hit_latency_composition():
    h = tiny_hierarchy()
    r = h.data_access(0x2000, cycle=0)
    h.retire_mshrs(r.ready_cycle)
    # Evict the L1 line by touching two same-set lines; L1 has 4 sets of 64B.
    same_set = [0x2000 + 4 * 64, 0x2000 + 8 * 64]
    for addr in same_set:
        rr = h.data_access(addr, cycle=r.ready_cycle)
        h.retire_mshrs(rr.ready_cycle + 1000)
    # Push the victim line out of the 2-entry victim buffer.
    more = [0x2000 + 12 * 64, 0x2000 + 16 * 64, 0x2000 + 20 * 64]
    t = 10_000
    for addr in more:
        rr = h.data_access(addr, cycle=t)
        h.retire_mshrs(rr.ready_cycle + 1000)
        t = rr.ready_cycle + 1
    r2 = h.data_access(0x2000, cycle=50_000)
    assert r2.level == L2
    assert r2.ready_cycle == 50_000 + 3 + 20


def test_secondary_miss_merges_into_pending_fill():
    h = tiny_hierarchy()
    r1 = h.data_access(0x2000, cycle=0)
    r2 = h.data_access(0x2008, cycle=5)  # same 64B line
    assert r2.level == PENDING
    assert r2.mshr is r1.mshr
    assert not r2.new_fill
    assert r2.ready_cycle == r1.ready_cycle
    assert h.secondary_misses == 1


def test_independent_misses_overlap():
    h = tiny_hierarchy()
    r1 = h.data_access(0x2000, cycle=0)
    r2 = h.data_access(0x8000, cycle=1)
    assert r1.mshr is not r2.mshr
    # Overlap: second fill completes well before 2x the serial latency.
    assert r2.ready_cycle < r1.ready_cycle + 100


def test_mshr_exhaustion_stalls():
    h = tiny_hierarchy(mshr_entries=2)
    h.data_access(0x0000, cycle=0)
    h.data_access(0x4000, cycle=0)
    r = h.data_access(0x8000, cycle=0)
    assert r.level == STALL
    assert r.stalled
    assert r.ready_cycle == 1  # retry next cycle


def test_victim_buffer_short_miss():
    h = tiny_hierarchy()
    # L1D: 4 sets, 2 ways; 0x0, 0x1000, 0x2000 share set 0 (4-set stride 256B).
    stride = 4 * 64
    addrs = [0x0, stride, 2 * stride]
    t = 0
    for a in addrs:
        r = h.data_access(a, cycle=t)
        t = r.ready_cycle + 1
        h.retire_mshrs(t)
    # 0x0 was evicted into the victim buffer.
    r = h.data_access(0x0, cycle=t)
    assert r.level == VICTIM
    assert r.ready_cycle == t + 3 + 1


def test_store_marks_line_dirty_and_writeback_traffic():
    h = tiny_hierarchy()
    r = h.data_access(0x2000, cycle=0, is_store=True)
    h.retire_mshrs(r.ready_cycle)
    assert h.l1d.probe(0x2000 // 64)
    # Dirty bit visible in the tag array.
    ways = h.l1d._sets[h.l1d.config.set_index(0x2000 // 64)]
    assert any(entry[0] == 0x2000 // 64 and entry[1] for entry in ways)


def test_stream_prefetcher_accelerates_sequential_misses():
    h = tiny_hierarchy(stream_buffers=2, stream_depth=4,
                       l2=CacheConfig("l2", 16 * 128 * 4, 4, 128, 20))
    t = 0
    levels = []
    for i in range(6):
        r = h.data_access(0x10_0000 + i * 128, cycle=t)
        levels.append(r.level)
        t = r.ready_cycle + 1
        h.retire_mshrs(t)
    assert levels[0] == MEMORY
    assert STREAM in levels[1:]


def test_ifetch_path_and_inclusion():
    h = tiny_hierarchy()
    r = h.fetch_access(0x1000, cycle=0)
    assert r.level == MEMORY
    h.retire_mshrs(r.ready_cycle)
    r2 = h.fetch_access(0x1000, cycle=r.ready_cycle)
    assert r2.level == L1
    # The unified L2 now holds the fetched line too.
    assert h.l2.probe(0x1000 // 128)


def test_ifetch_secondary_merge():
    h = tiny_hierarchy()
    r1 = h.fetch_access(0x1000, cycle=0)
    r2 = h.fetch_access(0x1008, cycle=1)
    assert r2.level == PENDING
    assert r2.ready_cycle == r1.ready_cycle


def test_l2_eviction_enforces_inclusion():
    h = tiny_hierarchy()
    # L2: 16 sets of 128B lines, 4 ways. Fill one set with 5 lines.
    stride = 16 * 128
    t = 0
    for i in range(5):
        r = h.data_access(i * stride, cycle=t)
        t = r.ready_cycle + 1
        h.retire_mshrs(t)
    # Line 0 was evicted from L2; inclusion dropped its L1 copy.
    assert not h.l1d.probe(0)
    assert not h.l2.probe(0)


def test_flush_line():
    h = tiny_hierarchy()
    r = h.data_access(0x2000, cycle=0)
    h.retire_mshrs(r.ready_cycle)
    assert h.flush_line(0x2000)
    assert not h.flush_line(0x2000)
    r2 = h.data_access(0x2000, cycle=r.ready_cycle + 10)
    assert r2.level in (L2, VICTIM)


def test_retire_returns_completed_fills():
    h = tiny_hierarchy()
    r = h.data_access(0x2000, cycle=0)
    assert h.retire_mshrs(r.ready_cycle - 1) == []
    done = h.retire_mshrs(r.ready_cycle)
    assert [m.line_addr for m in done] == [0x2000 // 64]


def test_outstanding_demand_misses():
    h = tiny_hierarchy()
    h.data_access(0x2000, cycle=0)
    h.data_access(0x8000, cycle=0)
    assert h.outstanding_demand_misses(0) == 2
    assert h.outstanding_demand_misses(10_000) == 0
