"""Unit tests for the set-associative cache model."""

import pytest

from repro.memory import Cache, CacheConfig


def small_cache(assoc=2, sets=4, line=64):
    return Cache(CacheConfig("t", assoc * sets * line, assoc, line, 3))


def test_config_geometry():
    cfg = CacheConfig("l1", 32 * 1024, 4, 64, 3)
    assert cfg.num_sets == 128
    assert cfg.line_addr(0x1234) == 0x1234 // 64
    assert cfg.set_index(cfg.line_addr(0x1234)) == (0x1234 // 64) % 128


def test_config_rejects_bad_geometry():
    with pytest.raises(ValueError):
        CacheConfig("bad", 1000, 3, 64, 1)
    with pytest.raises(ValueError):
        CacheConfig("bad", 3 * 64 * 3, 3, 64, 1)  # non power-of-two sets


def test_miss_then_hit():
    c = small_cache()
    assert not c.lookup(5)
    c.insert(5)
    assert c.lookup(5)
    assert c.hits == 1 and c.misses == 1


def test_lru_eviction_order():
    c = small_cache(assoc=2, sets=1)
    c.insert(0)
    c.insert(1)
    assert c.lookup(0)  # promote 0 to MRU
    victim = c.insert(2)
    assert victim == (1, False)  # 1 was LRU
    assert c.probe(0) and c.probe(2) and not c.probe(1)


def test_insert_existing_refreshes_lru():
    c = small_cache(assoc=2, sets=1)
    c.insert(0)
    c.insert(1)
    assert c.insert(0) is None  # refresh, no eviction
    victim = c.insert(2)
    assert victim[0] == 1


def test_dirty_bit_propagates_through_eviction():
    c = small_cache(assoc=1, sets=1)
    c.insert(7, dirty=True)
    victim = c.insert(8)
    assert victim == (7, True)


def test_mark_dirty():
    c = small_cache()
    c.insert(3)
    assert c.mark_dirty(3)
    assert not c.mark_dirty(4)
    victim_line = None
    # fill the set of line 3 until 3 is evicted; sets=4 so same-set lines are 3,7,11,...
    victim = c.insert(7)
    victim = c.insert(11) or victim
    assert victim is not None
    evicted = dict([victim]) if victim else {}
    # line 3 was LRU after inserting 7 and 11 into the same set
    assert victim == (3, True)


def test_invalidate():
    c = small_cache()
    c.insert(9)
    assert c.invalidate(9)
    assert not c.invalidate(9)
    assert not c.probe(9)


def test_probe_has_no_side_effects():
    c = small_cache(assoc=2, sets=1)
    c.insert(0)
    c.insert(1)
    hits, misses = c.hits, c.misses
    assert c.probe(0)
    assert (c.hits, c.misses) == (hits, misses)
    # probe must not promote: 0 is still LRU
    victim = c.insert(2)
    assert victim[0] == 0


def test_sets_are_independent():
    c = small_cache(assoc=1, sets=4)
    for line in range(4):
        c.insert(line)
    assert all(c.probe(line) for line in range(4))
    assert c.resident_lines() == 4
