"""Unit tests for victim buffer, MSHR file, bus, and main memory."""

import pytest

from repro.memory import Bus, MainMemory, MSHRFile, MSHRFull, VictimBuffer


# ----------------------------------------------------------------------
# victim buffer
# ----------------------------------------------------------------------
def test_victim_insert_and_extract():
    vb = VictimBuffer(2)
    assert vb.insert(1) is None
    assert vb.insert(2, dirty=True) is None
    assert vb.extract(2) == (2, True)
    assert vb.extract(2) is None  # removed on hit
    assert vb.hits == 1 and vb.misses == 1


def test_victim_fifo_pushout():
    vb = VictimBuffer(2)
    vb.insert(1)
    vb.insert(2)
    pushed = vb.insert(3)
    assert pushed == (1, False)
    assert vb.probe(2) and vb.probe(3) and not vb.probe(1)


def test_victim_duplicate_insert_merges_dirty():
    vb = VictimBuffer(2)
    vb.insert(5)
    assert vb.insert(5, dirty=True) is None
    assert len(vb) == 1
    assert vb.extract(5) == (5, True)


def test_zero_capacity_victim_buffer():
    vb = VictimBuffer(0)
    assert vb.insert(1, dirty=True) == (1, True)
    assert vb.extract(1) is None


# ----------------------------------------------------------------------
# MSHRs
# ----------------------------------------------------------------------
def test_mshr_allocate_and_retire():
    f = MSHRFile(2)
    m = f.allocate(10, issue_cycle=0, ready_cycle=100)
    assert f.get(10) is m
    assert f.retire_complete(99) == []
    assert f.retire_complete(100) == [m]
    assert f.get(10) is None


def test_mshr_merge_counts_secondary_misses():
    f = MSHRFile(2)
    f.allocate(10, 0, 100)
    m = f.merge(10)
    assert m.merges == 1
    assert f.merges == 1


def test_mshr_full_raises():
    f = MSHRFile(1)
    f.allocate(1, 0, 10)
    assert f.full
    with pytest.raises(MSHRFull):
        f.allocate(2, 0, 10)
    assert f.full_stalls == 1


def test_mshr_duplicate_allocation_rejected():
    f = MSHRFile(4)
    f.allocate(1, 0, 10)
    with pytest.raises(ValueError):
        f.allocate(1, 0, 20)


def test_mshr_outstanding_demand_excludes_prefetch():
    f = MSHRFile(4)
    f.allocate(1, 0, 100)
    f.allocate(2, 0, 100, is_prefetch=True)
    f.allocate(3, 0, 50)
    assert f.outstanding_demand(0) == 2
    assert f.outstanding_demand(60) == 1
    assert f.outstanding_demand(100) == 0


# ----------------------------------------------------------------------
# bus + main memory
# ----------------------------------------------------------------------
def test_bus_serialises_transfers():
    bus = Bus(32)
    assert bus.schedule(0) == 32
    assert bus.schedule(0) == 64  # second transfer waits for the first
    assert bus.schedule(100) == 132  # idle gap re-synchronises
    assert bus.transfers == 3


def test_bus_rejects_bad_occupancy():
    with pytest.raises(ValueError):
        Bus(0)


def test_bus_utilisation():
    bus = Bus(10)
    bus.schedule(0)
    assert bus.utilisation(100) == pytest.approx(0.1)
    assert bus.utilisation(0) == 0.0


def test_main_memory_latency_and_bandwidth():
    mem = MainMemory(latency=400, chunk_cycles=4, chunk_bytes=16, line_bytes=128)
    assert mem.line_occupancy == 32
    first = mem.read_line(0)
    assert first == 400
    # A burst of requests at cycle 0 is spaced by the 32-cycle bus.
    second = mem.read_line(0)
    third = mem.read_line(0)
    assert second == 432 and third == 464


def test_main_memory_mlp_bound_is_about_12():
    """Section 5.1: 400-cycle latency / 32-cycle occupancy -> L2 MLP ~ 12."""
    mem = MainMemory()
    ready = [mem.read_line(0) for _ in range(20)]
    # Number of fills completing within the first 400+32 cycles:
    overlapped = sum(1 for r in ready if r <= 400 + 32)
    assert overlapped == 2  # bus spacing dominates beyond the latency window
    assert ready[12] - ready[0] == 12 * 32


def test_writebacks_queue_behind_demand_traffic():
    mem = MainMemory()
    fill = mem.read_line(0)
    wb = mem.write_line(0)
    assert wb >= fill  # write-back yields to the demand fill
    assert mem.writebacks == 1


def test_demand_fills_unaffected_by_writeback_burst():
    mem = MainMemory()
    for _ in range(13):
        mem.write_line(0)
    assert mem.read_line(0) == 400
