"""Unit tests for the stream-buffer prefetcher."""

from repro.memory import MainMemory, StreamPrefetcher


def make_prefetcher(buffers=2, depth=4):
    mem = MainMemory(latency=100, chunk_cycles=4, chunk_bytes=16, line_bytes=128)
    return StreamPrefetcher(mem, num_buffers=buffers, depth=depth), mem


def test_first_miss_allocates_stream():
    pf, mem = make_prefetcher()
    assert pf.access(100, cycle=0) is None
    assert pf.allocations == 1
    assert pf.prefetch_issues == 4  # filled to depth
    # The stream holds lines 101..104.
    buf = next(b for b in pf.buffers if b.live)
    assert [e.line_addr for e in buf.queue] == [101, 102, 103, 104]


def test_sequential_misses_hit_the_stream():
    pf, mem = make_prefetcher()
    pf.access(100, cycle=0)
    ready = pf.access(101, cycle=50)
    assert ready is not None
    assert pf.hits == 1
    # The stream topped itself up past the consumed line.
    buf = next(b for b in pf.buffers if b.live)
    assert buf.queue[0].line_addr == 102
    assert buf.queue[-1].line_addr == 105


def test_skipping_ahead_consumes_intermediate_lines():
    pf, mem = make_prefetcher(depth=4)
    pf.access(200, cycle=0)
    ready = pf.access(203, cycle=10)  # skips 201, 202
    assert ready is not None
    buf = next(b for b in pf.buffers if b.live)
    assert buf.queue[0].line_addr == 204


def test_unrelated_miss_allocates_second_stream():
    pf, mem = make_prefetcher(buffers=2)
    pf.access(100, cycle=0)
    pf.access(500, cycle=1)
    assert pf.allocations == 2
    live = [b for b in pf.buffers if b.live]
    assert len(live) == 2


def test_lru_stream_replacement():
    pf, mem = make_prefetcher(buffers=2)
    pf.access(100, cycle=0)   # stream A
    pf.access(500, cycle=10)  # stream B
    pf.access(101, cycle=20)  # hit stream A, making B the LRU
    pf.access(900, cycle=30)  # must replace B
    lines = {e.line_addr for b in pf.buffers for e in b.queue}
    assert any(line > 900 for line in lines)
    assert all(not (501 <= line <= 510) for line in lines)


def test_prefetches_yield_to_demand_fills():
    pf, mem = make_prefetcher(buffers=1, depth=4)
    pf.access(100, cycle=0)
    # 4 prefetches are in flight, but a demand fill jumps the queue.
    demand = mem.read_line(0)
    assert demand == 100  # raw latency, unaffected by prefetch traffic
    assert mem.reads == 5
    # A new prefetch, in contrast, queues behind everything so far.
    before = mem.bus.next_free
    late = mem.read_line(0, prefetch=True)
    assert late >= before


def test_disabled_prefetcher_never_hits():
    mem = MainMemory()
    pf = StreamPrefetcher(mem, num_buffers=0, depth=0)
    assert not pf.enabled()
    assert pf.access(1, 0) is None
    assert pf.access(2, 0) is None
    assert pf.hits == 0


def test_lookup_does_not_allocate():
    mem = MainMemory(latency=100, chunk_cycles=4, chunk_bytes=16, line_bytes=128)
    pf = StreamPrefetcher(mem, num_buffers=2, depth=4)
    assert pf.lookup(100, 0) is None
    assert pf.allocations == 0
    assert mem.reads == 0  # demand fill gets the bus first
    pf.train(100, 0)
    assert pf.allocations == 1


def test_outstanding_accounting():
    pf, mem = make_prefetcher(buffers=1, depth=2)
    pf.access(100, cycle=0)
    assert pf.outstanding(0) == 2
    assert pf.outstanding(10_000) == 0
