"""Property test: the cache model against a brute-force LRU reference."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.memory import Cache, CacheConfig


class ReferenceLRU:
    """Set-associative LRU cache, the slow obvious way."""

    def __init__(self, assoc: int, sets: int) -> None:
        self.assoc = assoc
        self.sets = [OrderedDict() for _ in range(sets)]

    def _set(self, line: int) -> OrderedDict:
        return self.sets[line % len(self.sets)]

    def lookup(self, line: int) -> bool:
        ways = self._set(line)
        if line in ways:
            ways.move_to_end(line)
            return True
        return False

    def insert(self, line: int):
        ways = self._set(line)
        if line in ways:
            ways.move_to_end(line)
            return None
        ways[line] = True
        if len(ways) > self.assoc:
            victim, _ = ways.popitem(last=False)
            return victim
        return None

    def invalidate(self, line: int) -> bool:
        ways = self._set(line)
        return ways.pop(line, None) is not None


_events = st.lists(
    st.tuples(st.sampled_from(["lookup", "insert", "invalidate"]),
              st.integers(min_value=0, max_value=63)),
    min_size=1, max_size=300,
)


@settings(max_examples=200, deadline=None)
@given(_events)
def test_cache_matches_reference_lru(events):
    assoc, sets = 2, 4
    cache = Cache(CacheConfig("t", assoc * sets * 64, assoc, 64, 1))
    reference = ReferenceLRU(assoc, sets)
    for kind, line in events:
        if kind == "lookup":
            assert cache.lookup(line) == reference.lookup(line)
        elif kind == "insert":
            got = cache.insert(line)
            want = reference.insert(line)
            got_line = got[0] if got is not None else None
            assert got_line == want
        else:
            assert cache.invalidate(line) == reference.invalidate(line)


@settings(max_examples=100, deadline=None)
@given(_events)
def test_cache_residency_never_exceeds_capacity(events):
    assoc, sets = 4, 2
    cache = Cache(CacheConfig("t", assoc * sets * 64, assoc, 64, 1))
    for kind, line in events:
        if kind == "insert":
            cache.insert(line)
        elif kind == "lookup":
            cache.lookup(line)
        else:
            cache.invalidate(line)
        assert cache.resident_lines() <= assoc * sets
