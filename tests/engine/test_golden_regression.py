"""Golden cycle-count + stats regression fixtures for all five models.

The event-horizon cycle engine (and any future perf work on the hot
loops) must be a *pure optimisation*: cycles and every recorded
statistic must match a reference simulation bit for bit.  This test
pins that equivalence in tier-1 by comparing each model's full stats
dictionary against checked-in fixtures over a small kernel grid.

The fixtures were generated from the cycle-by-cycle engine that
predates the leap scheduler, so they also guard the original timing
semantics, not just self-consistency.

Regenerate (only when a PR *intends* a timing change, with the diff
explained in the PR description)::

    PYTHONPATH=src python tests/engine/test_golden_regression.py --regen
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.harness.experiment import ExperimentConfig, MODELS, run_model
from repro.workloads.suite import build_kernel, trace_kernel

#: Small but diverse grid: a pointer chaser (long dependent misses), a
#: compute kernel, a store-heavy kernel, and a cache-friendly one.
GOLDEN_KERNELS = ("mcf_like", "mesa_like", "equake_like", "gzip_like")
GOLDEN_INSTRUCTIONS = 1500

FIXTURE_PATH = os.path.join(os.path.dirname(__file__), "golden_stats.json")

_TRACES: dict[str, object] = {}


def golden_config() -> ExperimentConfig:
    """Fixed experiment config (independent of REPRO_* env overrides)."""
    return ExperimentConfig(instructions=GOLDEN_INSTRUCTIONS)


def golden_trace(kernel: str):
    trace = _TRACES.get(kernel)
    if trace is None:
        trace = _TRACES[kernel] = trace_kernel(
            build_kernel(kernel), instructions=GOLDEN_INSTRUCTIONS)
    return trace


def stats_to_dict(stats) -> dict:
    """Canonical, JSON-stable dictionary of every recorded statistic."""
    scalars = (
        "cycles", "instructions", "loads", "stores", "branches",
        "branch_mispredicts", "l1d_misses", "l2_misses", "secondary_misses",
        "advance_entries", "advance_instructions", "rally_passes",
        "rally_instructions", "slice_captures", "squashes",
        "simple_runahead_entries", "store_forward_hits", "store_forward_hops",
    )
    stall_fields = (
        "src_wait", "waw_wait", "port", "store_buffer_full", "mshr_full",
        "frontend", "slice_buffer_full", "poisoned_store_addr",
    )
    out = {name: getattr(stats, name) for name in scalars}
    out["stalls"] = {name: getattr(stats.stalls, name) for name in stall_fields}
    for meter_name in ("d_mlp", "l2_mlp"):
        meter = getattr(stats, meter_name)
        out[meter_name] = {"count": meter.count,
                           "average": repr(meter.average())}
    return out


def stats_digest(payload: dict) -> str:
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def simulate_cell(model: str, kernel: str) -> dict:
    result = run_model(model, golden_trace(kernel), golden_config())
    payload = stats_to_dict(result.stats)
    return {"stats": payload, "digest": stats_digest(payload)}


def load_fixtures() -> dict:
    with open(FIXTURE_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("kernel", GOLDEN_KERNELS)
@pytest.mark.parametrize("model", MODELS)
def test_model_matches_golden_fixture(model, kernel):
    fixtures = load_fixtures()
    assert fixtures["instructions"] == GOLDEN_INSTRUCTIONS
    expected = fixtures["cells"][f"{kernel}/{model}"]
    actual = simulate_cell(model, kernel)
    # Compare the full dictionaries first: a mismatch then reports the
    # exact counter that moved, not just a digest difference.
    assert actual["stats"] == expected["stats"], (
        f"{model}/{kernel}: stats diverged from golden fixture"
    )
    assert actual["digest"] == expected["digest"]


def regenerate() -> None:
    cells = {
        f"{kernel}/{model}": simulate_cell(model, kernel)
        for kernel in GOLDEN_KERNELS
        for model in MODELS
    }
    payload = {
        "instructions": GOLDEN_INSTRUCTIONS,
        "kernels": list(GOLDEN_KERNELS),
        "models": list(MODELS),
        "cells": cells,
    }
    with open(FIXTURE_PATH, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(cells)} cells to {FIXTURE_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
