"""Batch-vs-scalar differential suite.

The batched backend's contract is that batching is *pure scheduling*:
for any grouping of compatible jobs into lane-vectors, every statistic
— including raw MLP fill intervals and per-phase buckets — is byte
identical to the scalar engine, at every batch width, through retries
and injected faults.  :func:`repro.exec.store.result_to_payload` is the
comparison key: it serialises results exactly (raw intervals, not
derived averages), so equal payload JSON means equal results bit for
bit.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.batch import BatchJob, plan_batches, run_lanes
from repro.exec import (
    CampaignReport,
    FaultPlan,
    SimJob,
    injected_faults,
    run_jobs,
)
from repro.exec.cache import TRACE_CACHE
from repro.exec.engine import batch_width
from repro.exec.store import result_to_payload
from repro.harness.experiment import MODELS, ExperimentConfig, make_core
from repro.wgen.registry import resolve_workloads

INSTRUCTIONS = 300

NAMED_KERNELS = ("mcf_like", "mesa_like", "equake_like", "gzip_like")

#: Config spread: latency extremes plus a cold-cache, starved-prefetch
#: variant, so lanes in one batch differ in geometry-derived constants,
#: not just one latency.
GRID_CONFIGS = (
    ExperimentConfig(instructions=INSTRUCTIONS, l2_hit_latency=6),
    ExperimentConfig(instructions=INSTRUCTIONS, l2_hit_latency=300),
    ExperimentConfig(instructions=INSTRUCTIONS, l2_hit_latency=20,
                     stream_buffers=2, warm=False),
)

#: An 8-point latency sweep on one (model, workload): the batch widths
#: {2, 7, full} all split this group differently (4x2, 7+1, 1x8).
SWEEP_LATENCIES = (6, 10, 20, 40, 80, 160, 300, 500)


def all_workloads():
    return list(NAMED_KERNELS) + resolve_workloads(["gen:4:42"])


def grid_jobs():
    """All five models x (4 named kernels + gen:4:42) x config spread."""
    return [SimJob(model, workload, config)
            for workload in all_workloads()
            for model in MODELS
            for config in GRID_CONFIGS]


def sweep_jobs():
    return [SimJob("icfp", "mcf_like",
                   ExperimentConfig(instructions=INSTRUCTIONS,
                                    l2_hit_latency=latency))
            for latency in SWEEP_LATENCIES]


def payloads(results):
    return [json.dumps(result_to_payload(r), sort_keys=True)
            for r in results]


def run_batched(jobs, width, monkeypatch, **kwargs):
    monkeypatch.setenv("REPRO_BATCH", str(width))
    try:
        return run_jobs(jobs, workers=1, memo=False, store=False, **kwargs)
    finally:
        monkeypatch.delenv("REPRO_BATCH")


@pytest.fixture(scope="module")
def grid_baseline():
    jobs = grid_jobs()
    return payloads(run_jobs(jobs, workers=1, memo=False, store=False))


@pytest.fixture(scope="module")
def sweep_baseline():
    jobs = sweep_jobs()
    return payloads(run_jobs(jobs, workers=1, memo=False, store=False))


# ----------------------------------------------------------------------
# width sweep
# ----------------------------------------------------------------------
def test_default_width_is_scalar(monkeypatch):
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    assert batch_width() == 1
    monkeypatch.setenv("REPRO_BATCH", "auto")
    assert batch_width() == 0
    monkeypatch.setenv("REPRO_BATCH", "7")
    assert batch_width() == 7


def test_width_one_never_batches():
    jobs = sweep_jobs()
    units = plan_batches(jobs, 1)
    assert units == jobs  # identity: the scalar escape hatch


@pytest.mark.parametrize("width,shape", [(2, (2, 2, 2, 2)), (7, (7, 1)),
                                         (0, (8,))])
def test_sweep_widths_byte_identical(width, shape, sweep_baseline,
                                     monkeypatch):
    jobs = sweep_jobs()
    units = plan_batches(jobs, width)
    assert tuple(len(getattr(u, "jobs", (u,))) for u in units) == shape
    results = run_batched(jobs, width, monkeypatch)
    assert payloads(results) == sweep_baseline


@pytest.mark.parametrize("width", [2, 0])
def test_full_grid_byte_identical(width, grid_baseline, monkeypatch):
    """All five models, named + generated workloads (phase attribution
    live on the generated ones), lanes differing in latency, stream
    buffers, and warm-up — bit-equal at every width."""
    jobs = grid_jobs()
    report = CampaignReport()
    results = run_batched(jobs, width, monkeypatch, report=report)
    assert payloads(results) == grid_baseline
    assert report.computed == len(jobs)  # every member flushed singly


# ----------------------------------------------------------------------
# ragged lanes
# ----------------------------------------------------------------------
def test_ragged_lanes_finish_independently():
    """Lanes whose runtimes differ by orders of magnitude: the fast lane
    leaves the wavefront early and neither stalls nor perturbs the slow
    one, even with a tiny chunk forcing many slices."""
    trace = TRACE_CACHE.get("gzip_like", INSTRUCTIONS)
    configs = [ExperimentConfig(instructions=INSTRUCTIONS, l2_hit_latency=6),
               ExperimentConfig(instructions=INSTRUCTIONS, l2_hit_latency=500,
                                stream_buffers=0, warm=False)]
    from repro.engine.batch import LaneParams

    params = LaneParams.for_configs(c.machine_config() for c in configs)
    cores = [make_core("icfp", trace, config, lane_params=params, lane=lane)
             for lane, config in enumerate(configs)]
    batched = run_lanes(cores, chunk=256)
    scalar = [make_core("icfp", trace, config).run() for config in configs]
    assert payloads(batched) == payloads(scalar)
    # Genuinely ragged: the cold slow lane ran far past the warm fast one.
    assert batched[1].stats.cycles > 3 * batched[0].stats.cycles


# ----------------------------------------------------------------------
# chaos: faulted batches retry whole, recover byte-identically
# ----------------------------------------------------------------------
def _first_batch_fingerprints(jobs, width):
    return [unit.fingerprint for unit in plan_batches(jobs, width)
            if isinstance(unit, BatchJob)]


def _seed_hitting_a_batch(kind, fingerprints, rate):
    for seed in range(200):
        plan = FaultPlan(seed=seed, **{kind: rate})
        if any(plan.would_fail(kind, fp) for fp in fingerprints):
            return plan
    raise AssertionError("no qualifying seed in range — widen the search")


def test_batch_retry_in_process_is_byte_identical(sweep_baseline,
                                                  monkeypatch):
    jobs = sweep_jobs()
    plan = _seed_hitting_a_batch("job_exception",
                                 _first_batch_fingerprints(jobs, 0), 0.5)
    report = CampaignReport()
    with injected_faults(plan) as injector:
        results = run_batched(jobs, 0, monkeypatch, report=report)
    assert injector.counts["job_exception"] >= 1
    assert report.retries >= 1
    assert payloads(results) == sweep_baseline
    assert report.ok()


@pytest.mark.slow
def test_batch_worker_death_recovers_byte_identical(sweep_baseline,
                                                    monkeypatch):
    """REPRO_FAULTS worker death mid-batch: the whole lane-vector dies
    with its worker, retries per the RetryPolicy, and the recovered
    campaign is byte-identical to the fault-free scalar run."""
    jobs = sweep_jobs()
    plan = _seed_hitting_a_batch("worker_death",
                                 _first_batch_fingerprints(jobs, 2), 0.5)
    monkeypatch.setenv("REPRO_FAULTS", plan.to_env())
    monkeypatch.setenv("REPRO_BATCH", "2")
    report = CampaignReport()
    results = run_jobs(jobs, workers=2, memo=False, store=False,
                       report=report)
    assert report.pool_breaks >= 1
    assert payloads(results) == sweep_baseline
    assert report.ok()
