"""Unit tests for SimResult."""

import pytest

from repro.engine import SimResult
from repro.pipeline import CoreStats


def result(model="icfp", workload="w", cycles=100, instructions=200):
    stats = CoreStats()
    stats.cycles = cycles
    stats.instructions = instructions
    return SimResult(model, workload, stats)


def test_basic_properties():
    r = result()
    assert r.cycles == 100
    assert r.instructions == 200
    assert r.ipc == pytest.approx(2.0)


def test_speedup_over():
    fast = result(cycles=100)
    slow = result(model="in-order", cycles=150)
    assert fast.speedup_over(slow) == pytest.approx(1.5)
    assert fast.percent_speedup_over(slow) == pytest.approx(50.0)
    assert slow.speedup_over(slow) == pytest.approx(1.0)


def test_zero_cycles_guard():
    broken = result(cycles=0)
    baseline = result(model="in-order", cycles=10)
    assert broken.speedup_over(baseline) == 0.0


def test_cross_workload_rejected():
    a = result(workload="a")
    b = result(workload="b")
    with pytest.raises(ValueError):
        a.speedup_over(b)


def test_str_contains_key_facts():
    text = str(result())
    assert "icfp" in text and "IPC" in text
