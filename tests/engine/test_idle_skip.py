"""The event-horizon leap must be a pure optimisation.

Every model's cycle count with leaping enabled must equal a
cycle-by-cycle simulation.  This is the load-bearing guard for the
`_leap_to_horizon` machinery (a leap past a wake-up event would change
reported performance, not just speed)."""

import pytest

from repro.baselines import InOrderCore, MultipassCore, RunaheadCore, SLTPCore
from repro.core.icfp import ICFPCore, ICFPFeatures
from repro.functional import run_program
from repro.isa import Assembler, R, assemble_text
from repro.pipeline import MachineConfig


def no_skip(core):
    assert hasattr(core, "_leap_to_horizon")
    core._leap_to_horizon = lambda: None
    return core


def programs():
    # A miss-heavy mix: independent misses, a dependent chain, stores.
    a = Assembler("mix")
    chain = [0x60000, 0x70000, 0x80000]
    for here, there in zip(chain, chain[1:]):
        a.word(here, there)
    a.word(chain[-1], 7)
    a.li(R.r1, chain[0])
    a.ld(R.r1, R.r1, 0)
    a.ld(R.r1, R.r1, 0)
    a.li(R.r4, 0x90000)
    a.ld(R.r5, R.r4, 0)
    a.add(R.r6, R.r5, R.r1)
    a.li(R.r7, 0x2000)
    a.st(R.r6, R.r7, 0)
    a.ld(R.r8, R.r7, 0)
    for _ in range(30):
        a.addi(R.r9, R.r9, 1)
    a.halt()
    yield a.assemble()

    yield assemble_text(
        """
        li r1, 0
        li r2, 40
        loop:
            addi r1, r1, 1
            mul r3, r1, r1
            bne r1, r2, loop
        halt
        """
    )


MODELS = [
    (InOrderCore, {}),
    (RunaheadCore, {"advance_on": "l2"}),
    (MultipassCore, {}),
    (SLTPCore, {"advance_on": "all"}),
    (ICFPCore, {"features": ICFPFeatures()}),
]


@pytest.mark.parametrize("cls,kwargs", MODELS,
                         ids=[c.__name__ for c, _ in MODELS])
def test_idle_skip_is_timing_neutral(cls, kwargs):
    for program in programs():
        trace = run_program(program)
        fast = cls(trace, config=MachineConfig.hpca09(), **kwargs).run()
        slow_core = no_skip(cls(trace, config=MachineConfig.hpca09(), **kwargs))
        slow = slow_core.run()
        assert fast.cycles == slow.cycles, program.name
        assert fast.instructions == slow.instructions


#: Fixed budget for the suite-kernel variant below — deliberately
#: independent of the REPRO_INSTRUCTIONS fast profile: the cycle-by-
#: cycle reference side steps every stall cycle individually, so this
#: runs at full weight no matter what the smoke profile sets.  That is
#: why it carries the `slow` marker (`make smoke` deselects it; the
#: full tier-1 run always includes it).
SUITE_BUDGET = 2500

SUITE_KERNELS = ("mcf_like", "equake_like")

#: Latent divergence this test exposed (pre-existing — reproduced on
#: the untouched parent tree): in the advance/rally models the leap can
#: defer wake-ups that the horizon set does not export (e.g. iCFP's
#: stale-rally re-queue only runs on a *stepped* cycle), so a handful
#: of cells differ from a cycle-by-cycle simulation outside the pinned
#: golden grids.  See ROADMAP "Event-horizon leap audit".  Each cell
#: here is asserted to *still* diverge, so a future leap fix fails this
#: test loudly and the set shrinks with it (regenerate golden fixtures
#: and bump ENGINE_VERSION in that same commit).
KNOWN_DIVERGENT = {
    ("mcf_like", "MultipassCore"),
    ("equake_like", "RunaheadCore"),
    ("equake_like", "MultipassCore"),
    ("equake_like", "ICFPCore"),
}


@pytest.mark.slow
@pytest.mark.parametrize("cls,kwargs", MODELS,
                         ids=[c.__name__ for c, _ in MODELS])
@pytest.mark.parametrize("kernel", SUITE_KERNELS)
def test_idle_skip_is_timing_neutral_on_suite_kernels(cls, kwargs, kernel):
    """Leap equivalence over real miss-heavy suite kernels (full stats)."""
    from repro.workloads import trace_by_name

    trace = trace_by_name(kernel, SUITE_BUDGET)
    fast = cls(trace, config=MachineConfig.hpca09(), **kwargs).run()
    slow = no_skip(cls(trace, config=MachineConfig.hpca09(), **kwargs)).run()
    if (kernel, cls.__name__) in KNOWN_DIVERGENT:
        assert fast.cycles != slow.cycles, (
            f"{kernel}/{cls.__name__} used to diverge between the leap "
            "and cycle-by-cycle engines and now matches — remove it from "
            "KNOWN_DIVERGENT (and close out the ROADMAP leap-audit item "
            "if the set is empty)"
        )
        return
    # The leap contract covers the timing-visible outcome: cycles and
    # everything that commits or touches the hierarchy.  Speculative
    # work counters (advance/rally instructions) may legitimately shift
    # a little — work done inside a dead stall window can reorder
    # without changing when anything completes.
    assert fast.cycles == slow.cycles, kernel
    assert fast.instructions == slow.instructions
    assert fast.stats.loads == slow.stats.loads
    assert fast.stats.stores == slow.stats.stores
    assert fast.stats.branches == slow.stats.branches
    assert fast.stats.l1d_misses == slow.stats.l1d_misses
    assert fast.stats.l2_misses == slow.stats.l2_misses
