"""The event-horizon leap must be a pure optimisation.

Every model's cycle count with leaping enabled must equal a
cycle-by-cycle simulation.  This is the load-bearing guard for the
`_leap_to_horizon` machinery (a leap past a wake-up event would change
reported performance, not just speed).

The cycle-by-cycle side runs in first-class reference mode
(``CoreModel(..., leap=False)``, or ``REPRO_NO_LEAP=1`` process-wide):
the leap machinery is disabled up front instead of monkeypatched away,
so the reference engine is exactly the shipped engine minus the leap.
"""

import pytest

from repro.baselines import InOrderCore, MultipassCore, RunaheadCore, SLTPCore
from repro.core.icfp import ICFPCore, ICFPFeatures
from repro.functional import run_program
from repro.isa import Assembler, R, assemble_text
from repro.pipeline import MachineConfig


def programs():
    # A miss-heavy mix: independent misses, a dependent chain, stores.
    a = Assembler("mix")
    chain = [0x60000, 0x70000, 0x80000]
    for here, there in zip(chain, chain[1:]):
        a.word(here, there)
    a.word(chain[-1], 7)
    a.li(R.r1, chain[0])
    a.ld(R.r1, R.r1, 0)
    a.ld(R.r1, R.r1, 0)
    a.li(R.r4, 0x90000)
    a.ld(R.r5, R.r4, 0)
    a.add(R.r6, R.r5, R.r1)
    a.li(R.r7, 0x2000)
    a.st(R.r6, R.r7, 0)
    a.ld(R.r8, R.r7, 0)
    for _ in range(30):
        a.addi(R.r9, R.r9, 1)
    a.halt()
    yield a.assemble()

    yield assemble_text(
        """
        li r1, 0
        li r2, 40
        loop:
            addi r1, r1, 1
            mul r3, r1, r1
            bne r1, r2, loop
        halt
        """
    )


MODELS = [
    (InOrderCore, {}),
    (RunaheadCore, {"advance_on": "l2"}),
    (MultipassCore, {}),
    (SLTPCore, {"advance_on": "all"}),
    (ICFPCore, {"features": ICFPFeatures()}),
]


def assert_stats_equal(fast, slow, label):
    """Full timing-visible equivalence: cycles and everything that
    commits or touches the hierarchy must match the reference engine."""
    assert fast.cycles == slow.cycles, label
    assert fast.instructions == slow.instructions, label
    assert fast.stats.loads == slow.stats.loads, label
    assert fast.stats.stores == slow.stats.stores, label
    assert fast.stats.branches == slow.stats.branches, label
    assert fast.stats.l1d_misses == slow.stats.l1d_misses, label
    assert fast.stats.l2_misses == slow.stats.l2_misses, label


@pytest.mark.parametrize("cls,kwargs", MODELS,
                         ids=[c.__name__ for c, _ in MODELS])
def test_idle_skip_is_timing_neutral(cls, kwargs):
    for program in programs():
        trace = run_program(program)
        fast = cls(trace, config=MachineConfig.hpca09(), **kwargs).run()
        slow_core = cls(trace, config=MachineConfig.hpca09(), leap=False,
                        **kwargs)
        assert slow_core._leap is False
        slow = slow_core.run()
        assert_stats_equal(fast, slow, program.name)


def test_reference_mode_env_var(monkeypatch):
    """``REPRO_NO_LEAP=1`` forces reference mode without code changes
    (the `repro run --no-leap` path sets exactly this)."""
    monkeypatch.setenv("REPRO_NO_LEAP", "1")
    trace = run_program(next(programs()))
    core = InOrderCore(trace, config=MachineConfig.hpca09())
    assert core._leap is False
    # An explicit constructor argument still wins over the environment.
    monkeypatch.setenv("REPRO_NO_LEAP", "0")
    assert InOrderCore(trace, config=MachineConfig.hpca09())._leap is True
    assert InOrderCore(trace, config=MachineConfig.hpca09(),
                       leap=False)._leap is False


#: Fixed budget for the suite-kernel variant below — deliberately
#: independent of the REPRO_INSTRUCTIONS fast profile: the cycle-by-
#: cycle reference side steps every stall cycle individually, so this
#: runs at full weight no matter what the smoke profile sets.  That is
#: why it carries the `slow` marker (`make smoke` deselects it; the
#: full tier-1 run always includes it).
SUITE_BUDGET = 2500

SUITE_KERNELS = ("mcf_like", "equake_like")

#: Empty — and the point of the exercise.  The horizon set exported by
#: ``CoreModel._scan_horizons`` (plus each model's ``_head_wakeup`` /
#: ``next_event_cycle`` overrides) is provably complete: every cell of
#: the leap-vs-stepped differential matches on full stats, including
#: the advance/rally models whose deferred wake-ups (iCFP's stale-rally
#: re-queue, fallback-mode flips, rally-pass endings) once escaped it.
#: ``make leap-audit`` sweeps all 24 kernels x 5 models to keep it
#: empty; if a cell ever lands here again, treat it as a regression in
#: the horizon contract, not a fact to record.
KNOWN_DIVERGENT = frozenset()


@pytest.mark.slow
@pytest.mark.parametrize("cls,kwargs", MODELS,
                         ids=[c.__name__ for c, _ in MODELS])
@pytest.mark.parametrize("kernel", SUITE_KERNELS)
def test_idle_skip_is_timing_neutral_on_suite_kernels(cls, kwargs, kernel):
    """Leap equivalence over real miss-heavy suite kernels (full stats)."""
    from repro.workloads import trace_by_name

    assert (kernel, cls.__name__) not in KNOWN_DIVERGENT
    trace = trace_by_name(kernel, SUITE_BUDGET)
    fast = cls(trace, config=MachineConfig.hpca09(), **kwargs).run()
    slow = cls(trace, config=MachineConfig.hpca09(), leap=False,
               **kwargs).run()
    assert_stats_equal(fast, slow, f"{kernel}/{cls.__name__}")
