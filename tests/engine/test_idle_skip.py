"""The event-horizon leap must be a pure optimisation.

Every model's cycle count with leaping enabled must equal a
cycle-by-cycle simulation.  This is the load-bearing guard for the
`_leap_to_horizon` machinery (a leap past a wake-up event would change
reported performance, not just speed)."""

import pytest

from repro.baselines import InOrderCore, MultipassCore, RunaheadCore, SLTPCore
from repro.core.icfp import ICFPCore, ICFPFeatures
from repro.functional import run_program
from repro.isa import Assembler, R, assemble_text
from repro.pipeline import MachineConfig


def no_skip(core):
    assert hasattr(core, "_leap_to_horizon")
    core._leap_to_horizon = lambda: None
    return core


def programs():
    # A miss-heavy mix: independent misses, a dependent chain, stores.
    a = Assembler("mix")
    chain = [0x60000, 0x70000, 0x80000]
    for here, there in zip(chain, chain[1:]):
        a.word(here, there)
    a.word(chain[-1], 7)
    a.li(R.r1, chain[0])
    a.ld(R.r1, R.r1, 0)
    a.ld(R.r1, R.r1, 0)
    a.li(R.r4, 0x90000)
    a.ld(R.r5, R.r4, 0)
    a.add(R.r6, R.r5, R.r1)
    a.li(R.r7, 0x2000)
    a.st(R.r6, R.r7, 0)
    a.ld(R.r8, R.r7, 0)
    for _ in range(30):
        a.addi(R.r9, R.r9, 1)
    a.halt()
    yield a.assemble()

    yield assemble_text(
        """
        li r1, 0
        li r2, 40
        loop:
            addi r1, r1, 1
            mul r3, r1, r1
            bne r1, r2, loop
        halt
        """
    )


MODELS = [
    (InOrderCore, {}),
    (RunaheadCore, {"advance_on": "l2"}),
    (MultipassCore, {}),
    (SLTPCore, {"advance_on": "all"}),
    (ICFPCore, {"features": ICFPFeatures()}),
]


@pytest.mark.parametrize("cls,kwargs", MODELS,
                         ids=[c.__name__ for c, _ in MODELS])
def test_idle_skip_is_timing_neutral(cls, kwargs):
    for program in programs():
        trace = run_program(program)
        fast = cls(trace, config=MachineConfig.hpca09(), **kwargs).run()
        slow_core = no_skip(cls(trace, config=MachineConfig.hpca09(), **kwargs))
        slow = slow_core.run()
        assert fast.cycles == slow.cycles, program.name
        assert fast.instructions == slow.instructions
