"""Unit tests for the base in-order timing model."""

import pytest

from repro.baselines.inorder import InOrderCore
from repro.engine import SimulationDiverged
from repro.functional import run_program
from repro.isa import Assembler, R, assemble_text
from repro.memory import CacheConfig, HierarchyConfig
from repro.pipeline import MachineConfig


def quick_config(**over):
    """Small-memory config so unit tests stay deterministic and fast."""
    base = dict(l2_hit_latency=20)
    cfg = MachineConfig.hpca09(**base)
    return cfg


def sim_text(text, config=None, max_instructions=100_000):
    trace = run_program(assemble_text(text), max_instructions=max_instructions)
    core = InOrderCore(trace, config=config or quick_config())
    return core.run()


def test_empty_ish_program():
    r = sim_text("halt")
    assert r.instructions == 1
    assert r.cycles >= 1


def test_all_instructions_commit():
    r = sim_text(
        """
        li r1, 10
        li r2, 0
        loop:
            addi r2, r2, 1
            bne r2, r1, loop
        halt
        """
    )
    assert r.instructions == 2 + 10 * 2 + 1


def test_ipc_bounded_by_width():
    r = sim_text("\n".join(["addi r1, r1, 1"] * 200 + ["halt"]))
    assert r.ipc <= 2.0 + 1e-9


def test_independent_alu_pairs_dual_issue():
    # Alternating chains let 2 instructions issue per cycle.
    body = []
    for _ in range(100):
        body.append("addi r1, r1, 1")
        body.append("addi r2, r2, 1")
    r = sim_text("\n".join(body + ["halt"]))
    assert r.ipc > 1.2  # clearly exploiting both int ports


def test_dependent_chain_is_serialised():
    r = sim_text("\n".join(["addi r1, r1, 1"] * 200 + ["halt"]))
    r2 = sim_text(
        "\n".join(
            ["addi r1, r1, 1", "addi r2, r2, 1"] * 100 + ["halt"]
        )
    )
    assert r2.cycles < r.cycles  # independent pairs beat a serial chain


def test_multiply_latency_visible():
    serial_mul = "\n".join(["mul r1, r1, r1"] * 50 + ["halt"])
    serial_add = "\n".join(["addi r1, r1, 1"] * 50 + ["halt"])
    assert sim_text(serial_mul).cycles > sim_text(serial_add).cycles + 100


def test_load_miss_stalls_at_use_not_at_miss():
    """Independent work after a missing load proceeds; the first use stalls."""
    use_now = sim_text(
        """
        li r1, 0x80000
        ld r2, r1, 0        # cold L2 miss
        addi r3, r2, 1      # immediate use
        halt
        """
    )
    use_later = sim_text(
        """
        li r1, 0x80000
        ld r2, r1, 0        # cold L2 miss
        """
        + "\n".join(["addi r4, r4, 1"] * 100)
        + """
        addi r3, r2, 1
        halt
        """
    )
    # 100 filler instructions hide under the miss: roughly equal cycles.
    assert use_later.cycles < use_now.cycles + 120
    assert use_later.instructions == use_now.instructions + 100


def test_independent_misses_overlap_in_baseline():
    """Two independent cold misses issued back-to-back share latency."""
    one_miss = sim_text(
        """
        li r1, 0x80000
        ld r2, r1, 0
        addi r3, r2, 1
        halt
        """
    )
    two_misses = sim_text(
        """
        li r1, 0x80000
        li r4, 0xA0000
        ld r2, r1, 0
        ld r5, r4, 0
        addi r3, r2, 1
        addi r6, r5, 1
        halt
        """
    )
    assert two_misses.cycles < one_miss.cycles + 100  # overlapped, not serial


def test_dependent_misses_serialise_in_baseline():
    a = Assembler()
    # Pointer chain: mem[0x80000] -> 0xA0000, mem[0xA0000] -> 0xC0000.
    a.word(0x80000, 0xA0000)
    a.word(0xA0000, 0xC0000)
    a.li(R.r1, 0x80000)
    a.ld(R.r1, R.r1, 0)
    a.ld(R.r1, R.r1, 0)
    a.addi(R.r2, R.r1, 0)
    a.halt()
    trace = run_program(a.assemble())
    r = InOrderCore(trace, config=quick_config()).run()
    assert r.cycles > 800  # two serialised ~400-cycle misses


def test_store_then_load_forwards():
    r = sim_text(
        """
        li r1, 0x2000
        li r2, 5
        st r2, r1, 0
        ld r3, r1, 0
        addi r4, r3, 1
        halt
        """
    )
    assert r.stats.store_forward_hits == 1


def test_committed_memory_matches_functional():
    text = """
        li r1, 0x2000
        li r2, 1
        li r3, 0
        loop:
            st r3, r1, 0
            addi r1, r1, 8
            addi r3, r3, 1
            bne r3, r2, loop
        st r3, r1, 0
        halt
    """
    trace = run_program(assemble_text(text))
    core = InOrderCore(trace, config=quick_config())
    core.run()
    for addr, value in core.committed_memory.items():
        assert trace.final_state.memory[addr] == value
    assert set(core.committed_memory) == {
        a for a, _ in trace.final_state.memory.items()
    }


def test_branch_mispredict_costs_cycles():
    """Data-dependent unpredictable branches slow execution down."""
    predictable = sim_text(
        """
        li r1, 0
        li r2, 400
        loop:
            addi r1, r1, 1
            bne r1, r2, loop
        halt
        """
    )
    # A pseudo-random alternating branch pattern on the same trip count.
    noisy = sim_text(
        """
        li r1, 0
        li r2, 400
        li r5, 0x9E3779B9
        li r6, 0
        loop:
            addi r1, r1, 1
            mul r6, r6, r5
            addi r6, r6, 17
            shli r7, r6, 33
            shr  r7, r7, r1
            andi r7, r7, 1
            beq r7, r0, skip
            nop
        skip:
            bne r1, r2, loop
        halt
        """
    )
    assert noisy.stats.branch_mispredicts > 20


def test_simulation_diverged_guard():
    import dataclasses

    cfg = dataclasses.replace(quick_config(), max_cycles=10)
    trace = run_program(assemble_text("\n".join(["nop"] * 100 + ["halt"])))
    with pytest.raises(SimulationDiverged):
        InOrderCore(trace, config=cfg).run()


def test_stall_breakdown_accumulates():
    trace = run_program(
        assemble_text(
            """
            li r1, 0x80000
            ld r2, r1, 0
            addi r3, r2, 1
            halt
            """
        )
    )
    core = InOrderCore(trace, config=quick_config())
    core.run()
    assert core.stats.stalls.src_wait > 0


def test_mlp_meters_record_misses():
    trace = run_program(
        assemble_text(
            """
            li r1, 0x80000
            li r2, 0xA0000
            ld r3, r1, 0
            ld r4, r2, 0
            addi r5, r3, 1
            addi r6, r4, 1
            halt
            """
        )
    )
    core = InOrderCore(trace, config=quick_config())
    r = core.run()
    assert r.stats.l2_misses == 2
    assert r.stats.l2_mlp.average() > 1.5  # the two misses overlapped
