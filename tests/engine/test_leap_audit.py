"""The full leap-vs-stepped differential sweep (``make leap-audit``).

The event-horizon leap's correctness contract is that the horizon set
scanned by ``CoreModel._scan_horizons`` is *complete*: every deferred
action of every mode is represented, so a leap can never skip work a
stepped cycle would have done.  This module is the contract's guard at
full width — every suite kernel, every machine model, two instruction
budgets, full-stats equality between the leap engine and the
cycle-by-cycle reference engine (``leap=False``).

It also pins the four cells that historically diverged (the old
``KNOWN_DIVERGENT`` set of tests/engine/test_idle_skip.py) through the
batched backend at several widths: those cells exercised exactly the
wake-ups the horizon set used to miss (runahead exit edges, multipass
re-scan triggers, iCFP's stale-rally re-queue and fallback-mode flips),
so they are the first place a future regression would surface.
"""

from __future__ import annotations

import json

import pytest

from repro.baselines import InOrderCore, MultipassCore, RunaheadCore, SLTPCore
from repro.core.icfp import ICFPCore, ICFPFeatures
from repro.exec import SimJob, run_jobs
from repro.exec.store import result_to_payload
from repro.pipeline import MachineConfig
from repro.workloads import ALL_KERNELS, trace_by_name

MODELS = [
    (InOrderCore, {}),
    (RunaheadCore, {"advance_on": "l2"}),
    (MultipassCore, {}),
    (SLTPCore, {"advance_on": "all"}),
    (ICFPCore, {"features": ICFPFeatures()}),
]

#: Two budgets on purpose: the short one ends runs inside advance/rally
#: episodes (exit-edge wake-ups), the long one accumulates enough slice
#: pressure to reach the fallback modes (slice-full, store-buffer-full).
BUDGETS = (800, 2500)

STAT_FIELDS = ("loads", "stores", "branches", "l1d_misses", "l2_misses")


@pytest.mark.slow
@pytest.mark.parametrize("budget", BUDGETS)
@pytest.mark.parametrize("kernel", ALL_KERNELS)
def test_leap_equals_stepped_everywhere(kernel, budget):
    """Full-stats leap-vs-stepped equality on every (kernel, model)."""
    trace = trace_by_name(kernel, budget)
    for cls, kwargs in MODELS:
        fast = cls(trace, config=MachineConfig.hpca09(), **kwargs).run()
        slow = cls(trace, config=MachineConfig.hpca09(), leap=False,
                   **kwargs).run()
        label = f"{kernel}/{cls.__name__}@{budget}"
        assert fast.cycles == slow.cycles, label
        assert fast.instructions == slow.instructions, label
        for field in STAT_FIELDS:
            assert getattr(fast.stats, field) == getattr(slow.stats, field), (
                f"{label}: {field}")


# ----------------------------------------------------------------------
# formerly-divergent cells through the batched backend
# ----------------------------------------------------------------------
#: The exact cells the old KNOWN_DIVERGENT set recorded, as (model name,
#: kernel) for the job engine.
FORMERLY_DIVERGENT = (
    ("multipass", "mcf_like"),
    ("runahead", "equake_like"),
    ("multipass", "equake_like"),
    ("icfp", "equake_like"),
)

BATCH_INSTRUCTIONS = 800


def _formerly_divergent_jobs():
    from repro.harness.experiment import ExperimentConfig

    # Two lanes per cell so every cell actually batches: same (model,
    # workload, instructions), different L2 latency.
    return [SimJob(model, kernel,
                   ExperimentConfig(instructions=BATCH_INSTRUCTIONS,
                                    l2_hit_latency=latency))
            for model, kernel in FORMERLY_DIVERGENT
            for latency in (20, 300)]


def _payloads(results):
    return [json.dumps(result_to_payload(r), sort_keys=True)
            for r in results]


def _timing_payloads(results):
    """Payloads minus the stall breakdown, which counts *attempts*: the
    reference engine re-tries a stalled head on every stepped cycle and
    bumps src_wait/port each time, while the leap engine skips straight
    over the dead window.  Everything timing-visible stays in."""
    payloads = []
    for result in results:
        payload = result_to_payload(result)
        payload["stats"].pop("stalls", None)
        for phase in payload.get("phases") or []:
            phase.pop("stalls", None)
        payloads.append(json.dumps(payload, sort_keys=True))
    return payloads


@pytest.mark.slow
@pytest.mark.parametrize("width", [2, 0])
def test_formerly_divergent_cells_batched(width, monkeypatch):
    """The once-divergent cells, batched at width 2 and unbounded, must
    be byte-identical to the scalar leap engine *and* to the scalar
    reference engine — batching and leaping both pure scheduling."""
    jobs = _formerly_divergent_jobs()
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    monkeypatch.delenv("REPRO_NO_LEAP", raising=False)
    scalar = run_jobs(jobs, workers=1, memo=False, store=False)

    monkeypatch.setenv("REPRO_NO_LEAP", "1")
    reference = run_jobs(jobs, workers=1, memo=False, store=False)
    monkeypatch.delenv("REPRO_NO_LEAP")
    assert _timing_payloads(scalar) == _timing_payloads(reference)

    monkeypatch.setenv("REPRO_BATCH", str(width))
    batched = run_jobs(jobs, workers=1, memo=False, store=False)
    assert _payloads(batched) == _payloads(scalar)
