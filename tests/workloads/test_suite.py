"""Tests for the workload suite and its archetypes."""

import dataclasses

import pytest

from repro.baselines import InOrderCore
from repro.functional import run_program
from repro.pipeline import MachineConfig
from repro.workloads import (
    ALL_KERNELS,
    SPECFP,
    SPECINT,
    KernelParams,
    build_kernel,
    build_suite,
    kernel_names,
    trace_by_name,
    trace_kernel,
)
from repro.workloads.archetypes import ARCHETYPES, COLD_BASE
from repro.workloads.builders import DATA_BASE, make_kernel


def test_suite_has_24_kernels_split_12_12():
    assert len(ALL_KERNELS) == 24
    assert len(SPECFP) == 12 and len(SPECINT) == 12
    assert set(SPECFP) | set(SPECINT) == set(ALL_KERNELS)


def test_kernel_names_are_honest():
    assert all(name.endswith("_like") for name in kernel_names())


def test_unknown_kernel_raises():
    with pytest.raises(KeyError):
        build_kernel("quake3_like")


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_every_kernel_assembles_and_traces(name):
    kernel = build_kernel(name)
    assert kernel.archetype in ARCHETYPES
    trace = trace_kernel(kernel, instructions=1500)
    assert len(trace) == 1500  # runs past the budget (never halts early)
    assert trace.num_loads > 0


def test_traces_are_deterministic():
    t1 = trace_by_name("mcf_like", 1000)
    t2 = trace_by_name("mcf_like", 1000)
    assert [d.pc for d in t1] == [d.pc for d in t2]
    assert [d.addr for d in t1] == [d.addr for d in t2]


def test_build_suite_subset():
    kernels = build_suite(["mcf_like", "mesa_like"])
    assert [k.name for k in kernels] == ["mcf_like", "mesa_like"]


def test_pointer_chase_is_dependent():
    """Each chase load's address comes from the previous chase load."""
    trace = trace_by_name("mcf_like", 2000)
    chain_loads = [d for d in trace
                   if d.is_load and d.addr is not None
                   and d.addr >= COLD_BASE and d.inst.imm == 0]
    values = {d.result for d in chain_loads}
    addrs = {d.addr for d in chain_loads}
    # The loaded pointers are the future addresses.
    assert len(values & addrs) > len(chain_loads) // 2


def test_pointer_chase_defeats_spatial_locality():
    trace = trace_by_name("mcf_like", 4000)
    chain = [d.addr for d in trace
             if d.is_load and d.addr >= COLD_BASE and d.inst.imm == 0]
    sequential = sum(1 for a, b in zip(chain, chain[1:]) if abs(b - a) == 64)
    assert sequential < len(chain) * 0.05


def test_streaming_is_strided():
    trace = trace_by_name("art_like", 3000)
    addrs = [d.addr for d in trace
             if d.is_load and d.addr is not None and d.addr < COLD_BASE]
    deltas = {b - a for a, b in zip(addrs, addrs[1:])}
    assert 64 in deltas  # art_like strides by one line


def test_pointer_chase_has_independent_arc_work():
    """mcf_like mixes the dependent chain with independent arc loads —
    the MLP advance execution mines."""
    trace = trace_by_name("mcf_like", 2000)
    arcs = [d for d in trace
            if d.is_load and d.addr is not None and d.addr < COLD_BASE]
    assert len(arcs) > 50


def test_random_access_is_scattered():
    trace = trace_by_name("gap_like", 5000)
    cold = [d.addr for d in trace
            if d.is_load and d.addr is not None and d.addr >= COLD_BASE]
    assert len(cold) > 10
    assert len({a // 64 for a in cold}) > len(cold) * 0.8  # mostly new lines


def test_branchy_kernel_mispredicts():
    cfg = MachineConfig.hpca09()
    core = InOrderCore(trace_by_name("gzip_like", 8000), config=cfg)
    r = core.run()
    assert r.stats.branch_mispredicts > 100  # data-dependent direction


def test_miss_rate_spread_matches_table2_ordering():
    """The suite must reproduce Table 2's qualitative spread: mcf/art
    extreme, mid-tier FP kernels, and a near-zero-miss compute group."""
    cfg = dataclasses.replace(MachineConfig.hpca09(), warm_dcache=True)

    def mpki(name):
        r = InOrderCore(trace_by_name(name, 8000), config=cfg).run()
        return r.stats.misses_per_ki()

    mcf_d, mcf_l2 = mpki("mcf_like")
    art_d, art_l2 = mpki("art_like")
    ammp_d, ammp_l2 = mpki("ammp_like")
    mesa_d, mesa_l2 = mpki("mesa_like")
    vortex_d, vortex_l2 = mpki("vortex_like")

    assert mcf_d > 100 and mcf_l2 > 50       # the memory-bound extreme
    assert art_d > 80                         # streaming extreme
    assert 5 < ammp_d < 60 and ammp_l2 > 0.5  # mid-tier with L2 misses
    assert mesa_d < 8 and mesa_l2 < 0.5       # cache-resident group
    assert vortex_d < 8 and vortex_l2 < 0.5


def test_fp_kernels_use_fp_ops():
    trace = trace_by_name("swim_like", 2000)
    assert any(d.opclass.value.startswith("fp") for d in trace)


def test_int_kernels_avoid_fp():
    trace = trace_by_name("gzip_like", 2000)
    assert not any(d.opclass.value.startswith("fp") for d in trace)


def test_make_kernel_runs_builder():
    params = KernelParams(iterations=4, footprint_bytes=4096)
    kernel = make_kernel("tiny", "pointer_chase",
                         ARCHETYPES["pointer_chase"], params, "test kernel")
    assert kernel.name == "tiny"
    trace = trace_kernel(kernel, instructions=500)
    assert trace.completed  # 4 iterations then halt


def test_hot_region_declared_by_table_kernels():
    assert build_kernel("gap_like").program.hot_region is not None
    assert build_kernel("gzip_like").program.hot_region is not None
    assert build_kernel("mcf_like").program.hot_region is None
