"""Unit tests for workload builder helpers."""

from repro.functional import run_program
from repro.isa import Assembler, R
from repro.workloads.builders import (
    DATA_BASE,
    KernelParams,
    emit_compute,
    footprint_words,
    make_kernel,
    rng_for,
)
from repro.workloads.archetypes import ARCHETYPES


def test_rng_is_deterministic_per_seed():
    p = KernelParams(seed=7)
    assert rng_for(p).random() == rng_for(p).random()
    assert rng_for(p).random() != rng_for(KernelParams(seed=8)).random()
    assert rng_for(p, salt=1).random() != rng_for(p, salt=2).random()


def test_footprint_words():
    assert footprint_words(KernelParams(footprint_bytes=1024)) == 128
    assert footprint_words(KernelParams(footprint_bytes=0)) == 8  # floor


def test_emit_compute_counts():
    a = Assembler()
    a.li(R.r3, 1)
    a.li(R.r4, 2)
    emit_compute(a, KernelParams(compute=5), R.r3, R.r4)
    a.halt()
    assert len(a.assemble()) == 8  # 2 li + 5 compute + halt


def test_emit_compute_fp_variant():
    a = Assembler()
    emit_compute(a, KernelParams(compute=4, use_fp=True), R.f1, R.f2)
    a.halt()
    ops = {i.op.value for i in a.assemble().instructions}
    assert "fadd" in ops and "fmul" in ops


def test_emit_compute_override_count():
    a = Assembler()
    emit_compute(a, KernelParams(compute=10), R.r3, R.r4, n=2)
    a.halt()
    assert len(a.assemble()) == 3


def test_make_kernel_carries_metadata():
    params = KernelParams(iterations=3, footprint_bytes=4096)
    kernel = make_kernel("k", "pointer_chase", ARCHETYPES["pointer_chase"],
                         params, "desc")
    assert kernel.name == "k"
    assert kernel.archetype == "pointer_chase"
    assert kernel.params is params
    assert kernel.description == "desc"
    trace = run_program(kernel.program, max_instructions=1000)
    assert trace.completed


def test_data_base_clear_of_code():
    from repro.isa.program import CODE_BASE

    assert DATA_BASE > CODE_BASE + (1 << 16)
