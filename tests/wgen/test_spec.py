"""WorkloadSpec identity, serialisation, and registry semantics."""

import pickle

import pytest

from repro.wgen import (
    PhaseSpec,
    WorkloadSpec,
    generate_suite,
    payload_to_spec,
    payload_to_suite,
    registered,
    resolve,
    resolve_workloads,
    spec_to_payload,
    suite_to_payload,
    with_phase_iterations,
    workload_name,
)
from repro.wgen import registry
from repro.workloads.builders import KernelParams


@pytest.fixture(autouse=True)
def clean_registry():
    registry.clear()
    yield
    registry.clear()


def spec_of(seed=3, iterations=64) -> WorkloadSpec:
    return WorkloadSpec(
        name=f"t{seed}",
        phases=(
            PhaseSpec("pointer_chase",
                      KernelParams(footprint_bytes=128 * 1024,
                                   iterations=iterations, seed=seed)),
            PhaseSpec("streaming",
                      KernelParams(hot_bytes=16 * 1024,
                                   iterations=iterations, seed=seed + 1)),
        ),
        seed=seed,
    )


def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(name="empty", phases=())
    with pytest.raises(ValueError):
        WorkloadSpec(name="", phases=spec_of().phases)
    with pytest.raises(ValueError):
        PhaseSpec("no_such_archetype", KernelParams())


def test_equal_specs_equal_fingerprints_distinct_distinct():
    assert spec_of().fingerprint == spec_of().fingerprint
    assert spec_of(3).fingerprint != spec_of(4).fingerprint
    # Any single knob must change the identity.
    tweaked = with_phase_iterations(spec_of(), 65)
    assert tweaked.fingerprint != spec_of().fingerprint


def test_spec_pickles_with_fingerprint_intact():
    spec = spec_of()
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.fingerprint == spec.fingerprint


def test_json_round_trip_exact():
    spec = spec_of()
    assert payload_to_spec(spec_to_payload(spec)) == spec
    suite = generate_suite(4, seed=9)
    rebuilt = payload_to_suite(suite_to_payload(suite))
    assert rebuilt == suite
    assert [s.fingerprint for s in rebuilt] == [s.fingerprint for s in suite]


def test_tampered_payload_fails_fingerprint_check():
    payload = spec_to_payload(spec_of())
    payload["phases"][0]["params"]["footprint_bytes"] = 999_424
    with pytest.raises(ValueError, match="fingerprint"):
        payload_to_spec(payload)


def test_workload_name_accepts_both_shapes():
    assert workload_name("mcf_like") == "mcf_like"
    assert workload_name(spec_of()) == spec_of().name


def test_registry_register_resolve_and_conflicts():
    spec = spec_of()
    registry.register(spec)
    assert resolve(spec.name) is spec
    assert registered() == {spec.name: spec}
    registry.register(spec)  # identical re-registration is a no-op
    different = with_phase_iterations(spec, 99)
    with pytest.raises(ValueError, match="different spec"):
        registry.register(different)
    with pytest.raises(ValueError, match="suite kernel"):
        registry.register(WorkloadSpec(name="mcf_like", phases=spec.phases))
    with pytest.raises(KeyError):
        resolve("nonexistent_workload")


def test_resolve_workloads_shorthands(tmp_path):
    import json

    suite = generate_suite(2, seed=11)
    path = tmp_path / "suite.json"
    path.write_text(json.dumps(suite_to_payload(suite)))
    resolved = resolve_workloads(
        ["mcf_like", f"@{path}", "gen:2:5", suite[0]])
    assert resolved[0] == "mcf_like"
    assert resolved[1:3] == suite
    assert [s.name for s in resolved[3:5]] == ["gen5_00", "gen5_01"]
    assert resolved[5] == suite[0]
    # Everything generated is now addressable by name.
    assert resolve("gen5_01").name == "gen5_01"
    with pytest.raises(ValueError, match="gen:N"):
        resolve_workloads(["gen:abc"])


def test_generate_suite_is_deterministic_and_diverse():
    a = generate_suite(8, seed=1)
    b = generate_suite(8, seed=1)
    assert a == b
    assert [s.fingerprint for s in a] == [s.fingerprint for s in b]
    assert len({s.fingerprint for s in a}) == 8
    assert generate_suite(8, seed=2) != a
    # The sampler spans more than one archetype across a small suite.
    assert len({p.archetype for s in a for p in s.phases}) >= 3
    with pytest.raises(ValueError):
        generate_suite(0, seed=1)
    with pytest.raises(ValueError):
        generate_suite(2, seed=1, archetypes=("warp_drive",))


def test_max_phases_is_honoured_and_nondefault_knobs_rename():
    deep = generate_suite(40, seed=3, max_phases=6)
    assert max(len(s.phases) for s in deep) > 3
    # Non-default sampler knobs yield different specs for the same
    # seed, so their names must not collide with the canonical series.
    canonical = generate_suite(2, seed=3)
    assert {s.name for s in deep}.isdisjoint({s.name for s in canonical})
    import repro.wgen.registry as reg
    for spec in canonical + deep:
        reg.register(spec)  # no name conflicts
