"""Phase composer: stitching, scoping, region isolation, determinism."""

import pytest

from repro.isa.assembler import Assembler, AssemblyError
from repro.isa.instructions import Opcode
from repro.wgen import PhaseSpec, WorkloadSpec, build_workload, phase_data_base
from repro.workloads.builders import KernelParams, PHASE_REGION_BYTES
from repro.workloads.suite import trace_kernel

KB = 1024


def three_phase_spec() -> WorkloadSpec:
    """The motivating chain: pointer-chase -> compute -> streaming."""
    return WorkloadSpec(
        name="chase_compute_stream",
        phases=(
            PhaseSpec("pointer_chase",
                      KernelParams(footprint_bytes=64 * KB, compute=2,
                                   iterations=40, seed=5)),
            PhaseSpec("compute",
                      KernelParams(footprint_bytes=32 * KB, hot_bytes=8 * KB,
                                   cold_period=16, compute=6, iterations=40,
                                   seed=6)),
            PhaseSpec("streaming",
                      KernelParams(hot_bytes=8 * KB, stride_bytes=16,
                                   compute=2, iterations=4, seed=7)),
        ),
    )


def test_subprogram_scopes_labels_and_redirects_halt():
    a = Assembler("scoped")
    a.label("top")
    with a.subprogram("p0", halt_to="next"):
        a.label("loop")
        a.addi(1, 1, -1)
        a.bne(1, 0, "loop")
        a.halt()
    a.label("next")
    a.halt()
    program = a.assemble()
    assert "p0.loop" in program.labels and "top" in program.labels
    kinds = [inst.op for inst in program.instructions]
    # The scoped halt became a jump; only the final halt remains.
    assert kinds.count(Opcode.HALT) == 1
    assert kinds[2] == Opcode.J
    assert program.instructions[2].target == "next"
    # Same fragment twice without scoping would collide.
    b = Assembler("collide")
    b.label("loop")
    with pytest.raises(AssemblyError, match="duplicate label"):
        b.label("loop")


def test_composed_program_has_no_halt_and_cycles_phases():
    kernel = build_workload(three_phase_spec())
    assert kernel.archetype == "pointer_chase>compute>streaming"
    assert all(inst.op != Opcode.HALT for inst in kernel.program.instructions)
    trace = trace_kernel(kernel, instructions=12_000)
    assert len(trace) == 12_000  # the budget bounds it, not a halt
    # Dynamic execution touches every phase's private data region.
    regions = {
        (dyn.addr - phase_data_base(0)) // PHASE_REGION_BYTES
        for dyn in trace if dyn.addr is not None
    }
    assert regions >= {0, 1, 2}


def test_single_phase_workload_loops_forever():
    spec = WorkloadSpec(
        name="solo",
        phases=(PhaseSpec("hash_join",
                          KernelParams(footprint_bytes=64 * KB,
                                       hot_bytes=8 * KB,
                                       unpredictable_branches=0.5,
                                       chain_depth=2, stores=True,
                                       iterations=16, seed=3)),),
    )
    trace = trace_kernel(build_workload(spec), instructions=4_000)
    assert len(trace) == 4_000
    assert trace.num_stores > 0


def test_composition_is_deterministic():
    spec = three_phase_spec()
    a, b = build_workload(spec), build_workload(spec)
    assert [repr(i) for i in a.program.instructions] == \
        [repr(i) for i in b.program.instructions]
    assert a.program.data == b.program.data
    ta = trace_kernel(a, instructions=3_000)
    tb = trace_kernel(b, instructions=3_000)
    assert [(d.pc, d.addr, d.result) for d in ta] == \
        [(d.pc, d.addr, d.result) for d in tb]


def test_new_archetypes_compose_with_old():
    spec = WorkloadSpec(
        name="join_then_gemm",
        phases=(
            PhaseSpec("hash_join",
                      KernelParams(footprint_bytes=128 * KB, chain_depth=2,
                                   unpredictable_branches=1.0,
                                   iterations=48, seed=8)),
            PhaseSpec("blocked_matrix",
                      KernelParams(footprint_bytes=256 * KB, hot_bytes=8 * KB,
                                   stride_bytes=1024, stores=True,
                                   use_fp=True, iterations=8, seed=9)),
        ),
    )
    trace = trace_kernel(build_workload(spec), instructions=8_000)
    assert len(trace) == 8_000
    assert trace.num_loads > 0 and trace.num_branches > 0


def test_every_phase_hot_region_survives_composition():
    spec = WorkloadSpec(
        name="two_hot",
        phases=(
            PhaseSpec("random_access",
                      KernelParams(hot_bytes=8 * KB, cold_period=8,
                                   iterations=32, seed=1)),
            PhaseSpec("hash_join",
                      KernelParams(hot_bytes=8 * KB, footprint_bytes=64 * KB,
                                   iterations=32, seed=2)),
        ),
    )
    program = build_workload(spec).program
    # Both phases declared hot tables; warm-up must see both (a single
    # last-wins region would leave phase 0's table cold).
    assert len(program.hot_regions) == 2
    lo0, hi0 = program.hot_regions[0]
    lo1, hi1 = program.hot_regions[1]
    assert hi0 <= lo1  # distinct per-phase regions, in phase order
    assert program.hot_region == program.hot_regions[-1]
