"""The PR's acceptance path, pinned as a test: a seeded 8-workload
generated suite runs through ``run_suite``, a sweep, and a figure grid;
a second pass over all three campaigns is served entirely from the
persistent store (zero recomputed simulations); and the characterisation
pipeline reports a Table-2-style row for every generated kernel.
"""

import pytest

from repro.exec import RESULT_CACHE, ResultStore
from repro.harness.experiment import ExperimentConfig, run_suite
from repro.harness.figures import figure5, format_figure5
from repro.harness.sweep import poison_bits_sweep
from repro.wgen import (
    characterize_suite,
    format_characterizations,
    generate_suite,
)
from repro.wgen import registry

CFG = ExperimentConfig(instructions=400)


@pytest.fixture(autouse=True)
def clean_registry():
    registry.clear()
    yield
    registry.clear()


def campaigns(suite, store):
    """run_suite + one sweep + one figure grid over the suite."""
    table = run_suite(("in-order", "icfp"), suite, CFG, jobs=1, store=store)
    sweep = poison_bits_sweep(widths=(1, 8), workloads=suite, config=CFG,
                              store=store)
    figure = figure5(CFG, workloads=suite, store=store)
    return table, sweep, figure


def test_generated_suite_end_to_end_with_incremental_second_pass(tmp_path):
    suite = generate_suite(8, seed=42)
    store = ResultStore(str(tmp_path / "store"))

    RESULT_CACHE.clear()
    table, sweep, figure = campaigns(suite, store)
    assert store.writes > 0
    first_writes = store.writes

    names = [spec.name for spec in suite]
    assert sorted(table) == sorted(names)
    assert all(set(runs) == {"in-order", "icfp"} for runs in table.values())
    assert figure.workloads == names
    assert set(sweep.ratios[1]) == set(names)

    # Second pass, fresh memo + fresh store instance: everything must
    # come off disk — zero recomputed sims means zero new records.
    RESULT_CACHE.clear()
    reader = ResultStore(str(tmp_path / "store"))
    table2, sweep2, figure2 = campaigns(suite, reader)
    assert reader.writes == 0, "second pass recomputed simulations"
    assert reader.misses == 0
    assert reader.hits == first_writes
    assert {w: {m: r.cycles for m, r in runs.items()}
            for w, runs in table2.items()} == \
        {w: {m: r.cycles for m, r in runs.items()}
         for w, runs in table.items()}
    assert sweep2.ratios == sweep.ratios
    assert figure2.percent == figure.percent

    # The figure formats with generated names and no empty SPEC groups.
    text = format_figure5(figure)
    assert "gen42_00" in text and "nan" not in text


def test_characterization_reports_every_generated_kernel():
    suite = generate_suite(8, seed=42)
    rows = characterize_suite(suite, instructions=400)
    assert [row.name for row in rows] == [spec.name for spec in suite]
    for row, spec in zip(rows, suite):
        assert row.instructions == 400
        assert row.mix == spec.archetype_mix
        assert row.loads_per_ki > 0
        assert row.footprint_lines > 0
    text = format_characterizations(rows)
    for spec in suite:
        assert spec.name in text
    assert "D$/KI" in text and "L2/KI" in text


def test_cli_wgen_generate_then_campaign_from_spec_file(tmp_path, capsys):
    from repro.harness.cli import main

    spec_file = tmp_path / "suite.json"
    assert main(["wgen", "generate", "-N", "3", "--seed", "5",
                 "-o", str(spec_file)]) == 0
    capsys.readouterr()
    assert main(["figure5", "-w", f"@{spec_file}", "-n", "400",
                 "-j", "1"]) == 0
    out = capsys.readouterr().out
    assert "gen5_00" in out and "gen5_02" in out
    assert main(["wgen", "characterize", "-w", f"@{spec_file}",
                 "-n", "400"]) == 0
    out = capsys.readouterr().out
    assert "gen5_01" in out and "brMP/KI" in out
