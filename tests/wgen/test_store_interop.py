"""Generated workloads through the persistent store (3-tier path).

Extends the ``tests/exec/test_store.py`` pattern to generated suites:
results round-trip through ``.repro-cache/`` records exactly, and a
re-run in a *fresh process* (not just a cleared memo) is all-hits.
"""

import os
import subprocess
import sys

from repro.exec import RESULT_CACHE, ResultStore, SimJob, run_jobs
from repro.exec.store import result_to_payload
from repro.harness.experiment import ExperimentConfig
from repro.wgen import generate_suite

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")

CFG = ExperimentConfig(instructions=500)
MODELS = ("in-order", "icfp")


def generated_jobs():
    return [SimJob(model, spec, CFG)
            for spec in generate_suite(2, seed=17) for model in MODELS]


def test_generated_results_round_trip_and_rerun_is_all_hits(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    jobs = generated_jobs()
    RESULT_CACHE.clear()
    first = run_jobs(jobs, workers=1, store=store)
    assert store.writes == len(jobs) and store.hits == 0

    # Fresh-process stand-in: cleared RAM memo, new store instance.
    RESULT_CACHE.clear()
    reader = ResultStore(str(tmp_path / "store"))
    second = run_jobs(generated_jobs(), workers=1, store=reader)
    assert reader.hits == len(jobs)
    assert reader.writes == 0 and reader.misses == 0
    for a, b in zip(first, second):
        assert result_to_payload(a) == result_to_payload(b)
        assert a.workload.startswith("gen17_")


#: Fresh-process half: replay the same generated grid against the store
#: the parent populated; print hits/misses/writes.
_RERUN = """
import sys
sys.path.insert(0, "src")
from repro.exec import RESULT_CACHE, ResultStore, SimJob, run_jobs
from repro.harness.experiment import ExperimentConfig
from repro.wgen import generate_suite

store = ResultStore(sys.argv[1])
jobs = [SimJob(model, spec, ExperimentConfig(instructions=500))
        for spec in generate_suite(2, seed=17)
        for model in ("in-order", "icfp")]
results = run_jobs(jobs, workers=1, store=store)
print(store.hits, store.misses, store.writes, len(results))
"""


def test_rerun_in_actual_fresh_process_is_all_hits(tmp_path):
    store_dir = str(tmp_path / "store")
    RESULT_CACHE.clear()
    jobs = generated_jobs()
    run_jobs(jobs, workers=1, store=ResultStore(store_dir))

    out = subprocess.run([sys.executable, "-c", _RERUN, store_dir],
                         capture_output=True, text=True, timeout=180,
                         cwd=REPO_ROOT,
                         env=dict(os.environ, PYTHONHASHSEED="7"))
    assert out.returncode == 0, out.stderr
    hits, misses, writes, count = map(int, out.stdout.split())
    assert count == len(jobs)
    assert (hits, misses, writes) == (len(jobs), 0, 0), (
        "a fresh process recomputed generated-workload cells the store "
        "already held"
    )
