"""Characterisation-pipeline sanity against known workload signatures."""

from repro.wgen import PhaseSpec, WorkloadSpec, characterize
from repro.workloads.builders import KernelParams

BUDGET = 3000


def test_pointer_chaser_vs_resident_compute_signatures():
    mcf = characterize("mcf_like", BUDGET)
    mesa = characterize("mesa_like", BUDGET)
    # The canonical chaser: deep dependent-load chains, DRAM-class
    # locality.  The rasteriser: shallow chains, cache-resident.
    assert mcf.chained_load_fraction > 0.5
    assert mcf.max_chain_depth > 10 * max(1, mesa.max_chain_depth)
    assert mcf.l2_mpki > mesa.l2_mpki
    assert mcf.footprint_lines > mesa.footprint_lines
    assert mcf.mix == "pointer_chase" and mesa.mix == "compute"


def test_branch_entropy_proxy_tracks_the_knob():
    def join(entropy, name):
        return WorkloadSpec(name=name, phases=(
            PhaseSpec("hash_join",
                      KernelParams(footprint_bytes=64 * 1024,
                                   hot_bytes=8 * 1024,
                                   unpredictable_branches=entropy,
                                   chain_depth=1, iterations=64, seed=13)),))

    tame = characterize(join(0.0, "tame"), BUDGET)
    wild = characterize(join(1.0, "wild"), BUDGET)
    # All-zero payloads make the match branch static; random payloads
    # make it a coin flip the 2-bit counters cannot learn.
    assert wild.branch_mpki > tame.branch_mpki + 20


def test_miss_proxies_order_footprints():
    def stream(footprint_kb, name):
        return WorkloadSpec(name=name, phases=(
            PhaseSpec("streaming",
                      KernelParams(hot_bytes=footprint_kb * 1024,
                                   stride_bytes=64, compute=0,
                                   iterations=32, seed=4)),))

    small = characterize(stream(8, "small_ws"), BUDGET)
    large = characterize(stream(512, "large_ws"), BUDGET)
    assert large.footprint_lines > small.footprint_lines
    assert large.d_mpki > small.d_mpki


def test_per_phase_proxies_decompose_the_whole_program():
    spec = WorkloadSpec(name="two_face", phases=(
        PhaseSpec("pointer_chase",
                  KernelParams(footprint_bytes=1 << 20, iterations=32,
                               seed=5)),
        PhaseSpec("streaming",
                  KernelParams(hot_bytes=8 * 1024, stride_bytes=64,
                               compute=0, iterations=32, seed=6)),
    ))
    row = characterize(spec, BUDGET)
    assert len(row.phases) == 2
    assert [p.name for p in row.phases] == ["p0:pointer_chase",
                                            "p1:streaming"]
    # Instruction counts decompose exactly; miss proxies decompose
    # because every tag-array miss is charged to exactly one phase.
    assert sum(p.instructions for p in row.phases) == row.instructions
    d_total = sum(p.d_mpki * p.instructions / 1000.0 for p in row.phases)
    assert abs(d_total - row.d_mpki * row.instructions / 1000.0) < 1e-6
    # The functional view separates the phases' characters: the chaser
    # phase misses the L2; the hot streaming phase stays resident.
    chase, stream = row.phases
    assert chase.l2_mpki > stream.l2_mpki
    assert row.mix == "pointer_chase>streaming"


def test_single_phase_characterisation_has_no_phase_rows():
    assert characterize("mcf_like", BUDGET).phases == ()
