"""Characterisation-pipeline sanity against known workload signatures."""

from repro.wgen import PhaseSpec, WorkloadSpec, characterize
from repro.workloads.builders import KernelParams

BUDGET = 3000


def test_pointer_chaser_vs_resident_compute_signatures():
    mcf = characterize("mcf_like", BUDGET)
    mesa = characterize("mesa_like", BUDGET)
    # The canonical chaser: deep dependent-load chains, DRAM-class
    # locality.  The rasteriser: shallow chains, cache-resident.
    assert mcf.chained_load_fraction > 0.5
    assert mcf.max_chain_depth > 10 * max(1, mesa.max_chain_depth)
    assert mcf.l2_mpki > mesa.l2_mpki
    assert mcf.footprint_lines > mesa.footprint_lines
    assert mcf.mix == "pointer_chase" and mesa.mix == "compute"


def test_branch_entropy_proxy_tracks_the_knob():
    def join(entropy, name):
        return WorkloadSpec(name=name, phases=(
            PhaseSpec("hash_join",
                      KernelParams(footprint_bytes=64 * 1024,
                                   hot_bytes=8 * 1024,
                                   unpredictable_branches=entropy,
                                   chain_depth=1, iterations=64, seed=13)),))

    tame = characterize(join(0.0, "tame"), BUDGET)
    wild = characterize(join(1.0, "wild"), BUDGET)
    # All-zero payloads make the match branch static; random payloads
    # make it a coin flip the 2-bit counters cannot learn.
    assert wild.branch_mpki > tame.branch_mpki + 20


def test_miss_proxies_order_footprints():
    def stream(footprint_kb, name):
        return WorkloadSpec(name=name, phases=(
            PhaseSpec("streaming",
                      KernelParams(hot_bytes=footprint_kb * 1024,
                                   stride_bytes=64, compute=0,
                                   iterations=32, seed=4)),))

    small = characterize(stream(8, "small_ws"), BUDGET)
    large = characterize(stream(512, "large_ws"), BUDGET)
    assert large.footprint_lines > small.footprint_lines
    assert large.d_mpki > small.d_mpki
