"""Rally forward progress under set-thrashing generated workloads.

The first procedurally generated suites exposed an iCFP livelock: a
rallied load whose line is evicted between passes (every load of a
4 KB-strided kernel maps to two D$ sets) re-qualified for advance on
*every* visit under ``advance_on="all"``, re-poisoned itself forever,
and the slice never drained — `repro figure6 -w gen:2:13` hung.  The
fix bounds chained re-advance (``_MAX_RALLY_REDEFERS``): after a few
re-deferrals the rally blocks on the fill and merges.  The wide probe
(24 kernels x 5 models + advance-all / L2-50 / blocking-rally corners)
is byte-identical with the bound in place — it never fires on the
named suite.
"""

import dataclasses

from repro.core.icfp import ICFPFeatures
from repro.exec.cache import TRACE_CACHE
from repro.functional import run_program
from repro.harness.experiment import ExperimentConfig, make_core
from repro.isa.assembler import Assembler
from repro.isa.registers import R
from repro.wgen import generate_suite


def thrashing_fmadd_kernel():
    """Minimal reproducer: 4 KB-strided loads (two D$ sets) feeding a
    3-source accumulation chain — every load's line is gone again by
    the time the rally revisits it."""
    a = Assembler("thrash")
    stride = 4096
    for i in range(0, 256 * stride, stride):
        a.word(0x100000 + i, i % 97 + 1)
    a.li(R.r9, 0x100000)
    a.li(R.r2, 1 << 30)
    a.label("loop")
    a.ldf(R.f2, R.r9, 0)
    a.fmadd(R.f3, R.f2, R.f2, R.f3)
    a.addi(R.r9, R.r9, stride)
    a.addi(R.r2, R.r2, -1)
    a.bne(R.r2, R.r0, "loop")
    a.halt()
    return a.assemble()


def icfp_all_config(instructions, l2_hit_latency=50):
    return dataclasses.replace(
        ExperimentConfig(instructions=instructions),
        l2_hit_latency=l2_hit_latency,
        icfp_features=ICFPFeatures(advance_on="all"),
    )


def test_thrashing_slice_loads_still_commit():
    trace = run_program(thrashing_fmadd_kernel(), max_instructions=600)
    cfg = dataclasses.replace(icfp_all_config(600), warm=False)
    result = make_core("icfp", trace, cfg).run()
    assert result.stats.instructions == 600
    assert result.cycles < 100_000  # pre-fix: livelocked past any bound


def test_generated_blocked_matrix_completes_at_high_latency():
    # The cell that originally hung figure6: gen13_00 (blocked_matrix)
    # on iCFP-all at a 50-cycle L2.
    spec = generate_suite(1, 13)[0]
    assert spec.archetype_mix == "blocked_matrix"
    trace = TRACE_CACHE.get(spec, 500)
    result = make_core("icfp", trace, icfp_all_config(500)).run()
    assert result.stats.instructions == 500
    assert result.cycles < 100_000
