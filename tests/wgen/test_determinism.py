"""Seed determinism across processes (mirrors test_fingerprint_stability).

A generated workload's identity chain — generator seed -> spec ->
fingerprint -> program -> trace -> store key — must be byte-stable
across processes and ``PYTHONHASHSEED`` values, or generated campaigns
would silently cold-start (or worse, collide) between runs.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")

#: Emits "spec_fp job_fp trace_sha" for one generated workload.
_PROBE = """
import hashlib, sys
sys.path.insert(0, "src")
from repro.exec import SimJob
from repro.exec.cache import TRACE_CACHE
from repro.harness.experiment import ExperimentConfig
from repro.wgen import generate_suite

spec = generate_suite(3, seed=21)[2]
job = SimJob("icfp", spec, ExperimentConfig(instructions=900))
trace = TRACE_CACHE.get(spec, 900)
payload = repr([(d.pc, d.addr, d.result, d.taken) for d in trace])
print(spec.fingerprint, job.fingerprint,
      hashlib.sha256(payload.encode()).hexdigest())
"""


def probe(hash_seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    out = subprocess.run([sys.executable, "-c", _PROBE], env=env,
                         capture_output=True, text=True, timeout=120,
                         cwd=REPO_ROOT)
    assert out.returncode == 0, out.stderr
    return out.stdout.strip()


def test_generated_workload_identity_stable_across_processes():
    lines = {probe(seed) for seed in ("0", "1", "12345")}
    assert len(lines) == 1, (
        "generated-workload spec fingerprint / job fingerprint / trace "
        "bytes drifted across PYTHONHASHSEED values — store keys would "
        "not survive a process boundary"
    )
    spec_fp, job_fp, trace_sha = lines.pop().split()
    assert len(spec_fp) == 64 and len(job_fp) == 64 and len(trace_sha) == 64
    assert len({spec_fp, job_fp, trace_sha}) == 3


def test_same_spec_same_trace_within_process():
    from repro.wgen import build_workload, generate_suite
    from repro.workloads.suite import trace_kernel

    spec = generate_suite(3, seed=21)[2]
    ta = trace_kernel(build_workload(spec), instructions=900)
    tb = trace_kernel(build_workload(spec), instructions=900)
    assert [(d.pc, d.addr, d.result, d.taken) for d in ta] == \
        [(d.pc, d.addr, d.result, d.taken) for d in tb]
