"""Per-phase attribution surfaces in the harness layers."""

from repro.harness import ExperimentConfig, figure5, phase_summary, run_suite
from repro.harness.phases import format_phase_table
from repro.harness.sweep import poison_bits_sweep
from repro.pipeline.stats import PHASE_COUNTERS
from repro.wgen import generate_suite

CFG = ExperimentConfig(instructions=600)

_SPECS = [s for s in generate_suite(4, 42) if len(s.phases) > 1][:1]


def test_run_suite_results_carry_phase_stats():
    results = run_suite(("in-order", "icfp"), _SPECS, CFG, jobs=1)
    summary = phase_summary(results)
    for spec in _SPECS:
        for model in ("in-order", "icfp"):
            rows = summary[spec.name][model]
            assert len(rows) == len(spec.phases)
            result = results[spec.name][model]
            for counter in PHASE_COUNTERS:
                assert (sum(row[counter] for row in rows)
                        == getattr(result.stats, counter))


def test_format_phase_table_lists_every_phase_and_total():
    results = run_suite(("icfp",), _SPECS, CFG, jobs=1)
    table = format_phase_table(results)
    spec = _SPECS[0]
    for index, phase in enumerate(spec.phases):
        assert f"p{index}:{phase.archetype}" in table
    assert "total" in table


def test_figure5_exposes_phase_summary():
    fig = figure5(CFG, workloads=_SPECS)
    rows = fig.phases[_SPECS[0].name]["icfp"]
    assert len(rows) == len(_SPECS[0].phases)


def test_sweep_exposes_phase_summary():
    sweep = poison_bits_sweep(widths=(1, 8), workloads=_SPECS, config=CFG)
    for width in (1, 8):
        rows = sweep.phases[width][_SPECS[0].name]
        assert len(rows) == len(_SPECS[0].phases)
        assert all(row["cycles"] >= 0 for row in rows)
