"""Tests for the experiment runner and aggregation helpers."""

import math

import pytest

from repro.engine.result import SimResult
from repro.harness import (
    MODELS,
    ExperimentConfig,
    geomean,
    group_geomeans,
    make_core,
    run_workload,
    selected_workloads,
    speedups_over_inorder,
)
from repro.pipeline.stats import CoreStats
from repro.workloads import ALL_KERNELS, trace_by_name


def test_models_list_matches_paper():
    assert MODELS == ("in-order", "runahead", "multipass", "sltp", "icfp")


def test_geomean():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([2.0]) == 2.0
    assert geomean([]) == 0.0
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_selected_workloads_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKLOADS", raising=False)
    assert selected_workloads() == list(ALL_KERNELS)
    monkeypatch.setenv("REPRO_WORKLOADS", "mcf_like, mesa_like")
    assert selected_workloads() == ["mcf_like", "mesa_like"]
    monkeypatch.setenv("REPRO_WORKLOADS", "doom_like")
    with pytest.raises(ValueError):
        selected_workloads()


def test_default_instructions_env(monkeypatch):
    monkeypatch.setenv("REPRO_INSTRUCTIONS", "1234")
    cfg = ExperimentConfig()
    assert cfg.instructions == 1234


def test_make_core_every_model():
    trace = trace_by_name("mesa_like", 300)
    config = ExperimentConfig(instructions=300)
    for model in MODELS:
        core = make_core(model, trace, config)
        assert core.name == model
    with pytest.raises(ValueError):
        make_core("tomasulo", trace, config)


def test_machine_config_l2_latency_applied():
    cfg = ExperimentConfig(l2_hit_latency=37)
    assert cfg.machine_config().hierarchy.l2.hit_latency == 37


def test_run_workload_shares_trace_and_counts_match():
    config = ExperimentConfig(instructions=1200)
    runs = run_workload("mesa_like", models=("in-order", "icfp"),
                        config=config)
    assert runs["in-order"].instructions == 1200
    assert runs["icfp"].instructions == 1200
    assert runs["in-order"].workload == "mesa_like"


def test_speedup_helpers():
    def result(model, cycles):
        stats = CoreStats()
        stats.cycles = cycles
        stats.instructions = 100
        return SimResult(model, "w", stats)

    results = {"w": {"in-order": result("in-order", 200),
                     "icfp": result("icfp", 100)}}
    ratios = speedups_over_inorder(results, "icfp")
    assert ratios == {"w": 2.0}


def test_group_geomeans_groups():
    per = {name: 1.1 for name in ALL_KERNELS}
    means = group_geomeans(per)
    assert means["SPEC"] == pytest.approx(1.1)
    assert means["SPECfp"] == pytest.approx(1.1)
    assert means["SPECint"] == pytest.approx(1.1)


def test_simresult_cross_workload_comparison_rejected():
    stats = CoreStats()
    stats.cycles = 10
    a = SimResult("icfp", "w1", stats)
    b = SimResult("in-order", "w2", stats)
    with pytest.raises(ValueError):
        a.speedup_over(b)
