"""Tests for the Figure 1 scenarios, Table 2 generator, and area model."""

import repro.harness.scenarios as scenarios_mod
from repro.area import PAPER_AREA_MM2, Structure, port_factor, scheme_area
from repro.harness import ExperimentConfig, run_scenario, table2
from repro.harness.scenarios import SCENARIOS, run_all_scenarios
from repro.harness.tables import format_area_table, format_table2


def test_all_six_scenarios_build_and_run():
    for key, builder in SCENARIOS.items():
        scenario = builder()
        cycles = run_scenario(scenario, models=("in-order", "icfp"))
        assert cycles["in-order"] > 0 and cycles["icfp"] > 0, key


def test_run_all_scenarios_is_incremental(monkeypatch):
    """A repeated scenario campaign comes entirely from the disk store."""
    monkeypatch.setenv("REPRO_JOBS", "1")
    models = ("in-order", "icfp")
    first = run_all_scenarios(models=models)
    computed = []
    monkeypatch.setattr(
        scenarios_mod, "_scenario_cell",
        lambda item: computed.append(item[0]))
    second = run_all_scenarios(models=models)
    assert computed == []
    assert second == first


def test_scenario_edit_invalidates_store_record(monkeypatch):
    """Changing a micro-program's content must bust its store key."""
    monkeypatch.setenv("REPRO_JOBS", "1")
    models = ("in-order",)
    first = run_all_scenarios(models=models)

    real_builder = SCENARIOS["a"]

    def edited_scenario_a():
        scenario = real_builder()
        scenario.program.instructions.append(
            scenario.program.instructions[-1])
        return scenario

    monkeypatch.setitem(SCENARIOS, "a", edited_scenario_a)
    computed = []
    real_cell = scenarios_mod._scenario_cell
    monkeypatch.setattr(
        scenarios_mod, "_scenario_cell",
        lambda item: (computed.append(item[0]), real_cell(item))[1])
    run_all_scenarios(models=models)
    assert computed == ["a"], "edited scenario served stale store record"

    # And the untouched scenarios still hit their original records.
    monkeypatch.setitem(SCENARIOS, "a", real_builder)
    computed.clear()
    assert run_all_scenarios(models=models) == first
    assert computed == []


def test_scenario_a_matches_figure_1a():
    """Lone L2 miss: iCFP commits under it; Runahead gains nothing."""
    scenario = SCENARIOS["a"]()
    cycles = run_scenario(scenario, models=("in-order", "runahead", "icfp"))
    assert cycles["icfp"] < cycles["in-order"]
    assert cycles["runahead"] >= cycles["in-order"] - 10


def test_scenario_c_dependent_misses():
    scenario = SCENARIOS["c"]()
    cycles = run_scenario(scenario, models=("in-order", "runahead", "icfp"))
    assert cycles["icfp"] < cycles["in-order"]
    # Runahead cannot shorten a two-long dependent chain materially.
    assert abs(cycles["runahead"] - cycles["in-order"]) < 100


def test_table2_rows_small_budget():
    cfg = ExperimentConfig(instructions=2500)
    rows = table2(config=cfg, workloads=("mesa_like", "gap_like"))
    assert [r.workload for r in rows] == ["mesa_like", "gap_like"]
    assert rows[1].d_miss_per_ki > rows[0].d_miss_per_ki
    text = format_table2(rows)
    assert "gap_like" in text and "Rally/KI" in text


# ----------------------------------------------------------------------
# area model
# ----------------------------------------------------------------------
def test_area_matches_paper_within_15_percent():
    for scheme, paper in PAPER_AREA_MM2.items():
        assert abs(scheme_area(scheme) - paper) / paper < 0.15, scheme


def test_area_orderings():
    assert scheme_area("runahead") < scheme_area("multipass")
    assert scheme_area("multipass") < scheme_area("sltp")
    assert scheme_area("icfp") < scheme_area("sltp")


def test_port_factor_monotone():
    assert port_factor(1) == 1.0
    assert port_factor(2) > port_factor(1)
    assert port_factor(3) > port_factor(2)


def test_structure_area_scales_with_bits():
    small = Structure("s", 16, 8)
    large = Structure("l", 32, 8)
    assert large.area_mm2 == 2 * small.area_mm2


def test_area_table_formatting():
    text = format_area_table()
    assert "icfp" in text and "chain table" in text
