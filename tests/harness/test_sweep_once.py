"""The sweeps must not repeat work: one in-order baseline and one trace
generation per workload, no matter how many sweep values run."""

import pytest

from repro.baselines.inorder import InOrderCore
from repro.exec import RESULT_CACHE, TRACE_CACHE
from repro.functional.executor import FunctionalExecutor
from repro.harness.experiment import ExperimentConfig
from repro.harness.sweep import chain_table_sweep, poison_bits_sweep

WORKLOADS = ("mesa_like", "crafty_like")


@pytest.fixture
def counters(monkeypatch):
    """Count in-order simulations and functional executions by workload."""
    counts = {"inorder": [], "trace": 0}

    real_run = InOrderCore.run

    def counting_run(self):
        counts["inorder"].append(self.trace.program.name)
        return real_run(self)

    real_exec = FunctionalExecutor.run

    def counting_exec(self, *args, **kwargs):
        counts["trace"] += 1
        return real_exec(self, *args, **kwargs)

    monkeypatch.setattr(InOrderCore, "run", counting_run)
    monkeypatch.setattr(FunctionalExecutor, "run", counting_exec)
    # Both caches start cold, and everything stays in this process so
    # the monkeypatched counters observe every simulation.
    monkeypatch.setenv("REPRO_JOBS", "1")
    TRACE_CACHE.clear()
    RESULT_CACHE.clear()
    return counts


def test_chain_table_sweep_runs_baseline_once_per_workload(counters):
    chain_table_sweep(sizes=(64, 128, 512), workloads=WORKLOADS,
                      config=ExperimentConfig(instructions=300))
    assert sorted(counters["inorder"]) == sorted(WORKLOADS)
    assert counters["trace"] == len(WORKLOADS)


def test_poison_bits_sweep_runs_baseline_once_per_workload(counters):
    poison_bits_sweep(widths=(1, 2, 4, 8), workloads=WORKLOADS,
                      config=ExperimentConfig(instructions=300))
    assert sorted(counters["inorder"]) == sorted(WORKLOADS)
    assert counters["trace"] == len(WORKLOADS)


def test_back_to_back_sweeps_share_the_memo(counters):
    cfg = ExperimentConfig(instructions=300)
    chain_table_sweep(sizes=(64, 512), workloads=WORKLOADS, config=cfg)
    baseline_runs = len(counters["inorder"])
    traces = counters["trace"]
    # The second sweep's baseline (and traces) come from the caches.
    poison_bits_sweep(widths=(1, 8), workloads=WORKLOADS, config=cfg)
    assert len(counters["inorder"]) == baseline_runs
    assert counters["trace"] == traces
