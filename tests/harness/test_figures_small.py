"""Smoke tests for the figure generators on tiny budgets.

The benchmarks run the real campaigns; these tests only verify the
plumbing — structure, labels, group means, and formatting — so they use
two kernels and a few hundred instructions.
"""

import pytest

from repro.harness import (
    ExperimentConfig,
    figure5,
    figure6,
    figure7,
    figure8,
    format_figure5,
    format_figure6,
    format_figure7,
    format_figure8,
)

TINY = ExperimentConfig(instructions=800)
DUO = ("mesa_like", "gap_like")


def test_figure5_structure():
    fig = figure5(TINY, workloads=DUO)
    assert fig.workloads == list(DUO)
    for model in ("runahead", "multipass", "sltp", "icfp"):
        assert set(fig.percent[model]) == set(DUO)
        assert set(fig.geomeans[model]) == {"SPECfp", "SPECint", "SPEC"}
    text = format_figure5(fig)
    assert "gap_like" in text and "gmean SPEC" in text


def test_figure6_structure():
    fig = figure6(latencies=(10, 30), workloads=["mesa_like"], config=TINY)
    assert fig.latencies == [10, 30]
    assert "in-order" in fig.percent and "iCFP-all" in fig.percent
    assert set(fig.percent["iCFP-all"]) == {10, 30}
    # A slower L2 cannot speed the in-order reference up.
    assert fig.percent["in-order"][10] >= fig.percent["in-order"][30]
    assert "L2 latency" in format_figure6(fig)


def test_figure7_structure():
    fig = figure7(TINY, workloads=DUO)
    assert len(fig.bars) == 5
    for bar in fig.bars:
        assert "gmean" in fig.percent[bar]
    assert "iCFP" in format_figure7(fig)


def test_figure8_structure():
    fig = figure8(TINY, workloads=DUO)
    assert len(fig.kinds) == 3
    assert set(fig.hops_per_load) == set(DUO)
    assert "hops/load" in format_figure8(fig)


def test_figure5_empty_workloads_yields_nan_means():
    import math

    fig = figure5(TINY, workloads=[])
    assert fig.workloads == []
    assert math.isnan(fig.geomeans["icfp"]["SPECfp"])
