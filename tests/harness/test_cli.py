"""Tests for the command-line interface."""

import os

import pytest

from repro.exec.store import ENGINE_VERSION, STORE_SCHEMA
from repro.harness.cli import build_parser, main


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_parser_has_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("characterize", "figure5", "figure6", "figure7",
                    "figure8", "table2", "scenarios", "area", "sweep", "run",
                    "cache", "phases"):
        assert command in text


def test_area_command(capsys):
    out = run_cli(capsys, "area")
    assert "icfp" in out and "mm^2" in out


def test_run_command_single_model(capsys):
    out = run_cli(capsys, "run", "mesa_like", "icfp", "-n", "800")
    assert "icfp" in out and "cycles" in out


def test_run_command_all_models(capsys):
    out = run_cli(capsys, "run", "vortex_like", "all", "-n", "600")
    for model in ("in-order", "runahead", "multipass", "sltp", "icfp"):
        assert model in out


def test_characterize_subset(capsys):
    out = run_cli(capsys, "characterize", "-w", "mesa_like", "-n", "800")
    assert "mesa_like" in out and "D$/KI" in out


def test_table2_subset(capsys):
    out = run_cli(capsys, "table2", "-w", "mesa_like", "-n", "800")
    assert "Rally/KI" in out


def test_figure5_subset(capsys):
    out = run_cli(capsys, "figure5", "-w", "mesa_like,vortex_like",
                  "-n", "600")
    assert "gmean SPEC" in out


def test_phases_command_breaks_down_generated_workloads(capsys):
    out = run_cli(capsys, "phases", "-w", "gen:2:42", "-m", "icfp",
                  "-n", "600", "-j", "1")
    assert "Per-phase attribution" in out
    # gen:2:42's first spec is multi-phase: per-phase rows plus a total.
    assert "p0:" in out and "p1:" in out and "total" in out


def test_phases_command_requires_workloads():
    with pytest.raises(SystemExit):
        main(["phases"])


def test_run_command_prints_phase_breakdown(capsys):
    out = run_cli(capsys, "run", "-w", "gen:2:42", "gen42_00", "icfp",
                  "-n", "600", "-j", "1")
    assert "p0:" in out and "p1:" in out


def test_unknown_kernel_rejected():
    with pytest.raises(SystemExit):
        main(["characterize", "-w", "quake_like"])


def test_run_rejects_unknown_model():
    with pytest.raises(SystemExit):
        main(["run", "mesa_like", "tomasulo"])


# ----------------------------------------------------------------------
# the disk store through the CLI
# ----------------------------------------------------------------------
def store_root():
    return os.environ["REPRO_CACHE_DIR"]  # per-test tmpdir (conftest)


def test_campaign_populates_store_and_cache_stats_reports_it(capsys):
    run_cli(capsys, "run", "mesa_like", "icfp", "-n", "400", "-j", "1")
    out = run_cli(capsys, "cache", "stats")
    assert "results" in out and "warm" in out
    assert os.path.isdir(os.path.join(store_root(), f"v{STORE_SCHEMA}",
                                  ENGINE_VERSION, "results"))


def test_no_store_flag_disables_result_records(capsys):
    run_cli(capsys, "run", "mesa_like", "icfp", "-n", "400", "-j", "1",
            "--no-store")
    assert not os.path.exists(os.path.join(store_root(), f"v{STORE_SCHEMA}"))


def test_cache_clear_empties_the_store(capsys):
    run_cli(capsys, "run", "mesa_like", "in-order", "-n", "400", "-j", "1")
    out = run_cli(capsys, "cache", "clear")
    assert "cleared" in out
    out = run_cli(capsys, "cache", "stats")
    total_line = next(line for line in out.splitlines() if "total" in line)
    assert total_line.split()[1] == "0"


def test_cache_gc_requires_older_than(capsys):
    with pytest.raises(SystemExit):
        main(["cache", "gc"])
    out = run_cli(capsys, "cache", "gc", "--older-than", "30")
    assert "gc:" in out
