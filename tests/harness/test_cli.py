"""Tests for the command-line interface."""

import os

import pytest

from repro.exec.store import ENGINE_VERSION, STORE_SCHEMA
from repro.harness.cli import build_parser, main


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_parser_has_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("characterize", "figure5", "figure6", "figure7",
                    "figure8", "table2", "scenarios", "area", "sweep", "run",
                    "cache", "phases"):
        assert command in text


def test_area_command(capsys):
    out = run_cli(capsys, "area")
    assert "icfp" in out and "mm^2" in out


def test_run_command_single_model(capsys):
    out = run_cli(capsys, "run", "mesa_like", "icfp", "-n", "800")
    assert "icfp" in out and "cycles" in out


def test_run_command_all_models(capsys):
    out = run_cli(capsys, "run", "vortex_like", "all", "-n", "600")
    for model in ("in-order", "runahead", "multipass", "sltp", "icfp"):
        assert model in out


def test_characterize_subset(capsys):
    out = run_cli(capsys, "characterize", "-w", "mesa_like", "-n", "800")
    assert "mesa_like" in out and "D$/KI" in out


def test_table2_subset(capsys):
    out = run_cli(capsys, "table2", "-w", "mesa_like", "-n", "800")
    assert "Rally/KI" in out


def test_figure5_subset(capsys):
    out = run_cli(capsys, "figure5", "-w", "mesa_like,vortex_like",
                  "-n", "600")
    assert "gmean SPEC" in out


def test_phases_command_breaks_down_generated_workloads(capsys):
    out = run_cli(capsys, "phases", "-w", "gen:2:42", "-m", "icfp",
                  "-n", "600", "-j", "1")
    assert "Per-phase attribution" in out
    # gen:2:42's first spec is multi-phase: per-phase rows plus a total.
    assert "p0:" in out and "p1:" in out and "total" in out


def test_phases_command_requires_workloads():
    with pytest.raises(SystemExit):
        main(["phases"])


def test_run_command_prints_phase_breakdown(capsys):
    out = run_cli(capsys, "run", "-w", "gen:2:42", "gen42_00", "icfp",
                  "-n", "600", "-j", "1")
    assert "p0:" in out and "p1:" in out


def test_unknown_kernel_rejected():
    with pytest.raises(SystemExit):
        main(["characterize", "-w", "quake_like"])


def test_run_rejects_unknown_model():
    with pytest.raises(SystemExit):
        main(["run", "mesa_like", "tomasulo"])


# ----------------------------------------------------------------------
# the disk store through the CLI
# ----------------------------------------------------------------------
def store_root():
    return os.environ["REPRO_CACHE_DIR"]  # per-test tmpdir (conftest)


def test_campaign_populates_store_and_cache_stats_reports_it(capsys):
    run_cli(capsys, "run", "mesa_like", "icfp", "-n", "400", "-j", "1")
    out = run_cli(capsys, "cache", "stats")
    assert "results" in out and "warm" in out
    assert os.path.isdir(os.path.join(store_root(), f"v{STORE_SCHEMA}",
                                  ENGINE_VERSION, "results"))


def test_no_store_flag_disables_result_records(capsys):
    run_cli(capsys, "run", "mesa_like", "icfp", "-n", "400", "-j", "1",
            "--no-store")
    assert not os.path.exists(os.path.join(store_root(), f"v{STORE_SCHEMA}"))


def test_cache_clear_empties_the_store(capsys):
    run_cli(capsys, "run", "mesa_like", "in-order", "-n", "400", "-j", "1")
    out = run_cli(capsys, "cache", "clear")
    assert "cleared" in out
    out = run_cli(capsys, "cache", "stats")
    total_line = next(line for line in out.splitlines() if "total" in line)
    assert total_line.split()[1] == "0"


def test_cache_gc_requires_older_than(capsys):
    with pytest.raises(SystemExit):
        main(["cache", "gc"])
    out = run_cli(capsys, "cache", "gc", "--older-than", "30")
    assert "gc:" in out


# ----------------------------------------------------------------------
# the campaign fabric through the CLI
# ----------------------------------------------------------------------
def test_parser_knows_the_fabric_surface():
    parser = build_parser()
    text = parser.format_help()
    assert "campaign" in text and "worker" in text
    args = parser.parse_args(["run", "mesa_like", "icfp", "--fabric", "2"])
    assert args.fabric == 2
    args = parser.parse_args(["worker", "--ledger", "abcd", "--index", "3"])
    assert args.ledger == "abcd" and args.index == 3


def test_campaign_submit_status_drain_join_round_trip(capsys):
    # submit: durably ledger the grid without running a single job.
    out = run_cli(capsys, "campaign", "submit", "-w", "mesa_like",
                  "-n", "430")
    assert "ledgered" in out
    prefix = out.split()[1].rstrip(":")
    assert len(prefix) == 16

    out = run_cli(capsys, "campaign", "status")
    assert prefix in out and "0/5 done" in out

    # worker: one CLI worker process drains the whole ledger.
    run_cli(capsys, "worker", "--ledger", prefix)
    out = run_cli(capsys, "campaign", "status", prefix)
    assert "5/5 done" in out

    # join: the coordinator adopts every drained cell from the store.
    out = run_cli(capsys, "campaign", "join", "-w", "mesa_like",
                  "-n", "430", "--fabric", "1")
    assert "campaign joined: 5/5 cells settled" in out
    assert "(0 computed, 5 from store)" in out


def test_campaign_status_with_no_ledgers(capsys):
    out = run_cli(capsys, "campaign", "status")
    assert "no campaign ledgers" in out


def test_worker_rejects_unknown_ledger():
    with pytest.raises(SystemExit):
        main(["worker", "--ledger", "feedfacedeadbeef"])


def test_campaign_needs_the_disk_store(monkeypatch):
    monkeypatch.setenv("REPRO_STORE", "0")
    with pytest.raises(SystemExit):
        main(["campaign", "submit", "-w", "mesa_like", "-n", "430"])


@pytest.mark.slow
def test_sigint_mid_campaign_exits_130_with_a_report(tmp_path):
    import signal
    import subprocess
    import sys as _sys
    import time

    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ,
               PYTHONPATH=os.path.abspath(src),
               REPRO_CACHE_DIR=str(tmp_path / "store"),
               # crawl so the interrupt lands mid-campaign
               REPRO_FAULTS="slow=1.0,slow_seconds=0.4",
               REPRO_JOBS="1")
    proc = subprocess.Popen(
        [_sys.executable, "-m", "repro", "figure5", "-w", "mesa_like",
         "-n", "600"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        start_new_session=True)
    try:
        time.sleep(2.0)
        os.killpg(os.getpgid(proc.pid), signal.SIGINT)
        _, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:  # pragma: no cover - defensive
            proc.kill()
            proc.communicate()
    assert proc.returncode == 130
    text = err.decode()
    assert "campaign: interrupted" in text
    assert "Traceback" not in text
