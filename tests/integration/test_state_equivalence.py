"""Property-based validation: every machine model preserves architecture.

The core invariant of the whole reproduction: no matter what the timing
models do — advance, slice, rally, squash, fall back — the committed
architectural state must equal a pure functional execution.  Hypothesis
generates random programs (ALU dataflow, memory traffic through a small
set of addresses, data-dependent branches) and we check end-state
equivalence for iCFP and SLTP (the models that maintain architectural
values), plus instruction-count conservation for all five models.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import InOrderCore, MultipassCore, RunaheadCore, SLTPCore
from repro.core.icfp import ICFPCore, ICFPFeatures
from repro.functional import run_program
from repro.isa import Assembler, R
from repro.pipeline import MachineConfig

#: A handful of word addresses in distinct cache lines (some cold, some
#: colliding in L1 sets) keeps store/load interactions interesting.
ADDRESSES = [0x20000 + i * 0x1040 for i in range(6)]

_regs = st.integers(min_value=1, max_value=9)
_addr_index = st.integers(min_value=0, max_value=len(ADDRESSES) - 1)

_ops = st.one_of(
    st.tuples(st.just("alu"), _regs, _regs, _regs,
              st.sampled_from(["add", "sub", "xor", "mul"])),
    st.tuples(st.just("addi"), _regs, _regs,
              st.integers(min_value=-64, max_value=64)),
    st.tuples(st.just("load"), _regs, _addr_index),
    st.tuples(st.just("store"), _regs, _addr_index),
    st.tuples(st.just("branch"), _regs,
              st.integers(min_value=1, max_value=3)),
)


def build_program(ops):
    """Assemble a random straight-line-with-skips program."""
    a = Assembler("hypothesis")
    for i, addr in enumerate(ADDRESSES):
        a.word(addr, i * 17 + 1)
    for i in range(1, 10):
        a.li(getattr(R, f"r{i}"), i * 3)
    a.li(R.r10, ADDRESSES[0])  # base register for memory ops
    skip = 0
    for n, op in enumerate(ops):
        kind = op[0]
        if kind == "alu":
            _, d, s1, s2, name = op
            getattr(a, name)(getattr(R, f"r{d}"), getattr(R, f"r{s1}"),
                             getattr(R, f"r{s2}"))
        elif kind == "addi":
            _, d, s, imm = op
            a.addi(getattr(R, f"r{d}"), getattr(R, f"r{s}"), imm)
        elif kind == "load":
            _, d, idx = op
            a.ld(getattr(R, f"r{d}"), R.r10, ADDRESSES[idx] - ADDRESSES[0])
        elif kind == "store":
            _, s, idx = op
            a.st(getattr(R, f"r{s}"), R.r10, ADDRESSES[idx] - ADDRESSES[0])
        elif kind == "branch":
            _, s, dist = op
            label = f"skip{skip}"
            skip += 1
            a.andi(R.r11, getattr(R, f"r{s}"), 1)
            a.beq(R.r11, R.r0, label)
            a.addi(R.r12, R.r12, 1)
            a.label(label)
    a.halt()
    return a.assemble()


def config():
    return dataclasses.replace(MachineConfig.hpca09(), warm_dcache=False)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_ops, min_size=5, max_size=60))
def test_icfp_final_state_matches_functional(ops):
    trace = run_program(build_program(ops))
    core = ICFPCore(trace, config=config(),
                    features=ICFPFeatures(validate=True))
    result = core.run()
    problems = core.validate_final_state()
    assert not problems, "\n".join(problems)
    assert result.instructions == len(trace)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_ops, min_size=5, max_size=60))
def test_sltp_final_state_matches_functional(ops):
    trace = run_program(build_program(ops))
    core = SLTPCore(trace, config=config(), advance_on="all")
    result = core.run()
    problems = core.validate_final_state()
    assert not problems, "\n".join(problems)
    assert result.instructions == len(trace)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_ops, min_size=5, max_size=50))
def test_all_models_commit_every_instruction_once(ops):
    trace = run_program(build_program(ops))
    for cls, kwargs in (
        (InOrderCore, {}),
        (RunaheadCore, {"advance_on": "l2"}),
        (MultipassCore, {}),
        (SLTPCore, {"advance_on": "all"}),
        (ICFPCore, {"features": ICFPFeatures(validate=True)}),
    ):
        core = cls(trace, config=config(), **kwargs)
        result = core.run()
        assert result.instructions == len(trace), cls.__name__


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_ops, min_size=5, max_size=50),
       st.sampled_from(["chained", "assoc"]))
def test_store_buffer_kind_never_changes_architecture(ops, kind):
    trace = run_program(build_program(ops))
    core = ICFPCore(trace, config=config(),
                    features=ICFPFeatures(validate=True,
                                          store_buffer_kind=kind))
    core.run()
    assert not core.validate_final_state()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_ops, min_size=5, max_size=50),
       st.sampled_from([1, 2, 8]))
def test_poison_width_never_changes_architecture(ops, bits):
    trace = run_program(build_program(ops))
    core = ICFPCore(trace, config=config(),
                    features=ICFPFeatures(validate=True, poison_bits=bits))
    core.run()
    assert not core.validate_final_state()
