"""Heartbeat hygiene: renewal threads are always joined, never leaked.

Every lease a :class:`~repro.exec.worker.FabricWorker` executes starts
a ``_Heartbeat`` renewal thread; ``_execute``'s ``finally`` must join
it on every exit path.  These tests pin the two paths where a leak
would hide: a graceful stop-request drain (the SIGTERM handler calls
``worker.stop()``) and a lease observed lost mid-job.
"""

import threading
import time

from repro.exec import ResultStore, SimJob
from repro.exec.fabric import Ledger, ledger_for
from repro.exec.worker import FabricWorker, _Heartbeat
from repro.harness.experiment import ExperimentConfig


def _live_heartbeats():
    return [t for t in threading.enumerate() if isinstance(t, _Heartbeat)]


def _worker(tmp_path, instructions, **kwargs):
    cfg = ExperimentConfig(instructions=instructions)
    jobs = [SimJob("in-order", w, cfg) for w in ("mesa_like", "gzip_like")]
    store = ResultStore(str(tmp_path / "store"))
    ledger = Ledger.create(ledger_for(jobs, store.root).root, jobs)
    return FabricWorker(ledger, "hb-w0", store=store, **kwargs), jobs


def test_drain_joins_every_heartbeat_thread(tmp_path):
    worker, jobs = _worker(tmp_path, 359, heartbeat=0.01)
    assert not _live_heartbeats()
    worker.run()
    assert worker.stats["completed"] == len(jobs)
    assert not _live_heartbeats(), "a heartbeat outlived its lease"


def test_stop_request_drain_joins_heartbeats(tmp_path):
    # worker.stop() is exactly what the SIGTERM handler calls: finish
    # the current lease, flush, exit — with its heartbeat joined.
    worker, _jobs = _worker(tmp_path, 361, heartbeat=0.01)
    runner = threading.Thread(target=worker.run)
    runner.start()
    worker.stop()
    runner.join(timeout=30)
    assert not runner.is_alive()
    assert not _live_heartbeats(), \
        "a heartbeat outlived the SIGTERM-style drain"


class _LeaseLosingJob:
    """A job whose run() gets its own lease stolen, then fails.

    Mimics a stalled worker: while it "computes", a rival force-claims
    the lease (generation bump), so the next renewal observes foreign
    ownership and sets ``lost``.  The raise takes the failure path —
    the heartbeat must still be joined and the loss accounted.
    """

    fingerprint = "f" * 64
    model = "stub"
    workload = "stub"

    def __init__(self, ledger, heartbeat):
        self._ledger = ledger
        self._heartbeat = heartbeat

    def run(self):
        rival = Ledger(self._ledger.root)
        lease, how = rival.try_claim(self.fingerprint, "thief", 60.0,
                                     time.time(), force=True)
        assert lease is not None and how == "stolen"
        deadline = time.monotonic() + 30.0
        while not any(b.lost.is_set() for b in _live_heartbeats()):
            assert time.monotonic() < deadline, "renewal never saw the theft"
            time.sleep(self._heartbeat)
        raise RuntimeError("simulated mid-steal failure")


def test_lost_lease_joins_heartbeat_and_counts_loss(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    root = str(tmp_path / "store" / "fabric" / "hbtest")
    placeholder = _LeaseLosingJob(Ledger(root), 0.01)
    ledger = Ledger.create(root, [placeholder])
    worker = FabricWorker(ledger, "hb-w0", store=store, heartbeat=0.01)
    job = _LeaseLosingJob(ledger, worker.heartbeat)
    lease, how = ledger.try_claim(job.fingerprint, worker.worker_id,
                                  worker.ttl, worker.now())
    assert how == "issued"
    worker._execute(job, lease)
    assert not _live_heartbeats(), "a heartbeat outlived the lost lease"
    assert worker.stats["leases_lost"] == 1
    assert worker.stats["failed"] == 1
    # The lease was NOT released: it belongs to the thief now.
    record, state = ledger.read_lease(job.fingerprint, time.time())
    assert state == "held"
    assert record["worker"] == "thief"
