"""Lease-protocol unit tests: the ledger's state machine in isolation.

No simulations run here — these tests drive the claim/renew/steal/
release transitions directly and pin the invariants the fabric's
correctness argument leans on: fresh claims are mutually exclusive,
expiry enables exactly one logical takeover (generation bump), a torn
record is reclaimable, and completion through the content-addressed
store is payload-idempotent.
"""

import json
import os

from repro.exec import ResultStore, SimJob, run_jobs
from repro.exec.fabric import Ledger, campaign_fingerprint, ledger_for
from repro.harness.experiment import ExperimentConfig


class _Job:
    """A minimal leasable: all the ledger reads is ``fingerprint``."""

    def __init__(self, fp: str) -> None:
        self.fingerprint = fp


FPS = ["aa" * 32, "bb" * 32, "cc" * 32]


def _ledger(tmp_path) -> Ledger:
    return Ledger.create(str(tmp_path / "ledger"),
                         [_Job(fp) for fp in FPS])


def test_create_is_idempotent_and_manifest_round_trips(tmp_path):
    ledger = _ledger(tmp_path)
    again = Ledger.create(ledger.root, [_Job(fp) for fp in FPS])
    assert again.root == ledger.root
    assert ledger.meta()["total"] == 3
    assert sorted(j.fingerprint for j in ledger.load_jobs()) == sorted(FPS)


def test_fresh_claim_is_exclusive(tmp_path):
    ledger = _ledger(tmp_path)
    lease, how = ledger.try_claim(FPS[0], "w-a", ttl=30.0, now=1000.0)
    assert how == "issued" and lease["generation"] == 0
    # The loser of the race sees a held lease, whatever its worker id.
    for worker in ("w-b", "w-a"):
        other, state = ledger.try_claim(FPS[0], worker, ttl=30.0,
                                        now=1000.1)
        assert other is None and state == "held"


def test_expiry_then_steal_bumps_generation_and_invalidates_victim(
        tmp_path):
    ledger = _ledger(tmp_path)
    lease, _ = ledger.try_claim(FPS[0], "victim", ttl=1.0, now=1000.0)
    # Before the TTL: held.  After it: stolen, with a generation bump so
    # the victim's renewals (and release) are rejected from then on.
    assert ledger.try_claim(FPS[0], "thief", 1.0, now=1000.5)[0] is None
    stolen, how = ledger.try_claim(FPS[0], "thief", 30.0, now=1002.0)
    assert how == "stolen" and stolen["generation"] == 1
    assert ledger.renew(FPS[0], lease, ttl=30.0, now=1002.1) is None
    ledger.release(FPS[0], lease)  # victim's release: must be a no-op
    record, state = ledger.read_lease(FPS[0], now=1002.2)
    assert state == "held" and record["worker"] == "thief"


def test_renew_extends_own_lease(tmp_path):
    ledger = _ledger(tmp_path)
    lease, _ = ledger.try_claim(FPS[0], "w-a", ttl=1.0, now=1000.0)
    renewed = ledger.renew(FPS[0], lease, ttl=1.0, now=1000.9)
    assert renewed is not None
    _, state = ledger.read_lease(FPS[0], now=1001.5)
    assert state == "held"  # would have expired without the renewal


def test_torn_lease_record_is_reclaimed(tmp_path):
    ledger = _ledger(tmp_path)
    ledger.try_claim(FPS[0], "w-a", ttl=30.0, now=1000.0)
    with open(ledger.lease_path(FPS[0]), "w", encoding="utf-8") as handle:
        handle.write('{"worker": "w-a", "expi')  # torn mid-write
    record, state = ledger.read_lease(FPS[0], now=1000.1)
    assert record is None and state == "torn"
    lease, how = ledger.try_claim(FPS[0], "w-b", ttl=30.0, now=1000.2)
    assert how == "reclaimed" and lease["worker"] == "w-b"


def test_force_claim_takes_even_a_held_lease(tmp_path):
    ledger = _ledger(tmp_path)
    ledger.try_claim(FPS[0], "dead-worker", ttl=3600.0, now=1000.0)
    lease, how = ledger.try_claim(FPS[0], "drain", ttl=30.0, now=1000.1,
                                  force=True)
    assert lease is not None and how == "stolen"
    assert lease["generation"] == 1


def test_done_and_failed_markers(tmp_path):
    ledger = _ledger(tmp_path)
    ledger.mark_done(FPS[0], "w-a")
    ledger.mark_failed(FPS[1], "icfp on mcf_like", "retries-exhausted",
                       "boom", "w-b")
    assert ledger.is_done(FPS[0]) and not ledger.is_done(FPS[1])
    assert ledger.done_fingerprints() == {FPS[0]}
    assert ledger.failed_fingerprints() == {FPS[1]}
    record = ledger.failed_records()[FPS[1]]
    assert record["kind"] == "retries-exhausted"
    status = ledger.status()
    assert (status["done"], status["failed"], status["remaining"]) == (1, 1, 1)


def test_campaign_fingerprint_is_order_insensitive_and_job_sensitive(
        tmp_path):
    assert (campaign_fingerprint(FPS)
            == campaign_fingerprint(list(reversed(FPS))))
    assert campaign_fingerprint(FPS) != campaign_fingerprint(FPS[:2])
    # Same jobs -> same ledger root: a resumed coordinator rendezvouses.
    jobs = [_Job(fp) for fp in FPS]
    assert (ledger_for(jobs, str(tmp_path)).root
            == ledger_for(list(reversed(jobs)), str(tmp_path)).root)


def test_double_complete_is_payload_idempotent(tmp_path):
    # The invariant every lease race leans on: two workers completing
    # the same fingerprint write payload-identical records, so the
    # second completion is a semantic no-op whoever wins the rename.
    cfg = ExperimentConfig(instructions=400)
    job = SimJob("in-order", "mesa_like", cfg)
    [result] = run_jobs([job], workers=1, memo=False, store=False,
                        fabric=False)
    store = ResultStore(str(tmp_path / "store"))
    assert store.put_result(job.fingerprint, result)
    first = store.get_json("results", job.fingerprint)
    assert store.put_result(job.fingerprint, result)  # the "loser"
    second = store.get_json("results", job.fingerprint)
    assert (json.dumps(first, sort_keys=True)
            == json.dumps(second, sort_keys=True))
    # And the ledger's done marker tolerates the same race.
    ledger = _ledger(tmp_path)
    ledger.mark_done(job.fingerprint, "w-a")
    ledger.mark_done(job.fingerprint, "w-b")
    assert ledger.is_done(job.fingerprint)
