"""Chaos over the fabric: every lease fault, same bytes out.

The chaos contract extends from the engine to the coordination layer:
torn lease writes, stalled heartbeats, skewed clocks, and killed
workers may cost duplicate (idempotent) work and lease churn, but the
campaign's results must stay byte-identical to a fault-free sequential
run.
"""

import json
import threading

import pytest

from repro.exec import (
    CampaignReport,
    FaultPlan,
    ResultStore,
    SimJob,
    injected_faults,
    run_jobs,
    run_jobs_fabric,
)
from repro.exec.fabric import Ledger, ledger_for
from repro.exec.store import result_to_payload
from repro.exec.worker import FabricWorker
from repro.harness.experiment import ExperimentConfig

WORKLOADS = ("mesa_like", "gzip_like")
MODELS = ("in-order", "runahead", "icfp")


def _jobs(instructions=700):
    cfg = ExperimentConfig(instructions=instructions)
    return [SimJob(m, w, cfg) for w in WORKLOADS for m in MODELS]


def _payloads(results):
    return [json.dumps(result_to_payload(r), sort_keys=True)
            for r in results]


def _clean(jobs):
    return run_jobs(jobs, workers=1, memo=False, store=False, fabric=False)


def test_torn_lease_writes_are_reclaimed_not_fatal(tmp_path):
    # Every lease write is torn: each record is unreadable, every reader
    # treats the job as unprotected, and claims degrade to benign races
    # resolved by idempotent completion.
    jobs = _jobs(720)
    clean = _clean(jobs)
    store = ResultStore(str(tmp_path / "store"))
    report = CampaignReport()
    with injected_faults(FaultPlan(seed=5, lease_torn=1.0)):
        results = run_jobs_fabric(jobs, workers=2, memo=False, store=store,
                                  report=report)
    assert _payloads(results) == _payloads(clean)
    assert report.ok()


def test_in_thread_heartbeat_stall_expiry_steal(tmp_path):
    # Two workers in threads over one ledger.  One job carries a lease
    # from a "ghost" worker whose heartbeats stalled until the TTL ran
    # out (planted expired, never renewed): a live worker must steal it.
    # The live workers' own heartbeats are all swallowed too — with a
    # tiny TTL their leases expire mid-compute as well, and the campaign
    # must still converge on idempotent completion.
    import time as _time

    cfg = ExperimentConfig(instructions=740)
    jobs = [SimJob(m, w, cfg) for w in WORKLOADS for m in MODELS]
    clean = _clean(jobs)
    store = ResultStore(str(tmp_path / "store"))
    ledger = Ledger.create(ledger_for(jobs, store.root).root, jobs)
    ghost, how = ledger.try_claim(jobs[0].fingerprint, "ghost", ttl=0.001,
                                  now=_time.time() - 60.0)
    assert how == "issued" and ghost is not None
    plan = FaultPlan(seed=9, heartbeat_stall=1.0,
                     slow=1.0, slow_seconds=0.05)
    with injected_faults(plan):
        workers = [
            FabricWorker(ledger, f"t{i}", store=store, ttl=0.02,
                         heartbeat=0.005, index=i)
            for i in range(2)]
        threads = [threading.Thread(target=w.run) for w in workers]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
    assert not any(t.is_alive() for t in threads)
    stolen = sum(w.stats["leases_stolen"] for w in workers)
    assert stolen >= 1  # the ghost's expired lease was taken over
    # The ghost's release (were it to wake) is now a generation-checked
    # no-op, and the thief's completion settled the job exactly once.
    ledger.release(jobs[0].fingerprint, ghost)
    settled = sum(w.stats["completed"] + w.stats["adopted"]
                  for w in workers)
    assert settled >= len(jobs)
    # Every job settled exactly once in the ledger, and the store's
    # records decode to the clean sequential results.
    assert ledger.done_fingerprints() == {j.fingerprint for j in jobs}
    loaded = store.get_results([j.fingerprint for j in jobs])
    assert _payloads([loaded[j.fingerprint] for j in jobs]) \
        == _payloads(clean)
    assert store.corrupt == 0


def test_clock_skewed_worker_still_converges(tmp_path):
    # One worker's clock runs fast: it writes leases that look stale to
    # everyone else and steals fresh leases early.  Extra churn, same
    # bytes.
    jobs = _jobs(760)
    clean = _clean(jobs)
    store = ResultStore(str(tmp_path / "store"))
    report = CampaignReport()
    with injected_faults(FaultPlan(seed=2, clock_skew=0.5,
                                   clock_skew_seconds=5.0)):
        results = run_jobs_fabric(jobs, workers=2, memo=False, store=store,
                                  report=report)
    assert _payloads(results) == _payloads(clean)
    assert report.ok()


@pytest.mark.slow
def test_full_chaos_plan_fabric_campaign_is_byte_identical(tmp_path):
    # The acceptance criterion: worker kills, lease expiries (stalled
    # heartbeats + short TTL), and torn lease writes together, over a
    # 2-worker fabric — byte-identical to the fault-free sequential run.
    import os

    jobs = _jobs(780)
    clean = _clean(jobs)
    store = ResultStore(str(tmp_path / "store"))
    report = CampaignReport()
    os.environ["REPRO_FAULTS"] = ("seed=11,worker_death=0.15,"
                                  "lease_torn=0.3,heartbeat_stall=0.5")
    os.environ["REPRO_LEASE_TTL"] = "1.5"
    try:
        results = run_jobs_fabric(jobs, workers=2, memo=False, store=store,
                                  report=report)
    finally:
        del os.environ["REPRO_FAULTS"]
        del os.environ["REPRO_LEASE_TTL"]
    assert _payloads(results) == _payloads(clean)
    assert report.ok()
    assert report.incidents() >= 1  # the plan was not a no-op
