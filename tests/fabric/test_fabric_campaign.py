"""Fabric campaigns: multi-process execution, crash-safe recovery.

The contract inherited from the engine: results byte-identical to a
clean sequential run, no matter how the work was scheduled — including
across worker processes, worker SIGKILLs, and a SIGKILL'd coordinator
resumed in a fresh process.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.exec import (
    CampaignReport,
    ResultStore,
    SimJob,
    run_jobs,
    run_jobs_fabric,
)
from repro.exec.fabric import Ledger, ledger_for
from repro.exec.store import result_to_payload
from repro.harness.experiment import ExperimentConfig

WORKLOADS = ("mesa_like", "gzip_like")
MODELS = ("in-order", "runahead", "icfp")


def _jobs(instructions=500):
    cfg = ExperimentConfig(instructions=instructions)
    return [SimJob(m, w, cfg) for w in WORKLOADS for m in MODELS]


def _payloads(results):
    return [json.dumps(result_to_payload(r), sort_keys=True)
            for r in results]


def _clean(jobs):
    return run_jobs(jobs, workers=1, memo=False, store=False, fabric=False)


def test_two_worker_fabric_matches_sequential(tmp_path):
    jobs = _jobs()
    clean = _clean(jobs)
    store = ResultStore(str(tmp_path / "store"))
    report = CampaignReport()
    results = run_jobs_fabric(jobs, workers=2, memo=False, store=store,
                              report=report)
    assert _payloads(results) == _payloads(clean)
    assert report.jobs == len(jobs)
    assert report.computed == len(jobs)
    assert report.leases_issued >= 1  # the workers did the work
    assert report.worker_deaths == 0
    assert report.ok()
    # A fully drained healthy campaign cleans up its ledger...
    assert not ledger_for(jobs, store.root).exists()
    # ...and its results are all in the store for the next process.
    assert len(store.get_results([j.fingerprint for j in jobs])) == len(jobs)


def test_run_jobs_fabric_arg_routes_through_the_fabric(tmp_path):
    jobs = _jobs(520)
    store = ResultStore(str(tmp_path / "store"))
    report = CampaignReport()
    results = run_jobs(jobs, memo=False, store=store, report=report,
                       fabric=2)
    assert _payloads(results) == _payloads(_clean(jobs))
    assert report.leases_issued >= 1


def test_fabric_env_knob_routes_campaigns(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FABRIC_WORKERS", "2")
    jobs = _jobs(540)
    store = ResultStore(str(tmp_path / "store"))
    report = CampaignReport()
    results = run_jobs(jobs, memo=False, store=store, report=report)
    assert _payloads(results) == _payloads(_clean(jobs))
    assert report.leases_issued >= 1


def test_fabric_without_store_degrades_to_in_process(tmp_path):
    # No disk store means no rendezvous: the fabric must fall back to
    # the ordinary engine rather than fail or hang.
    jobs = _jobs(560)
    report = CampaignReport()
    results = run_jobs_fabric(jobs, workers=2, memo=False, store=False,
                              report=report)
    assert _payloads(results) == _payloads(_clean(jobs))
    assert report.degradations >= 1
    assert report.leases_issued == 0


def test_fabric_resumes_from_partially_flushed_store(tmp_path):
    jobs = _jobs(580)
    store = ResultStore(str(tmp_path / "store"))
    # A prior (crashed) campaign flushed the first four cells.
    run_jobs(jobs[:4], workers=1, memo=False, store=store, fabric=False)
    report = CampaignReport()
    results = run_jobs_fabric(jobs, workers=2, memo=False, store=store,
                              report=report)
    assert _payloads(results) == _payloads(_clean(jobs))
    assert report.store_hits == 4
    assert report.computed == len(jobs) - 4


def test_fabric_memoizes_like_the_engine(tmp_path):
    jobs = _jobs(600)
    store = ResultStore(str(tmp_path / "store"))
    first = run_jobs_fabric(jobs, workers=2, store=store)
    report = CampaignReport()
    second = run_jobs_fabric(jobs, workers=2, store=store, report=report)
    assert _payloads(first) == _payloads(second)
    assert report.memo_hits == len(jobs)  # RAM memo, zero fabric traffic
    assert report.leases_issued == 0


@pytest.mark.slow
def test_sigkilled_worker_jobs_are_released_and_finished(tmp_path):
    # A worker that dies without notice (the chaos plan's os._exit
    # fires only in marked worker processes) must cost re-leased work,
    # never lost work: the supervisor reaps it, respawns, and the
    # campaign completes byte-identically.
    jobs = _jobs(620)
    clean = _clean(jobs)
    store = ResultStore(str(tmp_path / "store"))
    report = CampaignReport()
    # Short TTL so a dead worker's lease frees fast; the fault plan is
    # inherited through fork and fires only in the (marked) workers.
    os.environ["REPRO_FAULTS"] = "seed=3,worker_death=0.25"
    os.environ["REPRO_LEASE_TTL"] = "2"
    try:
        results = run_jobs_fabric(jobs, workers=2, memo=False, store=store,
                                  report=report)
    finally:
        del os.environ["REPRO_FAULTS"]
        del os.environ["REPRO_LEASE_TTL"]
    assert _payloads(results) == _payloads(clean)
    assert report.worker_deaths >= 1  # the plan drew blood
    assert report.ok()


_COORDINATOR = """
import sys
sys.path.insert(0, {src!r})
from repro.exec import run_jobs_fabric, ResultStore, SimJob
from repro.harness.experiment import ExperimentConfig
cfg = ExperimentConfig(instructions={instructions})
jobs = [SimJob(m, w, cfg) for w in {workloads!r} for m in {models!r}]
run_jobs_fabric(jobs, workers=2, memo=False,
                store=ResultStore({root!r}))
"""

INSTRUCTIONS_KILL = 313  # unique budget: no other test shares fingerprints


def _result_records(root):
    return glob.glob(os.path.join(root, "v*", "*", "results", "*",
                                  "*.json"))


@pytest.mark.slow
def test_sigkilled_coordinator_resumes_recomputing_only_unflushed_cells(
        tmp_path):
    root = str(tmp_path / "shared-store")
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    all_models = ("in-order", "runahead", "multipass", "sltp", "icfp")
    script = _COORDINATOR.format(src=os.path.abspath(src),
                                 instructions=INSTRUCTIONS_KILL,
                                 workloads=WORKLOADS, models=all_models,
                                 root=root)
    env = dict(os.environ,
               REPRO_CACHE_DIR=root,
               REPRO_LEASE_TTL="2",
               # every attempt crawls: spaces the per-cell flushes out
               # so the kill lands mid-campaign, not after it
               REPRO_FAULTS="slow=1.0,slow_seconds=0.4")
    proc = subprocess.Popen([sys.executable, "-c", script], env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL,
                            start_new_session=True)
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if len(_result_records(root)) >= 3 or proc.poll() is not None:
                break
            time.sleep(0.01)
        if proc.poll() is None:
            # SIGKILL the whole session: coordinator AND its workers die
            # with no chance to release leases or mark anything done.
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - defensive
            proc.kill()
            proc.wait()

    flushed = len(_result_records(root))
    total = len(WORKLOADS) * len(all_models)
    assert flushed >= 3  # the kill landed after at least three flushes
    assert flushed < total  # ...and before the campaign finished

    # The abandoned ledger survived the crash and still names the jobs.
    cfg = ExperimentConfig(instructions=INSTRUCTIONS_KILL)
    jobs = [SimJob(m, w, cfg) for w in WORKLOADS for m in all_models]
    ledger = ledger_for(jobs, root)
    assert ledger.exists()

    # Fresh-process resume: the same job set rendezvouses at the same
    # ledger and store; flushed cells are adopted, only the rest are
    # recomputed.  (Short TTL: the dead workers' leases expire fast.)
    store = ResultStore(root)
    report = CampaignReport()
    results = run_jobs_fabric(jobs, workers=2, memo=False, store=store,
                              report=report)
    assert report.store_hits == flushed  # every flushed cell was adopted
    assert report.computed == total - flushed  # and only the rest ran
    assert report.ok()
    assert _payloads(results) == _payloads(_clean(jobs))
    assert not ledger.exists()  # the drained campaign cleaned up
