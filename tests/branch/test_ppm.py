"""Unit tests for the PPM direction predictor."""

import pytest

from repro.branch import PPMPredictor


def train(ppm, pc, outcomes):
    for taken in outcomes:
        ppm.predict(pc)
        ppm.update(pc, taken)


def test_rejects_non_power_of_two_tables():
    with pytest.raises(ValueError):
        PPMPredictor(base_entries=1000)


def test_learns_always_taken():
    ppm = PPMPredictor()
    train(ppm, 0x1000, [True] * 10)
    assert ppm.predict(0x1000) is True


def test_learns_always_not_taken():
    ppm = PPMPredictor()
    train(ppm, 0x1000, [False] * 10)
    assert ppm.predict(0x1000) is False


def test_learns_loop_exit_pattern():
    """A loop branch taken N-1 times then not taken once: the tagged
    history tables should learn the exit after a few iterations."""
    ppm = PPMPredictor()
    pattern = ([True] * 7 + [False]) * 40
    for taken in pattern:
        ppm.predict(0x2000)
        ppm.update(0x2000, taken)
    # Replay one loop worth and check the exit is predicted.
    correct = 0
    for taken in [True] * 7 + [False]:
        if ppm.predict(0x2000) == taken:
            correct += 1
        ppm.update(0x2000, taken)
    assert correct == 8


def test_alternating_pattern_learned_by_history_tables():
    ppm = PPMPredictor()
    pattern = [True, False] * 100
    for taken in pattern:
        ppm.predict(0x3000)
        ppm.update(0x3000, taken)
    hits = 0
    for taken in [True, False] * 10:
        if ppm.predict(0x3000) == taken:
            hits += 1
        ppm.update(0x3000, taken)
    assert hits >= 18


def test_accuracy_metric():
    ppm = PPMPredictor()
    train(ppm, 0x1000, [True] * 100)
    assert 0.9 <= ppm.accuracy <= 1.0


def test_distinct_branches_do_not_interfere():
    ppm = PPMPredictor()
    train(ppm, 0x1000, [True] * 10)
    train(ppm, 0x2000, [False] * 10)
    assert ppm.predict(0x1000) is True
    assert ppm.predict(0x2000) is False


def test_random_pattern_accuracy_is_mediocre():
    import random

    rng = random.Random(7)
    ppm = PPMPredictor()
    outcomes = [rng.random() < 0.5 for _ in range(2000)]
    correct = 0
    for taken in outcomes:
        if ppm.predict(0x4000) == taken:
            correct += 1
        ppm.update(0x4000, taken)
    assert correct / len(outcomes) < 0.7  # cannot learn noise
