"""Unit tests for BTB, RAS, and the combined predictor facade."""

import pytest

from repro.branch import BTB, RAS, BranchPredictor
from repro.functional import run_program
from repro.isa import assemble_text


# ----------------------------------------------------------------------
# BTB
# ----------------------------------------------------------------------
def test_btb_miss_then_hit():
    btb = BTB(entries=16)
    assert btb.predict(0x1000) is None
    btb.update(0x1000, 0x2000)
    assert btb.predict(0x1000) == 0x2000
    assert btb.hits == 1 and btb.lookups == 2


def test_btb_conflict_eviction():
    btb = BTB(entries=4)
    btb.update(0x1000, 0xA)
    btb.update(0x1000 + 4 * 4, 0xB)  # same index, different tag
    assert btb.predict(0x1000) is None
    assert btb.predict(0x1000 + 16) == 0xB


def test_btb_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        BTB(entries=3)


# ----------------------------------------------------------------------
# RAS
# ----------------------------------------------------------------------
def test_ras_push_pop_lifo():
    ras = RAS(entries=4)
    ras.push(0x10)
    ras.push(0x20)
    assert ras.pop() == 0x20
    assert ras.pop() == 0x10
    assert ras.pop() is None


def test_ras_overflow_wraps():
    ras = RAS(entries=2)
    ras.push(1)
    ras.push(2)
    ras.push(3)  # overwrites 1
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert len(ras) == 0


# ----------------------------------------------------------------------
# facade over real traces
# ----------------------------------------------------------------------
def trace_of(text):
    return run_program(assemble_text(text))


def test_facade_direct_jumps_always_correct():
    trace = trace_of(
        """
        j next
        next: halt
        """
    )
    bp = BranchPredictor()
    jump = next(d for d in trace if d.is_control)
    assert bp.predict(jump) is True


def test_facade_call_return_via_ras():
    trace = trace_of(
        """
        jal r31, func
        halt
        func: jr r31
        """
    )
    bp = BranchPredictor()
    for dyn in trace:
        if dyn.is_control:
            assert bp.predict(dyn) is True
            bp.update(dyn)


def test_facade_learns_loop_branch():
    trace = trace_of(
        """
        li r1, 0
        li r2, 50
        loop:
            addi r1, r1, 1
            bne r1, r2, loop
        halt
        """
    )
    bp = BranchPredictor()
    outcomes = []
    for dyn in trace:
        if dyn.is_branch:
            outcomes.append(bp.predict(dyn))
            bp.update(dyn)
    # After warm-up the backward loop branch is predicted correctly.
    assert sum(outcomes[5:]) >= len(outcomes[5:]) - 2
    assert bp.accuracy > 0.8


def test_facade_return_without_call_uses_btb():
    trace = trace_of(
        """
        li r1, 0x1014
        jr r1
        nop
        nop
        nop
        halt
        """
    )
    bp = BranchPredictor()
    jr = next(d for d in trace if d.op.value == "jr")
    assert bp.predict(jr) is False  # RAS empty, BTB cold
    bp.update(jr)
    assert bp.predict(jr) is True  # BTB now holds the target
