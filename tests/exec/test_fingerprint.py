"""Config fingerprints: deterministic, canonical, collision-free."""

import dataclasses
import subprocess
import sys

import pytest

from repro.core.icfp import ICFPFeatures
from repro.exec import SimJob, canonical, fingerprint
from repro.harness.experiment import ExperimentConfig
from repro.pipeline.config import MachineConfig


def test_fingerprint_is_stable_within_process():
    cfg = ExperimentConfig(instructions=500)
    assert fingerprint("icfp", "mcf_like", cfg) == \
        fingerprint("icfp", "mcf_like", cfg)


def test_equal_configs_equal_fingerprints():
    a = ExperimentConfig(instructions=500)
    b = ExperimentConfig(instructions=500)
    assert a is not b
    assert fingerprint(a) == fingerprint(b)


def test_fingerprint_covers_machine_config():
    base = MachineConfig.hpca09()
    assert fingerprint(base) == fingerprint(MachineConfig.hpca09())
    assert fingerprint(base) != fingerprint(base.with_l2_latency(37))


def test_distinct_icfp_features_never_collide():
    """Every point of the Figure 6-8 feature space gets its own digest."""
    seen = {}
    for kind in ("chained", "assoc", "indexed"):
        for nonblocking in (True, False):
            for mt in (True, False):
                for bits in (1, 2, 4, 8):
                    for advance in ("all", "l2"):
                        feats = ICFPFeatures(
                            store_buffer_kind=kind,
                            nonblocking_rally=nonblocking,
                            mt_rally=mt,
                            poison_bits=bits,
                            advance_on=advance,
                        )
                        digest = fingerprint(feats)
                        assert digest not in seen, (feats, seen[digest])
                        seen[digest] = feats
    assert len(seen) == 3 * 2 * 2 * 4 * 2


def test_fingerprint_separates_every_job_axis():
    cfg = ExperimentConfig(instructions=500)
    job = SimJob("icfp", "mcf_like", cfg)
    assert SimJob("sltp", "mcf_like", cfg).fingerprint != job.fingerprint
    assert SimJob("icfp", "art_like", cfg).fingerprint != job.fingerprint
    other = dataclasses.replace(cfg, instructions=501)
    assert SimJob("icfp", "mcf_like", other).fingerprint != job.fingerprint


def test_fingerprint_distinguishes_types_not_just_values():
    # A dataclass and a tuple spelling the same values must differ, as
    # must two dataclass types with identical fields (qualname is part
    # of the canonical form).
    feats = ICFPFeatures()
    values = tuple(getattr(feats, f.name)
                   for f in dataclasses.fields(feats))
    assert fingerprint(feats) != fingerprint(values)


def test_canonical_rejects_unfingerprintable_objects():
    with pytest.raises(TypeError):
        canonical(object())


def test_fingerprint_stable_across_interpreter_processes():
    """Digests must agree between scheduler and workers regardless of
    hash randomization (PYTHONHASHSEED)."""
    code = (
        "from repro.harness.experiment import ExperimentConfig\n"
        "from repro.exec import fingerprint\n"
        "print(fingerprint('icfp', 'mcf_like',"
        " ExperimentConfig(instructions=500)))\n"
    )
    import os

    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    digests = set()
    for seed in ("0", "12345"):
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={"PYTHONHASHSEED": seed, "PYTHONPATH": src},
        )
        digests.add(out.stdout.strip())
    assert len(digests) == 1
    assert digests == {SimJob("icfp", "mcf_like",
                              ExperimentConfig(instructions=500)).fingerprint}
