"""Store satellites of the fabric PR: locked counters, proactive verify.

Once many worker processes share one store root, ``counters.json``
becomes a multi-writer file and the integrity of the rendezvous records
becomes a liveness concern.  These tests pin the two answers: the
lock-file read-merge-rename keeps concurrent flushes lossless, and
``verify()`` quarantines anything a campaign would later reject.
"""

import json
import os
import threading

from repro.exec import ResultStore, SimJob, run_jobs
from repro.harness.experiment import ExperimentConfig


def _store_with_results(tmp_path, instructions=420, n=3):
    cfg = ExperimentConfig(instructions=instructions)
    jobs = [SimJob(m, "mesa_like", cfg)
            for m in ("in-order", "runahead", "icfp")[:n]]
    store = ResultStore(str(tmp_path / "store"))
    results = run_jobs(jobs, workers=1, memo=False, store=store,
                       fabric=False)
    return store, jobs, results


def test_concurrent_counter_flushes_are_lossless(tmp_path):
    # Sixteen "workers" (threads, each with its own ResultStore handle —
    # the process-level analogue) flush misses into one root at once.
    # Every increment must land: read-merge-rename under the lock.
    root = str(tmp_path / "store")
    per_worker, workers = 25, 16
    barrier = threading.Barrier(workers)

    def flush(index):
        store = ResultStore(root)
        store.misses = per_worker
        store.writes = index  # uneven deltas: merge, not overwrite
        barrier.wait()
        store.flush_counters()

    threads = [threading.Thread(target=flush, args=(i,))
               for i in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in threads)
    totals = ResultStore(root).read_counters()
    assert totals["misses"] == per_worker * workers
    assert totals["writes"] == sum(range(workers))
    assert not os.path.exists(os.path.join(root, "counters.json.lock"))


def test_flush_is_idempotent_per_session(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    store.hits = 7
    store.flush_counters()
    store.flush_counters()  # no new deltas: must not double-count
    assert store.read_counters()["hits"] == 7
    store.hits = 9
    store.flush_counters()
    assert store.read_counters()["hits"] == 9


def test_stale_lock_is_broken_not_waited_on(tmp_path, monkeypatch):
    store = ResultStore(str(tmp_path / "store"))
    os.makedirs(store.root, exist_ok=True)  # root is created lazily
    lock = os.path.join(store.root, "counters.json.lock")
    with open(lock, "w", encoding="utf-8"):
        pass
    ancient = 10_000.0  # far past the stale cutoff
    os.utime(lock, (ancient, ancient))
    store.misses = 3
    store.flush_counters()  # a dead holder's lock must not wedge this
    assert store.read_counters()["misses"] == 3
    assert not os.path.exists(lock)


def test_verify_clean_store_counts_every_record(tmp_path):
    store, jobs, _ = _store_with_results(tmp_path)
    audit = store.verify()
    assert audit["ok"] == len(jobs)
    assert audit["quarantined"] == 0
    assert audit["sections"]["results"]["ok"] == len(jobs)


def test_verify_quarantines_torn_records_and_spares_counters(tmp_path):
    store, jobs, _ = _store_with_results(tmp_path, instructions=440)
    # Tear one record mid-write; a campaign would hit this lazily at its
    # next lookup — verify() must find and quarantine it now.
    victim = store._record_path("results", jobs[0].fingerprint)
    with open(victim, "w", encoding="utf-8") as handle:
        handle.write('{"torn')
    hits, misses = store.hits, store.misses
    audit = store.verify()
    assert audit["quarantined"] == 1
    assert audit["ok"] == len(jobs) - 1
    assert (store.hits, store.misses) == (hits, misses)  # audit != traffic
    assert store.quarantined >= 1
    assert not os.path.exists(victim)  # gone from the hot path
    # The store stays usable: the surviving records still decode.
    assert store.get_result(jobs[1].fingerprint) is not None


def test_verify_feeds_cache_verify_cli(tmp_path, capsys, monkeypatch):
    store, jobs, _ = _store_with_results(tmp_path, instructions=460)
    victim = store._record_path("results", jobs[0].fingerprint)
    with open(victim, "w", encoding="utf-8") as handle:
        handle.write("not json")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    from repro.harness.cli import main
    assert main(["cache", "verify"]) == 0
    out = capsys.readouterr().out
    assert "quarantined" in out
    payload_ok = False
    for line in out.splitlines():
        if "results" in line and "2" in line:
            payload_ok = True
    assert payload_ok
