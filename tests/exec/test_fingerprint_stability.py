"""Golden fingerprint-stability fixtures.

Disk-store keys ARE job fingerprints: if a refactor accidentally
changes how configs canonicalise (field order, a renamed field, a new
default) every existing store record silently goes cold — campaigns
recompute everything and the store quietly doubles in size.  This test
makes that drift loud by pinning the fingerprints of a small
model x kernel grid (plus the warm-checkpoint sub-fingerprints) as
checked-in fixtures.  Pytest itself is a fresh process, so a green run
also proves cross-process byte-stability (no salted hashing anywhere).

If a PR changes fingerprints *deliberately* (a new ExperimentConfig
field, say), regenerate and say so in the PR description — and bump
:data:`repro.exec.store.ENGINE_VERSION` if timing semantics moved::

    PYTHONPATH=src python tests/exec/test_fingerprint_stability.py --regen
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.exec import SimJob, fingerprint
from repro.exec.store import warm_fingerprint, warm_geometry_key
from repro.harness.experiment import MODELS, ExperimentConfig

FIXTURE_PATH = os.path.join(os.path.dirname(__file__),
                            "golden_fingerprints.json")

#: Same small-but-diverse grid the golden stats fixtures use.
GRID_KERNELS = ("mcf_like", "mesa_like", "equake_like", "gzip_like")
GRID_INSTRUCTIONS = 1500


def grid_config() -> ExperimentConfig:
    return ExperimentConfig(instructions=GRID_INSTRUCTIONS)


def job_fingerprints() -> dict[str, str]:
    config = grid_config()
    return {f"{kernel}/{model}": SimJob(model, kernel, config).fingerprint
            for kernel in GRID_KERNELS for model in MODELS}


def warm_fingerprints() -> dict[str, str]:
    """Warm-checkpoint keys at the standard hpca09 geometry.

    Uses the production key builder (`warm_geometry_key`) so a change
    to the key composition shows up here as fixture drift.
    """
    from repro.workloads.suite import build_kernel

    key = warm_geometry_key(grid_config().machine_config())
    return {kernel: warm_fingerprint(build_kernel(kernel).program, key)
            for kernel in GRID_KERNELS}


def load_fixtures() -> dict:
    with open(FIXTURE_PATH) as handle:
        return json.load(handle)


def test_job_fingerprints_match_golden_fixture():
    fixtures = load_fixtures()
    assert fixtures["instructions"] == GRID_INSTRUCTIONS
    actual = job_fingerprints()
    # Cell-by-cell comparison reports exactly which spec drifted.
    for cell, expected in fixtures["jobs"].items():
        assert actual[cell] == expected, (
            f"fingerprint drift in {cell}: disk-store keys no longer match "
            "previously written records (silent cold start). If the drift "
            "is deliberate, regenerate with --regen and note it in the PR."
        )
    assert actual.keys() == fixtures["jobs"].keys()


def test_warm_fingerprints_match_golden_fixture():
    fixtures = load_fixtures()
    assert warm_fingerprints() == fixtures["warm"]


def test_fingerprints_stable_across_hash_seeds():
    """PYTHONHASHSEED must not leak into fingerprints (workers agree)."""
    code = (
        "import sys; sys.path.insert(0, 'src');"
        "from repro.exec import SimJob;"
        "from repro.harness.experiment import ExperimentConfig;"
        "print(SimJob('icfp', 'mcf_like', "
        f"ExperimentConfig(instructions={GRID_INSTRUCTIONS})).fingerprint)"
    )
    digests = set()
    for seed in ("0", "1", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, timeout=60,
                             cwd=os.path.join(os.path.dirname(__file__),
                                              "..", ".."))
        assert out.returncode == 0, out.stderr
        digests.add(out.stdout.strip())
    assert len(digests) == 1
    assert digests.pop() == load_fixtures()["jobs"]["mcf_like/icfp"]


def test_equal_specs_equal_fingerprints_distinct_specs_distinct():
    config = grid_config()
    a = SimJob("icfp", "mcf_like", config)
    b = SimJob("icfp", "mcf_like", ExperimentConfig(
        instructions=GRID_INSTRUCTIONS))
    assert a.fingerprint == b.fingerprint
    assert a.fingerprint != SimJob("sltp", "mcf_like", config).fingerprint
    assert fingerprint("x") != fingerprint("y")


def regenerate() -> None:
    payload = {
        "instructions": GRID_INSTRUCTIONS,
        "kernels": list(GRID_KERNELS),
        "models": list(MODELS),
        "jobs": job_fingerprints(),
        "warm": warm_fingerprints(),
    }
    with open(FIXTURE_PATH, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(payload['jobs'])} job + {len(payload['warm'])} warm "
          f"fingerprints to {FIXTURE_PATH}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)


# Guard against an empty/stale fixture file sneaking through review.
def test_fixture_covers_full_grid():
    fixtures = load_fixtures()
    assert len(fixtures["jobs"]) == len(GRID_KERNELS) * len(MODELS)
    assert len(fixtures["warm"]) == len(GRID_KERNELS)
    digests = list(fixtures["jobs"].values()) + list(fixtures["warm"].values())
    assert all(len(d) == 64 and int(d, 16) >= 0 for d in digests)
    assert len(set(digests)) == len(digests)


@pytest.mark.parametrize("rebuild", range(2))
def test_fingerprints_stable_within_process(rebuild):
    """Two independent spec constructions agree (no object identity)."""
    assert job_fingerprints() == load_fixtures()["jobs"]
