"""Disk result-store correctness.

The store is the third memo tier; its contract is that a store hit is
indistinguishable from a fresh simulation.  These tests pin that down:
exact stat round-trips, version-bump invalidation, corrupt-record
fallback, warm-checkpoint reuse, and the three-tier ``run_jobs`` path.
All stores live in per-test tmpdirs (the root ``tests/conftest.py``
fixture), so tier-1 never touches a developer's ``.repro-cache/``.
"""

import json
import os

import pytest

from repro.baselines.inorder import InOrderCore
from repro.exec import RESULT_CACHE, ResultStore, SimJob, default_store, run_jobs
from repro.exec.store import (
    ENGINE_VERSION,
    STORE_SCHEMA,
    cache_dir,
    payload_to_result,
    result_to_payload,
    store_enabled,
    warm_fingerprint,
)
from repro.harness.experiment import ExperimentConfig

CFG = ExperimentConfig(instructions=400)

#: Current version directory name (record paths live under it).
VDIR = f"v{STORE_SCHEMA}"


def fresh_results(models=("in-order", "icfp"), workload="mcf_like"):
    """Simulate a tiny grid with every cache tier off."""
    jobs = [SimJob(model, workload, CFG) for model in models]
    return jobs, run_jobs(jobs, workers=1, memo=False, store=False)


# ----------------------------------------------------------------------
# serialisation round-trip
# ----------------------------------------------------------------------
def test_store_hit_is_byte_identical_to_fresh_simulation(tmp_path):
    jobs, results = fresh_results()
    store = ResultStore(str(tmp_path / "store"))
    for job, result in zip(jobs, results):
        store.put_result(job.fingerprint, result)
    # A different instance (fresh process stand-in) must reproduce every
    # recorded statistic exactly, including the MLP meters' derived
    # values, which recompute from the persisted raw intervals.
    reader = ResultStore(str(tmp_path / "store"))
    for job, result in zip(jobs, results):
        loaded = reader.get_result(job.fingerprint)
        assert loaded is not None and loaded is not result
        assert result_to_payload(loaded) == result_to_payload(result)
        assert loaded.cycles == result.cycles
        assert loaded.ipc == result.ipc
        assert loaded.stats.stalls.total() == result.stats.stalls.total()
        assert loaded.stats.d_mlp.average() == result.stats.d_mlp.average()
        assert loaded.stats.l2_mlp.count == result.stats.l2_mlp.count
    assert reader.hits == len(jobs) and reader.corrupt == 0


def test_payload_round_trip_preserves_interval_tuples():
    _, results = fresh_results(models=("icfp",))
    rebuilt = payload_to_result(
        json.loads(json.dumps(result_to_payload(results[0]))))
    for interval in rebuilt.stats.d_mlp._intervals:
        assert isinstance(interval, tuple)


# ----------------------------------------------------------------------
# versioning
# ----------------------------------------------------------------------
def test_schema_or_engine_bump_invalidates_cleanly(tmp_path):
    root = str(tmp_path / "store")
    jobs, results = fresh_results(models=("in-order",))
    fp = jobs[0].fingerprint
    ResultStore(root).put_result(fp, results[0])

    bumped_engine = ResultStore(root, engine_version=ENGINE_VERSION + ".next")
    assert bumped_engine.get_result(fp) is None
    assert bumped_engine.misses == 1 and bumped_engine.corrupt == 0

    bumped_schema = ResultStore(root, schema=STORE_SCHEMA + 1)
    assert bumped_schema.get_result(fp) is None
    assert bumped_schema.misses == 1 and bumped_schema.corrupt == 0

    # The old-version record is untouched (no destructive reads) ...
    assert ResultStore(root).get_result(fp) is not None
    # ... until gc reclaims it as stale from the bumped store's view.
    removed = bumped_engine.gc(older_than_days=10_000)
    assert removed["stale"] == 1
    assert ResultStore(root).get_result(fp) is None


def test_previous_engine_generation_records_are_invisible(tmp_path):
    """Records written under the pre-bump tag ("eh2", before the horizon
    set was provably complete) must never satisfy a lookup from the
    current engine: their timing could embed a bad leap."""
    root = str(tmp_path / "store")
    jobs, results = fresh_results(models=("in-order",))
    fp = jobs[0].fingerprint
    ResultStore(root, engine_version="eh2").put_result(fp, results[0])

    current = ResultStore(root)
    assert current.engine_version == ENGINE_VERSION == "eh3"
    assert current.get_result(fp) is None
    assert current.misses == 1 and current.corrupt == 0
    # The record is still there under its own tag (no destructive reads);
    # only a gc from the current store's view reclaims it.
    assert ResultStore(root, engine_version="eh2").get_result(fp) is not None
    assert current.gc(older_than_days=10_000)["stale"] == 1
    assert ResultStore(root, engine_version="eh2").get_result(fp) is None


def test_gc_expires_current_records_by_age(tmp_path):
    root = str(tmp_path / "store")
    store = ResultStore(root)
    jobs, results = fresh_results(models=("in-order",))
    store.put_result(jobs[0].fingerprint, results[0])
    assert store.gc(older_than_days=1)["expired"] == 0
    assert store.get_result(jobs[0].fingerprint) is not None
    path = store._record_path("results", jobs[0].fingerprint)
    os.utime(path, (1, 1))  # ancient mtime
    assert store.gc(older_than_days=1)["expired"] == 1
    assert ResultStore(root).get_result(jobs[0].fingerprint) is None


def test_gc_prune_never_touches_foreign_directories(tmp_path):
    """A mis-pointed REPRO_CACHE_DIR must survive gc intact."""
    root = tmp_path / "store"
    store = ResultStore(str(root))
    jobs, results = fresh_results(models=("in-order",))
    store.put_result(jobs[0].fingerprint, results[0])
    bystander = root / "my-project" / "empty-subdir"
    bystander.mkdir(parents=True)
    path = store._record_path("results", jobs[0].fingerprint)
    os.utime(path, (1, 1))
    assert store.gc(older_than_days=1)["expired"] == 1
    assert bystander.is_dir(), "gc pruned a non-store directory"
    assert not os.path.exists(os.path.dirname(path))  # emptied shard pruned


def test_clear_removes_only_store_owned_entries(tmp_path):
    root = tmp_path / "store"
    store = ResultStore(str(root))
    jobs, results = fresh_results(models=("in-order",))
    store.put_result(jobs[0].fingerprint, results[0])
    store.flush_counters()
    bystander = root / "NOTES.txt"
    bystander.write_text("not a store record")
    assert store.clear() == 1
    assert bystander.exists()
    assert not (root / VDIR).exists()


# ----------------------------------------------------------------------
# corruption
# ----------------------------------------------------------------------
@pytest.mark.parametrize("damage", ["truncate", "garbage", "wrong_shape"])
def test_corrupt_record_falls_back_to_recompute(tmp_path, damage):
    root = str(tmp_path / "store")
    store = ResultStore(root)
    jobs, results = fresh_results(models=("in-order",))
    fp = jobs[0].fingerprint
    store.put_result(fp, results[0])
    path = store._record_path("results", fp)
    if damage == "truncate":
        with open(path, "r+") as handle:
            handle.truncate(os.path.getsize(path) // 2)
    elif damage == "garbage":
        with open(path, "w") as handle:
            handle.write("not json {")
    else:
        with open(path, "w") as handle:
            json.dump({"schema": store.schema, "engine": store.engine_version,
                       "fingerprint": fp, "payload": {"stats": {}}}, handle)

    reader = ResultStore(root)
    assert reader.get_result(fp) is None
    assert reader.corrupt == 1 and reader.hits == 0
    assert not os.path.exists(path)  # discarded, so a rewrite can land

    # The engine recomputes and repopulates transparently.
    RESULT_CACHE.clear()
    recomputed, = run_jobs([jobs[0]], workers=1, store=reader)
    assert result_to_payload(recomputed) == result_to_payload(results[0])
    assert ResultStore(root).get_result(fp) is not None


# ----------------------------------------------------------------------
# phase attribution (STORE_SCHEMA v2)
# ----------------------------------------------------------------------
def _multi_phase_spec():
    from repro.wgen import generate_suite

    return next(s for s in generate_suite(4, 42) if len(s.phases) > 1)


def test_phase_stats_round_trip_exactly(tmp_path):
    from dataclasses import fields

    from repro.pipeline.stats import PhaseStats

    spec = _multi_phase_spec()
    jobs, results = fresh_results(models=("in-order", "icfp"), workload=spec)
    assert all(len(r.phase_stats) == len(spec.phases) for r in results)
    store = ResultStore(str(tmp_path / "store"))
    for job, result in zip(jobs, results):
        store.put_result(job.fingerprint, result)
    reader = ResultStore(str(tmp_path / "store"))
    for job, result in zip(jobs, results):
        loaded = reader.get_result(job.fingerprint)
        assert loaded is not None
        assert result_to_payload(loaded) == result_to_payload(result)
        for a, b in zip(loaded.phase_stats, result.phase_stats):
            for f in fields(PhaseStats):
                assert getattr(a, f.name) == getattr(b, f.name)
    assert reader.corrupt == 0


def test_single_bucket_and_none_phase_stats_round_trip(tmp_path):
    jobs, results = fresh_results(models=("in-order",))
    assert len(results[0].phase_stats) == 1  # named kernel: one bucket
    results[0].phase_stats = None            # externally built program case
    store = ResultStore(str(tmp_path / "store"))
    store.put_result(jobs[0].fingerprint, results[0])
    assert store.get_result(jobs[0].fingerprint).phase_stats is None


def test_record_without_phases_key_is_corrupt(tmp_path):
    """The v2 layout requires `phases`; a mismatched payload recomputes."""
    jobs, results = fresh_results(models=("in-order",))
    fp = jobs[0].fingerprint
    store = ResultStore(str(tmp_path / "store"))
    store.put_result(fp, results[0])
    payload = store.get_json("results", fp)
    del payload["phases"]
    store.put_json("results", fp, payload)
    reader = ResultStore(str(tmp_path / "store"))
    assert reader.get_result(fp) is None
    assert reader.corrupt == 1


def test_pre_bump_schema_records_are_invisible(tmp_path):
    """Records written under the previous schema are never read (or
    misread) by the current one — the bump hides them until gc."""
    root = str(tmp_path / "store")
    jobs, results = fresh_results(models=("in-order",))
    fp = jobs[0].fingerprint
    old = ResultStore(root, schema=STORE_SCHEMA - 1)
    old.put_result(fp, results[0])
    current = ResultStore(root)
    assert current.get_result(fp) is None
    assert current.misses == 1 and current.corrupt == 0
    assert current.gc(older_than_days=10_000)["stale"] == 1


# ----------------------------------------------------------------------
# the three-tier run_jobs path
# ----------------------------------------------------------------------
def test_run_jobs_hits_store_for_every_cell_after_memo_clear(monkeypatch):
    jobs = [SimJob(model, "gzip_like", CFG)
            for model in ("in-order", "runahead", "icfp")]
    monkeypatch.setenv("REPRO_JOBS", "1")
    RESULT_CACHE.clear()
    first = run_jobs(jobs)
    store = default_store()
    assert store is not None and store.writes >= len(jobs)

    # A cleared RAM memo stands in for a fresh process: every cell must
    # now come from the disk store, with zero simulations.
    RESULT_CACHE.clear()
    simulated = []
    monkeypatch.setattr(
        SimJob, "run",
        lambda self: simulated.append(self.fingerprint))
    hits_before = store.hits
    second = run_jobs(jobs)
    assert simulated == []
    assert store.hits == hits_before + len(jobs)
    assert ([result_to_payload(r) for r in first]
            == [result_to_payload(r) for r in second])


def test_memo_false_bypasses_store_by_default(tmp_path):
    jobs = [SimJob("in-order", "mesa_like", CFG)]
    run_jobs(jobs, workers=1, memo=False)
    store_root = cache_dir()
    assert not os.path.exists(os.path.join(store_root, VDIR, ENGINE_VERSION,
                                           "results"))


def test_store_false_disables_disk_tier():
    RESULT_CACHE.clear()
    jobs = [SimJob("in-order", "mesa_like", CFG)]
    run_jobs(jobs, workers=1, store=False)
    # No result records (warm checkpoints are governed by REPRO_STORE,
    # not by run_jobs' store= argument).
    assert not os.path.exists(os.path.join(cache_dir(), VDIR, ENGINE_VERSION,
                                           "results"))


def test_store_env_toggle(monkeypatch):
    assert store_enabled()
    monkeypatch.setenv("REPRO_STORE", "0")
    assert not store_enabled() and default_store() is None
    monkeypatch.setenv("REPRO_STORE", "off")
    assert not store_enabled()
    monkeypatch.setenv("REPRO_STORE", "1")
    assert store_enabled() and default_store() is not None


# ----------------------------------------------------------------------
# warm-state checkpoints
# ----------------------------------------------------------------------
def test_warm_checkpoint_shared_across_models_and_runs(monkeypatch):
    from repro.workloads import trace_by_name

    warmed = []
    real_warm = InOrderCore._warm_dcache
    monkeypatch.setattr(InOrderCore, "_warm_dcache",
                        lambda self: (warmed.append(1), real_warm(self))[1])

    trace = trace_by_name("equake_like", 400)
    machine = CFG.machine_config()
    first = InOrderCore(trace, config=machine)
    assert warmed == [1]
    # Same process, later model: served by the in-RAM snapshot.
    second = InOrderCore(trace, config=machine)
    assert warmed == [1]

    # Fresh process stand-in: drop the in-RAM snapshot; the disk
    # checkpoint (keyed by the warm sub-fingerprint) must serve it.
    del trace.warm_snapshots
    third = InOrderCore(trace, config=machine)
    assert warmed == [1], "disk checkpoint was not reused"

    for a, b in ((first, second), (first, third)):
        assert a.hierarchy.l1d.export_sets() == b.hierarchy.l1d.export_sets()
        assert a.hierarchy.l1i.export_sets() == b.hierarchy.l1i.export_sets()
        assert a.hierarchy.l2.export_sets() == b.hierarchy.l2.export_sets()
    for way_list in third.hierarchy.l2.export_sets():
        for entry in way_list:
            assert isinstance(entry, tuple)


def test_warm_fingerprint_distinguishes_programs_and_geometry():
    from repro.workloads.suite import build_kernel

    mcf = build_kernel("mcf_like").program
    gzip = build_kernel("gzip_like").program
    key_a = ((32768, 2, 32), (32768, 2, 32), (1048576, 8, 64), True, True)
    key_b = ((32768, 2, 32), (32768, 2, 32), (2097152, 8, 64), True, True)
    fps = {warm_fingerprint(mcf, key_a), warm_fingerprint(gzip, key_a),
           warm_fingerprint(mcf, key_b)}
    assert len(fps) == 3
    assert warm_fingerprint(mcf, key_a) == warm_fingerprint(mcf, key_a)
