"""Engine scheduling: parallel == sequential, knob resolution."""

import pickle

import pytest

from repro.exec import RESULT_CACHE, SimJob, default_jobs, parallel_map, run_jobs
from repro.harness.experiment import ExperimentConfig, run_suite

WORKLOADS = ("mesa_like", "crafty_like", "gzip_like")


def _square(x: int) -> int:
    return x * x


def _stats_bytes(result):
    return pickle.dumps((result.model, result.workload, result.stats))


def test_parallel_results_equal_sequential_exactly():
    """The acceptance property: fan-out must be invisible in the data."""
    cfg = ExperimentConfig(instructions=400)
    RESULT_CACHE.clear()
    sequential = run_suite(workloads=WORKLOADS, config=cfg, jobs=1)
    RESULT_CACHE.clear()
    parallel = run_suite(workloads=WORKLOADS, config=cfg, jobs=2)
    assert list(sequential) == list(parallel)
    for workload in sequential:
        assert list(sequential[workload]) == list(parallel[workload])
        for model in sequential[workload]:
            seq, par = sequential[workload][model], parallel[workload][model]
            assert seq.cycles == par.cycles
            assert seq.instructions == par.instructions
            assert _stats_bytes(seq) == _stats_bytes(par), (workload, model)


def test_run_jobs_preserves_input_order():
    cfg = ExperimentConfig(instructions=300)
    jobs = [SimJob(m, w, cfg)
            for w in ("crafty_like", "mesa_like")
            for m in ("icfp", "in-order")]
    results = run_jobs(jobs, workers=1)
    assert [(r.model, r.workload) for r in results] == \
        [(j.model, j.workload) for j in jobs]


def test_simjob_roundtrips_through_pickle():
    job = SimJob("icfp", "mcf_like", ExperimentConfig(instructions=500))
    clone = pickle.loads(pickle.dumps(job))
    assert clone == job
    assert clone.fingerprint == job.fingerprint


def test_default_jobs_resolution(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() == 1  # clamped
    monkeypatch.delenv("REPRO_JOBS")
    assert default_jobs() >= 1


def test_worker_exceptions_propagate():
    cfg = ExperimentConfig(instructions=300)
    with pytest.raises(KeyError):
        run_jobs([SimJob("in-order", "doom_like", cfg)], workers=1)


def test_parallel_map_matches_sequential_map():
    items = list(range(7))
    assert parallel_map(_square, items, workers=1) == [x * x for x in items]
    assert parallel_map(_square, items, workers=2) == [x * x for x in items]
