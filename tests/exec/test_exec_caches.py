"""Trace- and result-cache semantics."""

from repro.exec import RESULT_CACHE, TRACE_CACHE, SimJob, TraceCache, run_jobs
from repro.harness.experiment import ExperimentConfig
from repro.workloads import trace_by_name


def test_trace_cache_returns_identical_object():
    TRACE_CACHE.clear()
    first = trace_by_name("mesa_like", 300)
    second = trace_by_name("mesa_like", 300)
    assert second is first
    assert TRACE_CACHE.hits == 1 and TRACE_CACHE.misses == 1


def test_trace_cache_keys_on_name_and_budget():
    TRACE_CACHE.clear()
    a = trace_by_name("mesa_like", 300)
    b = trace_by_name("mesa_like", 400)
    c = trace_by_name("crafty_like", 300)
    assert len({id(a), id(b), id(c)}) == 3
    assert len(a) == 300 and len(b) == 400
    assert TRACE_CACHE.misses == 3


def test_trace_cache_lru_bound():
    cache = TraceCache(maxsize=2)
    cache.get("mesa_like", 100)
    cache.get("mesa_like", 120)
    cache.get("mesa_like", 140)  # evicts (mesa_like, 100)
    assert len(cache) == 2
    before = cache.misses
    cache.get("mesa_like", 100)
    assert cache.misses == before + 1  # rebuilt after eviction


def test_result_cache_memoizes_repeat_jobs():
    RESULT_CACHE.clear()
    job = SimJob("in-order", "mesa_like", ExperimentConfig(instructions=300))
    first, = run_jobs([job], workers=1)
    again, = run_jobs([job], workers=1)
    assert again is first
    assert RESULT_CACHE.hits == 1


def test_result_cache_dedupes_within_one_batch():
    RESULT_CACHE.clear()
    cfg = ExperimentConfig(instructions=300)
    job = SimJob("in-order", "mesa_like", cfg)
    twin = SimJob("in-order", "mesa_like", ExperimentConfig(instructions=300))
    a, b = run_jobs([job, twin], workers=1)
    assert a is b
    assert len(RESULT_CACHE) == 1


def test_memo_false_bypasses_cross_call_cache():
    RESULT_CACHE.clear()
    job = SimJob("in-order", "mesa_like", ExperimentConfig(instructions=300))
    first, = run_jobs([job], workers=1, memo=False)
    second, = run_jobs([job], workers=1, memo=False)
    assert first is not second
    assert first.cycles == second.cycles
    assert len(RESULT_CACHE) == 0
