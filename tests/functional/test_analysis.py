"""Unit tests for the trace-analysis toolkit."""

import pytest

from repro.functional import run_program
from repro.functional.analysis import (
    characterise,
    dataflow_stats,
    load_chain_stats,
    working_set_stats,
)
from repro.isa import Assembler, R, assemble_text
from repro.workloads import trace_by_name


def trace_of(text):
    return run_program(assemble_text(text))


# ----------------------------------------------------------------------
# dataflow
# ----------------------------------------------------------------------
def test_serial_chain_has_unit_ilp():
    trace = trace_of("\n".join(["addi r1, r1, 1"] * 20 + ["halt"]))
    stats = dataflow_stats(trace)
    assert stats.critical_path == 20
    assert stats.ilp_bound == pytest.approx(21 / 20)
    assert stats.mean_dependence_distance == pytest.approx(1.0)


def test_parallel_streams_have_high_ilp():
    body = []
    for _ in range(10):
        body += ["addi r1, r1, 1", "addi r2, r2, 1", "addi r3, r3, 1"]
    trace = trace_of("\n".join(body + ["halt"]))
    stats = dataflow_stats(trace)
    assert stats.critical_path == 10
    assert stats.ilp_bound > 2.5
    assert stats.mean_dependence_distance == pytest.approx(3.0)


def test_independent_instructions_depth_one():
    trace = trace_of("li r1, 1\nli r2, 2\nli r3, 3\nhalt")
    assert dataflow_stats(trace).critical_path == 1


# ----------------------------------------------------------------------
# load chains
# ----------------------------------------------------------------------
def test_pointer_chase_depth_counts_hops():
    a = Assembler()
    chain = [0x2000, 0x3000, 0x4000]
    for here, there in zip(chain, chain[1:]):
        a.word(here, there)
    a.word(chain[-1], 0)
    a.li(R.r1, chain[0])
    for _ in range(3):
        a.ld(R.r1, R.r1, 0)
    a.halt()
    stats = load_chain_stats(run_program(a.assemble()))
    assert stats.max_chain_depth == 2  # third load depends on two loads
    assert stats.chained_load_fraction == pytest.approx(2 / 3)
    assert stats.depth_histogram == {0: 1, 1: 1, 2: 1}


def test_streaming_loads_are_unchained():
    trace = trace_of(
        """
        li r1, 0x2000
        ld r2, r1, 0
        ld r3, r1, 8
        ld r4, r1, 16
        halt
        """
    )
    stats = load_chain_stats(trace)
    assert stats.max_chain_depth == 0
    assert stats.chained_load_fraction == 0.0


def test_suite_kernels_classified_correctly():
    mcf = load_chain_stats(trace_by_name("mcf_like", 3000))
    art = load_chain_stats(trace_by_name("art_like", 3000))
    assert mcf.chained_load_fraction > 0.3   # chain-dominated
    assert mcf.max_chain_depth > 10
    assert art.chained_load_fraction < 0.1   # stream-dominated


# ----------------------------------------------------------------------
# working set
# ----------------------------------------------------------------------
def test_working_set_counts_lines():
    trace = trace_of(
        """
        li r1, 0x2000
        ld r2, r1, 0
        ld r3, r1, 8
        ld r4, r1, 64
        halt
        """
    )
    stats = working_set_stats(trace)
    assert stats.total_lines == 2
    assert stats.hottest_lines[0][1] == 2  # line 0x2000 touched twice


def test_working_set_concentration():
    a = Assembler()
    a.li(R.r1, 0x2000)
    for _ in range(18):
        a.ld(R.r2, R.r1, 0)       # hot line
    a.ld(R.r3, R.r1, 256)         # two cold lines
    a.ld(R.r4, R.r1, 512)
    a.halt()
    stats = working_set_stats(run_program(a.assemble()))
    assert stats.total_lines == 3
    assert stats.lines_for_90_percent == 1


def test_working_set_empty_trace():
    stats = working_set_stats(trace_of("nop\nhalt"))
    assert stats.total_lines == 0
    assert stats.hottest_lines == []


# ----------------------------------------------------------------------
# characterise
# ----------------------------------------------------------------------
def test_characterise_mentions_kind():
    text = characterise(trace_by_name("mcf_like", 2000))
    assert "pointer-chasing" in text
    text = characterise(trace_by_name("art_like", 2000))
    assert "streaming/compute" in text
