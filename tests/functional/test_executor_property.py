"""Property tests: executor semantics against Python reference math."""

from hypothesis import given, settings, strategies as st

from repro.functional import run_program, to_signed64
from repro.isa import Assembler, R

_i64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


def run_binop(op_name, a_val, b_val):
    a = Assembler()
    a.li(R.r1, a_val)
    a.li(R.r2, b_val)
    getattr(a, op_name)(R.r3, R.r1, R.r2)
    a.halt()
    return run_program(a.assemble()).final_state.regs[R.r3]


@settings(max_examples=150, deadline=None)
@given(_i64, _i64)
def test_add_wraps_like_signed64(x, y):
    assert run_binop("add", x, y) == to_signed64(x + y)


@settings(max_examples=150, deadline=None)
@given(_i64, _i64)
def test_mul_wraps_like_signed64(x, y):
    assert run_binop("mul", x, y) == to_signed64(x * y)


@settings(max_examples=100, deadline=None)
@given(_i64, _i64)
def test_sub_and_xor(x, y):
    assert run_binop("sub", x, y) == to_signed64(x - y)
    assert run_binop("xor", x, y) == to_signed64(x ^ y)


@settings(max_examples=100, deadline=None)
@given(_i64, st.integers(min_value=0, max_value=63))
def test_shifts_mask_their_count(x, count):
    a = Assembler()
    a.li(R.r1, x)
    a.li(R.r2, count)
    a.shl(R.r3, R.r1, R.r2)
    a.shr(R.r4, R.r1, R.r2)
    a.halt()
    regs = run_program(a.assemble()).final_state.regs
    assert regs[R.r3] == to_signed64(x << count)
    assert regs[R.r4] == to_signed64((x & ((1 << 64) - 1)) >> count)


@settings(max_examples=100, deadline=None)
@given(_i64, _i64)
def test_slt_total_order(x, y):
    assert run_binop("slt", x, y) == (1 if x < y else 0)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 7), _i64), min_size=1, max_size=24))
def test_memory_is_last_writer_wins(writes):
    """A sequence of stores to 8 slots: final memory = the last write."""
    a = Assembler()
    a.li(R.r1, 0x4000)
    expected = {}
    for slot, value in writes:
        value = to_signed64(value)
        a.li(R.r2, value)
        a.st(R.r2, R.r1, slot * 8)
        expected[0x4000 + slot * 8] = value
    a.halt()
    final = run_program(a.assemble()).final_state.memory
    for addr, value in expected.items():
        assert final[addr] == value


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=30))
def test_loop_trip_count(n):
    a = Assembler()
    a.li(R.r1, 0)
    a.li(R.r2, n)
    a.label("loop")
    a.addi(R.r1, R.r1, 1)
    a.bne(R.r1, R.r2, "loop")
    a.halt()
    trace = run_program(a.assemble())
    assert trace.final_state.regs[R.r1] == n
    assert trace.num_branches == n
