"""Unit tests for Trace / DynInst helpers."""

from repro.functional import run_program
from repro.isa import assemble_text


def make_trace():
    return run_program(assemble_text(
        """
        li r1, 0x2000
        li r2, 3
        ld r3, r1, 0
        st r2, r1, 8
        ldf f1, r1, 16
        fadd f2, f1, f1
        beq r2, r0, skip
        mul r4, r2, r2
        skip: halt
        """
    ))


def test_len_index_iter():
    trace = make_trace()
    assert len(trace) == 9
    assert trace[0].index == 0
    assert [d.index for d in trace] == list(range(9))


def test_classification_properties():
    trace = make_trace()
    kinds = [(d.is_load, d.is_store, d.is_branch, d.is_control)
             for d in trace]
    assert kinds[2] == (True, False, False, False)    # ld
    assert kinds[3] == (False, True, False, False)    # st
    assert kinds[4] == (True, False, False, False)    # ldf
    assert kinds[6] == (False, False, True, True)     # beq
    assert trace[2].is_mem and trace[3].is_mem
    assert not trace[5].is_mem


def test_counts():
    trace = make_trace()
    assert trace.num_loads == 2
    assert trace.num_stores == 1
    assert trace.num_branches == 1


def test_count_predicate():
    trace = make_trace()
    assert trace.count(lambda d: d.opclass.value.startswith("fp")) == 1  # fadd


def test_completed_flag():
    trace = make_trace()
    assert trace.completed


def test_src_vals_recorded():
    trace = make_trace()
    store = trace[3]
    assert store.src_vals == (0x2000, 3)  # (base, data)
    assert store.store_val == 3


def test_counts_are_memoized():
    trace = make_trace()
    assert trace.num_loads == 2
    # Cached: mutating the records must not change the memoized answer
    # (traces are read-only to the timing models; this just proves the
    # O(n) scan ran once).
    assert trace._num_loads == 2
    assert trace.num_loads == 2
    assert trace.mem_footprint_lines(64) == trace.mem_footprint_lines(64)
    assert 64 in trace._footprints


def test_hot_arrays_mirror_records():
    trace = make_trace()
    hot = trace.hot
    assert hot is trace.hot  # built once, cached
    for dyn in trace:
        i = dyn.index
        assert hot.srcs[i] == dyn.srcs
        assert hot.dst[i] == dyn.dst
        assert hot.is_control[i] == dyn.is_control
        assert hot.taken[i] == dyn.taken
        assert hot.addr[i] == dyn.addr
        assert hot.pc[i] == dyn.pc
        assert hot.nsrc[i] == len(dyn.srcs)
        if dyn.srcs:
            assert hot.src0[i] == dyn.srcs[0]
    kinds = [hot.kind[d.index] for d in trace]
    assert kinds[2] == 1 and kinds[3] == 2  # ld, st
    iline = hot.iline(64)
    assert iline == [pc // 64 for pc in hot.pc]
    assert hot.iline(64) is iline  # memoized per line size
