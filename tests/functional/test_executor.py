"""Unit tests for the functional executor."""

import pytest

from repro.functional import ArchState, ExecutionError, FunctionalExecutor, run_program
from repro.isa import Assembler, R, assemble_text, pc_of


def run_text(text, max_instructions=10_000):
    return run_program(assemble_text(text), max_instructions=max_instructions)


def test_alu_arithmetic():
    trace = run_text(
        """
        li r1, 7
        li r2, 5
        add r3, r1, r2
        sub r4, r1, r2
        mul r5, r1, r2
        slt r6, r2, r1
        halt
        """
    )
    regs = trace.final_state.regs
    assert regs[R.r3] == 12
    assert regs[R.r4] == 2
    assert regs[R.r5] == 35
    assert regs[R.r6] == 1


def test_64bit_wraparound():
    trace = run_text(
        """
        li r1, 0x7fffffffffffffff
        addi r2, r1, 1
        halt
        """
    )
    assert trace.final_state.regs[R.r2] == -(1 << 63)


def test_logical_and_shift_ops():
    trace = run_text(
        """
        li r1, 0b1100
        li r2, 0b1010
        and r3, r1, r2
        or  r4, r1, r2
        xor r5, r1, r2
        shli r6, r1, 2
        li r7, 1
        shr r8, r1, r7
        halt
        """
    )
    regs = trace.final_state.regs
    assert regs[R.r3] == 0b1000
    assert regs[R.r4] == 0b1110
    assert regs[R.r5] == 0b0110
    assert regs[R.r6] == 0b110000
    assert regs[R.r8] == 0b0110


def test_r0_is_hardwired_zero():
    trace = run_text(
        """
        li r0, 99
        addi r1, r0, 3
        halt
        """
    )
    assert trace.final_state.regs[0] == 0
    assert trace.final_state.regs[R.r1] == 3


def test_memory_round_trip():
    trace = run_text(
        """
        li r1, 0x2000
        li r2, 42
        st r2, r1, 0
        ld r3, r1, 0
        halt
        """
    )
    assert trace.final_state.regs[R.r3] == 42
    assert trace.final_state.memory[0x2000] == 42


def test_unaligned_access_raises():
    with pytest.raises(ValueError):
        run_text(
            """
            li r1, 0x2001
            ld r2, r1, 0
            halt
            """
        )


def test_load_from_program_data():
    a = Assembler()
    a.words(0x3000, [10, 20, 30])
    a.li(R.r1, 0x3000)
    a.ld(R.r2, R.r1, 16)
    a.halt()
    trace = run_program(a.assemble())
    assert trace.final_state.regs[R.r2] == 30


def test_branch_taken_and_not_taken():
    trace = run_text(
        """
        li r1, 0
        li r2, 3
        loop:
            addi r1, r1, 1
            bne r1, r2, loop
        halt
        """
    )
    assert trace.final_state.regs[R.r1] == 3
    branches = [d for d in trace if d.is_branch]
    assert [b.taken for b in branches] == [True, True, False]


def test_branch_records_target_pc():
    trace = run_text(
        """
        li r1, 1
        beq r1, r0, skip
        nop
        skip: halt
        """
    )
    br = next(d for d in trace if d.is_branch)
    assert not br.taken
    assert br.target_pc == pc_of(3)
    assert br.next_pc == br.pc + 4


def test_jal_jr_round_trip():
    trace = run_text(
        """
        jal r31, func
        li r1, 1
        halt
        func:
            li r2, 2
            jr r31
        """
    )
    regs = trace.final_state.regs
    assert regs[R.r1] == 1
    assert regs[R.r2] == 2
    assert regs[R.r31] == pc_of(1)


def test_fp_ops_and_conversion():
    trace = run_text(
        """
        li r1, 3
        cvtif f1, r1
        fadd f2, f1, f1
        fmul f3, f2, f1
        fmadd f4, f1, f1, f2
        cvtfi r2, f3
        halt
        """
    )
    regs = trace.final_state.regs
    assert regs[R.f2] == 6.0
    assert regs[R.f3] == 18.0
    assert regs[R.f4] == 15.0
    assert regs[R.r2] == 18


def test_ldf_converts_int_memory_to_float():
    trace = run_text(
        """
        li r1, 0x2000
        li r2, 5
        st r2, r1, 0
        ldf f1, r1, 0
        halt
        """
    )
    assert trace.final_state.regs[R.f1] == 5.0


def test_trace_budget_truncation():
    trace = run_text(
        """
        loop: j loop
        """,
        max_instructions=25,
    )
    assert not trace.completed
    assert len(trace) == 25


def test_trace_dyninst_metadata():
    trace = run_text(
        """
        li r1, 0x2000
        li r2, 7
        st r2, r1, 8
        ld r3, r1, 8
        halt
        """
    )
    store = next(d for d in trace if d.is_store)
    load = next(d for d in trace if d.is_load)
    assert store.addr == 0x2008 and store.store_val == 7
    assert load.addr == 0x2008 and load.result == 7
    assert trace.num_loads == 1 and trace.num_stores == 1


def test_step_after_halt_raises():
    ex = FunctionalExecutor(assemble_text("halt"))
    ex.step()
    with pytest.raises(ExecutionError):
        ex.step()


def test_pc_out_of_range_raises():
    ex = FunctionalExecutor(assemble_text("nop"))
    ex.step()
    with pytest.raises(ExecutionError):
        ex.step()


def test_initial_state_injection():
    state = ArchState()
    state.write_reg(R.r1, 123)
    ex = FunctionalExecutor(assemble_text("addi r2, r1, 1\nhalt"), initial_state=state)
    trace = ex.run()
    assert trace.final_state.regs[R.r2] == 124


def test_footprint_helper():
    trace = run_text(
        """
        li r1, 0x2000
        ld r2, r1, 0
        ld r3, r1, 64
        ld r4, r1, 8
        halt
        """
    )
    assert trace.mem_footprint_lines(64) == 2
