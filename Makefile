# Developer entry points for the iCFP (HPCA 2009) reproduction.
#
# `make smoke` is the fast verification path: a reduced instruction
# budget and kernel subset that exercises every layer (workloads,
# functional executor, all five machine models, the campaign engine)
# in well under a minute, so the full suite isn't the only signal.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Fast-profile knobs (override on the command line as needed).
SMOKE_INSTRUCTIONS ?= 1200
SMOKE_WORKLOADS ?= mcf_like,mesa_like,equake_like,gzip_like
SMOKE_TESTS ?= tests/exec tests/harness tests/engine tests/workloads

.PHONY: test smoke smoke-campaign bench-throughput

## Full tier-1 suite (slow: full instruction budgets).
test:
	$(PYTHON) -m pytest -x -q

## Fast end-to-end check: reduced budget, kernel subset.
smoke:
	REPRO_INSTRUCTIONS=$(SMOKE_INSTRUCTIONS) \
	REPRO_WORKLOADS=$(SMOKE_WORKLOADS) \
	$(PYTHON) -m pytest -x -q $(SMOKE_TESTS)

## The same profile through the CLI: one real campaign, printed.
smoke-campaign:
	REPRO_INSTRUCTIONS=$(SMOKE_INSTRUCTIONS) \
	$(PYTHON) -m repro figure5 -w $(SMOKE_WORKLOADS)

## Campaign throughput (jobs=1 vs jobs=N) as machine-readable JSON.
bench-throughput:
	$(PYTHON) benchmarks/bench_throughput.py
