# Developer entry points for the iCFP (HPCA 2009) reproduction.
#
# `make smoke` is the fast verification path: a reduced instruction
# budget and kernel subset that exercises every layer (workloads,
# functional executor, all five machine models, the campaign engine)
# in well under a minute, so the full suite isn't the only signal.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Fast-profile knobs (override on the command line as needed).
SMOKE_INSTRUCTIONS ?= 1200
SMOKE_WORKLOADS ?= mcf_like,mesa_like,equake_like,gzip_like
SMOKE_TESTS ?= tests/exec tests/fabric tests/faults tests/harness tests/engine tests/workloads tests/wgen tests/stats tests/obs
# Smoke deselects @pytest.mark.slow (wide fixed-budget grids that ignore
# the REPRO_* fast profile); the full suite always runs them.
SMOKE_MARKERS ?= not slow

# Chaos profile: the full fault-injection matrix (worker deaths, pool
# resurrection, timeouts, SIGKILL-resume, store corruption) at a fixed
# seed — deterministic, so a chaos failure reproduces exactly.
CHAOS_TESTS ?= tests/faults
# Fabric chaos: the lease-based campaign fabric under the same
# deterministic fault plans, slow tests included (SIGKILL'd workers and
# a SIGKILL'd coordinator resumed in a fresh process).
FABRIC_CHAOS_TESTS ?= tests/fabric

.PHONY: test smoke smoke-campaign leap-audit chaos fabric-chaos bench bench-warm bench-throughput profile trace

# Fast leap-audit slice for `make smoke`: two miss-heavy kernels at the
# short budget plus the formerly-divergent cells through the batched
# backend (the full sweep is `make leap-audit`).
LEAP_SMOKE ?= formerly or ((mcf_like or equake_like) and 800)

## Full tier-1 suite (slow: full instruction budgets).  The fast smoke
## profile — which includes the golden cycle/stats fixtures in
## tests/engine — runs first so engine-equivalence breaks fail in
## seconds, not after the long campaign tests.
test: smoke
	$(PYTHON) -m pytest -x -q

## Fast end-to-end check: reduced budget, kernel subset.  Includes the
## golden-fixture regression tests (tests/engine/test_golden_regression.py),
## which always simulate at their own pinned budget, and the disk-store
## round-trip tests (tests/exec/test_store.py) — every smoke run
## exercises store put/get/corrupt-fallback against hermetic tmpdirs.
smoke:
	REPRO_INSTRUCTIONS=$(SMOKE_INSTRUCTIONS) \
	REPRO_WORKLOADS=$(SMOKE_WORKLOADS) \
	$(PYTHON) -m pytest -x -q -m "$(SMOKE_MARKERS)" $(SMOKE_TESTS)
	$(PYTHON) -m pytest -x -q tests/engine/test_leap_audit.py \
		-k "$(LEAP_SMOKE)"

## The event-horizon leap's correctness contract at full width: every
## suite kernel x every machine model x two budgets, leap engine vs
## cycle-by-cycle reference engine (leap=False), full-stats equality —
## plus the idle-skip micro-programs and the formerly-divergent cells
## through the batched backend.  Run this after touching any
## `_head_wakeup` / `next_event_cycle` override or mode machinery.
leap-audit:
	$(PYTHON) -m pytest -q tests/engine/test_leap_audit.py \
		tests/engine/test_idle_skip.py

## The same profile through the CLI: one real campaign, printed.
smoke-campaign:
	REPRO_INSTRUCTIONS=$(SMOKE_INSTRUCTIONS) \
	$(PYTHON) -m repro figure5 -w $(SMOKE_WORKLOADS)

## The complete fault-injection matrix, slow tests included: injected
## worker deaths and exceptions retried to byte-identical results, pool
## resurrection and sequential degradation, per-job timeouts, a real
## SIGKILL mid-campaign with fresh-process resume, and store
## truncation -> quarantine -> heal.  Everything is seed-driven (no
## randomness), so failures replay deterministically.
chaos:
	$(PYTHON) -m pytest -x -q $(CHAOS_TESTS)

## The lease fabric's chaos matrix, slow tests included: lease
## expiry-then-steal, torn lease records, stalled heartbeats, skewed
## worker clocks, SIGKILL'd workers re-leased mid-campaign, and a
## SIGKILL'd coordinator whose fresh process resumes recomputing only
## the unflushed cells — every campaign byte-identical to its
## fault-free sequential run.
fabric-chaos:
	$(PYTHON) -m pytest -x -q $(FABRIC_CHAOS_TESTS)

## Campaign throughput (jobs=1 vs jobs=N — skipped+flagged on 1-CPU
## hosts — scalar-vs-batched lane execution, disk-store cold/warm, a
## seeded generated suite, the phase-attribution on/off delta, and the
## fault-tolerance faults-off-vs-chaos delta, and the sequential-vs-
## lease-fabric coordination delta, and the trace-off-vs-on obs
## overhead; every comparison is min-of-3
## interleaved) as machine-readable JSON, plus the compact
## trend record (schema v8).  BENCH_throughput.json at the repo root is
## the checked-in baseline; before overwriting it the fresh record is
## compared against it and any >20% throughput regression is shouted
## to stderr.
bench:
	$(PYTHON) benchmarks/bench_throughput.py --output BENCH_throughput.json

## cProfile the sequential Figure 5 grid (the number `make bench`
## records) and write the top-25 cumulative/tottime tables to
## profile.out — the one-command answer to "what should the next perf
## PR attack".
profile:
	$(PYTHON) benchmarks/profile_grid.py --output profile.out

## Store-hot second-run benchmark: only the cold/warm store phase,
## against a persistent store under .repro-cache/ — the first
## invocation populates it, every later one measures a fully
## incremental (store-hit) campaign from a fresh process.
bench-warm:
	$(PYTHON) benchmarks/bench_throughput.py --store-only \
		--store-dir .repro-cache/bench

## Full throughput report only (no trend record).
bench-throughput:
	$(PYTHON) benchmarks/bench_throughput.py

## Traced smoke campaign: run the fast-profile grid through the fabric
## with span tracing on, then export the merged obs logs to a Chrome
## trace-event file (load trace.chrome.json in Perfetto / about:tracing
## to see the coordinator and each worker as its own track).
trace:
	REPRO_INSTRUCTIONS=$(SMOKE_INSTRUCTIONS) \
	REPRO_TRACE=1 \
	$(PYTHON) -m repro figure5 -w $(SMOKE_WORKLOADS) --fabric 2
	$(PYTHON) -m repro obs export --chrome -o trace.chrome.json
	@echo "wrote trace.chrome.json (open in Perfetto: https://ui.perfetto.dev)"
