#!/usr/bin/env python3
"""Figure 6 in miniature: L2 hit-latency sensitivity.

Sweeps the L2 hit latency and compares in-order, Runahead (L2-only
trigger), and iCFP (advance on every miss) on an equake-like kernel —
the benchmark the paper uses to illustrate the secondary-data-cache-
miss dilemma.  Speedups are measured against the 20-cycle-L2 in-order
baseline, as in the paper.

Run:  python examples/latency_sensitivity.py
"""

import dataclasses

from repro.harness import ExperimentConfig, run_suite
from repro.harness.figures import FIGURE6_CONFIGS


def main():
    workloads = ["equake_like"]
    base = ExperimentConfig(instructions=10_000)
    reference = run_suite(("in-order",), workloads,
                          dataclasses.replace(base, l2_hit_latency=20))
    ref_cycles = reference["equake_like"]["in-order"].cycles

    labels = ["in-order"] + [label for label, _, _ in FIGURE6_CONFIGS]
    print("equake_like: % speedup over 20-cycle-L2 in-order\n")
    print(f"{'L2 lat':>6s} " + " ".join(f"{l:>12s}" for l in labels))
    for latency in (10, 20, 30, 40, 50):
        cfg = dataclasses.replace(base, l2_hit_latency=latency)
        row = [f"{latency:>6d}"]
        io = run_suite(("in-order",), workloads, cfg)
        row.append(f"{(ref_cycles / io['equake_like']['in-order'].cycles - 1) * 100:12.1f}")
        for label, model, overrides in FIGURE6_CONFIGS:
            swept = dataclasses.replace(cfg, **overrides)
            runs = run_suite((model,), workloads, swept)
            pct = (ref_cycles / runs["equake_like"][model].cycles - 1) * 100
            row.append(f"{pct:12.1f}")
        print(" ".join(row))

    print("\nThe paper's observation: as the L2 slows, advancing under")
    print("data-cache misses becomes profitable even for Runahead; for")
    print("iCFP, advancing on any miss is profitable at *every* latency.")


if __name__ == "__main__":
    main()
