#!/usr/bin/env python3
"""Generate a seeded workload suite, characterise it, and race the five
machine models over it — the `repro.wgen` subsystem end to end.

A `WorkloadSpec` is a seeded sequence of archetype phases; the same
(count, seed) always yields the same specs, traces, and fingerprints,
so generated campaigns are as reproducible (and as incremental, via
the result store) as the named suite.

Run:  python examples/generated_suite_study.py [count] [seed]
"""

import sys

from repro.harness import ExperimentConfig
from repro.harness.experiment import MODELS, run_suite
from repro.wgen import (
    characterize_suite,
    format_characterizations,
    generate_suite,
)


def main():
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    config = ExperimentConfig(instructions=4000)

    suite = generate_suite(count, seed)
    print(f"generated suite of {count} (seed {seed}):")
    for spec in suite:
        print(f"  {spec.name:12s} {spec.short_id}  {spec.archetype_mix}")

    print("\n" + format_characterizations(
        characterize_suite(suite, config.instructions)))

    results = run_suite(MODELS, suite, config)
    print(f"\n{'workload':12s} " + " ".join(f"{m:>10s}" for m in MODELS))
    for spec in suite:
        runs = results[spec.name]
        baseline = runs["in-order"]
        row = f"{spec.name:12s} {baseline.ipc:10.3f}"
        for model in MODELS[1:]:
            row += f" {runs[model].percent_speedup_over(baseline):+9.1f}%"
        print(row)
    print("(in-order column is IPC; the rest are % speedup over it)")


if __name__ == "__main__":
    main()
