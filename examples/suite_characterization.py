#!/usr/bin/env python3
"""Characterise the 24-kernel SPEC2000 stand-in suite (Table 2's left
columns) on the in-order baseline.

Prints, for every kernel: IPC, D$ and L2 misses per kilo-instruction,
branch mispredicts, and the achieved memory-level parallelism — the
numbers the workload parameters were tuned against (DESIGN.md §2).

Run:  python examples/suite_characterization.py [instructions]
"""

import sys

from repro.baselines import InOrderCore
from repro.harness import ExperimentConfig
from repro.workloads import SPECFP, build_kernel, kernel_names, trace_kernel


def main():
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 8000
    config = ExperimentConfig(instructions=budget)

    print(f"in-order characterisation, {budget} instructions per kernel\n")
    print(f"{'kernel':16s} {'group':6s} {'archetype':14s} {'IPC':>6s} "
          f"{'D$/KI':>7s} {'L2/KI':>7s} {'brMPKI':>7s} {'D$ MLP':>7s}")
    for name in kernel_names():
        kernel = build_kernel(name)
        trace = trace_kernel(kernel, instructions=budget)
        result = InOrderCore(trace, config=config.machine_config()).run()
        d, l2 = result.stats.misses_per_ki()
        br = result.stats.branch_mispredicts * 1000 / max(1, len(trace))
        group = "fp" if name in SPECFP else "int"
        print(f"{name:16s} {group:6s} {kernel.archetype:14s} "
              f"{result.ipc:6.3f} {d:7.1f} {l2:7.1f} {br:7.1f} "
              f"{result.stats.d_mlp.average():7.2f}")

    print("\nCompare against the paper's Table 2: mcf/art should be the")
    print("memory-bound extremes, the FP streams mid-tier, and the")
    print("mesa/vortex/perlbmk group essentially miss-free.")


if __name__ == "__main__":
    main()
