#!/usr/bin/env python3
"""Figure 1 in the concrete: the six miss scenarios, timed per model.

The paper's Figure 1 argues with abstract timelines; this example runs
each scenario as a real micro-program on the cycle-level models and
prints cycle counts, so you can see exactly which scheme tolerates
which miss pattern.

Run:  python examples/miss_scenarios.py
"""

from repro.harness import MODELS, run_all_scenarios
from repro.harness.scenarios import SCENARIOS


def main():
    results = run_all_scenarios()
    print("Figure 1 scenarios: cycles per machine model (lower is better)\n")
    header = f"{'scenario':44s} " + " ".join(f"{m:>10s}" for m in MODELS)
    print(header)
    print("-" * len(header))
    for key, cycles in results.items():
        title = SCENARIOS[key]().title
        row = f"(1{key}) {title:39s} "
        row += " ".join(f"{cycles[m]:10d}" for m in MODELS)
        print(row)

    print("\nReadings (matching the paper's Figure 1):")
    print(" (a) lone miss:        RA gains nothing; SLTP/iCFP commit under it")
    print(" (b) independent:      everyone overlaps; iCFP also runs the tail")
    print(" (c) dependent:        RA ineffective; SLTP limited by blocking")
    print("                       rallies; iCFP advances under both misses")
    print(" (d) chains:           RA overlaps chains; SLTP serialises the")
    print("                       second links; iCFP overlaps everything")
    print(" (e)/(f) secondary D$: RA must choose block-vs-poison; iCFP")
    print("                       poisons and returns to it immediately")


if __name__ == "__main__":
    main()
