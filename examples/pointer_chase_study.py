#!/usr/bin/env python3
"""Dependent-miss study on the mcf-like kernel.

mcf is the paper's canonical dependent-miss workload: a pointer chain
whose every link misses, with independent arc-array work between links.
This example runs the kernel across the models and prints the
diagnostics the paper reports in Table 2 — miss rates, achieved MLP,
and iCFP's rally overhead (mcf re-executes >1000 instructions per 1000
committed because every chain link triggers another rally pass).

Run:  python examples/pointer_chase_study.py
"""

from repro.harness import MODELS, ExperimentConfig, make_core
from repro.workloads import trace_by_name


def main():
    config = ExperimentConfig(instructions=10_000)
    trace = trace_by_name("mcf_like", instructions=config.instructions)
    print(f"mcf_like: {len(trace)} instructions, {trace.num_loads} loads, "
          f"{trace.mem_footprint_lines()} distinct lines touched\n")

    print(f"{'model':12s} {'cycles':>9s} {'IPC':>6s} {'speedup':>8s} "
          f"{'D$ MLP':>7s} {'L2 MLP':>7s} {'rally/KI':>9s}")
    baseline = None
    for model in MODELS:
        core = make_core(model, trace, config)
        result = core.run()
        if baseline is None:
            baseline = result.cycles
        stats = result.stats
        print(f"{model:12s} {result.cycles:9d} {result.ipc:6.3f} "
              f"{baseline / result.cycles:7.2f}x "
              f"{stats.d_mlp.average():7.2f} {stats.l2_mlp.average():7.2f} "
              f"{stats.rallies_per_ki():9.0f}")

    print("\nWhat to look for:")
    print(" * in-order/Runahead serialise the chain: MLP stays near the")
    print("   number of independent arc misses they can expose.")
    print(" * iCFP's rally/KI exceeds 0 — every chain link that returns")
    print("   triggers another pass over the slice buffer, exactly the")
    print("   multi-pass behaviour of Section 3.1 (Table 2 reports 2876")
    print("   rallies/KI for real mcf).")


if __name__ == "__main__":
    main()
