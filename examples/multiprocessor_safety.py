#!/usr/bin/env python3
"""Section 3.3: signature-based multiprocessor safety, demonstrated.

iCFP's checkpointed execution leaves cache-sourced loads vulnerable to
stores from other cores.  This example drives an iCFP core cycle by
cycle into advance mode, then injects external stores: one to an
address a vulnerable load read (must squash to the checkpoint and
re-execute) and one to an unrelated address (must not).

Run:  python examples/multiprocessor_safety.py
"""

from repro.core.icfp import ADVANCE, ICFPCore, ICFPFeatures
from repro.functional import run_program
from repro.harness import ExperimentConfig
from repro.isa import Assembler, R

MISS_LINE = 0x100000
SHARED = 0x2000
UNRELATED = 0x3000


def build_core():
    a = Assembler("mp-safety")
    a.word(MISS_LINE, 7)
    a.word(SHARED, 10)
    a.li(R.r1, MISS_LINE)
    a.li(R.r4, SHARED)
    a.ld(R.r2, R.r1, 0)       # long miss -> checkpoint, advance
    a.ld(R.r5, R.r4, 0)       # vulnerable load: commits under the miss
    a.add(R.r6, R.r5, R.r5)
    a.addi(R.r3, R.r2, 1)     # miss-dependent slice
    a.halt()
    trace = run_program(a.assemble())
    config = ExperimentConfig(warm=False)
    core = ICFPCore(trace, config=config.machine_config(),
                    features=ICFPFeatures(validate=True))
    # The shared line is cache-resident (it belongs to another thread's
    # recent working set); the miss line is cold.
    core.hierarchy.l2.insert(core.hierarchy.config.l2.line_addr(SHARED))
    core.hierarchy.l1d.insert(core.hierarchy.config.l1d.line_addr(SHARED))
    return core


def advance_until_vulnerable(core):
    while core.mode != ADVANCE or core.signature.empty:
        core.step_cycle()


def main():
    print("case 1: external store to an address a committed load read")
    core = build_core()
    advance_until_vulnerable(core)
    print(f"  cycle {core.cycle}: in advance mode, signature occupancy "
          f"{core.signature.occupancy():.3%}")
    squashed = core.external_store(SHARED)
    print(f"  external store to {SHARED:#x}: squashed={squashed} "
          f"(total squashes: {core.stats.squashes})")
    core.run()
    assert not core.validate_final_state()
    print("  re-execution converged to the correct architectural state\n")

    print("case 2: external store to an unrelated address")
    core = build_core()
    advance_until_vulnerable(core)
    squashed = core.external_store(UNRELATED)
    print(f"  external store to {UNRELATED:#x}: squashed={squashed}")
    core.run()
    assert not core.validate_final_state()
    print("  no squash, no harm: the signature filtered the probe")

    print("\nUnlike a big associative load queue, the signature costs")
    print("1024 bits (see `python -m repro area`) and is never")
    print("communicated between cores.")


if __name__ == "__main__":
    main()
