#!/usr/bin/env python3
"""Quickstart: assemble a program, run it on all five machine models.

The program is a pointer chase with independent "payload" work — the
pattern iCFP is built for: the chain's cache misses serialise a vanilla
in-order pipeline, while iCFP slices the chain out and keeps committing
the independent work.

Run:  python examples/quickstart.py
"""

from repro.functional import run_program
from repro.harness import MODELS, ExperimentConfig, make_core
from repro.isa import Assembler, R


def build_program():
    """A linked-list sum: chase 64 nodes scattered over cold lines,
    accumulating payloads and doing independent strided work."""
    a = Assembler("quickstart")
    import random

    rng = random.Random(42)
    nodes = list(range(64))
    rng.shuffle(nodes)
    base = 0x100000
    ring = [base + n * 0x4000 for n in nodes]  # one node per cold line
    for pos, addr in enumerate(ring):
        a.word(addr, ring[(pos + 1) % len(ring)])   # next pointer
        a.word(addr + 8, pos)                       # payload
    for i in range(4 * 64):
        a.word(0x800000 + i * 64, i)    # independent array: cold lines

    a.li(R.r1, ring[0])       # chain cursor
    a.li(R.r2, 64)            # trip count
    a.li(R.r3, 0)             # payload sum
    a.li(R.r10, 0x800000)     # independent array cursor
    a.label("loop")
    a.ld(R.r4, R.r1, 8)       # payload (depends on the chain)
    a.add(R.r3, R.r3, R.r4)
    for k in range(2):        # independent cold loads + immediate uses:
        a.ld(R.r11, R.r10, k * 64)     # an in-order pipe stalls here,
        a.add(R.r12, R.r12, R.r11)     # a non-blocking one flows on
    a.addi(R.r10, R.r10, 2 * 64)
    a.ld(R.r1, R.r1, 0)       # next pointer: the dependent miss
    a.addi(R.r2, R.r2, -1)
    a.bne(R.r2, R.r0, "loop")
    a.halt()
    return a.assemble()


def main():
    program = build_program()
    trace = run_program(program)
    print(f"program: {program.name}, {len(trace)} dynamic instructions, "
          f"{trace.num_loads} loads\n")

    config = ExperimentConfig(warm=False)  # cold caches: every node misses
    baseline_cycles = None
    print(f"{'model':12s} {'cycles':>8s} {'IPC':>6s} {'speedup':>8s}")
    for model in MODELS:
        result = make_core(model, trace, config).run()
        if baseline_cycles is None:
            baseline_cycles = result.cycles
        speedup = baseline_cycles / result.cycles
        print(f"{model:12s} {result.cycles:8d} {result.ipc:6.3f} "
              f"{speedup:7.2f}x")

    print("\nThe dependent chain bounds everyone, but iCFP commits the")
    print("independent work under every miss and re-executes only the")
    print("slice, so it comes out ahead of Runahead/Multipass (which")
    print("re-execute everything) and SLTP (whose rallies block).")


if __name__ == "__main__":
    main()
