"""Program container: static code, resolved labels, and a data image."""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import Instruction

#: Byte address of the first instruction.  A non-zero base keeps instruction
#: and data address spaces visibly distinct in traces and BTB indices.
CODE_BASE = 0x1000

#: Each instruction occupies 4 bytes of the (virtual) code space.
INST_BYTES = 4

#: Memory operations move 8-byte words.
WORD_BYTES = 8


def pc_of(index: int) -> int:
    """Byte PC of the static instruction at ``index``."""
    return CODE_BASE + index * INST_BYTES


def index_of(pc: int) -> int:
    """Static instruction index of byte PC ``pc``."""
    return (pc - CODE_BASE) // INST_BYTES


@dataclass
class Program:
    """An assembled program.

    Attributes
    ----------
    instructions:
        Static instruction list; instruction ``i`` lives at ``pc_of(i)``.
    labels:
        Label name -> static instruction index.
    data:
        Initial data-memory image, byte address -> 8-byte word value
        (``int`` or ``float``).  Addresses must be word aligned.
    name:
        Optional human-readable program name (workload kernels set this).
    """

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data: dict[int, int | float] = field(default_factory=dict)
    name: str = "program"
    #: Optional [lo, hi) byte range that stays L1-resident in steady
    #: state (workload kernels declare their hot tables; the timing
    #: models' warm-up pre-installs exactly this range in the L1D).
    hot_region: tuple[int, int] | None = None
    #: Every declared hot range, in declaration order.  Single-region
    #: programs (the named suite) carry one entry equal to
    #: ``hot_region``; composed multi-phase programs (``repro.wgen``)
    #: carry one per phase that declared one — warm-up installs all.
    hot_regions: tuple[tuple[int, int], ...] = ()
    #: Static phase map: ``(name, lo_index, hi_index)`` half-open
    #: instruction-index ranges in ascending, contiguous order.  The
    #: assembler declares one whole-program region; the phase composer
    #: (:mod:`repro.wgen.compose`) declares one per phase.  Timing
    #: models bucket committed stats by these regions (observation
    #: only — never timing input), so the field is deliberately outside
    #: every fingerprint: job digests hash the workload reference and
    #: warm digests hash instructions/data/hot regions, not this.
    phase_regions: tuple[tuple[str, int, int], ...] = ()

    def __post_init__(self) -> None:
        for addr in self.data:
            if addr % WORD_BYTES:
                raise ValueError(f"unaligned data address: {addr:#x}")

    def __len__(self) -> int:
        return len(self.instructions)

    def label_pc(self, label: str) -> int:
        """Byte PC of ``label``."""
        return pc_of(self.labels[label])

    def at_pc(self, pc: int) -> Instruction:
        """Instruction at byte PC ``pc``."""
        return self.instructions[index_of(pc)]

    def listing(self) -> str:
        """Disassembly listing with PCs and labels (debugging aid)."""
        by_index: dict[int, list[str]] = {}
        for label, idx in self.labels.items():
            by_index.setdefault(idx, []).append(label)
        lines = []
        for i, inst in enumerate(self.instructions):
            for label in by_index.get(i, ()):
                lines.append(f"{label}:")
            lines.append(f"  {pc_of(i):#06x}  {inst}")
        return "\n".join(lines)
