"""Programmatic and textual assembler for the reproduction ISA.

Workload kernels build programs through the :class:`Assembler` builder
API::

    a = Assembler()
    a.label("loop")
    a.ld(R.r3, R.r1, 0)          # r3 <- mem[r1 + 0]
    a.addi(R.r1, R.r1, 8)
    a.bne(R.r1, R.r2, "loop")
    a.halt()
    prog = a.assemble()

A small text front-end (:func:`assemble_text`) accepts the same mnemonics
one-per-line, which keeps unit tests and examples readable.
"""

from __future__ import annotations

from contextlib import contextmanager

from .instructions import Instruction, Opcode
from .program import Program
from .registers import parse_reg


class AssemblyError(ValueError):
    """Raised for malformed assembly input or unresolved labels."""


class Assembler:
    """Builder-style assembler producing :class:`~repro.isa.program.Program`."""

    def __init__(self, name: str = "program") -> None:
        self._name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._data: dict[int, int | float] = {}
        self._hot_regions: list[tuple[int, int]] = []
        self._scope_prefix: str = ""
        self._halt_to: str | None = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def label(self, name: str) -> "Assembler":
        """Attach ``name`` to the next emitted instruction."""
        name = self._scope_prefix + name
        if name in self._labels:
            raise AssemblyError(f"duplicate label: {name}")
        self._labels[name] = len(self._instructions)
        return self

    @contextmanager
    def subprogram(self, prefix: str, halt_to: str | None = None):
        """Emit a label-scoped subprogram (the phase composer's hook).

        Inside the block, every label defined *and referenced* gets
        ``prefix.`` prepended, so independently written code fragments
        (the workload archetype builders) can be concatenated into one
        program without label collisions.  When ``halt_to`` is given,
        :meth:`halt` emits a jump to that (unscoped) label instead of a
        HALT — which is how a finite phase falls through to its
        successor rather than ending the program.
        """
        outer_prefix, outer_halt = self._scope_prefix, self._halt_to
        self._scope_prefix = outer_prefix + prefix + "."
        self._halt_to = halt_to
        try:
            yield self
        finally:
            self._scope_prefix, self._halt_to = outer_prefix, outer_halt

    def word(self, addr: int, value: int | float) -> "Assembler":
        """Place an 8-byte ``value`` at data address ``addr``."""
        self._data[addr] = value
        return self

    def hot_region(self, lo: int, hi: int) -> "Assembler":
        """Declare [lo, hi) as a steady-state L1-resident range.

        May be called once per composed phase; warm-up pre-installs
        every declared range.
        """
        self._hot_regions.append((lo, hi))
        return self

    def words(self, addr: int, values) -> "Assembler":
        """Place consecutive 8-byte words starting at ``addr``."""
        for i, value in enumerate(values):
            self._data[addr + 8 * i] = value
        return self

    def emit(self, inst: Instruction) -> "Assembler":
        self._instructions.append(inst)
        return self

    def assemble(self) -> Program:
        """Validate label references and return the finished program."""
        for inst in self._instructions:
            if inst.target is not None and inst.target not in self._labels:
                raise AssemblyError(f"undefined label: {inst.target}")
        return Program(
            instructions=list(self._instructions),
            labels=dict(self._labels),
            data=dict(self._data),
            name=self._name,
            # hot_region keeps its historical single-range shape (the
            # last declaration) for fingerprints and existing callers;
            # hot_regions carries the full set for warm-up.
            hot_region=self._hot_regions[-1] if self._hot_regions else None,
            hot_regions=tuple(self._hot_regions),
            # Single whole-program phase region: every assembled program
            # reports one attribution bucket; the phase composer
            # replaces this with its per-phase map.
            phase_regions=((self._name, 0, len(self._instructions)),)
            if self._instructions else (),
        )

    # ------------------------------------------------------------------
    # integer ALU
    # ------------------------------------------------------------------
    def _rrr(self, op: Opcode, dst: int, a: int, b: int) -> "Assembler":
        return self.emit(Instruction(op, dst=dst, srcs=(a, b)))

    def _rri(self, op: Opcode, dst: int, a: int, imm: int) -> "Assembler":
        return self.emit(Instruction(op, dst=dst, srcs=(a,), imm=imm))

    def add(self, dst, a, b):
        return self._rrr(Opcode.ADD, dst, a, b)

    def sub(self, dst, a, b):
        return self._rrr(Opcode.SUB, dst, a, b)

    def and_(self, dst, a, b):
        return self._rrr(Opcode.AND, dst, a, b)

    def or_(self, dst, a, b):
        return self._rrr(Opcode.OR, dst, a, b)

    def xor(self, dst, a, b):
        return self._rrr(Opcode.XOR, dst, a, b)

    def slt(self, dst, a, b):
        return self._rrr(Opcode.SLT, dst, a, b)

    def shl(self, dst, a, b):
        return self._rrr(Opcode.SHL, dst, a, b)

    def shr(self, dst, a, b):
        return self._rrr(Opcode.SHR, dst, a, b)

    def mul(self, dst, a, b):
        return self._rrr(Opcode.MUL, dst, a, b)

    def addi(self, dst, a, imm):
        return self._rri(Opcode.ADDI, dst, a, imm)

    def andi(self, dst, a, imm):
        return self._rri(Opcode.ANDI, dst, a, imm)

    def ori(self, dst, a, imm):
        return self._rri(Opcode.ORI, dst, a, imm)

    def slti(self, dst, a, imm):
        return self._rri(Opcode.SLTI, dst, a, imm)

    def shli(self, dst, a, imm):
        return self._rri(Opcode.SHLI, dst, a, imm)

    def lui(self, dst, imm):
        """Load immediate: dst <- imm (full-width, despite the name)."""
        return self.emit(Instruction(Opcode.LUI, dst=dst, imm=imm))

    def li(self, dst, imm):
        """Alias of :meth:`lui` — load a full-width immediate."""
        return self.lui(dst, imm)

    # ------------------------------------------------------------------
    # floating point
    # ------------------------------------------------------------------
    def fadd(self, dst, a, b):
        return self._rrr(Opcode.FADD, dst, a, b)

    def fsub(self, dst, a, b):
        return self._rrr(Opcode.FSUB, dst, a, b)

    def fmul(self, dst, a, b):
        return self._rrr(Opcode.FMUL, dst, a, b)

    def fmadd(self, dst, a, b, c):
        """dst <- a * b + c (three-source fused multiply-add)."""
        return self.emit(Instruction(Opcode.FMADD, dst=dst, srcs=(a, b, c)))

    def cvtif(self, dst, a):
        return self.emit(Instruction(Opcode.CVTIF, dst=dst, srcs=(a,)))

    def cvtfi(self, dst, a):
        return self.emit(Instruction(Opcode.CVTFI, dst=dst, srcs=(a,)))

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def ld(self, dst, base, disp=0):
        """dst <- mem[base + disp] (integer destination)."""
        return self.emit(Instruction(Opcode.LD, dst=dst, srcs=(base,), imm=disp))

    def ldf(self, dst, base, disp=0):
        """dst <- mem[base + disp] (floating-point destination)."""
        return self.emit(Instruction(Opcode.LDF, dst=dst, srcs=(base,), imm=disp))

    def st(self, data, base, disp=0):
        """mem[base + disp] <- data (integer source)."""
        return self.emit(Instruction(Opcode.ST, srcs=(base, data), imm=disp))

    def stf(self, data, base, disp=0):
        """mem[base + disp] <- data (floating-point source)."""
        return self.emit(Instruction(Opcode.STF, srcs=(base, data), imm=disp))

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def _branch(self, op: Opcode, a: int, b: int, target: str) -> "Assembler":
        return self.emit(Instruction(op, srcs=(a, b),
                                     target=self._scope_prefix + target))

    def beq(self, a, b, target):
        return self._branch(Opcode.BEQ, a, b, target)

    def bne(self, a, b, target):
        return self._branch(Opcode.BNE, a, b, target)

    def blt(self, a, b, target):
        return self._branch(Opcode.BLT, a, b, target)

    def bge(self, a, b, target):
        return self._branch(Opcode.BGE, a, b, target)

    def j(self, target):
        return self.emit(Instruction(Opcode.J,
                                     target=self._scope_prefix + target))

    def jal(self, dst, target):
        """Jump and link: dst <- return PC, jump to ``target``."""
        return self.emit(Instruction(Opcode.JAL, dst=dst,
                                     target=self._scope_prefix + target))

    def jr(self, src):
        """Indirect jump to the byte PC held in ``src``."""
        return self.emit(Instruction(Opcode.JR, srcs=(src,)))

    def halt(self):
        if self._halt_to is not None:
            # Subprogram mode: the phase ends by falling through to its
            # successor (an unscoped label), not by stopping the machine.
            return self.emit(Instruction(Opcode.J, target=self._halt_to))
        return self.emit(Instruction(Opcode.HALT))

    def nop(self):
        return self.emit(Instruction(Opcode.NOP))


# ----------------------------------------------------------------------
# text front-end
# ----------------------------------------------------------------------

_RRR = {"add", "sub", "and", "or", "xor", "slt", "shl", "shr", "mul",
        "fadd", "fsub", "fmul"}
_RRI = {"addi", "andi", "ori", "slti", "shli"}
_BR = {"beq", "bne", "blt", "bge"}


def assemble_text(text: str, name: str = "program") -> Program:
    """Assemble newline-separated assembly ``text`` into a program.

    Syntax, one instruction per line (``#`` starts a comment)::

        loop:                       # labels end with a colon
            ld   r3, r1, 0          # dst, base, disp
            addi r1, r1, 8
            bne  r1, r2, loop
            halt
    """
    a = Assembler(name=name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        while line.endswith(":") or ":" in line.split()[0]:
            label, _, rest = line.partition(":")
            a.label(label.strip())
            line = rest.strip()
            if not line:
                break
        if not line:
            continue
        _assemble_line(a, line, lineno)
    return a.assemble()


def _assemble_line(a: Assembler, line: str, lineno: int) -> None:
    mnemonic, _, operand_text = line.partition(" ")
    mnemonic = mnemonic.lower()
    ops = [tok.strip() for tok in operand_text.split(",") if tok.strip()]
    try:
        _dispatch(a, mnemonic, ops)
    except (ValueError, KeyError, IndexError) as exc:
        raise AssemblyError(f"line {lineno}: {line!r}: {exc}") from exc


def _dispatch(a: Assembler, mnemonic: str, ops: list[str]) -> None:
    if mnemonic in _RRR:
        method = {"and": "and_", "or": "or_"}.get(mnemonic, mnemonic)
        getattr(a, method)(parse_reg(ops[0]), parse_reg(ops[1]), parse_reg(ops[2]))
    elif mnemonic in _RRI:
        getattr(a, mnemonic)(parse_reg(ops[0]), parse_reg(ops[1]), int(ops[2], 0))
    elif mnemonic in ("lui", "li"):
        a.lui(parse_reg(ops[0]), int(ops[1], 0))
    elif mnemonic in ("ld", "ldf"):
        disp = int(ops[2], 0) if len(ops) > 2 else 0
        getattr(a, mnemonic)(parse_reg(ops[0]), parse_reg(ops[1]), disp)
    elif mnemonic in ("st", "stf"):
        disp = int(ops[2], 0) if len(ops) > 2 else 0
        getattr(a, mnemonic)(parse_reg(ops[0]), parse_reg(ops[1]), disp)
    elif mnemonic in _BR:
        getattr(a, mnemonic)(parse_reg(ops[0]), parse_reg(ops[1]), ops[2])
    elif mnemonic == "fmadd":
        a.fmadd(*(parse_reg(op) for op in ops))
    elif mnemonic in ("cvtif", "cvtfi"):
        getattr(a, mnemonic)(parse_reg(ops[0]), parse_reg(ops[1]))
    elif mnemonic == "j":
        a.j(ops[0])
    elif mnemonic == "jal":
        a.jal(parse_reg(ops[0]), ops[1])
    elif mnemonic == "jr":
        a.jr(parse_reg(ops[0]))
    elif mnemonic == "halt":
        a.halt()
    elif mnemonic == "nop":
        a.nop()
    else:
        raise AssemblyError(f"unknown mnemonic: {mnemonic}")
