"""Register namespace for the reproduction ISA.

The ISA models an Alpha-like load/store RISC machine with 32 integer
registers (``r0``..``r31``, ``r0`` hardwired to zero) and 16 floating-point
registers (``f0``..``f15``).  Internally every register is a small integer
index: integer registers occupy indices ``0..31`` and floating-point
registers occupy ``32..47``.  A single flat index space keeps the timing
models' scoreboards simple (one ready-bit array covers both files).
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 16
FP_BASE = NUM_INT_REGS
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Index of the hardwired-zero integer register.
ZERO_REG = 0


def int_reg(n: int) -> int:
    """Return the flat index of integer register ``rN``."""
    if not 0 <= n < NUM_INT_REGS:
        raise ValueError(f"integer register out of range: r{n}")
    return n


def fp_reg(n: int) -> int:
    """Return the flat index of floating-point register ``fN``."""
    if not 0 <= n < NUM_FP_REGS:
        raise ValueError(f"fp register out of range: f{n}")
    return FP_BASE + n


def is_fp(reg: int) -> bool:
    """True if the flat register index names a floating-point register."""
    return reg >= FP_BASE


def reg_name(reg: int) -> str:
    """Human-readable name (``r7``, ``f3``) for a flat register index."""
    if not 0 <= reg < NUM_REGS:
        raise ValueError(f"register index out of range: {reg}")
    if reg >= FP_BASE:
        return f"f{reg - FP_BASE}"
    return f"r{reg}"


def parse_reg(name: str) -> int:
    """Parse ``r<N>`` / ``f<N>`` into a flat register index."""
    name = name.strip().lower()
    if len(name) < 2 or name[0] not in "rf":
        raise ValueError(f"malformed register name: {name!r}")
    try:
        n = int(name[1:])
    except ValueError as exc:
        raise ValueError(f"malformed register name: {name!r}") from exc
    return fp_reg(n) if name[0] == "f" else int_reg(n)


class _RegNamespace:
    """Attribute-style access to register indices: ``R.r4``, ``R.f2``."""

    def __getattr__(self, name: str) -> int:
        try:
            return parse_reg(name)
        except ValueError as exc:
            raise AttributeError(str(exc)) from exc


#: Convenience namespace: ``from repro.isa.registers import R; R.r5``.
R = _RegNamespace()
