"""Instruction set definition.

Opcodes are grouped into *classes* that the timing models care about
(which functional-unit port an instruction needs and its execute
latency).  The latencies follow Table 1 of the paper: single-cycle
integer ALU, 2-cycle FP add, 4-cycle integer/FP multiply; loads and
stores take their latency from the cache hierarchy instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpClass(enum.Enum):
    """Execution resource class of an instruction."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    HALT = "halt"
    NOP = "nop"


#: Execute latency (cycles) per op class.  Memory classes are listed with
#: their address-generation latency; the load-to-use latency comes from the
#: cache hierarchy (3-cycle D$ pipeline on a hit).
EXEC_LATENCY = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 4,
    OpClass.FP_ADD: 2,
    OpClass.FP_MUL: 4,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.HALT: 1,
    OpClass.NOP: 1,
}


class Opcode(enum.Enum):
    """All opcodes in the reproduction ISA."""

    # Integer ALU (register-register)
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLT = "slt"
    SHL = "shl"
    SHR = "shr"
    # Integer ALU (register-immediate)
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    SLTI = "slti"
    SHLI = "shli"
    LUI = "lui"
    # Integer multiply
    MUL = "mul"
    # Floating point
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FMADD = "fmadd"
    CVTIF = "cvtif"  # int reg -> fp reg
    CVTFI = "cvtfi"  # fp reg -> int reg (truncate)
    # Memory (8-byte words; ld/st move int regs, ldf/stf move fp regs)
    LD = "ld"
    ST = "st"
    LDF = "ldf"
    STF = "stf"
    # Control
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    J = "j"
    JAL = "jal"
    JR = "jr"
    HALT = "halt"
    NOP = "nop"


_OPCLASS = {
    Opcode.ADD: OpClass.INT_ALU,
    Opcode.SUB: OpClass.INT_ALU,
    Opcode.AND: OpClass.INT_ALU,
    Opcode.OR: OpClass.INT_ALU,
    Opcode.XOR: OpClass.INT_ALU,
    Opcode.SLT: OpClass.INT_ALU,
    Opcode.SHL: OpClass.INT_ALU,
    Opcode.SHR: OpClass.INT_ALU,
    Opcode.ADDI: OpClass.INT_ALU,
    Opcode.ANDI: OpClass.INT_ALU,
    Opcode.ORI: OpClass.INT_ALU,
    Opcode.SLTI: OpClass.INT_ALU,
    Opcode.SHLI: OpClass.INT_ALU,
    Opcode.LUI: OpClass.INT_ALU,
    Opcode.MUL: OpClass.INT_MUL,
    Opcode.FADD: OpClass.FP_ADD,
    Opcode.FSUB: OpClass.FP_ADD,
    Opcode.FMUL: OpClass.FP_MUL,
    Opcode.FMADD: OpClass.FP_MUL,
    Opcode.CVTIF: OpClass.FP_ADD,
    Opcode.CVTFI: OpClass.FP_ADD,
    Opcode.LD: OpClass.LOAD,
    Opcode.LDF: OpClass.LOAD,
    Opcode.ST: OpClass.STORE,
    Opcode.STF: OpClass.STORE,
    Opcode.BEQ: OpClass.BRANCH,
    Opcode.BNE: OpClass.BRANCH,
    Opcode.BLT: OpClass.BRANCH,
    Opcode.BGE: OpClass.BRANCH,
    Opcode.J: OpClass.JUMP,
    Opcode.JAL: OpClass.JUMP,
    Opcode.JR: OpClass.JUMP,
    Opcode.HALT: OpClass.HALT,
    Opcode.NOP: OpClass.NOP,
}

#: Opcodes whose source operands are read from registers, in operand order.
BRANCH_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})
MEM_OPS = frozenset({Opcode.LD, Opcode.ST, Opcode.LDF, Opcode.STF})
LOAD_OPS = frozenset({Opcode.LD, Opcode.LDF})
STORE_OPS = frozenset({Opcode.ST, Opcode.STF})


def opclass(op: Opcode) -> OpClass:
    """Return the execution class of ``op``."""
    return _OPCLASS[op]


@dataclass(frozen=True)
class Instruction:
    """A single static instruction.

    Attributes
    ----------
    op:
        Opcode.
    dst:
        Destination flat register index, or ``None``.
    srcs:
        Source flat register indices in operand order.  For memory
        operations the *address base register* is always the first
        source; for stores the *data register* is the second source.
    imm:
        Immediate operand (ALU immediate or memory displacement).
    target:
        Branch/jump target label (resolved to a PC by the assembler).
    """

    op: Opcode
    dst: int | None = None
    srcs: tuple[int, ...] = field(default=())
    imm: int = 0
    target: str | None = None

    @property
    def opclass(self) -> OpClass:
        return _OPCLASS[self.op]

    @property
    def is_load(self) -> bool:
        return self.op in LOAD_OPS

    @property
    def is_store(self) -> bool:
        return self.op in STORE_OPS

    @property
    def is_mem(self) -> bool:
        return self.op in MEM_OPS

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_control(self) -> bool:
        return self.opclass in (OpClass.BRANCH, OpClass.JUMP)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        from .registers import reg_name

        parts = [self.op.value]
        if self.dst is not None:
            parts.append(reg_name(self.dst))
        parts.extend(reg_name(s) for s in self.srcs)
        if self.imm:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(self.target)
        return " ".join(parts)
