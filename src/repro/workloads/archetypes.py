"""Kernel archetypes: the memory-behaviour families behind the SPEC2000
stand-ins (see DESIGN.md for the per-benchmark mapping).

Each builder emits code into an :class:`~repro.isa.assembler.Assembler`
according to a :class:`~repro.workloads.builders.KernelParams`.  All
kernels run "forever" (huge trip counts); the harness bounds dynamic
length with the functional executor's instruction budget, playing the
role of the paper's sampled simulation windows.

Most archetypes are *two-level*: a hot, cache-resident working set plus
a cold region whose size and visit rate independently tune the D$ and
L2 miss rates against the paper's Table 2 characterisation.
"""

from __future__ import annotations

from ..isa.registers import R
from .builders import (
    COLD_OFFSET,
    DATA_BASE,
    KernelParams,
    cold_base,
    emit_compute,
    rng_for,
)

#: One list node per cache line (next pointer + payload).
NODE_BYTES = 64

#: Cold-region base for default-placed kernels (the fixed suite).
#: Builders use :func:`~repro.workloads.builders.cold_base` so composed
#: phases each get their own region; this constant is the default case.
COLD_BASE = DATA_BASE + COLD_OFFSET


def build_pointer_chase(a, params: KernelParams) -> None:
    """Linked-ring traversal (mcf/ammp/twolf/vpr).

    Every ``next`` load depends on the previous one — the dependent-miss
    chains of Figures 1c/1d.  One node per cache line, shuffled so
    successors share no spatial locality and defeat the stream
    prefetcher; ``footprint_bytes`` against the cache sizes sets which
    level the chain misses in, and ``compute`` dilutes the miss rate.
    """
    rng = rng_for(params)
    data_base = params.data_base
    chains = max(1, min(params.chains, 3))
    nodes_per_chain = max(8, params.footprint_bytes // NODE_BYTES // chains)
    cursors = (R.r1, R.r5, R.r6)[:chains]
    heads = []
    for chain in range(chains):
        order = list(range(nodes_per_chain))
        rng.shuffle(order)
        base = cold_base(params) + chain * nodes_per_chain * NODE_BYTES
        ring = [base + node * NODE_BYTES for node in order]
        for pos, addr in enumerate(ring):
            successor = ring[(pos + 1) % len(ring)]
            a.word(addr, successor)
            a.word(addr + 8, (pos * 7 + 3) % 1000)
        heads.append(ring[0])
    if params.arc_loads:
        # The arc region is unwarmed and randomly indexed (mcf indexes
        # arc arrays by node id): every arc load is an independent
        # DRAM-class miss — the MLP advance execution mines.
        arc_lines = 1 << (max(64, params.arc_bytes // 64).bit_length() - 1)
        # The table is part of the data image, so warm-up residency
        # follows its size: small tables stay L2-resident (twolf/vpr),
        # tables beyond the L2 leave a DRAM-miss tail (mcf).
        for i in range(arc_lines):
            a.word(data_base + i * 64, (i * 11 + 5) % 997)
        a.li(R.r10, data_base)                 # arc table base
        a.li(R.r13, params.seed * 69621 % (1 << 31))
        a.li(R.r14, 1103515245)
        a.li(R.r15, 27)
        arc_mask = (arc_lines - 1) << 6

    for cursor, head in zip(cursors, heads):
        a.li(cursor, head)
    a.li(R.r2, params.iterations)
    a.li(R.r3, 0)
    a.label("chase")
    a.ld(R.r4, cursors[0], 8)      # payload (independent of the chain)
    emit_compute(a, params, R.r3, R.r4)
    for arc in range(params.arc_loads):
        # Arc-array work: LCG-addressed, so these loads are independent
        # of the chains and of each other.
        a.mul(R.r13, R.r13, R.r14)
        a.addi(R.r13, R.r13, 12345)
        a.shr(R.r11, R.r13, R.r15)
        a.andi(R.r11, R.r11, arc_mask)
        a.add(R.r11, R.r11, R.r10)
        a.ld(R.r11, R.r11, 0)
        a.add(R.r3, R.r3, R.r11)
    for cursor in cursors:
        a.ld(cursor, cursor, 0)    # next pointers: the dependent misses
    a.addi(R.r2, R.r2, -1)
    a.bne(R.r2, R.r0, "chase")
    a.halt()


def _init_cold_walk(a, params: KernelParams) -> None:
    """Lay out the cold region and the walk registers.

    r10 = cold pointer, r12 = cold region end, r16 = countdown until the
    next cold access (one in ``cold_period`` iterations).
    """
    if not params.cold_period:
        return
    # The walk region is deliberately *not* in the data image: loads of
    # unwritten words return 0, and the warm-up cannot pre-install it —
    # the walk must take real L2 misses, like the capacity misses of the
    # original workloads.
    cold_lines = max(16, params.footprint_bytes // 64)
    a.li(R.r10, cold_base(params))
    a.li(R.r12, cold_base(params) + cold_lines * 64)
    a.li(R.r16, params.cold_period)
    if params.cold_random:
        # LCG-addressed walk: defeats the stream buffers, so every cold
        # access is a DRAM-class miss (art-like behaviour).
        a.li(R.r7, 1103515245)
        a.li(R.r17, 27)
        a.li(R.r6, params.seed * 48271 % (1 << 31))


def _emit_cold_tick(a, params: KernelParams) -> None:
    """Inside the inner loop: every ``cold_period`` iterations, touch the
    next sequential cold line (the L2-miss stream; the hardware stream
    buffers partially cover it, as they do for the paper's workloads).
    """
    if not params.cold_period:
        return
    a.addi(R.r16, R.r16, -1)
    a.bne(R.r16, R.r0, "no_cold")
    a.li(R.r16, params.cold_period)
    if params.cold_random:
        cold_lines = max(16, params.footprint_bytes // 64)
        mask_lines = 1 << (cold_lines.bit_length() - 1)
        a.mul(R.r6, R.r6, R.r7)
        a.addi(R.r6, R.r6, 12345)
        a.shr(R.r8, R.r6, R.r17)
        a.andi(R.r8, R.r8, (mask_lines - 1) << 6)
        a.li(R.r14, 0)
        a.add(R.r8, R.r8, R.r10)   # r10 stays at COLD_BASE
        a.ld(R.r14, R.r8, 0)
    else:
        a.ld(R.r14, R.r10, 0)
        a.addi(R.r10, R.r10, 64)
        a.blt(R.r10, R.r12, "cold_use")
        a.li(R.r10, cold_base(params))
        a.label("cold_use")
    # The fetched value is consumed — an in-order pipeline stalls on it.
    a.add(R.r18, R.r18, R.r14)
    a.label("no_cold")


def build_streaming(a, params: KernelParams) -> None:
    """Hot-window sweep plus cold strip (art/swim/applu/apsi/...).

    The hot window (``hot_bytes``, L2-resident but usually larger than
    the L1) is swept with ``stride_bytes``; one in ``cold_period``
    iterations also touches a huge cold region — the window sets the D$
    miss rate, the cold walk sets the L2 miss rate, and both expose the
    independent misses of Figure 1b.
    """
    data_base = params.data_base
    words = max(64, params.hot_bytes // 8)
    end = data_base + words * 8
    step = max(1, params.stride_bytes // 8)
    for i in range(0, words, step):
        a.word(data_base + i * 8, i % 251)
    _init_cold_walk(a, params)
    acc = R.f1 if params.use_fp else R.r3
    tmp = R.f2 if params.use_fp else R.r4
    load = a.ldf if params.use_fp else a.ld
    store = a.stf if params.use_fp else a.st

    a.li(R.r2, end)
    a.li(R.r5, params.iterations)
    a.label("outer")
    a.li(R.r1, data_base)
    a.label("inner")
    load(tmp, R.r1, 0)
    emit_compute(a, params, acc, tmp)
    if params.stores:
        store(acc, R.r1, 0)
    _emit_cold_tick(a, params)
    a.addi(R.r1, R.r1, params.stride_bytes)
    a.blt(R.r1, R.r2, "inner")
    a.addi(R.r5, R.r5, -1)
    a.bne(R.r5, R.r0, "outer")
    a.halt()


def build_strided_fp(a, params: KernelParams) -> None:
    """Three-point FP stencil with store-back plus a periodic cold walk
    (equake/facerec/wupwise)."""
    words = max(64, params.hot_bytes // 16)  # two arrays: in + out
    in_base = params.data_base
    out_base = in_base + words * 8
    step = max(1, params.stride_bytes // 8)
    for i in range(0, words, step):
        a.word(in_base + i * 8, (i % 97) + 1)
    _init_cold_walk(a, params)
    end = in_base + (words - 4) * 8
    # The *random* cold walk keeps its LCG state in r6, so the out
    # cursor must move aside when both are enabled.  The fixed suite
    # never combines strided_fp with cold_random (only the generator
    # does), so the default keeps those programs byte-identical.
    out_cur = R.r9 if (params.cold_period and params.cold_random) else R.r6

    a.li(R.r2, end)
    a.li(R.r5, params.iterations)
    a.label("outer")
    a.li(R.r1, in_base)
    a.li(out_cur, out_base)
    a.label("inner")
    a.ldf(R.f1, R.r1, 0)
    a.ldf(R.f2, R.r1, 8)
    a.ldf(R.f3, R.r1, 16)
    a.fadd(R.f4, R.f1, R.f2)
    a.fadd(R.f4, R.f4, R.f3)
    emit_compute(a, params, R.f4, R.f1)
    a.stf(R.f4, out_cur, 0)
    _emit_cold_tick(a, params)
    a.addi(R.r1, R.r1, params.stride_bytes)
    a.addi(out_cur, out_cur, params.stride_bytes)
    a.blt(R.r1, R.r2, "inner")
    a.addi(R.r5, R.r5, -1)
    a.bne(R.r5, R.r0, "outer")
    a.halt()


def build_random_access(a, params: KernelParams) -> None:
    """Hot-table lookups with occasional cold excursions
    (gap/gcc/parser and, with a tiny cold rate, the cache-resident
    compute codes mesa/eon/crafty/vortex/perlbmk).

    Addresses come from an in-register LCG, so consecutive cold misses
    are *independent* — exactly the MLP advance execution mines.  One in
    ``cold_period`` accesses visits the cold table; the selection branch
    is mostly-taken and cheap to predict.
    """
    data_base, cold = params.data_base, cold_base(params)
    hot_words = 1 << (max(64, params.hot_bytes // 8).bit_length() - 1)
    cold_lines = 1 << (max(16, params.footprint_bytes // 64).bit_length() - 1)
    a.hot_region(data_base, data_base + hot_words * 8)
    for i in range(0, hot_words, 8):
        a.word(data_base + i * 8, i % 127)
    for i in range(cold_lines):
        a.word(cold + i * 64, (i * 13 + 7) % 509)

    a.li(R.r6, params.seed * 2654435761 % (1 << 31))
    a.li(R.r7, 1103515245)
    a.li(R.r9, data_base)
    a.li(R.r15, cold)
    a.li(R.r17, 27)                          # cold-index shift amount
    a.li(R.r2, params.iterations)
    a.li(R.r3, 0)
    a.label("loop")
    a.mul(R.r6, R.r6, R.r7)                  # LCG step
    a.addi(R.r6, R.r6, 12345)
    if params.cold_period:
        a.andi(R.r10, R.r6, params.cold_period - 1)
        a.bne(R.r10, R.r0, "hot")
        a.shr(R.r11, R.r6, R.r17)            # decorrelated high bits
        a.andi(R.r8, R.r11, (cold_lines - 1) << 6)
        a.add(R.r8, R.r8, R.r15)
        a.ld(R.r4, R.r8, 0)
        a.j("join")
        a.label("hot")
    a.andi(R.r8, R.r6, (hot_words - 1) << 3)
    a.add(R.r8, R.r8, R.r9)
    a.ld(R.r4, R.r8, 0)
    if params.cold_period:
        a.label("join")
    emit_compute(a, params, R.r3, R.r4)
    a.addi(R.r2, R.r2, -1)
    a.bne(R.r2, R.r0, "loop")
    a.halt()


def build_branchy(a, params: KernelParams) -> None:
    """Data-dependent control flow over a hot block with periodic cold
    accesses (bzip2/gzip).  A branch keyed to loaded data defeats the
    predictor on ~half the iterations, mixing mispredict flushes with
    D$ misses — the low-MLP SPECint profile.
    """
    data_base, cold = params.data_base, cold_base(params)
    words = max(64, params.hot_bytes // 8)
    rng = rng_for(params)
    step = max(1, params.stride_bytes // 8)
    a.hot_region(data_base, data_base + words * 8)
    for i in range(0, words, step):
        a.word(data_base + i * 8, rng.getrandbits(16))
    cold_lines = 1 << (max(16, params.footprint_bytes // 64).bit_length() - 1)
    for i in range(cold_lines):
        a.word(cold + i * 64, i % 509)
    end = data_base + words * 8

    a.li(R.r2, end)
    a.li(R.r5, params.iterations)
    a.li(R.r3, 0)
    a.li(R.r15, cold)
    a.li(R.r17, 27)
    a.li(R.r6, 88172645463325252 % (1 << 31))
    a.li(R.r7, 1103515245)
    a.label("outer")
    a.li(R.r1, data_base)
    a.label("inner")
    a.ld(R.r4, R.r1, 0)
    a.andi(R.r8, R.r4, 1)
    a.beq(R.r8, R.r0, "even")
    a.add(R.r3, R.r3, R.r4)        # odd path
    emit_compute(a, params, R.r3, R.r4)
    a.j("join")
    a.label("even")
    a.sub(R.r3, R.r3, R.r4)        # even path
    a.label("join")
    if params.cold_period:
        a.mul(R.r6, R.r6, R.r7)
        a.addi(R.r6, R.r6, 12345)
        a.andi(R.r9, R.r6, params.cold_period - 1)
        a.bne(R.r9, R.r0, "nocold")
        a.shr(R.r11, R.r6, R.r17)
        a.andi(R.r9, R.r11, (cold_lines - 1) << 6)
        a.add(R.r9, R.r9, R.r15)
        a.ld(R.r14, R.r9, 0)
        a.label("nocold")
    a.addi(R.r1, R.r1, params.stride_bytes)
    a.blt(R.r1, R.r2, "inner")
    a.addi(R.r5, R.r5, -1)
    a.bne(R.r5, R.r0, "outer")
    a.halt()


def build_blocked_matrix(a, params: KernelParams) -> None:
    """Tiled dense-matrix kernel (blocked GEMM traffic).

    A tile of ``hot_bytes`` is swept sequentially (L1-resident compute)
    while the second operand walks a ``footprint_bytes`` matrix at a
    large column stride (``stride_bytes`` plays the row length) —
    regular-but-far accesses that miss every line yet never look like a
    next-line stream.  The mix of dense FP compute over a resident tile
    with a fixed-stride far-operand miss stream is a behaviour the
    fixed suite lacks (its streaming kernels advance line by line).
    """
    data_base = params.data_base
    tile_words = max(64, params.hot_bytes // 8)
    matrix_words = max(tile_words * 2, params.footprint_bytes // 8)
    col_stride = max(64, params.stride_bytes)
    for i in range(0, matrix_words * 8, col_stride):
        a.word(data_base + i, (i // 8 * 29 + 3) % 1021)
    tile_base = data_base + matrix_words * 8
    for i in range(tile_words):
        a.word(tile_base + i * 8, i % 113)
    a.hot_region(tile_base, tile_base + tile_words * 8)
    matrix_end = data_base + matrix_words * 8

    a.li(R.r2, params.iterations)
    a.li(R.r9, data_base)              # column cursor (persists per tile)
    a.li(R.r10, matrix_end)
    a.label("tile")
    a.li(R.r1, tile_base)
    a.li(R.r3, tile_base + tile_words * 8)
    a.label("inner")
    a.ldf(R.f1, R.r1, 0)               # tile element: hot
    a.ldf(R.f2, R.r9, 0)               # column operand: far, strided
    a.fmadd(R.f3, R.f1, R.f2, R.f3)
    emit_compute(a, params, R.f3, R.f1)
    if params.stores:
        a.stf(R.f3, R.r1, 0)           # write the tile back (C update)
    a.addi(R.r9, R.r9, col_stride)
    a.blt(R.r9, R.r10, "no_wrap")
    a.li(R.r9, data_base)
    a.label("no_wrap")
    a.addi(R.r1, R.r1, 8)
    a.blt(R.r1, R.r3, "inner")
    a.addi(R.r2, R.r2, -1)
    a.bne(R.r2, R.r0, "tile")
    a.halt()


def build_hash_join(a, params: KernelParams) -> None:
    """Hash-table probe loop (database join / aggregation).

    Each probe hashes an LCG key into a ``footprint_bytes`` node table,
    walks ``chain_depth`` *dependent* next-pointer loads (a short
    bucket chain), and branches on the node payload — random for an
    ``unpredictable_branches`` fraction of nodes, so the match branch
    mispredicts at a tunable rate.  Short dependent-miss chains with
    data-dependent control sit between ``random_access`` (depth 0) and
    ``pointer_chase`` (chain length ~ footprint) — the join-style
    behaviour the fixed suite lacks.  With ``stores``, matches also
    read-modify-write a hot ``hot_bytes`` aggregation table.
    """
    rng = rng_for(params, salt=7)
    data_base = params.data_base
    lines = 1 << (max(64, params.footprint_bytes // 64).bit_length() - 1)
    mask = (lines - 1) << 6
    order = list(range(lines))
    rng.shuffle(order)
    for pos, node in enumerate(order):
        addr = data_base + node * 64
        a.word(addr, data_base + order[(pos + 1) % lines] * 64)
        if rng.random() < params.unpredictable_branches:
            payload = rng.getrandbits(16)
        else:
            payload = 0
        a.word(addr + 8, payload)
    agg_words = 1 << (max(64, params.hot_bytes // 8).bit_length() - 1)
    agg_base = data_base + lines * 64
    for i in range(0, agg_words, 8):
        a.word(agg_base + i * 8, i % 89)
    a.hot_region(agg_base, agg_base + agg_words * 8)
    chain_depth = max(1, min(params.chain_depth, 4))

    a.li(R.r6, params.seed * 2246822519 % (1 << 31))
    a.li(R.r7, 1103515245)
    a.li(R.r9, data_base)
    a.li(R.r15, agg_base)
    a.li(R.r17, 25)                    # decorrelated-bits shift
    a.li(R.r2, params.iterations)
    a.li(R.r3, 0)
    a.label("probe")
    a.mul(R.r6, R.r6, R.r7)            # LCG key
    a.addi(R.r6, R.r6, 12345)
    a.shr(R.r11, R.r6, R.r17)
    a.andi(R.r8, R.r11, mask)          # bucket head
    a.add(R.r8, R.r8, R.r9)
    for _ in range(chain_depth):
        a.ld(R.r8, R.r8, 0)            # dependent chain step
    a.ld(R.r4, R.r8, 8)                # node payload
    a.andi(R.r5, R.r4, 1)
    a.beq(R.r5, R.r0, "no_match")      # data-dependent match branch
    a.add(R.r3, R.r3, R.r4)
    emit_compute(a, params, R.r3, R.r4)
    if params.stores:
        a.andi(R.r12, R.r6, (agg_words - 1) << 3)
        a.add(R.r12, R.r12, R.r15)
        a.ld(R.r13, R.r12, 0)          # aggregate: hot RMW
        a.add(R.r13, R.r13, R.r4)
        a.st(R.r13, R.r12, 0)
    a.label("no_match")
    a.addi(R.r2, R.r2, -1)
    a.bne(R.r2, R.r0, "probe")
    a.halt()


ARCHETYPES = {
    "pointer_chase": build_pointer_chase,
    "streaming": build_streaming,
    "strided_fp": build_strided_fp,
    "random_access": build_random_access,
    "compute": build_random_access,  # same family, cache-resident params
    "branchy": build_branchy,
    "blocked_matrix": build_blocked_matrix,
    "hash_join": build_hash_join,
}
