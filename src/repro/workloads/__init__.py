"""Synthetic SPEC CPU2000 stand-in workloads."""

from .archetypes import ARCHETYPES
from .builders import DATA_BASE, Kernel, KernelParams
from .suite import (
    ALL_KERNELS,
    SPECFP,
    SPECINT,
    build_kernel,
    build_suite,
    kernel_names,
    trace_by_name,
    trace_kernel,
)

__all__ = [
    "ARCHETYPES",
    "Kernel",
    "KernelParams",
    "DATA_BASE",
    "ALL_KERNELS",
    "SPECFP",
    "SPECINT",
    "kernel_names",
    "build_kernel",
    "build_suite",
    "trace_kernel",
    "trace_by_name",
]
