"""Shared machinery for workload kernels.

Every SPEC2000 stand-in is produced by a *kernel archetype* — a
parameterised program generator.  Archetypes take a
:class:`KernelParams` tuning record whose fields control the memory
behaviour the paper's Table 2 characterises (footprint, access pattern,
pointer-chasing depth, compute density, branch noise).

A deterministic :class:`random.Random` seeded per kernel keeps every
trace reproducible run to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..isa.assembler import Assembler
from ..isa.program import WORD_BYTES, Program

#: Data segment base: far above the code, word aligned.
DATA_BASE = 0x10_0000

#: Cold regions live this far above a kernel's data base.
COLD_OFFSET = 32 << 20

#: Address space one phase of a composed program may own (data + cold
#: region).  Generated multi-phase workloads (:mod:`repro.wgen`) place
#: phase ``i`` at ``DATA_BASE + i * PHASE_REGION_BYTES`` so phases never
#: alias each other's structures.
PHASE_REGION_BYTES = 64 << 20


@dataclass(frozen=True)
class KernelParams:
    """Tuning knobs shared by the kernel archetypes.

    footprint_bytes:
        Size of the primary data structure.  Footprints beyond the 1 MB
        L2 produce L2 misses; beyond 32 KB produce D$ misses.
    iterations:
        Outer-loop trip count (scaled by the harness to hit a dynamic
        instruction budget).
    compute:
        Per-element ALU/FP work (hides or exposes memory latency).
    unpredictable_branches:
        Fraction [0, 1] of iterations executing a data-dependent branch
        the predictor cannot learn.
    use_fp:
        Emit FP compute (SPECfp-like) instead of integer compute.
    seed:
        Seed for the kernel's deterministic layout randomisation.
    """

    footprint_bytes: int = 64 * 1024
    iterations: int = 256
    compute: int = 2
    unpredictable_branches: float = 0.0
    use_fp: bool = False
    #: Access stride for streaming/stencil archetypes.
    stride_bytes: int = 64
    #: Emit store-back traffic (swim/galgel-like kernels).
    stores: bool = False
    #: Hot (cache-resident) working-set size for two-level archetypes.
    hot_bytes: int = 16 * 1024
    #: 1-in-N accesses go to the cold region (power of two; 0 = never).
    cold_period: int = 0
    #: Pointer-chase: fraction of ring nodes living in the cold region.
    cold_fraction: float = 1.0
    #: Pointer-chase: independent strided "arc" loads per node visit
    #: (real mcf walks arc arrays between chain steps — this is the
    #: miss-independent work advance execution mines).
    arc_loads: int = 0
    #: Pointer-chase: arc-array stride in bytes.
    arc_stride: int = 8
    #: Pointer-chase: arc-array size (L2-resident by default).
    arc_bytes: int = 512 * 1024
    #: Pointer-chase: number of independent chains walked round-robin
    #: (Figure 1d's "independent chains of dependent misses").
    chains: int = 1
    #: Streaming: make the cold walk randomly addressed (defeats the
    #: stream buffers, so cold misses are DRAM-class).
    cold_random: bool = False
    #: hash_join: hash-table bucket chain depth (dependent loads/probe).
    chain_depth: int = 2
    #: Base address of this kernel's data segment.  The fixed suite uses
    #: the default; the phase composer gives each phase its own region.
    data_base: int = DATA_BASE
    seed: int = 1


def cold_base(params: KernelParams) -> int:
    """Base of the kernel's cold region (far above its data base)."""
    return params.data_base + COLD_OFFSET


@dataclass
class Kernel:
    """A named, characterised workload program."""

    name: str
    program: Program
    archetype: str
    params: KernelParams
    description: str = ""


def rng_for(params: KernelParams, salt: int = 0) -> random.Random:
    return random.Random(params.seed * 0x9E3779B1 + salt)


def emit_compute(a: Assembler, params: KernelParams, acc, tmp, n=None) -> None:
    """Emit ``n`` (default ``params.compute``) dependent work ops."""
    from ..isa.registers import R

    count = params.compute if n is None else n
    for i in range(count):
        if params.use_fp:
            if i % 2:
                a.fmul(acc, acc, tmp)
            else:
                a.fadd(acc, acc, tmp)
        else:
            if i % 3 == 2:
                a.mul(acc, acc, tmp)
            else:
                a.add(acc, acc, tmp)


def footprint_words(params: KernelParams) -> int:
    return max(8, params.footprint_bytes // WORD_BYTES)


def make_kernel(name: str, archetype: str, build, params: KernelParams,
                description: str = "") -> Kernel:
    """Run an archetype builder and wrap the result."""
    assembler = Assembler(name)
    build(assembler, params)
    program = assembler.assemble()
    return Kernel(name=name, program=program, archetype=archetype,
                  params=params, description=description)
