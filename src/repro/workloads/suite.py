"""The 24-kernel SPEC CPU2000 stand-in suite.

Each kernel is named after the SPEC2000 benchmark whose Table 2 memory
characterisation it approximates (suffix ``_like`` keeps the naming
honest: these are synthetic kernels, not the benchmarks).  Parameters
were tuned against the in-order model so the *spread* of D$/L2 misses
per kilo-instruction tracks the paper: mcf_like and art_like are the
memory-bound extremes, mesa_like/eon_like/vortex_like essentially never
miss, and the FP kernels sit in between with prefetch-friendly streams.

Kernels run unbounded (huge trip counts); callers bound dynamic length
via the functional executor's instruction budget — the stand-in for the
paper's 1M-instruction samples.
"""

from __future__ import annotations

from ..functional.executor import FunctionalExecutor
from ..functional.trace import Trace
from .archetypes import ARCHETYPES
from .builders import Kernel, KernelParams, make_kernel

KB = 1024
MB = 1024 * KB

#: Effectively-infinite trip count; the instruction budget truncates.
FOREVER = 1 << 30

#: name -> (archetype, params, description).  Ordering follows Table 2.
_SUITE_SPEC: dict[str, tuple[str, KernelParams, str]] = {
    # ------------------------- SPECfp -------------------------
    "ammp_like": ("pointer_chase",
                  KernelParams(footprint_bytes=1280 * KB, compute=28,
                               arc_loads=1, arc_bytes=256 * KB, use_fp=True,
                               iterations=FOREVER, seed=11),
                  "molecular dynamics: pointer-linked atom lists"),
    "applu_like": ("streaming",
                   KernelParams(footprint_bytes=3 * MB, hot_bytes=40 * KB,
                                stride_bytes=16, compute=7, cold_period=32,
                                use_fp=True, iterations=FOREVER, seed=12),
                   "PDE solver: strided sweeps over large grids"),
    "apsi_like": ("streaming",
                  KernelParams(hot_bytes=40 * KB, stride_bytes=16, compute=7,
                               cold_period=0, use_fp=True,
                               iterations=FOREVER, seed=13),
                  "meteorology: L2-resident strided sweeps"),
    "art_like": ("streaming",
                 KernelParams(footprint_bytes=6 * MB, hot_bytes=256 * KB,
                              stride_bytes=64, compute=2, cold_period=16,
                              cold_random=True, use_fp=True,
                              iterations=FOREVER, seed=14),
                 "neural net: low-compute scans of a huge weight array"),
    "equake_like": ("strided_fp",
                    KernelParams(footprint_bytes=2 * MB, hot_bytes=48 * KB,
                                 stride_bytes=16, compute=8, cold_period=32,
                                 use_fp=True, iterations=FOREVER, seed=15),
                    "FEM stencil with store-back"),
    "facerec_like": ("strided_fp",
                     KernelParams(footprint_bytes=2 * MB, hot_bytes=48 * KB,
                                  stride_bytes=16, compute=40, cold_period=8,
                                  use_fp=True, iterations=FOREVER, seed=16),
                     "image correlation: compute-dense FP stencil"),
    "galgel_like": ("streaming",
                    KernelParams(hot_bytes=40 * KB, stride_bytes=16,
                                 compute=10, stores=True, cold_period=0,
                                 use_fp=True, iterations=FOREVER, seed=17),
                    "fluid dynamics: L2-resident sweeps with store-back"),
    "lucas_like": ("streaming",
                   KernelParams(hot_bytes=40 * KB, stride_bytes=16, compute=7,
                                cold_period=0, use_fp=True,
                                iterations=FOREVER, seed=18),
                   "FFT butterflies: L2-resident strided passes"),
    "mesa_like": ("compute",
                  KernelParams(footprint_bytes=64 * KB, hot_bytes=16 * KB,
                               cold_period=64, compute=4, use_fp=True,
                               iterations=FOREVER, seed=19),
                  "software rasteriser: cache-resident FP compute"),
    "mgrid_like": ("streaming",
                   KernelParams(hot_bytes=40 * KB, stride_bytes=16,
                                compute=12, cold_period=0, use_fp=True,
                                iterations=FOREVER, seed=20),
                   "multigrid relaxation: mostly L2-resident"),
    "swim_like": ("streaming",
                  KernelParams(footprint_bytes=4 * MB, hot_bytes=40 * KB,
                               stride_bytes=16, compute=1, stores=True,
                               cold_period=16, cold_random=True,
                               use_fp=True, iterations=FOREVER, seed=21),
                  "shallow water: streaming with store-back"),
    "wupwise_like": ("strided_fp",
                     KernelParams(footprint_bytes=1280 * KB, hot_bytes=24 * KB,
                                  stride_bytes=16, compute=10, cold_period=8,
                                  use_fp=True, iterations=FOREVER, seed=22),
                     "lattice QCD: compute-dense FP stencil"),
    # ------------------------- SPECint -------------------------
    "bzip2_like": ("branchy",
                   KernelParams(footprint_bytes=1536 * KB, hot_bytes=16 * KB,
                                stride_bytes=64, compute=3, cold_period=16,
                                iterations=FOREVER, seed=23),
                   "compression: data-dependent branches over a block"),
    "crafty_like": ("compute",
                    KernelParams(footprint_bytes=128 * KB, hot_bytes=16 * KB,
                                 cold_period=16, compute=4,
                                 iterations=FOREVER, seed=24),
                    "chess: bitboard compute over a modest table"),
    "eon_like": ("compute",
                 KernelParams(footprint_bytes=128 * KB, hot_bytes=16 * KB,
                              cold_period=8, compute=4, use_fp=True,
                              iterations=FOREVER, seed=25),
                 "ray tracer: compute-dense, cache-resident"),
    "gap_like": ("random_access",
                 KernelParams(footprint_bytes=2 * MB, hot_bytes=16 * KB,
                              cold_period=16, compute=0,
                              iterations=FOREVER, seed=26),
                 "group theory: scattered reads over a big table"),
    "gcc_like": ("random_access",
                 KernelParams(footprint_bytes=512 * KB, hot_bytes=16 * KB,
                              cold_period=8, compute=0,
                              iterations=FOREVER, seed=27),
                 "compiler: pointer-dense IR walks, L2-resident"),
    "gzip_like": ("branchy",
                  KernelParams(footprint_bytes=256 * KB, hot_bytes=16 * KB,
                               stride_bytes=64, compute=3, cold_period=8,
                               iterations=FOREVER, seed=28),
                  "LZ77: unpredictable match/literal branches"),
    "mcf_like": ("pointer_chase",
                 KernelParams(footprint_bytes=8 * MB, compute=2,
                              arc_loads=1, arc_bytes=4 * MB, chains=2,
                              iterations=FOREVER, seed=29),
                 "network simplex: the canonical dependent-miss chaser"),
    "parser_like": ("random_access",
                    KernelParams(footprint_bytes=1 * MB, hot_bytes=16 * KB,
                                 cold_period=8, compute=1,
                                 iterations=FOREVER, seed=30),
                    "dictionary lookups over a mid-sized hash table"),
    "perlbmk_like": ("compute",
                     KernelParams(footprint_bytes=64 * KB, hot_bytes=16 * KB,
                                  cold_period=16, compute=4,
                                  iterations=FOREVER, seed=31),
                     "interpreter: hot bytecode loop, small tables"),
    "twolf_like": ("pointer_chase",
                   KernelParams(footprint_bytes=256 * KB, compute=34,
                                arc_loads=1, arc_bytes=128 * KB,
                                iterations=FOREVER, seed=32),
                   "place & route: short-range pointer chasing in L2"),
    "vortex_like": ("compute",
                    KernelParams(footprint_bytes=64 * KB, hot_bytes=16 * KB,
                                 cold_period=32, compute=4,
                                 iterations=FOREVER, seed=33),
                    "OO database: cache-resident object twiddling"),
    "vpr_like": ("pointer_chase",
                 KernelParams(footprint_bytes=1280 * KB, compute=34,
                              arc_loads=1, arc_bytes=512 * KB,
                              iterations=FOREVER, seed=34),
                 "FPGA routing: pointer chasing across a big netlist"),
}

SPECFP = [name for name in _SUITE_SPEC if name in (
    "ammp_like", "applu_like", "apsi_like", "art_like", "equake_like",
    "facerec_like", "galgel_like", "lucas_like", "mesa_like", "mgrid_like",
    "swim_like", "wupwise_like")]
SPECINT = [name for name in _SUITE_SPEC if name not in SPECFP]
ALL_KERNELS = list(_SUITE_SPEC)


def kernel_names() -> list[str]:
    """All 24 kernel names, SPECfp first (Table 2 order)."""
    return list(ALL_KERNELS)


def build_kernel(name: str) -> Kernel:
    """Assemble one kernel by name."""
    try:
        archetype, params, description = _SUITE_SPEC[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; choose from {ALL_KERNELS}"
        ) from None
    return make_kernel(name, archetype, ARCHETYPES[archetype], params,
                       description)


def build_suite(names=None) -> list[Kernel]:
    """Assemble the full suite (or the given subset)."""
    return [build_kernel(name) for name in (names or ALL_KERNELS)]


def trace_kernel(kernel: Kernel, instructions: int = 20_000) -> Trace:
    """Functionally execute a kernel for ``instructions`` dynamic
    instructions (the sampling budget) and return its trace."""
    executor = FunctionalExecutor(kernel.program)
    return executor.run(max_instructions=instructions)


def trace_by_name(name: str, instructions: int = 20_000) -> Trace:
    """The (cached) trace for a suite kernel.

    Trace generation is deterministic, so repeated requests for the same
    ``(name, instructions)`` return the identical trace object from
    :data:`repro.exec.cache.TRACE_CACHE` instead of re-running the
    functional executor.  Timing models replay traces without mutating
    them, which is what makes the sharing safe.
    """
    from ..exec.cache import TRACE_CACHE  # local: cache builds via this module

    return TRACE_CACHE.get(name, instructions)
