"""Conventional associatively-searched store buffer.

This is the 32-entry structure a vanilla in-order processor already has
(Table 1), used by the in-order, Runahead, and Multipass models.  It
exists to tolerate store-miss latency and to forward committed store
data to younger loads; iCFP replaces it with the much larger
address-hash chained design in :mod:`repro.core.store_buffer`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(slots=True)
class StoreQueueEntry:
    addr: int
    value: object
    enter_cycle: int
    #: Cycle the in-progress drain completes; None until launched.
    drain_ready: int | None = None


class StoreQueue:
    """FIFO of committed stores awaiting their turn to write the cache."""

    def __init__(self, entries: int) -> None:
        self.capacity = entries
        self._queue: deque[StoreQueueEntry] = deque()
        #: addr -> resident-entry count; lets the (dominant) no-match
        #: forward probes answer in O(1) instead of scanning the queue.
        self._addr_counts: dict[int, int] = {}
        self.forward_hits = 0
        self.forward_misses = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._queue

    def push(self, addr: int, value, cycle: int) -> StoreQueueEntry:
        if self.full:
            raise OverflowError("store queue full")
        entry = StoreQueueEntry(addr, value, cycle)
        self._queue.append(entry)
        counts = self._addr_counts
        counts[addr] = counts.get(addr, 0) + 1
        return entry

    def forward(self, addr: int):
        """Youngest matching store's value, or None (associative search)."""
        if addr not in self._addr_counts:
            self.forward_misses += 1
            return None
        for entry in reversed(self._queue):
            if entry.addr == addr:
                self.forward_hits += 1
                return entry
        self.forward_misses += 1  # pragma: no cover - index guarantees a hit
        return None

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------
    def head(self) -> StoreQueueEntry | None:
        return self._queue[0] if self._queue else None

    def drain_step(self, hierarchy, cycle: int, memory_image=None) -> bool:
        """Advance the head store's cache write by one cycle.

        Launches the head's D$ access if needed and pops it once the
        access completes.  ``memory_image`` (a dict) receives the value,
        letting callers track committed memory state.  Returns True when
        a store finished draining this cycle.
        """
        if not self._queue:
            return False
        head = self._queue[0]
        if head.drain_ready is None:
            ready = hierarchy.data_hit_cycle(head.addr, cycle, is_store=True)
            if ready is None:
                result = hierarchy.data_access(head.addr, cycle, is_store=True)
                if result.stalled:
                    return False  # no MSHR: retry next cycle
                ready = result.ready_cycle
            head.drain_ready = ready
        if head.drain_ready <= cycle:
            if memory_image is not None:
                memory_image[head.addr] = head.value
            self._queue.popleft()
            counts = self._addr_counts
            remaining = counts[head.addr] - 1
            if remaining:
                counts[head.addr] = remaining
            else:
                del counts[head.addr]
            return True
        return False

    def flush(self) -> int:
        """Discard all entries (advance-mode squash); returns count."""
        dropped = len(self._queue)
        self._queue.clear()
        self._addr_counts.clear()
        return dropped

    def next_event_cycle(self, cycle: int) -> int | None:
        """Earliest future cycle the head can make progress, if known.

        Part of the event-horizon contract: the leap engine jumps the
        clock to the minimum of these across all stateful components.
        """
        if not self._queue:
            return None
        head = self._queue[0]
        drain_ready = head.drain_ready
        if drain_ready is None or drain_ready <= cycle:
            return cycle + 1
        return drain_ready

    #: Backwards-compatible name from the pre-horizon engine.
    next_event = next_event_cycle
