"""Per-cycle issue-port tracking.

Table 1: "2-way superscalar, 2 integer, 1 fp/load/store/branch" — two
integer ALU/multiply ports plus a single shared port for floating
point, memory, and control instructions.
"""

from __future__ import annotations

from ..isa.instructions import OpClass

#: Port kind required by each op class.
INT_PORT = "int"
MEM_PORT = "mem"

_PORT_OF = {
    OpClass.INT_ALU: INT_PORT,
    OpClass.INT_MUL: INT_PORT,
    OpClass.NOP: INT_PORT,
    OpClass.HALT: INT_PORT,
    OpClass.FP_ADD: MEM_PORT,
    OpClass.FP_MUL: MEM_PORT,
    OpClass.LOAD: MEM_PORT,
    OpClass.STORE: MEM_PORT,
    OpClass.BRANCH: MEM_PORT,
    OpClass.JUMP: MEM_PORT,
}


def port_kind(opclass: OpClass) -> str:
    """Which port kind an op class issues to."""
    return _PORT_OF[opclass]


class PortSet:
    """Issue-port availability within a single cycle."""

    def __init__(self, int_ports: int, mem_ports: int) -> None:
        self._capacity = {INT_PORT: int_ports, MEM_PORT: mem_ports}
        self._free = dict(self._capacity)

    def reset(self) -> None:
        """Start a new cycle with all ports free."""
        self._free = dict(self._capacity)

    def available(self, opclass: OpClass) -> bool:
        return self._free[_PORT_OF[opclass]] > 0

    def acquire(self, opclass: OpClass) -> bool:
        """Claim a port for this cycle; False if none is free."""
        kind = _PORT_OF[opclass]
        if self._free[kind] <= 0:
            return False
        self._free[kind] -= 1
        return True
