"""Per-cycle issue-port tracking.

Table 1: "2-way superscalar, 2 integer, 1 fp/load/store/branch" — two
integer ALU/multiply ports plus a single shared port for floating
point, memory, and control instructions.
"""

from __future__ import annotations

from ..isa.instructions import OpClass

#: Port kind required by each op class.
INT_PORT = "int"
MEM_PORT = "mem"

_PORT_OF = {
    OpClass.INT_ALU: INT_PORT,
    OpClass.INT_MUL: INT_PORT,
    OpClass.NOP: INT_PORT,
    OpClass.HALT: INT_PORT,
    OpClass.FP_ADD: MEM_PORT,
    OpClass.FP_MUL: MEM_PORT,
    OpClass.LOAD: MEM_PORT,
    OpClass.STORE: MEM_PORT,
    OpClass.BRANCH: MEM_PORT,
    OpClass.JUMP: MEM_PORT,
}


#: Op classes that issue to an integer port (set-membership beats a
#: string-keyed double dict lookup on the issue path).
_INT_CLASSES = frozenset(
    {OpClass.INT_ALU, OpClass.INT_MUL, OpClass.NOP, OpClass.HALT}
)


def port_kind(opclass: OpClass) -> str:
    """Which port kind an op class issues to."""
    return _PORT_OF[opclass]


class PortSet:
    """Issue-port availability within a single cycle.

    The free counts are plain int slots (``int_free`` / ``mem_free``)
    that the models' issue loops read and decrement directly with a
    precomputed per-instruction port flag; the opclass-keyed methods
    remain for construction-time and test use.
    """

    __slots__ = ("int_capacity", "mem_capacity", "int_free", "mem_free")

    def __init__(self, int_ports: int, mem_ports: int) -> None:
        self.int_capacity = int_ports
        self.mem_capacity = mem_ports
        self.int_free = int_ports
        self.mem_free = mem_ports

    def reset(self) -> None:
        """Start a new cycle with all ports free."""
        self.int_free = self.int_capacity
        self.mem_free = self.mem_capacity

    def available(self, opclass: OpClass) -> bool:
        if opclass in _INT_CLASSES:
            return self.int_free > 0
        return self.mem_free > 0

    def acquire(self, opclass: OpClass) -> bool:
        """Claim a port for this cycle; False if none is free."""
        if opclass in _INT_CLASSES:
            if self.int_free <= 0:
                return False
            self.int_free -= 1
        else:
            if self.mem_free <= 0:
                return False
            self.mem_free -= 1
        return True
