"""Machine configuration (Table 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..memory.hierarchy import HierarchyConfig


@dataclass(frozen=True)
class MachineConfig:
    """Core + hierarchy configuration shared by all five machine models.

    Defaults reproduce Table 1: a 10-stage, 2-way superscalar in-order
    pipeline (3 I$ / 1 decode / 1 reg-read / 1 ALU / 3 D$ / 1 reg-write)
    with 2 integer ports and 1 combined fp/load/store/branch port, a
    32-entry associative store buffer, and the Table 1 hierarchy.
    """

    width: int = 2
    int_ports: int = 2
    mem_ports: int = 1
    #: Fetch-to-issue depth: 3 I$ stages + decode + register read.
    frontend_depth: int = 5
    fetch_queue_depth: int = 12
    store_buffer_entries: int = 32
    #: Pre-install the program's code lines in the I$/L2 before timing.
    #: The paper precedes every measured sample with a 4M-instruction
    #: cache/predictor warm-up; for our short kernels this flag plays
    #: that role for the instruction stream.
    warm_icache: bool = True
    #: Pre-install the program's initial data image in the D$/L2 the same
    #: way (steady-state stand-in for the paper's warm-up).  Insertion is
    #: in ascending address order, so structures larger than a level keep
    #: only their tail resident -- the LRU steady state of a cyclic scan.
    warm_dcache: bool = False
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig.hpca09)
    #: Safety valve for the cycle loop (simulation aborts beyond this).
    max_cycles: int = 200_000_000

    @staticmethod
    def hpca09(l2_hit_latency: int = 20, stream_buffers: int = 8) -> "MachineConfig":
        """Table 1 configuration; ``l2_hit_latency`` varies in Figure 6."""
        return MachineConfig(
            hierarchy=HierarchyConfig.hpca09(
                l2_hit_latency=l2_hit_latency, stream_buffers=stream_buffers
            )
        )

    def with_l2_latency(self, l2_hit_latency: int) -> "MachineConfig":
        """A copy of this config with a different L2 hit latency."""
        hier = replace(
            self.hierarchy,
            l2=replace(self.hierarchy.l2, hit_latency=l2_hit_latency),
        )
        return replace(self, hierarchy=hier)
