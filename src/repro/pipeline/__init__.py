"""Pipeline machinery: configuration, ports, store queue, statistics."""

from .config import MachineConfig
from .resources import INT_PORT, MEM_PORT, PortSet, port_kind
from .stats import CoreStats, MLPMeter, StallBreakdown
from .store_queue import StoreQueue, StoreQueueEntry

__all__ = [
    "MachineConfig",
    "PortSet",
    "port_kind",
    "INT_PORT",
    "MEM_PORT",
    "CoreStats",
    "MLPMeter",
    "StallBreakdown",
    "StoreQueue",
    "StoreQueueEntry",
]
