"""Statistics: counters, stall breakdowns, and MLP measurement."""

from __future__ import annotations

from dataclasses import dataclass, field


class MLPMeter:
    """Measures memory-level parallelism from miss intervals.

    Each demand line fill contributes a half-open interval
    ``[start, end)``.  MLP is the time-average number of simultaneously
    outstanding fills over the cycles during which *at least one* fill
    is outstanding — the definition behind Table 2's "D$ MLP" and
    "L2 MLP" columns.
    """

    def __init__(self) -> None:
        self._intervals: list[tuple[int, int]] = []

    def add(self, start: int, end: int) -> None:
        if end > start:
            self._intervals.append((start, end))

    @property
    def count(self) -> int:
        return len(self._intervals)

    def average(self) -> float:
        """Time-averaged outstanding fills while >= 1 is outstanding.

        Returns 1.0 when there were misses but no overlap, and 0.0 when
        there were no misses at all (callers typically display "-").
        """
        if not self._intervals:
            return 0.0
        events: list[tuple[int, int]] = []
        for start, end in self._intervals:
            events.append((start, 1))
            events.append((end, -1))
        events.sort()
        active_time = 0
        weighted_time = 0
        depth = 0
        prev = events[0][0]
        for time, delta in events:
            if depth > 0 and time > prev:
                span = time - prev
                active_time += span
                weighted_time += span * depth
            prev = time
            depth += delta
        if active_time == 0:
            return 0.0
        return weighted_time / active_time


@dataclass
class StallBreakdown:
    """Issue-stall cycles by first blocking reason (diagnostics)."""

    src_wait: int = 0
    waw_wait: int = 0
    port: int = 0
    store_buffer_full: int = 0
    mshr_full: int = 0
    frontend: int = 0
    slice_buffer_full: int = 0
    poisoned_store_addr: int = 0

    def total(self) -> int:
        return (self.src_wait + self.waw_wait + self.port
                + self.store_buffer_full + self.mshr_full + self.frontend
                + self.slice_buffer_full + self.poisoned_store_addr)


#: Every integer counter a :class:`PhaseStats` bucket carries.  Each is
#: mirrored from the matching :class:`CoreStats` aggregate at the same
#: increment site, so summing a counter over a run's buckets reproduces
#: the aggregate *exactly* — the conservation law
#: ``tests/stats/test_phase_conservation.py`` pins.
PHASE_COUNTERS = (
    "cycles", "instructions", "loads", "stores", "branches",
    "l1d_misses", "l2_misses", "secondary_misses",
    "advance_instructions", "rally_instructions",
)


@dataclass
class PhaseStats:
    """Attribution bucket for one phase of a composed workload.

    Cycles are charged as spans between phase transitions observed at
    retirement: when a committing instruction's phase differs from the
    current one, the elapsed span goes to the outgoing phase (the run's
    tail span is settled at completion).  Event counters (commits,
    misses, advance/rally work) are charged to the phase of the
    instruction that caused them.  Attribution is observation-only:
    it never feeds timing decisions.
    """

    name: str
    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    l1d_misses: int = 0
    l2_misses: int = 0
    secondary_misses: int = 0
    advance_instructions: int = 0
    rally_instructions: int = 0

    @classmethod
    def from_aggregate(cls, name: str, stats: "CoreStats") -> "PhaseStats":
        """The single-phase bucket: the whole run's aggregates.

        Single-region programs skip per-commit attribution entirely —
        one bucket over the whole program *is* the aggregate, so it is
        synthesised here at run end for zero hot-path cost.
        """
        return cls(name=name,
                   **{field: getattr(stats, field)
                      for field in PHASE_COUNTERS})

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class CoreStats:
    """Everything a simulation run records."""

    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    l1d_misses: int = 0
    l2_misses: int = 0
    secondary_misses: int = 0
    # Latency-tolerance machinery:
    advance_entries: int = 0          # transitions into advance mode
    advance_instructions: int = 0     # instructions processed while advancing
    rally_passes: int = 0
    rally_instructions: int = 0       # re-executed slice/replay instructions
    slice_captures: int = 0           # instructions diverted into the slice buffer
    squashes: int = 0                 # checkpoint restores
    simple_runahead_entries: int = 0  # fallback-mode transitions
    store_forward_hits: int = 0
    store_forward_hops: int = 0       # excess chained store-buffer hops
    stalls: StallBreakdown = field(default_factory=StallBreakdown)
    d_mlp: MLPMeter = field(default_factory=MLPMeter)
    l2_mlp: MLPMeter = field(default_factory=MLPMeter)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def misses_per_ki(self) -> tuple[float, float]:
        """(D$ misses, L2 misses) per 1000 committed instructions."""
        if not self.instructions:
            return (0.0, 0.0)
        scale = 1000.0 / self.instructions
        return (self.l1d_misses * scale, self.l2_misses * scale)

    def rallies_per_ki(self) -> float:
        if not self.instructions:
            return 0.0
        return self.rally_instructions * 1000.0 / self.instructions

    def hops_per_load(self) -> float:
        if not self.loads:
            return 0.0
        return self.store_forward_hops / self.loads
