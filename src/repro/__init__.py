"""iCFP: Tolerating All-Level Cache Misses in In-Order Processors.

A from-scratch reproduction of Hilton, Nagarakatte & Roth (HPCA 2009).

Public API tour
---------------
* :mod:`repro.isa` — the reproduction ISA and assembler.
* :mod:`repro.functional` — golden-reference execution, dynamic traces.
* :mod:`repro.memory` / :mod:`repro.branch` / :mod:`repro.pipeline` /
  :mod:`repro.engine` — the in-order machine substrate.
* :mod:`repro.core` — the paper's contribution: the iCFP engine and its
  mechanisms (poison vectors, sequence-numbered register file, slice
  buffer, chained store buffer, load signature).
* :mod:`repro.baselines` — in-order, Runahead, Multipass, SLTP.
* :mod:`repro.workloads` — the 24-kernel SPEC2000 stand-in suite.
* :mod:`repro.harness` — experiment runners for every table and figure.
* :mod:`repro.area` — the Section 5.3 area model.

Quick start::

    from repro.functional import run_program
    from repro.harness import ExperimentConfig, make_core
    from repro.workloads import trace_by_name

    trace = trace_by_name("mcf_like", instructions=10_000)
    core = make_core("icfp", trace, ExperimentConfig())
    print(core.run())
"""

__version__ = "1.0.0"

__all__ = [
    "isa",
    "functional",
    "memory",
    "branch",
    "pipeline",
    "engine",
    "core",
    "baselines",
    "workloads",
    "harness",
    "area",
]
