"""``python -m repro``: the experiment command-line interface."""

import sys

from .harness.cli import main

sys.exit(main())
