"""Per-phase attribution tables over campaign results.

Composed multi-phase workloads (:mod:`repro.wgen`) report one
:class:`~repro.pipeline.stats.PhaseStats` bucket per phase; these
helpers flatten a ``results[workload][model]`` table (the shape
``run_suite`` returns) into per-phase rows and render the text table
behind ``repro phases``.  Every bucket counter sums exactly to the
matching aggregate, so the table decomposes — never re-estimates — the
whole-program numbers the figures report.
"""

from __future__ import annotations

from ..engine.result import SimResult
from ..pipeline.stats import PHASE_COUNTERS


def phase_dicts(result: SimResult) -> list[dict]:
    """One result's phase buckets as JSON-ready counter dicts."""
    return [
        {"name": p.name,
         **{counter: getattr(p, counter) for counter in PHASE_COUNTERS}}
        for p in (result.phase_stats or ())
    ]


def phase_summary(results: dict[str, dict[str, SimResult]]) -> dict:
    """``summary[workload][model]`` -> list of per-phase counter dicts.

    JSON-ready (plain dicts of ints), in phase order.  Workloads whose
    results carry no phase buckets (externally built programs) map to
    an empty list.
    """
    return {
        workload: {model: phase_dicts(result)
                   for model, result in runs.items()}
        for workload, runs in results.items()
    }


def format_phase_table(results: dict[str, dict[str, SimResult]]) -> str:
    """The ``repro phases`` text table: one row per workload/model/phase.

    Columns are the attribution counters; the ``total`` row under each
    model restates the aggregates (and, by the conservation law, the
    column sums).
    """
    lines = [
        "Per-phase attribution (cycles and events bucketed at retirement)",
        f"{'workload':16s} {'model':10s} {'phase':22s} {'cycles':>9s} "
        f"{'insts':>7s} {'D$miss':>7s} {'L2miss':>7s} {'adv':>7s} "
        f"{'rally':>7s} {'IPC':>6s}",
    ]
    for workload, runs in results.items():
        for model, result in runs.items():
            phases = result.phase_stats or []
            for p in phases:
                lines.append(
                    f"{workload:16s} {model:10s} {p.name:22s} "
                    f"{p.cycles:9d} {p.instructions:7d} {p.l1d_misses:7d} "
                    f"{p.l2_misses:7d} {p.advance_instructions:7d} "
                    f"{p.rally_instructions:7d} {p.ipc:6.3f}"
                )
            if len(phases) > 1:
                stats = result.stats
                lines.append(
                    f"{workload:16s} {model:10s} {'total':22s} "
                    f"{stats.cycles:9d} {stats.instructions:7d} "
                    f"{stats.l1d_misses:7d} {stats.l2_misses:7d} "
                    f"{stats.advance_instructions:7d} "
                    f"{stats.rally_instructions:7d} {stats.ipc:6.3f}"
                )
    return "\n".join(lines)
