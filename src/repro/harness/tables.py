"""Table 2 (benchmark diagnostics) and the Section 5.3 area table."""

from __future__ import annotations

from dataclasses import dataclass

from ..area.model import area_overheads
from ..wgen.spec import workload_name
from .experiment import ExperimentConfig, run_suite, selected_workloads


@dataclass
class Table2Row:
    """One benchmark's diagnostics (Table 2 of the paper)."""

    workload: str
    d_miss_per_ki: float
    l2_miss_per_ki: float
    d_mlp: dict[str, float]     # model -> D$ MLP
    l2_mlp: dict[str, float]    # model -> L2 MLP
    rally_per_ki: float         # iCFP rally instructions / K instructions


def table2(config: ExperimentConfig | None = None,
           workloads=None, store=None, report=None) -> list[Table2Row]:
    """Reproduce Table 2: Miss/KI, MLP for in-order/Runahead/iCFP, and
    iCFP rally overhead.

    ``store`` selects the disk tier as in :func:`repro.exec.run_jobs`
    (``None`` = environment default) — Table 2 shares its cells with
    the Figure 5 grid, so after a figure run it is usually free.
    """
    config = config if config is not None else ExperimentConfig()
    workloads = workloads if workloads is not None else selected_workloads()
    models = ("in-order", "runahead", "icfp")
    results = run_suite(models, workloads, config, store=store, report=report)
    rows = []
    for workload in workloads:
        name = workload_name(workload)
        runs = results[name]
        d_ki, l2_ki = runs["in-order"].stats.misses_per_ki()
        rows.append(Table2Row(
            workload=name,
            d_miss_per_ki=d_ki,
            l2_miss_per_ki=l2_ki,
            d_mlp={m: runs[m].stats.d_mlp.average() for m in models},
            l2_mlp={m: runs[m].stats.l2_mlp.average() for m in models},
            rally_per_ki=runs["icfp"].stats.rallies_per_ki(),
        ))
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    lines = ["Table 2: benchmark diagnostics",
             f"{'bench':14s} {'D$/KI':>6s} {'L2/KI':>6s} "
             f"{'D$MLP iO':>9s} {'RA':>6s} {'iCFP':>6s} "
             f"{'L2MLP iO':>9s} {'RA':>6s} {'iCFP':>6s} {'Rally/KI':>9s}"]
    for row in rows:
        lines.append(
            f"{row.workload:14s} {row.d_miss_per_ki:6.1f} "
            f"{row.l2_miss_per_ki:6.1f} "
            f"{row.d_mlp['in-order']:9.1f} {row.d_mlp['runahead']:6.1f} "
            f"{row.d_mlp['icfp']:6.1f} "
            f"{row.l2_mlp['in-order']:9.1f} {row.l2_mlp['runahead']:6.1f} "
            f"{row.l2_mlp['icfp']:6.1f} {row.rally_per_ki:9.0f}"
        )
    return "\n".join(lines)


def format_area_table() -> str:
    """Section 5.3: per-scheme area overheads at 45 nm."""
    overheads = area_overheads()
    lines = ["Section 5.3: area overheads (mm^2, 45 nm)",
             f"{'scheme':12s} {'mm^2':>8s}   structures"]
    for scheme, breakdown in overheads.items():
        total = sum(breakdown.values())
        detail = ", ".join(f"{k}={v:.3f}" for k, v in breakdown.items())
        lines.append(f"{scheme:12s} {total:8.2f}   {detail}")
    return "\n".join(lines)
