"""Experiment runner: one place that knows how to build and run every
machine model on every workload.

Model configurations follow Section 5.1: Runahead and SLTP advance
under L2 misses only, Multipass also under primary data-cache misses,
and iCFP under everything.  The instruction budget per kernel (the
stand-in for the paper's sampled windows) is controlled by
``REPRO_INSTRUCTIONS`` (default 6 000); ``REPRO_WORKLOADS`` narrows the
suite (comma-separated kernel names) for quick runs.

Campaigns (``run_workload``/``run_suite``) execute through the
:mod:`repro.exec` engine: the model x workload grid becomes a batch of
:class:`~repro.exec.job.SimJob` specs that the engine memoizes by
config fingerprint and fans out across ``REPRO_JOBS`` processes.
"""

from __future__ import annotations

import dataclasses
import math
import os
from dataclasses import dataclass, field

from ..baselines import InOrderCore, MultipassCore, RunaheadCore, SLTPCore
from ..core.icfp import ICFPCore, ICFPFeatures
from ..engine.result import SimResult
from ..exec import SimJob, run_jobs
from ..functional.trace import Trace
from ..pipeline.config import MachineConfig
from ..wgen.spec import workload_name
from ..workloads import ALL_KERNELS, SPECFP, SPECINT

#: Paper model names in presentation order (Figure 5).
MODELS = ("in-order", "runahead", "multipass", "sltp", "icfp")


def default_instructions() -> int:
    """Per-kernel dynamic instruction budget (env-overridable)."""
    return int(os.environ.get("REPRO_INSTRUCTIONS", "6000"))


def selected_workloads() -> list:
    """The workload list, optionally narrowed by ``REPRO_WORKLOADS``.

    The environment variable takes the same comma-separated references
    as the CLI's ``-w``: kernel names, ``@specfile.json``, and
    ``gen:N[:SEED]`` generated suites.
    """
    env = os.environ.get("REPRO_WORKLOADS")
    if not env:
        return list(ALL_KERNELS)
    from ..wgen.registry import resolve_workloads

    refs = [n.strip() for n in env.split(",") if n.strip()]
    try:
        return resolve_workloads(refs)
    except (KeyError, ValueError, OSError) as exc:
        raise ValueError(f"bad REPRO_WORKLOADS reference: {exc}") from None


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    instructions: int = field(default_factory=default_instructions)
    l2_hit_latency: int = 20
    stream_buffers: int = 8
    warm: bool = True
    icfp_features: ICFPFeatures = field(default_factory=ICFPFeatures)
    runahead_advance_on: str = "l2"
    multipass_advance_on: str = "l2_d1"
    sltp_advance_on: str = "l2"

    def machine_config(self) -> MachineConfig:
        cfg = MachineConfig.hpca09(l2_hit_latency=self.l2_hit_latency,
                                   stream_buffers=self.stream_buffers)
        return dataclasses.replace(cfg, warm_dcache=self.warm)


def make_core(model: str, trace: Trace, config: ExperimentConfig,
              lane_params=None, lane: int = 0):
    """Instantiate a machine model on ``trace``.

    ``lane_params``/``lane`` bind the core to one lane of a shared
    :class:`~repro.engine.batch.LaneParams` table (the batched backend);
    scalar callers omit them and get a private one-lane table.
    """
    machine = config.machine_config()
    if model == "in-order":
        return InOrderCore(trace, config=machine,
                           lane_params=lane_params, lane=lane)
    if model == "runahead":
        return RunaheadCore(trace, config=machine,
                            advance_on=config.runahead_advance_on,
                            lane_params=lane_params, lane=lane)
    if model == "multipass":
        return MultipassCore(trace, config=machine,
                             advance_on=config.multipass_advance_on,
                             lane_params=lane_params, lane=lane)
    if model == "sltp":
        return SLTPCore(trace, config=machine,
                        advance_on=config.sltp_advance_on,
                        lane_params=lane_params, lane=lane)
    if model == "icfp":
        return ICFPCore(trace, config=machine, features=config.icfp_features,
                        lane_params=lane_params, lane=lane)
    raise ValueError(f"unknown model {model!r}; choose from {MODELS}")


def run_model(model: str, trace: Trace, config: ExperimentConfig) -> SimResult:
    return make_core(model, trace, config).run()


def suite_jobs(models=MODELS, workloads=None,
               config: ExperimentConfig | None = None) -> list[SimJob]:
    """The models x workloads grid as engine job specs."""
    config = config if config is not None else ExperimentConfig()
    workloads = workloads if workloads is not None else selected_workloads()
    return [SimJob(model, workload, config)
            for workload in workloads for model in models]


def run_workload(workload, models=MODELS,
                 config: ExperimentConfig | None = None,
                 jobs: int | None = None, store=None,
                 report=None) -> dict[str, SimResult]:
    """Run several models over one workload (one shared, cached trace)."""
    results = run_suite(models, (workload,), config, jobs=jobs, store=store,
                        report=report)
    return results[workload_name(workload)]


def run_suite(models=MODELS, workloads=None,
              config: ExperimentConfig | None = None,
              jobs: int | None = None,
              store=None, report=None,
              strict: bool = True) -> dict[str, dict[str, SimResult]]:
    """Run ``models`` x ``workloads``; returns results[workload][model].

    ``workloads`` mixes named-suite kernels and generated
    :class:`~repro.wgen.spec.WorkloadSpec`s freely; the result table is
    keyed by :func:`~repro.wgen.spec.workload_name` in both cases.  The
    grid goes through the campaign engine: previously-computed
    (model, workload, config) cells come from the result memo or the
    on-disk store (``store=`` as in :func:`repro.exec.run_jobs`:
    ``None`` = environment default, ``False`` = off, or an explicit
    :class:`~repro.exec.ResultStore`), the rest fan out over ``jobs``
    worker processes (default ``REPRO_JOBS``, then ``os.cpu_count()``;
    1 = sequential in-process).

    ``report`` (a :class:`~repro.exec.CampaignReport`) accumulates
    execution-health counters; ``strict=False`` keeps going past
    permanently failed jobs — a workload missing *any* model's result
    is dropped from the table (its failures stay in the report), so
    every surviving row is complete and comparable.
    """
    specs = suite_jobs(models, workloads, config)
    results = run_jobs(specs, workers=jobs, store=store,
                       report=report, strict=strict)
    table: dict[str, dict[str, SimResult]] = {}
    for spec, result in zip(specs, results):
        if result is not None:
            table.setdefault(
                workload_name(spec.workload), {})[spec.model] = result
    if not strict:
        wanted = set(models)
        table = {w: runs for w, runs in table.items()
                 if wanted.issubset(runs)}
    return table


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def geomean(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedups_over_inorder(results: dict[str, dict[str, SimResult]],
                          model: str) -> dict[str, float]:
    """Per-workload speedup of ``model`` over in-order (1.0 = equal)."""
    return {
        workload: runs[model].speedup_over(runs["in-order"])
        for workload, runs in results.items()
    }


def group_geomeans(per_workload: dict[str, float]) -> dict[str, float]:
    """Geometric means over SPECfp, SPECint, and all (paper convention)."""
    def over(names):
        present = [per_workload[n] for n in names if n in per_workload]
        return geomean(present) if present else float("nan")

    return {
        "SPECfp": over(SPECFP),
        "SPECint": over(SPECINT),
        "SPEC": over(list(per_workload)),
    }
