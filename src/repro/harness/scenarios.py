"""The six miss scenarios of Figure 1 as concrete micro-programs.

Each scenario builds the paper's abstract instruction pattern with real
addresses (cold lines for misses, pre-warmed lines for hits) and runs it
across the machine models, so the paper's qualitative claims — who can
overlap what — can be demonstrated and asserted numerically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exec import fingerprint, parallel_map, resolve_store
from ..isa.assembler import Assembler
from ..isa.program import Program
from ..isa.registers import R
from ..functional import run_program
from .experiment import MODELS, ExperimentConfig, make_core

#: Distinct cold L1/L2 lines (one per letter the figure uses).
LINE = {name: 0x100000 + i * 0x4000
        for i, name in enumerate("ABCDEFGHIJ")}
#: Lines that should *hit* are pre-installed by the scenario runner.
WARM_LINE = {name: 0x800000 + i * 0x4000
             for i, name in enumerate("abcdefghij")}


@dataclass
class Scenario:
    key: str
    title: str
    program: Program
    #: Addresses to pre-install in L1/L2 ("warm" accesses).
    warm: list[int]
    #: Addresses to pre-install in L2 only (D$ misses that hit the L2).
    warm_l2: list[int]


def _filler(a: Assembler, n: int) -> None:
    for _ in range(n):
        a.addi(R.r20, R.r20, 1)


def scenario_a() -> Scenario:
    """Lone L2 miss with a single dependent instruction (Figure 1a)."""
    a = Assembler("fig1a")
    a.word(LINE["A"], 5)
    a.li(R.r1, LINE["A"])
    a.ld(R.r2, R.r1, 0)       # A: L2 miss
    a.addi(R.r3, R.r2, 1)     # B: depends on A
    _filler(a, 80)            # C-F: independent work
    a.halt()
    return Scenario("a", "Lone L2 miss", a.assemble(), [], [])


def scenario_b() -> Scenario:
    """Two independent L2 misses (Figure 1b)."""
    a = Assembler("fig1b")
    a.word(LINE["A"], 1)
    a.word(LINE["E"], 2)
    a.li(R.r1, LINE["A"])
    a.ld(R.r2, R.r1, 0)       # A: miss
    a.addi(R.r3, R.r2, 1)     # B: dependent use
    _filler(a, 20)            # C, D
    a.li(R.r4, LINE["E"])
    a.ld(R.r5, R.r4, 0)       # E: independent miss
    a.addi(R.r6, R.r5, 1)     # F
    _filler(a, 20)            # G, H (tail)
    a.halt()
    return Scenario("b", "Independent L2 misses", a.assemble(), [], [])


def scenario_c() -> Scenario:
    """Dependent L2 misses: E's address comes from A (Figure 1c).

    B uses A immediately, so a vanilla pipeline stalls there and cannot
    reach the independent work; the tail after E is where iCFP's
    advance-under-the-second-miss pays off (SLTP is limited by its
    blocking rally, Runahead by full re-execution).
    """
    a = Assembler("fig1c")
    a.word(LINE["A"], LINE["E"])
    a.word(LINE["E"], 7)
    a.li(R.r1, LINE["A"])
    a.ld(R.r2, R.r1, 0)       # A: miss, loads E's address
    a.addi(R.r3, R.r2, 1)     # B: immediate use (stalls in-order)
    _filler(a, 20)            # C, D: independent
    a.ld(R.r5, R.r2, 0)       # E: dependent miss
    a.addi(R.r6, R.r5, 1)     # F: immediate use
    _filler(a, 60)            # G...: independent tail under E
    a.halt()
    return Scenario("c", "Dependent L2 misses", a.assemble(), [], [])


def scenario_d() -> Scenario:
    """Two independent chains of dependent misses (Figure 1d)."""
    a = Assembler("fig1d")
    a.word(LINE["A"], LINE["B"])
    a.word(LINE["B"], 1)
    a.word(LINE["E"], LINE["F"])
    a.word(LINE["F"], 2)
    a.li(R.r1, LINE["A"])
    a.ld(R.r2, R.r1, 0)       # A: miss
    a.ld(R.r3, R.r2, 0)       # B: depends on A (dependent miss)
    _filler(a, 16)            # C, D
    a.li(R.r4, LINE["E"])
    a.ld(R.r5, R.r4, 0)       # E: independent miss
    a.ld(R.r6, R.r5, 0)       # F: depends on E
    _filler(a, 16)            # G, H
    a.addi(R.r7, R.r3, 0)
    a.addi(R.r8, R.r6, 0)
    a.halt()
    return Scenario("d", "Independent chains of dependent misses",
                    a.assemble(), [], [])


def scenario_e() -> Scenario:
    """D$ miss and *independent* L2 miss under an L2 miss (Figure 1e)."""
    a = Assembler("fig1e")
    a.word(LINE["A"], 1)
    a.word(WARM_LINE["c"], 5)
    a.word(LINE["D"], 2)
    a.li(R.r1, LINE["A"])
    a.ld(R.r2, R.r1, 0)       # A: primary L2 miss
    a.addi(R.r3, R.r2, 1)     # b: dependent (poisoned)
    a.li(R.r4, WARM_LINE["c"])
    a.ld(R.r5, R.r4, 0)       # C: secondary D$ miss (hits L2)
    a.addi(R.r6, R.r5, 1)     # use of C
    _filler(a, 8)
    a.li(R.r7, LINE["D"])
    a.ld(R.r8, R.r7, 0)       # D: independent L2 miss behind C
    a.addi(R.r9, R.r8, 1)
    a.halt()
    return Scenario("e", "D$ miss + independent L2 miss under L2 miss",
                    a.assemble(), [], [WARM_LINE["c"]])


def scenario_f() -> Scenario:
    """D$ miss and *dependent* L2 miss under an L2 miss (Figure 1f)."""
    a = Assembler("fig1f")
    a.word(LINE["A"], 1)
    a.word(WARM_LINE["c"], LINE["D"])
    a.word(LINE["D"], 3)
    a.li(R.r1, LINE["A"])
    a.ld(R.r2, R.r1, 0)       # A: primary L2 miss
    a.addi(R.r3, R.r2, 1)     # b: dependent
    a.li(R.r4, WARM_LINE["c"])
    a.ld(R.r5, R.r4, 0)       # C: secondary D$ miss, loads D's address
    a.ld(R.r8, R.r5, 0)       # D: L2 miss DEPENDENT on C
    a.addi(R.r9, R.r8, 1)
    _filler(a, 8)
    a.halt()
    return Scenario("f", "D$ miss + dependent L2 miss under L2 miss",
                    a.assemble(), [], [WARM_LINE["c"]])


SCENARIOS = {
    "a": scenario_a,
    "b": scenario_b,
    "c": scenario_c,
    "d": scenario_d,
    "e": scenario_e,
    "f": scenario_f,
}


def run_scenario(scenario: Scenario, models=MODELS,
                 config: ExperimentConfig | None = None) -> dict[str, int]:
    """Cycles per model for one scenario."""
    config = config if config is not None else ExperimentConfig(warm=False)
    trace = run_program(scenario.program)
    cycles = {}
    for model in models:
        core = make_core(model, trace, config)
        hier = core.hierarchy
        for addr in scenario.warm:
            hier.l2.insert(hier.config.l2.line_addr(addr))
            hier.l1d.insert(hier.config.l1d.line_addr(addr))
        for addr in scenario.warm_l2:
            hier.l2.insert(hier.config.l2.line_addr(addr))
        cycles[model] = core.run().cycles
    return cycles


def _scenario_cell(item) -> dict[str, int]:
    """Pool-friendly worker: rebuild the scenario by key and run it."""
    key, models, config = item
    return run_scenario(SCENARIOS[key](), models, config)


def run_all_scenarios(models=MODELS, jobs: int | None = None,
                      config: ExperimentConfig | None = None,
                      store=None) -> dict[str, dict[str, int]]:
    """Cycles for every Figure 1 scenario: results[key][model].

    Scenarios are independent micro-programs, so they fan out across the
    engine's worker pool like any other campaign — and, like any other
    campaign, they are incremental: each (scenario, models, config) cell
    is fingerprinted and its cycle dictionary kept in the disk store
    (``store=`` as in :func:`repro.exec.run_jobs`), so a repeated
    ``repro scenarios`` run simulates nothing.
    """
    config = config if config is not None else ExperimentConfig(warm=False)
    keys = list(SCENARIOS)
    disk = resolve_store(store)
    results: dict[str, dict[str, int]] = {}
    fps: dict[str, str] = {}
    missing: list[str] = []
    for key in keys:
        # The key embeds the scenario's *content* (instructions, data
        # image, warm lists), not just its name: editing a micro-program
        # must invalidate its record, not serve stale cycles.  Building
        # the tiny assemblers here is microseconds.
        scenario = SCENARIOS[key]()
        program = scenario.program
        fps[key] = fingerprint("scenario", key, tuple(models), config,
                               program.instructions, program.data,
                               program.hot_region, scenario.warm,
                               scenario.warm_l2)
        payload = disk.get_json("scenarios", fps[key]) if disk else None
        if isinstance(payload, dict) and set(payload) == set(models):
            try:
                results[key] = {m: int(payload[m]) for m in models}
                continue
            except (TypeError, ValueError):
                pass
        missing.append(key)
    if missing:
        cells = parallel_map(_scenario_cell,
                             [(key, tuple(models), config) for key in missing],
                             workers=jobs)
        for key, cycles in zip(missing, cells):
            results[key] = cycles
            if disk is not None:
                disk.put_json("scenarios", fps[key], cycles)
    if disk is not None:
        disk.flush_counters()
    return {key: results[key] for key in keys}
