"""Generators for every figure in the paper's evaluation section.

Each ``figureN`` function returns structured data; each ``format_*``
renders the paper-style table the benchmarks print.  Shape assertions
(who wins, roughly by how much) live in the benchmark files.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..core.icfp import ICFPFeatures
from ..exec import SimJob, run_jobs
from ..wgen.spec import workload_name
from .phases import phase_summary
from .experiment import (
    MODELS,
    ExperimentConfig,
    geomean,
    group_geomeans,
    run_suite,
    selected_workloads,
    speedups_over_inorder,
)

# ----------------------------------------------------------------------
# Figure 5: Runahead / Multipass / SLTP / iCFP speedup over in-order
# ----------------------------------------------------------------------
@dataclass
class Figure5:
    """Per-benchmark percent speedups plus group geomeans."""

    workloads: list[str]
    #: results[model][workload] = percent speedup over in-order.
    percent: dict[str, dict[str, float]]
    #: geomeans[model][group] for SPECfp / SPECint / SPEC.
    geomeans: dict[str, dict[str, float]]
    baseline_ipc: dict[str, float]
    #: phases[workload][model] = per-phase attribution counter dicts
    #: (one entry per phase; named single-phase kernels have one).
    phases: dict[str, dict[str, list[dict]]] = field(default_factory=dict)


def figure5(config: ExperimentConfig | None = None,
            workloads=None, store=None, report=None,
            strict: bool = True) -> Figure5:
    """Build Figure 5; ``strict=False`` plots whatever survived.

    With ``strict=False`` a workload whose jobs permanently failed
    (e.g. its trace generator raised) is dropped from the figure and
    its failures land in ``report``; the remaining rows are complete.
    """
    config = config if config is not None else ExperimentConfig()
    workloads = workloads if workloads is not None else selected_workloads()
    results = run_suite(MODELS, workloads, config, store=store,
                        report=report, strict=strict)
    names = [n for n in (workload_name(w) for w in workloads)
             if n in results]
    schemes = [m for m in MODELS if m != "in-order"]
    percent, geomeans = {}, {}
    for model in schemes:
        ratios = speedups_over_inorder(results, model)
        percent[model] = {w: (r - 1.0) * 100.0 for w, r in ratios.items()}
        geomeans[model] = {g: (v - 1.0) * 100.0
                           for g, v in group_geomeans(ratios).items()}
    baseline_ipc = {w: results[w]["in-order"].ipc for w in names}
    return Figure5(names, percent, geomeans, baseline_ipc,
                   phases=phase_summary(results))


def format_figure5(fig: Figure5) -> str:
    import math

    schemes = list(fig.percent)
    lines = ["Figure 5: % speedup over in-order (20-cycle L2)",
             f"{'benchmark':16s} {'iO IPC':>7s} " +
             " ".join(f"{m:>10s}" for m in schemes)]
    for workload in fig.workloads:
        row = f"{workload:16s} {fig.baseline_ipc[workload]:7.2f} "
        row += " ".join(f"{fig.percent[m][workload]:10.1f}" for m in schemes)
        lines.append(row)
    for group in ("SPECfp", "SPECint", "SPEC"):
        # A group with no members (a fully generated suite has neither
        # SPECfp nor SPECint kernels) has no geomean to print.
        if all(math.isnan(fig.geomeans[m][group]) for m in schemes):
            continue
        row = f"{'gmean ' + group:16s} {'':7s} "
        row += " ".join(f"{fig.geomeans[m][group]:10.1f}" for m in schemes)
        lines.append(row)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 6: L2 hit-latency sensitivity
# ----------------------------------------------------------------------
@dataclass
class Figure6:
    latencies: list[int]
    #: percent[config_label][latency] = % speedup over in-order at the
    #: paper's reference point (20-cycle L2 in-order baseline).
    percent: dict[str, dict[int, float]]
    workload_group: str


#: The six configurations of Figure 6.
FIGURE6_CONFIGS = (
    ("RA-L2", "runahead", {"runahead_advance_on": "l2"}),
    ("RA-L2/D$pri", "runahead", {"runahead_advance_on": "l2_d1"}),
    ("RA-all", "runahead", {"runahead_advance_on": "all"}),
    ("iCFP-L2", "icfp", {"icfp_features": ICFPFeatures(advance_on="l2")}),
    ("iCFP-all", "icfp", {"icfp_features": ICFPFeatures(advance_on="all")}),
)


def figure6(latencies=(10, 20, 30, 40, 50), workloads=None,
            config: ExperimentConfig | None = None, store=None,
            report=None) -> Figure6:
    """Sweep the L2 hit latency across the Figure 6 configurations.

    Following the paper, speedups at every latency are measured against
    the *20-cycle-L2 in-order* baseline, so the in-order line itself
    falls as the L2 slows down.
    """
    base = config if config is not None else ExperimentConfig()
    workloads = workloads if workloads is not None else selected_workloads()
    names = [workload_name(w) for w in workloads]

    # One batched campaign: the 20-cycle reference baseline plus every
    # (latency, configuration) cell.  The engine dedupes the overlap
    # (the latency-20 in-order jobs ARE the reference jobs) and fans the
    # rest out in parallel.
    cells: list[tuple[str, int, str]] = []  # (label, latency, model)
    grid: list[SimJob] = []
    reference_cfg = dataclasses.replace(base, l2_hit_latency=20)
    for w in workloads:
        grid.append(SimJob("in-order", w, reference_cfg))
        cells.append(("__reference__", 20, "in-order"))
    for latency in latencies:
        swept = dataclasses.replace(base, l2_hit_latency=latency)
        for w in workloads:
            grid.append(SimJob("in-order", w, swept))
            cells.append(("in-order", latency, "in-order"))
        for label, model, overrides in FIGURE6_CONFIGS:
            cfg = dataclasses.replace(swept, **overrides)
            for w in workloads:
                grid.append(SimJob(model, w, cfg))
                cells.append((label, latency, model))
    results = run_jobs(grid, store=store, report=report)

    ref_cycles: dict[str, int] = {}
    cycles: dict[tuple[str, int], dict[str, int]] = {}
    for spec, cell, result in zip(grid, cells, results):
        label, latency, _ = cell
        name = workload_name(spec.workload)
        if label == "__reference__":
            ref_cycles[name] = result.cycles
        else:
            cycles.setdefault((label, latency), {})[name] = result.cycles

    percent: dict[str, dict[int, float]] = {"in-order": {}}
    for label, _, _ in FIGURE6_CONFIGS:
        percent[label] = {}
    for (label, latency), per_workload in cycles.items():
        ratios = [ref_cycles[w] / per_workload[w] for w in names]
        percent[label][latency] = (geomean(ratios) - 1.0) * 100.0
    group = names[0] if len(names) == 1 else "geomean"
    return Figure6(list(latencies), percent, group)


def format_figure6(fig: Figure6) -> str:
    labels = list(fig.percent)
    lines = [f"Figure 6: L2 hit-latency sensitivity ({fig.workload_group}), "
             "% speedup over 20-cycle-L2 in-order",
             f"{'L2 latency':>10s} " + " ".join(f"{l:>12s}" for l in labels)]
    for latency in fig.latencies:
        row = f"{latency:>10d} "
        row += " ".join(f"{fig.percent[l][latency]:12.1f}" for l in labels)
        lines.append(row)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 7: feature build from SLTP to iCFP
# ----------------------------------------------------------------------
#: The build ladder (all bars advance on any miss, per the paper).
FIGURE7_BARS = (
    ("SLTP (SRL, blocking)", "sltp", {"sltp_advance_on": "all"}),
    ("+ addr-hash chaining", "icfp",
     {"icfp_features": ICFPFeatures(advance_on="all", nonblocking_rally=False,
                                    mt_rally=False, poison_bits=1)}),
    ("+ non-blocking rallies", "icfp",
     {"icfp_features": ICFPFeatures(advance_on="all", nonblocking_rally=True,
                                    mt_rally=False, poison_bits=1)}),
    ("+ 8-bit poison vectors", "icfp",
     {"icfp_features": ICFPFeatures(advance_on="all", nonblocking_rally=True,
                                    mt_rally=False, poison_bits=8)}),
    ("+ MT rallies (iCFP)", "icfp",
     {"icfp_features": ICFPFeatures(advance_on="all", nonblocking_rally=True,
                                    mt_rally=True, poison_bits=8)}),
)

#: The subset of benchmarks Figure 7 plots.
FIGURE7_WORKLOADS = ("ammp_like", "applu_like", "art_like", "equake_like",
                     "swim_like", "bzip2_like", "gap_like", "gzip_like",
                     "mcf_like", "vpr_like")


@dataclass
class Figure7:
    workloads: list[str]
    bars: list[str]
    #: percent[bar][workload] plus 'gmean' rows per bar.
    percent: dict[str, dict[str, float]]


def figure7(config: ExperimentConfig | None = None,
            workloads=FIGURE7_WORKLOADS, store=None,
            report=None) -> Figure7:
    base = config if config is not None else ExperimentConfig()
    names = [workload_name(w) for w in workloads]

    # One campaign: the shared in-order baseline plus all five bars.
    grid = [SimJob("in-order", w, base) for w in workloads]
    for _, model, overrides in FIGURE7_BARS:
        cfg = dataclasses.replace(base, **overrides)
        grid.extend(SimJob(model, w, cfg) for w in workloads)
    results = iter(run_jobs(grid, store=store, report=report))

    io_cycles = {w: next(results).cycles for w in names}
    percent: dict[str, dict[str, float]] = {}
    for label, _, _ in FIGURE7_BARS:
        ratios = {w: io_cycles[w] / next(results).cycles for w in names}
        per = {w: (r - 1.0) * 100.0 for w, r in ratios.items()}
        per["gmean"] = (geomean(ratios.values()) - 1.0) * 100.0
        percent[label] = per
    return Figure7(names, [b[0] for b in FIGURE7_BARS], percent)


def format_figure7(fig: Figure7) -> str:
    lines = ["Figure 7: iCFP feature build, % speedup over in-order"]
    header = f"{'benchmark':14s} " + " ".join(f"{b[:20]:>22s}" for b in fig.bars)
    lines.append(header)
    for workload in list(fig.workloads) + ["gmean"]:
        row = f"{workload:14s} "
        row += " ".join(f"{fig.percent[b][workload]:22.1f}" for b in fig.bars)
        lines.append(row)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 8: store buffer alternatives
# ----------------------------------------------------------------------
FIGURE8_KINDS = (
    ("indexed (limited fwd)", "indexed"),
    ("chained (iCFP)", "chained"),
    ("fully-assoc (ideal)", "assoc"),
)

FIGURE8_WORKLOADS = ("applu_like", "equake_like", "swim_like", "bzip2_like",
                     "gzip_like", "vpr_like", "galgel_like")


@dataclass
class Figure8:
    workloads: list[str]
    kinds: list[str]
    percent: dict[str, dict[str, float]]
    hops_per_load: dict[str, float]


def figure8(config: ExperimentConfig | None = None,
            workloads=FIGURE8_WORKLOADS, store=None,
            report=None) -> Figure8:
    base = config if config is not None else ExperimentConfig()
    names = [workload_name(w) for w in workloads]

    grid = [SimJob("in-order", w, base) for w in workloads]
    for _, kind in FIGURE8_KINDS:
        feats = ICFPFeatures(store_buffer_kind=kind)
        cfg = dataclasses.replace(base, icfp_features=feats)
        grid.extend(SimJob("icfp", w, cfg) for w in workloads)
    results = iter(run_jobs(grid, store=store, report=report))

    io_cycles = {w: next(results).cycles for w in names}
    percent: dict[str, dict[str, float]] = {}
    hops: dict[str, float] = {}
    for label, kind in FIGURE8_KINDS:
        runs = {w: next(results) for w in names}
        ratios = {w: io_cycles[w] / runs[w].cycles for w in names}
        per = {w: (r - 1.0) * 100.0 for w, r in ratios.items()}
        per["gmean"] = (geomean(ratios.values()) - 1.0) * 100.0
        percent[label] = per
        if kind == "chained":
            hops = {w: runs[w].stats.hops_per_load() for w in names}
    return Figure8(names, [k[0] for k in FIGURE8_KINDS],
                   percent, hops)


def format_figure8(fig: Figure8) -> str:
    lines = ["Figure 8: store-buffer alternatives, % speedup over in-order"]
    header = f"{'benchmark':14s} " + " ".join(f"{k:>22s}" for k in fig.kinds)
    header += f" {'hops/load':>10s}"
    lines.append(header)
    for workload in list(fig.workloads) + ["gmean"]:
        row = f"{workload:14s} "
        row += " ".join(f"{fig.percent[k][workload]:22.1f}" for k in fig.kinds)
        if workload in fig.hops_per_load:
            row += f" {fig.hops_per_load[workload]:10.3f}"
        lines.append(row)
    return "\n".join(lines)
