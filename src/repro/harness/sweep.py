"""Parameter sweeps for the Section 3.2 / 3.4 claims.

* Chain-table size: a 64-entry table should cost only ~0.3% average
  performance versus 512 entries (max ~4% on ammp-like chasing).
* Poison-vector width: 8 bits buy ~1.5% over a single bit on average,
  with mcf-like benefiting most (~6%).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..core.icfp import ICFPFeatures
from ..exec import SimJob, run_jobs
from ..wgen.spec import workload_name
from .experiment import ExperimentConfig, geomean, selected_workloads
from .phases import phase_dicts


@dataclass
class SweepResult:
    """Speedup-over-in-order ratios per (sweep value, workload)."""

    parameter: str
    values: list
    #: ratios[value][workload] = speedup over in-order.
    ratios: dict[object, dict[str, float]]
    #: phases[value][workload] = the swept iCFP run's per-phase
    #: attribution counter dicts (how each sweep point redistributes
    #: stall cycles across a composed workload's phases).
    phases: dict[object, dict[str, list[dict]]] = field(default_factory=dict)

    def gmeans(self) -> dict[object, float]:
        return {v: geomean(per.values()) for v, per in self.ratios.items()}

    def relative_to(self, reference) -> dict[object, float]:
        """Percent performance of each value vs the reference value."""
        ref = self.gmeans()[reference]
        return {v: (g / ref - 1.0) * 100.0 for v, g in self.gmeans().items()}


def _sweep(parameter: str, values, feature_of, workloads, config,
           store=None, report=None) -> SweepResult:
    """One batched campaign over the whole sweep.

    The in-order baseline appears *once* per workload in the job grid —
    it is independent of the swept iCFP feature, so rebuilding it per
    value (as the naive nested-loop formulation does) is pure waste.
    Each workload's trace is likewise generated once, shared by the
    baseline and every sweep value through the engine's trace cache.
    With the disk store enabled, re-running (or *extending*) a sweep in
    a fresh process simulates only the values it has never seen.
    """
    base = config if config is not None else ExperimentConfig()
    workloads = workloads if workloads is not None else selected_workloads()
    names = [workload_name(w) for w in workloads]
    grid = [SimJob("in-order", w, base) for w in workloads]
    for value in values:
        cfg = dataclasses.replace(base, icfp_features=feature_of(value))
        grid.extend(SimJob("icfp", w, cfg) for w in workloads)
    results = iter(run_jobs(grid, store=store, report=report))
    io_cycles = {w: next(results).cycles for w in names}
    ratios: dict[object, dict[str, float]] = {}
    phases: dict[object, dict[str, list[dict]]] = {}
    for value in values:
        runs = {w: next(results) for w in names}
        ratios[value] = {w: io_cycles[w] / runs[w].cycles for w in names}
        phases[value] = {w: phase_dicts(runs[w]) for w in names}
    return SweepResult(parameter, list(values), ratios, phases=phases)


def chain_table_sweep(sizes=(64, 128, 512), workloads=None,
                      config: ExperimentConfig | None = None,
                      store=None, report=None) -> SweepResult:
    return _sweep(
        "chain_table_size", sizes,
        lambda size: ICFPFeatures(chain_table_size=size),
        workloads, config, store=store, report=report,
    )


def poison_bits_sweep(widths=(1, 2, 4, 8), workloads=None,
                      config: ExperimentConfig | None = None,
                      store=None, report=None) -> SweepResult:
    return _sweep(
        "poison_bits", widths,
        lambda width: ICFPFeatures(poison_bits=width),
        workloads, config, store=store, report=report,
    )


def format_sweep(result: SweepResult, reference) -> str:
    rel = result.relative_to(reference)
    lines = [f"Sweep of {result.parameter} "
             f"(% performance vs {result.parameter}={reference})"]
    for value in result.values:
        lines.append(f"  {result.parameter}={value!s:>6s}: {rel[value]:+6.2f}%")
    return "\n".join(lines)
