"""Command-line interface: ``python -m repro <command>``.

Every experiment in the paper's evaluation is reachable from the shell,
so results can be regenerated without writing Python:

.. code-block:: sh

    python -m repro characterize            # Table 2 left columns
    python -m repro figure5 -n 20000        # the headline comparison
    python -m repro figure6 -w equake_like  # latency sensitivity
    python -m repro figure7                 # SLTP -> iCFP feature build
    python -m repro figure8                 # store-buffer disciplines
    python -m repro table2                  # miss rates + MLP + rallies
    python -m repro scenarios               # Figure 1 micro-timelines
    python -m repro area                    # Section 5.3 overheads
    python -m repro run mcf_like icfp       # one kernel on one model
    python -m repro cache stats             # disk result-store health
    python -m repro wgen generate -N 8 --seed 7 -o suite.json
    python -m repro wgen characterize -w gen:8:7
    python -m repro phases -w gen:8:7       # per-phase attribution
    python -m repro figure5 --trace         # record obs spans + metrics
    python -m repro obs export --chrome     # -> Perfetto timeline JSON
    python -m repro top                     # live campaign dashboard

Campaigns are incremental by default: results persist in the on-disk
store (``REPRO_CACHE_DIR``, default ``.repro-cache/``), so re-running a
figure in a fresh process simulates only cells it has never seen.
``--no-store`` (or ``REPRO_STORE=0``) opts a run out; ``repro cache``
inspects and maintains the store (``repro cache quarantine`` lists the
corrupt records the store has isolated).

Campaigns are also fault-tolerant: jobs retry after worker deaths and
injected failures (``--retries``), slow cells can be reaped by a
per-job timeout (``--timeout``), and ``--faults`` turns on the
deterministic chaos harness (e.g. ``--faults seed=7,worker_death=0.1``)
to prove it.  Any incident — a retry, a pool resurrection, a quarantined
record, a permanently failed job — is summarised on stderr after the
campaign.

Workload references (``-w``) accept, in any mix: named-suite kernels
(``mcf_like``), generated-suite spec files written by ``repro wgen
generate`` (``@suite.json``), and inline seeded generated suites
(``gen:N`` or ``gen:N:SEED``) — every campaign command runs generated
workloads interchangeably with the named suite.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import signal
import sys

from ..workloads import ALL_KERNELS
from .experiment import MODELS, ExperimentConfig, run_workload
from .figures import (
    figure5,
    figure6,
    figure7,
    figure8,
    format_figure5,
    format_figure6,
    format_figure7,
    format_figure8,
)
from .phases import format_phase_table
from .scenarios import run_all_scenarios
from .sweep import chain_table_sweep, format_sweep, poison_bits_sweep
from .tables import format_area_table, format_table2, table2


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-n", "--instructions", type=int, default=None,
                        help="dynamic instructions per kernel")
    parser.add_argument("-w", "--workloads", type=str, default=None,
                        help="comma-separated workload references: kernel "
                             "names, @specfile.json, gen:N[:SEED]")
    parser.add_argument("--l2-latency", type=int, default=20,
                        help="L2 hit latency in cycles (Table 1: 20)")
    parser.add_argument("--cold", action="store_true",
                        help="skip the cache warm-up phase")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="simulation worker processes (default: "
                             "REPRO_JOBS, then all CPUs; 1 = sequential)")
    parser.add_argument("--batch", type=str, default=None, metavar="WIDTH",
                        help="batched execution lane cap: same-trace jobs "
                             "advance together over one trace pass "
                             "(0/auto = unbounded; default: REPRO_BATCH, "
                             "1 = scalar)")
    parser.add_argument("--store", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="use the on-disk result store under "
                             "REPRO_CACHE_DIR (default: REPRO_STORE, on)")
    parser.add_argument("--retries", type=int, default=None,
                        help="extra attempts per job after a retryable "
                             "failure (default: REPRO_RETRIES, 3)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-job wall-clock timeout in pooled runs "
                             "(default: REPRO_JOB_TIMEOUT, off)")
    parser.add_argument("--faults", type=str, default=None, metavar="SPEC",
                        help="chaos harness: inject deterministic faults, "
                             "e.g. 'seed=7,worker_death=0.1' "
                             "(default: REPRO_FAULTS, off)")
    parser.add_argument("--fabric", type=int, default=None, metavar="N",
                        help="run campaigns through the lease-based "
                             "multi-worker fabric with N workers "
                             "(default: REPRO_FABRIC_WORKERS, off)")
    parser.add_argument("--trace", action="store_true",
                        help="record structured span traces + metrics to "
                             "<store>/obs/ (default: REPRO_TRACE, off; "
                             "export with `repro obs export --chrome`)")
    parser.add_argument("--report", action="store_true",
                        help="always print the campaign report on stderr, "
                             "even with zero incidents (default: "
                             "REPRO_REPORT, off)")


def _apply_jobs(args) -> None:
    # Threads the worker count, store toggle, and fault-tolerance knobs
    # through every campaign this process runs — the engine reads
    # REPRO_JOBS / REPRO_STORE / REPRO_RETRIES / REPRO_JOB_TIMEOUT /
    # REPRO_FAULTS wherever the corresponding argument isn't passed
    # explicitly.
    if getattr(args, "jobs", None) is not None:
        os.environ["REPRO_JOBS"] = str(max(1, args.jobs))
    if getattr(args, "batch", None) is not None:
        os.environ["REPRO_BATCH"] = args.batch
    if getattr(args, "store", None) is not None:
        os.environ["REPRO_STORE"] = "1" if args.store else "0"
    if getattr(args, "retries", None) is not None:
        os.environ["REPRO_RETRIES"] = str(max(0, args.retries))
    if getattr(args, "timeout", None) is not None:
        os.environ["REPRO_JOB_TIMEOUT"] = str(args.timeout)
    if getattr(args, "faults", None) is not None:
        from ..exec import FaultPlan

        try:
            FaultPlan.parse(args.faults)
        except ValueError as exc:
            raise SystemExit(f"--faults: {exc}") from None
        os.environ["REPRO_FAULTS"] = args.faults
    if getattr(args, "fabric", None) is not None:
        os.environ["REPRO_FABRIC_WORKERS"] = str(max(0, args.fabric))
    if getattr(args, "trace", False):
        os.environ["REPRO_TRACE"] = "1"
    if getattr(args, "report", False):
        os.environ["REPRO_REPORT"] = "1"


#: Reports for campaigns still in flight: an interrupt (SIGINT/SIGTERM)
#: prints these before exiting, so a cancelled run still says what it
#: finished and flushed instead of dying with a bare traceback.
_PENDING_REPORTS: list = []


def _report():
    from ..exec import CampaignReport

    report = CampaignReport()
    _PENDING_REPORTS.append(report)
    return report


def _report_requested() -> bool:
    value = os.environ.get("REPRO_REPORT", "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


def _emit_report(report) -> None:
    # Campaign health goes to stderr (stdout stays parseable); a boring
    # campaign with zero incidents prints nothing unless --report /
    # REPRO_REPORT asks for the tallies regardless.
    if report in _PENDING_REPORTS:
        _PENDING_REPORTS.remove(report)
    if report.incidents() or _report_requested():
        print(report.summary(), file=sys.stderr)
        for failure in report.failures:
            print(f"  failed: {failure}", file=sys.stderr)


def _config(args) -> ExperimentConfig:
    _apply_jobs(args)
    config = ExperimentConfig(l2_hit_latency=args.l2_latency,
                              warm=not args.cold)
    if args.instructions is not None:
        config = dataclasses.replace(config, instructions=args.instructions)
    return config


def _workloads(args):
    if args.workloads is None:
        return None
    from ..wgen import resolve_workloads

    refs = [n.strip() for n in args.workloads.split(",") if n.strip()]
    try:
        return resolve_workloads(refs)
    except (KeyError, ValueError, OSError) as exc:
        raise SystemExit(f"bad workload reference: {exc}") from None


def cmd_characterize(args) -> None:
    from ..baselines import InOrderCore
    from ..exec.cache import TRACE_CACHE
    from ..wgen import workload_name

    config = _config(args)
    workloads = _workloads(args) or list(ALL_KERNELS)
    print(f"{'kernel':16s} {'IPC':>6s} {'D$/KI':>7s} {'L2/KI':>7s} "
          f"{'brMPKI':>7s}")
    for workload in workloads:
        trace = TRACE_CACHE.get(workload, config.instructions)
        result = InOrderCore(trace, config=config.machine_config()).run()
        d, l2 = result.stats.misses_per_ki()
        br = result.stats.branch_mispredicts * 1000 / max(1, len(trace))
        print(f"{workload_name(workload):16s} {result.ipc:6.3f} "
              f"{d:7.1f} {l2:7.1f} {br:7.1f}")


def cmd_figure5(args) -> None:
    report = _report()
    print(format_figure5(figure5(_config(args), workloads=_workloads(args),
                                 report=report)))
    _emit_report(report)


def cmd_figure6(args) -> None:
    workloads = _workloads(args) or ["equake_like"]
    report = _report()
    print(format_figure6(figure6(workloads=workloads, config=_config(args),
                                 report=report)))
    _emit_report(report)


def cmd_figure7(args) -> None:
    kwargs = {}
    workloads = _workloads(args)
    if workloads:
        kwargs["workloads"] = tuple(workloads)
    report = _report()
    print(format_figure7(figure7(_config(args), report=report, **kwargs)))
    _emit_report(report)


def cmd_figure8(args) -> None:
    kwargs = {}
    workloads = _workloads(args)
    if workloads:
        kwargs["workloads"] = tuple(workloads)
    report = _report()
    print(format_figure8(figure8(_config(args), report=report, **kwargs)))
    _emit_report(report)


def cmd_table2(args) -> None:
    report = _report()
    print(format_table2(table2(_config(args), workloads=_workloads(args),
                               report=report)))
    _emit_report(report)


def cmd_scenarios(args) -> None:
    _apply_jobs(args)
    results = run_all_scenarios()
    print(f"{'scenario':10s} " + " ".join(f"{m:>10s}" for m in MODELS))
    for key, cycles in results.items():
        print(f"figure-1{key:2s} "
              + " ".join(f"{cycles[m]:10d}" for m in MODELS))


def cmd_area(_args) -> None:
    print(format_area_table())


def _human_bytes(n) -> str:
    """1536 -> '1.5 KiB': byte counts at the size humans read."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return (f"{value:.0f} {unit}" if unit == "B"
                    else f"{value:.1f} {unit}")
        value /= 1024.0


def cmd_cache(args) -> None:
    from ..exec.store import ResultStore, cache_dir

    # Maintenance operates on whatever REPRO_CACHE_DIR points at, even
    # when the store is disabled for campaigns.
    store = ResultStore(cache_dir())
    if args.action == "stats":
        info = store.stats()
        print(f"Result store: {info['root']} "
              f"(schema v{info['schema']}, engine {info['engine']})")
        for section, usage in info["sections"].items():
            print(f"  {section:10s} {usage['entries']:6d} entries  "
                  f"{_human_bytes(usage['bytes']):>10s}")
        print(f"  {'total':10s} {info['entries']:6d} entries  "
              f"{_human_bytes(info['bytes']):>10s}")
        stale = info["stale"]
        if stale["entries"]:
            print(f"  stale versions: {stale['entries']} entries, "
                  f"{_human_bytes(stale['bytes'])}  "
                  "(`repro cache gc --older-than N` removes these)")
        lifetime = info["lifetime"]
        if lifetime:
            lookups = lifetime.get("hits", 0) + lifetime.get("misses", 0)
            rate = (100.0 * lifetime.get("hits", 0) / lookups
                    if lookups else 0.0)
            print(f"  lifetime: {lifetime.get('hits', 0)} hits / "
                  f"{lookups} lookups ({rate:.1f}% hit rate), "
                  f"{lifetime.get('writes', 0)} writes, "
                  f"{lifetime.get('corrupt', 0)} corrupt")
        quarantine = info["quarantine"]
        if quarantine["entries"]:
            print(f"  quarantine: {quarantine['entries']} corrupt records, "
                  f"{_human_bytes(quarantine['bytes'])}  "
                  "(`repro cache quarantine` inspects these)")
    elif args.action == "quarantine":
        if args.clear:
            removed = store.clear_quarantine()
            print(f"cleared {removed} quarantined records from "
                  f"{store.quarantine_dir()}")
            return
        entries = store.quarantine_entries()
        if not entries:
            print(f"quarantine empty ({store.quarantine_dir()})")
            return
        print(f"Quarantined corrupt records in {store.quarantine_dir()} "
              "(newest first; `--clear` deletes them):")
        for entry in entries:
            print(f"  {entry['name']}  {entry['bytes']} bytes")
    elif args.action == "verify":
        # Offline integrity audit: read every current-version record
        # through the campaign decode path, quarantining anything torn
        # or malformed now instead of mid-campaign — run it before
        # pointing a worker fleet at a shared store.
        info = store.verify()
        print(f"Verified store: {info['root']} "
              f"(schema v{info['schema']}, engine {info['engine']})")
        for section, counts in info["sections"].items():
            print(f"  {section:10s} {counts['ok']:6d} ok  "
                  f"{counts['quarantined']:4d} quarantined")
        print(f"  {'total':10s} {info['ok']:6d} ok  "
              f"{info['quarantined']:4d} quarantined")
        if info["quarantined"]:
            print("  (`repro cache quarantine` inspects the damaged "
                  "records; campaigns recompute them on demand)")
    elif args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} entries from {os.path.abspath(store.root)}")
    else:  # gc
        if args.older_than is None:
            raise SystemExit("cache gc requires --older-than DAYS")
        removed = store.gc(args.older_than)
        print(f"gc: removed {removed['expired']} expired and "
              f"{removed['stale']} stale-version entries from "
              f"{os.path.abspath(store.root)}")


def _campaign_store():
    from ..exec.store import resolve_store

    disk = resolve_store(None)
    if disk is None:
        raise SystemExit(
            "the campaign fabric needs the disk store as its rendezvous "
            "(REPRO_STORE=0 / --no-store disables it)")
    return disk


def _status_line(status: dict) -> str:
    if status.get("initialising"):
        # The manifest was unreadable even after the ledger's retry: the
        # coordinator is mid-create (or the record is torn).
        return f"{status['campaign'][:16]}  initialising"
    line = (f"{status['campaign'][:16]}  {status['done']}/{status['total']} "
            f"done")
    if status["failed"]:
        line += f", {status['failed']} failed"
    if status["leases_held"]:
        line += f", {status['leases_held']} leased"
    if status["leases_expired"] or status["leases_torn"]:
        line += (f", {status['leases_expired'] + status['leases_torn']} "
                 "reclaimable")
    if status["workers_seen"]:
        line += f", {status['workers_seen']} workers seen"
    return line


def cmd_campaign(args) -> None:
    from ..exec.fabric import (
        Ledger,
        find_ledger,
        ledger_for,
        list_ledgers,
        run_jobs_fabric,
    )
    from .experiment import suite_jobs

    if args.action == "status":
        _apply_jobs(args)
        disk = _campaign_store()
        ledgers = []
        if args.campaign:
            ledger = find_ledger(args.campaign, disk.root)
            if ledger is None:
                raise SystemExit(
                    f"no campaign ledger matches {args.campaign!r} "
                    f"under {disk.root}")
            ledgers = [ledger]
        else:
            ledgers = list_ledgers(disk.root)
        if not ledgers:
            print(f"no campaign ledgers under {disk.root}")
            return
        if args.watch:
            from ..obs.watch import campaign_snapshot, watch_loop

            watch_loop(
                lambda: [campaign_snapshot(ledger) for ledger in ledgers],
                interval=args.interval)
            return
        for ledger in ledgers:
            print(_status_line(ledger.status()))
        return

    config = _config(args)
    disk = _campaign_store()
    if args.action == "submit":
        # Submit = durably ledger the grid without running it; workers
        # (`repro worker --ledger ...`) and `campaign join` drain it.
        workloads = _workloads(args) or list(ALL_KERNELS)
        jobs = suite_jobs(MODELS, workloads, config)
        ledger = Ledger.create(ledger_for(jobs, disk.root).root, jobs)
        status = ledger.status()
        print(f"campaign {status['campaign'][:16]}: {status['total']} jobs "
              f"ledgered at {ledger.root}")
        print(f"  drain it with `repro worker --ledger "
              f"{status['campaign'][:16]}` (any number of processes)")
        print(f"  or `repro campaign join --fabric N` "
              "(coordinator + N workers)")
        return

    # join: run the coordinator over the submitted (or fresh) grid —
    # the campaign fingerprint rendezvouses at the same ledger, so a
    # killed coordinator's fresh process resumes, not restarts.
    workloads = _workloads(args) or list(ALL_KERNELS)
    jobs = suite_jobs(MODELS, workloads, config)
    report = _report()
    run_jobs_fabric(jobs, workers=args.fabric, store=disk, report=report,
                    strict=False)
    _emit_report(report)
    done = report.memo_hits + report.store_hits + report.computed
    print(f"campaign joined: {done}/{report.jobs} cells settled "
          f"({report.computed} computed, {report.store_hits} from store)")
    if report.failures:
        raise SystemExit(1)


def cmd_worker(args) -> None:
    from ..exec.fabric import find_ledger
    from ..exec.faults import mark_worker_process
    from ..exec.worker import FabricWorker

    _apply_jobs(args)
    # A CLI worker is exactly the process `run_jobs_fabric` forks: pin
    # it sequential (its parallelism is the fleet, not a nested pool)
    # and let injected worker deaths target it like any other worker.
    os.environ["REPRO_JOBS"] = "1"
    os.environ["REPRO_FABRIC_WORKERS"] = "0"
    mark_worker_process()
    disk = _campaign_store()
    ledger = find_ledger(args.ledger, disk.root)
    if ledger is None:
        raise SystemExit(
            f"no campaign ledger matches {args.ledger!r} under {disk.root} "
            "(`repro campaign status` lists them)")
    worker = FabricWorker(ledger, f"cli{args.index}-{os.getpid()}",
                          store=disk, index=args.index)

    def _graceful(_signum, _frame) -> None:
        worker.stop()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    worker.run()
    stats = worker.stats
    print(f"worker {worker.worker_id}: {stats['completed']} computed, "
          f"{stats['adopted']} adopted, {stats['failed']} failed, "
          f"{stats['leases_issued']} leases "
          f"(+{stats['leases_stolen']} stolen, "
          f"{stats['leases_reclaimed']} reclaimed)", file=sys.stderr)


def cmd_obs(args) -> None:
    from ..obs import export as obs_export
    from ..obs import trace as obs_trace

    obs_dir = args.obs_dir or obs_trace.default_obs_dir()
    records = obs_export.merge_logs(obs_dir)
    if not records:
        raise SystemExit(
            f"no obs logs under {obs_dir} (record some with --trace "
            "or REPRO_TRACE=1)")
    if args.action == "export":
        # --chrome is the only format today; the flag keeps the command
        # line honest about what the file is for (chrome://tracing,
        # Perfetto).
        output = args.output or os.path.join(obs_dir, "trace.chrome.json")
        info = obs_export.export_chrome(obs_dir, output)
        print(f"wrote {info['events']} events on {info['tracks']} track(s) "
              f"to {info['output']}")
        print("  open it in Perfetto (https://ui.perfetto.dev) or "
              "chrome://tracing")
    else:  # summary
        summary = obs_export.summarize(records)
        print(f"obs logs under {obs_dir}: {len(records)} records")
        spans = summary.get("spans", {})
        if spans:
            print(f"  {'span':16s} {'count':>7s} {'total':>10s}")
            for name in sorted(spans):
                row = spans[name]
                print(f"  {name:16s} {row['count']:7d} "
                      f"{row['total_us'] / 1e6:9.3f}s")
        metrics = summary.get("metrics", {})
        counters = metrics.get("counters", {})
        if counters:
            print("  counters:")
            for name in sorted(counters):
                print(f"    {name:28s} {counters[name]}")


def cmd_top(args) -> None:
    from ..exec.fabric import list_ledgers
    from ..obs.watch import campaign_snapshot, watch_loop

    _apply_jobs(args)
    disk = _campaign_store()

    def snapshots():
        return [campaign_snapshot(ledger)
                for ledger in list_ledgers(disk.root)]

    if args.once:
        # One refresh, no screen clear: scriptable / testable output.
        watch_loop(snapshots, interval=0, iterations=1, clear=False)
        return
    watch_loop(snapshots, interval=args.interval)


def cmd_wgen(args) -> None:
    import json as _json

    from .. import wgen

    if args.action == "generate":
        try:
            specs = wgen.generate_suite(args.count, args.seed,
                                        max_phases=args.max_phases)
        except ValueError as exc:
            raise SystemExit(f"wgen generate: {exc}") from None
        payload = wgen.suite_to_payload(specs, generator={
            "count": args.count, "seed": args.seed,
            "max_phases": args.max_phases,
        })
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                _json.dump(payload, handle, indent=1, sort_keys=True)
                handle.write("\n")
            print(f"wrote {len(specs)} workload specs to {args.output}")
        else:
            print(_json.dumps(payload, indent=1, sort_keys=True))
    elif args.action == "characterize":
        _apply_jobs(args)
        config = _config(args)
        workloads = _workloads(args)
        if workloads is None:
            raise SystemExit(
                "wgen characterize needs -w (e.g. -w gen:8:7, "
                "-w @suite.json, or kernel names)"
            )
        rows = wgen.characterize_suite(workloads, config.instructions)
        print(wgen.format_characterizations(rows))
    else:  # list
        from ..workloads import ARCHETYPES

        if args.workloads:
            for spec in _workloads(args):
                if isinstance(spec, str):
                    print(f"{spec:16s} (named suite)")
                else:
                    print(f"{spec.name:16s} {spec.short_id}  "
                          f"{len(spec.phases)} phase(s)  "
                          f"{spec.archetype_mix}")
        else:
            print("archetypes:")
            for name, builder in ARCHETYPES.items():
                summary = (builder.__doc__ or "").strip().splitlines()[0]
                print(f"  {name:16s} {summary}")
            specs = wgen.registered()
            if specs:
                print("registered generated workloads:")
                for name, spec in sorted(specs.items()):
                    print(f"  {name:16s} {spec.short_id}  "
                          f"{spec.archetype_mix}")


def cmd_phases(args) -> None:
    from .experiment import run_suite

    config = _config(args)
    workloads = _workloads(args)
    if workloads is None:
        raise SystemExit(
            "phases needs -w (multi-phase generated workloads show the "
            "breakdown, e.g. -w gen:8:7 or -w @suite.json; named kernels "
            "report one whole-program bucket)"
        )
    models = MODELS if args.model == "all" else (args.model,)
    report = _report()
    results = run_suite(models, workloads, config, report=report)
    print(format_phase_table(results))
    _emit_report(report)


def cmd_sweep(args) -> None:
    workloads = _workloads(args)
    report = _report()
    if args.parameter == "chain-table":
        result = chain_table_sweep(workloads=workloads, config=_config(args),
                                   report=report)
        print(format_sweep(result, reference=512))
    else:
        result = poison_bits_sweep(workloads=workloads, config=_config(args),
                                   report=report)
        print(format_sweep(result, reference=1))
    _emit_report(report)


def cmd_run(args) -> None:
    from ..wgen import resolve_workloads

    config = _config(args)
    models = (args.model,) if args.model != "all" else MODELS
    # `-w` here preloads references (e.g. -w @suite.json registers that
    # file's specs), so the positional can name a generated workload in
    # a fresh process: repro run -w @suite.json gen7_03 icfp
    _workloads(args)
    try:
        resolved = resolve_workloads([args.kernel])
    except (KeyError, ValueError, OSError) as exc:
        raise SystemExit(f"bad workload reference: {exc}") from None
    if len(resolved) != 1:
        raise SystemExit(
            f"`repro run` takes exactly one workload; {args.kernel!r} "
            f"resolved to {len(resolved)}"
        )
    store = None
    if args.no_leap:
        # Reference mode: every core steps cycle-by-cycle.  The results
        # are identical by the leap contract, but the run exists to
        # *check* that contract, so it must neither read memoised
        # leap-mode records nor write slow-path ones back.
        os.environ["REPRO_NO_LEAP"] = "1"
        store = False
    report = _report()
    runs = run_workload(resolved[0], models=models, config=config,
                        store=store, report=report)
    _emit_report(report)
    baseline = runs.get("in-order")
    for model, result in runs.items():
        line = (f"{model:12s} {result.cycles:>10d} cycles  "
                f"IPC {result.ipc:.3f}")
        if baseline is not None and model != "in-order":
            line += f"  ({result.percent_speedup_over(baseline):+.1f}%)"
        stats = result.stats
        line += (f"  [adv {stats.advance_instructions}, "
                 f"rally {stats.rally_instructions}, "
                 f"squash {stats.squashes}]")
        print(line)
        phases = result.phase_stats or []
        if len(phases) > 1:
            for p in phases:
                print(f"  {p.name:22s} {p.cycles:>8d} cycles  "
                      f"{p.instructions:>6d} insts  "
                      f"[D$ {p.l1d_misses}, L2 {p.l2_misses}, "
                      f"adv {p.advance_instructions}, "
                      f"rally {p.rally_instructions}]")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="iCFP (HPCA 2009) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn, doc in (
        ("characterize", cmd_characterize, "in-order kernel characterisation"),
        ("figure5", cmd_figure5, "speedup over in-order (headline)"),
        ("figure6", cmd_figure6, "L2 hit-latency sensitivity"),
        ("figure7", cmd_figure7, "SLTP -> iCFP feature build"),
        ("figure8", cmd_figure8, "store-buffer disciplines"),
        ("table2", cmd_table2, "miss rates, MLP, rally overhead"),
        ("scenarios", cmd_scenarios, "Figure 1 micro-scenarios"),
        ("area", cmd_area, "Section 5.3 area overheads"),
    ):
        p = sub.add_parser(name, help=doc)
        _add_common(p)
        p.set_defaults(fn=fn)

    p = sub.add_parser("phases", help="per-phase attribution breakdown")
    _add_common(p)
    p.add_argument("-m", "--model", choices=MODELS + ("all",), default="all",
                   help="restrict to one machine model (default: all)")
    p.set_defaults(fn=cmd_phases)

    p = sub.add_parser("sweep", help="chain-table / poison-bit sweeps")
    _add_common(p)
    p.add_argument("parameter", choices=("chain-table", "poison-bits"))
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("run", help="run one workload on one model")
    _add_common(p)
    p.add_argument("kernel", metavar="workload",
                   help="suite kernel name or a generated workload name "
                        "(preload its spec file with -w @file.json)")
    p.add_argument("model", choices=MODELS + ("all",))
    p.add_argument("--no-leap", action="store_true", dest="no_leap",
                   help="cycle-by-cycle reference mode: disable the "
                        "event-horizon leap (sets REPRO_NO_LEAP=1 and "
                        "bypasses the result store for this run)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("wgen", help="generate / characterize workloads")
    _add_common(p)
    p.add_argument("action", choices=("generate", "characterize", "list"))
    p.add_argument("-N", "--count", type=int, default=8,
                   help="generate: number of workloads (default 8)")
    p.add_argument("--seed", type=int, default=0,
                   help="generate: generator seed (default 0)")
    p.add_argument("--max-phases", type=int, default=3,
                   help="generate: phases per workload ceiling (default 3)")
    p.add_argument("-o", "--output", type=str, default=None,
                   help="generate: write the spec file here "
                        "(default: stdout)")
    p.set_defaults(fn=cmd_wgen)

    p = sub.add_parser("cache", help="inspect / maintain the disk store")
    p.add_argument("action",
                   choices=("stats", "clear", "gc", "quarantine", "verify"))
    p.add_argument("--older-than", type=float, default=None, metavar="DAYS",
                   help="gc: delete records older than DAYS days "
                        "(stale-version records always go)")
    p.add_argument("--clear", action="store_true",
                   help="quarantine: delete the quarantined records")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser("campaign",
                       help="submit / inspect / drain fabric campaigns")
    _add_common(p)
    p.add_argument("action", choices=("submit", "status", "join"))
    p.add_argument("campaign", nargs="?", default=None,
                   help="status: a campaign fingerprint prefix or ledger "
                        "path (default: all ledgers under the store)")
    p.add_argument("--watch", action="store_true",
                   help="status: redraw a live dashboard (workers, lease "
                        "ages, throughput, ETA) until ctrl-c")
    p.add_argument("--interval", type=float, default=1.0, metavar="SEC",
                   help="watch refresh period (default 1.0)")
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser("top",
                       help="live dashboard over every campaign ledger")
    _add_common(p)
    p.add_argument("--interval", type=float, default=1.0, metavar="SEC",
                   help="refresh period (default 1.0)")
    p.add_argument("--once", action="store_true",
                   help="draw one refresh without clearing the screen "
                        "and exit (scriptable)")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("obs", help="export / summarise recorded obs logs")
    p.add_argument("action", choices=("export", "summary"))
    p.add_argument("--chrome", action="store_true",
                   help="export: write Chrome trace-event JSON (the only "
                        "format; the flag names the artefact)")
    p.add_argument("-o", "--output", type=str, default=None,
                   help="export: output path (default "
                        "<obs-dir>/trace.chrome.json)")
    p.add_argument("--obs-dir", type=str, default=None,
                   help="obs log directory (default: REPRO_OBS_DIR, then "
                        "<store root>/obs)")
    p.set_defaults(fn=cmd_obs)

    p = sub.add_parser("worker",
                       help="drain one campaign ledger as a fabric worker")
    _add_common(p)
    p.add_argument("--ledger", required=True,
                   help="campaign fingerprint prefix or ledger path")
    p.add_argument("--index", type=int, default=0,
                   help="worker slot index (spreads the scan order and "
                        "keys chaos faults; default 0)")
    p.set_defaults(fn=cmd_worker)
    return parser


def _sigterm_to_interrupt(_signum, _frame) -> None:
    raise KeyboardInterrupt


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        # SIGTERM drains like ^C: completed cells are already flushed
        # incrementally, so all an interrupt should cost is the cells
        # still in flight — and the user gets the report, not a
        # traceback.
        previous = signal.signal(signal.SIGTERM, _sigterm_to_interrupt)
    except ValueError:  # pragma: no cover - non-main thread
        previous = None
    try:
        args.fn(args)
        return 0
    except KeyboardInterrupt:
        print("campaign: interrupted — completed cells are flushed; "
              "rerun the same command to resume", file=sys.stderr)
        for report in _PENDING_REPORTS:
            print(report.summary(), file=sys.stderr)
            for failure in report.failures:
                print(f"  failed: {failure}", file=sys.stderr)
        _PENDING_REPORTS.clear()
        return 130
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
