"""Register files for iCFP (Section 3.1 and Figure 3 of the paper).

The *main* register file (RF0) carries, per register:

* the architectural value,
* a poison vector (which in-flight misses the value depends on), and
* a *last-writer sequence number* — the distance-from-checkpoint of the
  youngest advance instruction that wrote the register.

Sequence numbers gate rally writes: a re-executing slice instruction
may update RF0 only if it still *is* the register's last writer;
otherwise a younger advance instruction already produced the
architecturally-latest value and the write would be a WAW violation
(Figure 3's first rally suppresses exactly such writes to r3/r4).

The *scratch* register file (RF1, borrowed from the second SMT context)
carries values, poison, and ready-times used while re-executing slices.
"""

from __future__ import annotations

from ..isa.registers import NUM_REGS, ZERO_REG

#: last_writer value meaning "not written since the checkpoint".
NO_WRITER = -1


class MainRegFile:
    """Checkpointed architectural register file with poison + seq fields."""

    def __init__(self) -> None:
        self.values: list = [0] * NUM_REGS
        self.poison: list[int] = [0] * NUM_REGS
        self.last_writer: list[int] = [NO_WRITER] * NUM_REGS
        self._checkpoint: list | None = None

    # ------------------------------------------------------------------
    # checkpoint management (single checkpoint, create/restore only)
    # ------------------------------------------------------------------
    @property
    def has_checkpoint(self) -> bool:
        return self._checkpoint is not None

    def checkpoint(self) -> None:
        """Snapshot values (shadow bitcells); resets seq/poison tracking."""
        if self._checkpoint is not None:
            raise RuntimeError("checkpoint already active")
        self._checkpoint = list(self.values)
        self.poison = [0] * NUM_REGS
        self.last_writer = [NO_WRITER] * NUM_REGS

    def restore(self) -> None:
        """Squash: roll values back to the checkpoint, clear tracking."""
        if self._checkpoint is None:
            raise RuntimeError("no checkpoint to restore")
        self.values = list(self._checkpoint)
        self._checkpoint = None
        self.poison = [0] * NUM_REGS
        self.last_writer = [NO_WRITER] * NUM_REGS

    def release(self) -> None:
        """Commit: drop the checkpoint, advance state is architectural."""
        if self._checkpoint is None:
            raise RuntimeError("no checkpoint to release")
        self._checkpoint = None
        self.last_writer = [NO_WRITER] * NUM_REGS

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read(self, reg: int):
        """(value, poison_mask) of ``reg``."""
        return self.values[reg], self.poison[reg]

    def poison_of(self, reg: int) -> int:
        return self.poison[reg]

    def any_poisoned(self) -> bool:
        return any(self.poison)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write_normal(self, reg: int, value) -> None:
        """Plain in-order write (no checkpoint active)."""
        if reg == ZERO_REG:
            return
        self.values[reg] = value
        self.poison[reg] = 0

    def write_advance(self, reg: int, value, seq: int, poison_mask: int = 0) -> None:
        """Advance-mode writeback.

        All advance instructions — poisoned or not — stamp their seq as
        the register's last writer; only non-poisoned ones deposit a
        value.
        """
        if reg == ZERO_REG:
            return
        self.last_writer[reg] = seq
        self.poison[reg] = poison_mask
        if not poison_mask:
            self.values[reg] = value

    def write_rally(self, reg: int, value, seq: int, poison_mask: int = 0) -> bool:
        """Rally-mode merge, gated by the last-writer sequence number.

        Returns True if the write landed (this slice instruction is
        still the register's architecturally-youngest writer).
        """
        if reg == ZERO_REG:
            return False
        if self.last_writer[reg] != seq:
            return False  # younger writer exists: suppress (WAW guard)
        self.poison[reg] = poison_mask
        if not poison_mask:
            self.values[reg] = value
        return True


class ScratchRegFile:
    """RF1: temporary storage for slice re-execution (rallies).

    Tracks, per register: the value produced by the youngest processed
    slice instruction, its poison vector, the cycle the value becomes
    available (for rally timing), and the seq of the slice instruction
    that wrote it (so rally consumers bind to the right producer).
    """

    def __init__(self) -> None:
        self.values: list = [0] * NUM_REGS
        self.poison: list[int] = [0] * NUM_REGS
        self.ready: list[int] = [0] * NUM_REGS
        self.writer_seq: list[int] = [NO_WRITER] * NUM_REGS

    def clear(self) -> None:
        self.values = [0] * NUM_REGS
        self.poison = [0] * NUM_REGS
        self.ready = [0] * NUM_REGS
        self.writer_seq = [NO_WRITER] * NUM_REGS

    def write(self, reg: int, value, seq: int, ready_cycle: int,
              poison_mask: int = 0) -> None:
        if reg == ZERO_REG:
            return
        self.values[reg] = value
        self.poison[reg] = poison_mask
        self.ready[reg] = ready_cycle
        self.writer_seq[reg] = seq

    def read(self, reg: int):
        """(value, poison_mask, ready_cycle)."""
        return self.values[reg], self.poison[reg], self.ready[reg]
