"""Address-hash chained store buffer (Section 3.2, Figure 4).

The paper's novel data-memory structure: a *large, indexed* store
buffer that supports store-to-load forwarding without associative
search.  Stores are named by SSNs (store sequence numbers — extended
store-buffer indices that can also name stores already drained to the
cache).  A small address-indexed *chain table* maps a hash of the
address to the SSN of the youngest store with that hash; each store
buffer entry carries an ``ssn_link`` to the next-youngest store with
the same hash.  Loads walk the chain; SSNs at or below ``ssn_complete``
(the youngest store already written to the cache) terminate it.

Three access disciplines are selectable for the Figure 8 study:

* ``chained``  — the paper's design: walk the chain, counting excess hops;
* ``assoc``    — idealised fully-associative search (no hop cost);
* ``indexed``  — limited forwarding: only the chain-table root is
  inspected, and a hash hit with an address mismatch stalls the load
  (the iCFP analogue of out-of-order CFP's SRL/LCF scheme).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class ForwardResult:
    """Outcome of a store-buffer lookup that found a matching store."""

    value: object
    poison: int
    excess_hops: int
    ssn: int


class IndexedStall:
    """Sentinel: an ``indexed`` store buffer cannot disambiguate the load
    until the conflicting store (``ssn``) drains."""

    __slots__ = ("ssn",)

    def __init__(self, ssn: int) -> None:
        self.ssn = ssn


class _Entry:
    __slots__ = ("ssn", "addr", "value", "poison", "ssn_link", "seq",
                 "drain_ready")

    def __init__(self) -> None:
        self.ssn = -1
        self.addr = 0
        self.value = None
        self.poison = 0
        self.ssn_link = -1
        self.seq = -1
        self.drain_ready: int | None = None


class ChainedStoreBuffer:
    """SSN-named store buffer with chain-table forwarding."""

    KINDS = ("chained", "assoc", "indexed")

    def __init__(self, capacity: int = 128, chain_table_size: int = 512,
                 kind: str = "chained") -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown store buffer kind: {kind}")
        if chain_table_size & (chain_table_size - 1):
            raise ValueError("chain table size must be a power of two")
        self.capacity = capacity
        self.kind = kind
        self._entries = [_Entry() for _ in range(capacity)]
        self._chain_mask = chain_table_size - 1
        self._chain_table = [-1] * chain_table_size
        self.ssn_tail = 0       # next SSN to assign
        self.ssn_complete = -1  # youngest SSN already in the cache
        self.forward_hits = 0
        self.forward_misses = 0
        self.total_excess_hops = 0
        self.overflows = 0

    # ------------------------------------------------------------------
    def _hash(self, addr: int) -> int:
        return (addr >> 3) & self._chain_mask

    def __len__(self) -> int:
        return self.ssn_tail - 1 - self.ssn_complete

    @property
    def full(self) -> bool:
        return len(self) >= self.capacity

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def _live(self, ssn: int) -> bool:
        return self.ssn_complete < ssn < self.ssn_tail

    def entry(self, ssn: int) -> _Entry:
        entry = self._entries[ssn % self.capacity]
        if entry.ssn != ssn:
            raise KeyError(f"SSN {ssn} not resident")
        return entry

    # ------------------------------------------------------------------
    # allocation (program order)
    # ------------------------------------------------------------------
    def allocate(self, addr: int, value, poison: int, seq: int) -> int:
        """Insert a store at the tail; returns its SSN."""
        if self.full:
            self.overflows += 1
            raise OverflowError("store buffer full")
        ssn = self.ssn_tail
        self.ssn_tail += 1
        entry = self._entries[ssn % self.capacity]
        entry.ssn = ssn
        entry.addr = addr
        entry.value = value
        entry.poison = poison
        entry.seq = seq
        entry.drain_ready = None
        h = self._hash(addr)
        entry.ssn_link = self._chain_table[h]
        self._chain_table[h] = ssn
        return ssn

    def update_store(self, ssn: int, value, poison: int = 0) -> None:
        """Rally re-execution fills in a previously poisoned store's data."""
        entry = self.entry(ssn)
        entry.value = value
        entry.poison = poison

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    def forward(self, addr: int, before_ssn: int | None = None):
        """Find the youngest matching store older than ``before_ssn``.

        Returns a :class:`ForwardResult`, an :class:`IndexedStall` (only
        for the ``indexed`` kind), or ``None`` when the load should read
        the data cache.  Chain-table pointers may reference stores
        younger than a rally load; walking simply skips them (Section
        3.2: "re-executing miss-dependent loads simply follow the chain
        until they encounter stores that are older than they are").
        """
        if self.kind == "assoc":
            return self._forward_assoc(addr, before_ssn)
        if self.kind == "indexed":
            return self._forward_indexed(addr, before_ssn)
        return self._forward_chained(addr, before_ssn)

    def _forward_chained(self, addr: int, before_ssn: int | None):
        ssn = self._chain_table[self._hash(addr)]
        visits = 0
        while ssn > self.ssn_complete:
            entry = self._entries[ssn % self.capacity]
            if entry.ssn != ssn:
                break  # stale pointer into a reused slot
            visits += 1
            if (before_ssn is None or ssn < before_ssn) and entry.addr == addr:
                excess = visits - 1  # first access overlaps the D$ probe
                self.total_excess_hops += excess
                self.forward_hits += 1
                return ForwardResult(entry.value, entry.poison, excess, ssn)
            ssn = entry.ssn_link
        self.forward_misses += 1
        self.total_excess_hops += max(0, visits - 1)
        return None

    def _forward_assoc(self, addr: int, before_ssn: int | None):
        top = self.ssn_tail if before_ssn is None else min(before_ssn, self.ssn_tail)
        for ssn in range(top - 1, self.ssn_complete, -1):
            entry = self._entries[ssn % self.capacity]
            if entry.ssn == ssn and entry.addr == addr:
                self.forward_hits += 1
                return ForwardResult(entry.value, entry.poison, 0, ssn)
        self.forward_misses += 1
        return None

    def _forward_indexed(self, addr: int, before_ssn: int | None):
        ssn = self._chain_table[self._hash(addr)]
        if before_ssn is not None:
            # Forward-progress guarantee for re-executing (rally) loads:
            # stores *younger* than the load can neither forward to it
            # nor alias-block it — program order already separates them.
            # Skip them via the physical chain links to the youngest
            # not-younger store before applying the indexed rule.
            # Without this, a data-poisoned sliced store at the chain
            # root alias-stalls the very loads its own data transitively
            # depends on, and rally passes livelock (the ROADMAP
            # `indexed`-kind divergence on store-heavy kernels).
            while ssn > self.ssn_complete:
                if ssn < before_ssn:
                    break
                entry = self._entries[ssn % self.capacity]
                if entry.ssn != ssn:
                    break  # stale pointer into a reused slot
                ssn = entry.ssn_link
        if ssn <= self.ssn_complete:
            self.forward_misses += 1
            return None
        entry = self._entries[ssn % self.capacity]
        if entry.ssn != ssn:
            self.forward_misses += 1
            return None
        if entry.addr == addr:
            # `ssn < before_ssn` holds here by construction of the skip.
            self.forward_hits += 1
            return ForwardResult(entry.value, entry.poison, 0, ssn)
        # Hash hit, address mismatch: cannot forward and cannot prove
        # independence -> the pipeline must wait for a drain.
        return IndexedStall(ssn)

    # ------------------------------------------------------------------
    # drain (program order, gated by the checkpoint)
    # ------------------------------------------------------------------
    def drain_step(self, hierarchy, cycle: int, committed_memory=None,
                   before_ssn: int | None = None) -> bool:
        """Advance the oldest store's cache write by one cycle.

        ``before_ssn`` is the commit gate: stores at or beyond it belong
        to the active checkpoint region and must not write the cache.
        Returns True when a store finished draining this cycle.
        """
        head_ssn = self.ssn_complete + 1
        if head_ssn >= self.ssn_tail:
            return False
        if before_ssn is not None and head_ssn >= before_ssn:
            return False
        entry = self._entries[head_ssn % self.capacity]
        if entry.poison:
            return False  # miss-dependent store: wait for its rally
        if entry.drain_ready is None:
            result = hierarchy.data_access(entry.addr, cycle, is_store=True)
            if result.stalled:
                return False
            entry.drain_ready = result.ready_cycle
        if entry.drain_ready <= cycle:
            if committed_memory is not None:
                committed_memory[entry.addr] = entry.value
            self.ssn_complete = head_ssn
            return True
        return False

    def next_event_cycle(self, cycle: int) -> int | None:
        """Event-horizon contract: earliest cycle the head drain moves."""
        head_ssn = self.ssn_complete + 1
        if head_ssn >= self.ssn_tail:
            return None
        entry = self._entries[head_ssn % self.capacity]
        if entry.poison:
            return None  # woken by rally processing instead
        drain_ready = entry.drain_ready
        if drain_ready is None or drain_ready <= cycle:
            return cycle + 1
        return drain_ready

    #: Backwards-compatible name from the pre-horizon engine.
    next_drain_event = next_event_cycle

    # ------------------------------------------------------------------
    # squash
    # ------------------------------------------------------------------
    def squash_to(self, new_tail: int) -> int:
        """Discard stores with SSN >= ``new_tail`` (checkpoint restore).

        Rebuilds the chain table from the surviving entries.  Returns
        the number of stores dropped.
        """
        if new_tail > self.ssn_tail:
            raise ValueError("cannot squash forwards")
        dropped = self.ssn_tail - max(new_tail, self.ssn_complete + 1)
        self.ssn_tail = max(new_tail, self.ssn_complete + 1)
        self._chain_table = [-1] * (self._chain_mask + 1)
        for ssn in range(self.ssn_complete + 1, self.ssn_tail):
            entry = self._entries[ssn % self.capacity]
            h = self._hash(entry.addr)
            entry.ssn_link = self._chain_table[h]
            self._chain_table[h] = ssn
        return max(dropped, 0)

    def live_entries(self):
        """Live entries oldest-first (diagnostics and validation)."""
        return [
            self._entries[ssn % self.capacity]
            for ssn in range(self.ssn_complete + 1, self.ssn_tail)
        ]
