"""The slice buffer (Sections 3.1 and 3.4 of the paper).

A program-ordered FIFO of miss-dependent instructions and their
captured miss-independent side inputs.  Key behaviours the paper calls
out, all implemented here:

* **Sparse multi-pass processing.**  Entries are never re-enqueued;
  a processed entry is "un-poisoned" in place, and re-circulating an
  instruction just re-poisons its existing slot.  Successive rally
  passes therefore skip a growing number of inactive entries, and
  space is only reclaimed incrementally from the head.
* **Program order.**  Entries appear in capture (program) order, so
  rallies can merge with tail execution without reordering hazards.
* **Poison vectors.**  Each entry carries the union of its sources'
  poison bits; a rally pass visits only entries overlapping the bits
  whose misses returned.
"""

from __future__ import annotations

from collections import deque

from ..functional.trace import DynInst


class SliceEntry:
    """One deferred instruction with its captured side inputs.

    ``captured`` maps source-register index -> value for the inputs that
    were *not* poisoned at capture time (the "SL" operands of Figure 3);
    poisoned inputs bind to their producing slice instruction via
    ``producer_seq`` and are re-read (architecturally, through the
    scratch register file / bypass) during rallies.  Re-poisoned visits
    capture inputs that have since become available, so later passes
    never chase stale producers.  ``ssn_limit`` records the store-buffer
    tail at capture so re-executing loads only forward from older
    stores; ``ssn`` names the store-buffer slot of a sliced store.
    ``redefers`` counts rally visits that re-deferred this load on a
    fresh qualifying miss — the forward-progress bound on chained
    re-advance (see ``ICFPCore._rally_load``).
    """

    __slots__ = ("dyn", "seq", "captured", "poison", "active", "ssn_limit",
                 "predicted_ok", "producer_seq", "result_value", "done_cycle",
                 "ssn", "redefers")

    def __init__(self, dyn: DynInst, seq: int, captured: dict, poison: int,
                 ssn_limit: int, predicted_ok: bool = True,
                 producer_seq: dict | None = None, ssn: int | None = None) -> None:
        self.dyn = dyn
        self.seq = seq
        self.captured = captured
        self.poison = poison
        self.active = True
        self.ssn_limit = ssn_limit
        self.predicted_ok = predicted_ok
        self.producer_seq = producer_seq if producer_seq is not None else {}
        self.result_value = None
        self.done_cycle = 0
        self.ssn = ssn
        self.redefers = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "done"
        return f"<SliceEntry seq={self.seq} poison={self.poison:#x} {state}>"


class SliceBuffer:
    """Bounded, program-ordered, sparse slice buffer."""

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._entries: deque[SliceEntry] = deque()
        self.captures = 0
        self.overflows = 0
        self._active = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def active_count(self) -> int:
        return self._active

    def deactivate(self, entry: SliceEntry) -> None:
        """Mark ``entry`` processed (un-poisoned in place)."""
        if entry.active:
            entry.active = False
            self._active -= 1

    def append(self, entry: SliceEntry) -> None:
        """Capture a miss-dependent instruction (program order)."""
        if self.full:
            self.overflows += 1
            raise OverflowError("slice buffer full")
        if self._entries and entry.seq <= self._entries[-1].seq:
            raise ValueError("slice buffer must stay in program order")
        self._entries.append(entry)
        self.captures += 1
        self._active += 1

    def reclaim_head(self) -> int:
        """Free processed entries from the head; returns entries freed."""
        freed = 0
        while self._entries and not self._entries[0].active:
            self._entries.popleft()
            freed += 1
        return freed

    def entries(self):
        """All entries, oldest first (rally passes scan this)."""
        return self._entries

    def active_entries(self, mask: int | None = None):
        """Active entries, optionally filtered to a rally's poison mask."""
        if mask is None:
            return [e for e in self._entries if e.active]
        return [e for e in self._entries if e.active and (e.poison & mask)]

    def pending_poison(self) -> int:
        """Union of poison bits over active entries."""
        mask = 0
        for entry in self._entries:
            if entry.active:
                mask |= entry.poison
        return mask

    def flush(self) -> int:
        """Squash: drop everything; returns the number dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self._active = 0
        return dropped
