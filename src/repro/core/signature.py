"""Load signature for multiprocessor safety (Section 3.3).

iCFP's same-thread forwarding is non-speculative, but checkpointed
execution leaves committed loads vulnerable to stores from *other*
threads.  Instead of a large associative load queue, iCFP keeps one
local Bloom-filter-style signature: loads that took their value from
the cache (the vulnerable ones — store-buffer forwards are immune)
hash their address in; external stores probe it, and a hit squashes to
the checkpoint.  The signature is cleared when a rally completes.
Unlike the signatures of BulkSC/LogTM-style proposals, it is never
communicated between processors.
"""

from __future__ import annotations


class LoadSignature:
    """Single local address signature with k hash functions."""

    def __init__(self, bits: int = 1024, hashes: int = 2) -> None:
        if bits & (bits - 1):
            raise ValueError("signature size must be a power of two")
        if hashes < 1:
            raise ValueError("need at least one hash function")
        self.bits = bits
        self.hashes = hashes
        self._word = 0
        self.inserts = 0
        self.probes = 0
        self.probe_hits = 0

    def _positions(self, addr: int):
        # Word-granular address, mixed with a multiplicative hash per way.
        base = addr >> 3
        for k in range(self.hashes):
            yield ((base * (0x9E3779B1 + 2 * k + 1)) >> 7) & (self.bits - 1)

    def insert(self, addr: int) -> None:
        """Record a cache-sourced load."""
        for pos in self._positions(addr):
            self._word |= 1 << pos
        self.inserts += 1

    def probe(self, addr: int) -> bool:
        """External store probe: True = possible conflict (squash)."""
        self.probes += 1
        hit = all(self._word & (1 << pos) for pos in self._positions(addr))
        if hit:
            self.probe_hits += 1
        return hit

    def clear(self) -> None:
        """Rally complete: forget everything."""
        self._word = 0

    @property
    def empty(self) -> bool:
        return self._word == 0

    def occupancy(self) -> float:
        """Fraction of signature bits set (false-positive pressure)."""
        return bin(self._word).count("1") / self.bits
