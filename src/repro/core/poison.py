"""Poison-vector allocation (Section 3.4 of the paper).

iCFP generalises the single poison bit of Runahead into an N-bit poison
*vector*: each in-flight miss is tagged with one bit, dependants carry
the union of their sources' bits, and a rally pass touches only
instructions whose vector overlaps the bits whose misses just returned.

Bit assignment follows the paper: "Load misses to the same MSHR (i.e.,
cache line) are allocated the same bit, whereas loads to different
MSHRs may share a bit.  The precise assignment of poison bits to MSHRs
is unimportant, a simple round-robin scheme is sufficient."
"""

from __future__ import annotations

from ..memory.mshr import MSHR


class PoisonAllocator:
    """Round-robin assignment of poison-vector bits to MSHRs."""

    def __init__(self, num_bits: int = 8) -> None:
        if num_bits < 1:
            raise ValueError("poison vectors need at least one bit")
        self.num_bits = num_bits
        self._next = 0
        self.allocations = 0

    @property
    def full_mask(self) -> int:
        return (1 << self.num_bits) - 1

    def bit_for(self, mshr: MSHR) -> int:
        """Poison *mask* for a missing load's MSHR.

        The first load to miss on a line claims the next bit round-robin
        and records it in the MSHR; secondary misses to the same line
        reuse it, so their dependants rally together when the fill
        returns.
        """
        if mshr.poison_bit is None:
            mshr.poison_bit = self._next
            self._next = (self._next + 1) % self.num_bits
            self.allocations += 1
        return 1 << mshr.poison_bit

    def mask_of_returned(self, mshrs) -> int:
        """Union mask of the poison bits carried by returned MSHRs."""
        mask = 0
        for mshr in mshrs:
            if mshr.poison_bit is not None:
                mask |= 1 << mshr.poison_bit
        return mask
