"""The paper's contribution: iCFP mechanisms and engine."""

from .icfp import ADVANCE, ICFPCore, ICFPFeatures, NORMAL, SIMPLE_RA
from .poison import PoisonAllocator
from .regfile import MainRegFile, ScratchRegFile
from .signature import LoadSignature
from .slice_buffer import SliceBuffer, SliceEntry
from .store_buffer import ChainedStoreBuffer, ForwardResult, IndexedStall

__all__ = [
    "ICFPCore",
    "ICFPFeatures",
    "NORMAL",
    "ADVANCE",
    "SIMPLE_RA",
    "PoisonAllocator",
    "MainRegFile",
    "ScratchRegFile",
    "LoadSignature",
    "SliceBuffer",
    "SliceEntry",
    "ChainedStoreBuffer",
    "ForwardResult",
    "IndexedStall",
]
