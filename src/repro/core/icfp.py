"""iCFP: the in-order Continual Flow Pipeline (Sections 3.1-3.4).

State machine
-------------
``normal``    — plain in-order execution (with the chained store buffer
                acting as the machine's store buffer).
``advance``   — a checkpoint is live.  Miss-independent instructions
                execute and commit into the main register file (tagged
                with last-writer sequence numbers); miss-dependent ones
                divert into the slice buffer with their captured side
                inputs.  Rally passes re-execute slice contents whenever
                a miss returns, merging results into main state gated by
                sequence numbers; with the multithreaded-rally feature
                they interleave with tail execution at one instruction
                per cycle, rally first.
``simple_ra`` — fallback runahead (Section 3.4): entered on slice/store
                buffer overflow or a poisoned-address store.  Nothing
                commits; execution continues purely for its prefetch
                value, then rewinds to the fallback point and resumes
                full advance execution once the condition resolves.

The :class:`ICFPFeatures` flags expose the Figure 7 "build" ladder
(store-buffer discipline, blocking vs non-blocking rallies, poison
width, multithreaded rally) and the Figure 6 advance triggers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.base import CoreModel, FetchEntry, ISSUED, STALLED
from ..functional.trace import DynInst, KIND_LOAD, KIND_STORE
from ..isa.registers import NUM_REGS, ZERO_REG
from ..memory.hierarchy import (L2, MEMORY, NO_MSHRS, PENDING, STREAM,
                                MemResult)
from .poison import PoisonAllocator
from .regfile import MainRegFile, ScratchRegFile
from .signature import LoadSignature
from .slice_buffer import SliceBuffer, SliceEntry
from .store_buffer import ChainedStoreBuffer, ForwardResult, IndexedStall

NORMAL = "normal"
ADVANCE = "advance"
SIMPLE_RA = "simple_ra"

#: Forward-progress bound on chained re-advance: a rallied load may
#: re-defer on a fresh qualifying miss at most this many times before
#: the rally blocks on its fill and merges it.  Deep enough that real
#: dependent-miss chains (a handful of levels) are never cut short;
#: finite so a set-thrashing slice cannot re-poison one load forever.
_MAX_RALLY_REDEFERS = 8


@dataclass(frozen=True)
class ICFPFeatures:
    """Feature flags spanning the paper's design space (Figures 6-8)."""

    #: Store-buffer discipline: "chained" (the paper's design),
    #: "assoc" (idealised), or "indexed" (limited forwarding, Figure 8).
    store_buffer_kind: str = "chained"
    #: False = a single rally pass that stalls at pending loads and
    #: blocks the tail (the SLTP-style rally of Figure 7, bars 1-2).
    nonblocking_rally: bool = True
    #: True = rally and tail instructions interleave (Figure 7, bar 5).
    mt_rally: bool = True
    #: Poison-vector width (Section 3.4; 1 = classic poison bits).
    poison_bits: int = 8
    #: Which misses trigger/extend advance mode: "all" or "l2".
    advance_on: str = "all"
    slice_entries: int = 128
    store_buffer_entries: int = 128
    chain_table_size: int = 512
    signature_bits: int = 1024
    #: Assert dataflow invariants during simulation (tests set this).
    validate: bool = False


@dataclass
class _Checkpoint:
    cursor: int
    ssn: int
    cycle: int
    committed: tuple[int, int, int, int]  # instructions, loads, stores, branches
    #: Per-phase snapshot of the same four commit counters (None when
    #: phase attribution is off) — a squash un-counts the squashed
    #: region's commits from the buckets exactly as it does from the
    #: aggregates, preserving the conservation law.
    committed_phases: tuple | None = None


class ICFPCore(CoreModel):
    """The iCFP machine model."""

    name = "icfp"

    def __init__(self, trace, config=None, hierarchy=None, predictor=None,
                 features: ICFPFeatures | None = None,
                 lane_params=None, lane=0, leap=None) -> None:
        super().__init__(trace, config=config, hierarchy=hierarchy,
                         predictor=predictor, lane_params=lane_params,
                         lane=lane, leap=leap)
        self.features = features if features is not None else ICFPFeatures()
        f = self.features
        self._mt_rally = f.mt_rally
        self.mode = NORMAL
        #: Mode-bound issue path (rebound on every mode transition) —
        #: saves the mode dispatch per issue attempt on the hot path.
        self._mode_issue = self._try_issue_normal
        self.main_rf = MainRegFile()
        self.scratch_rf = ScratchRegFile()
        self.slice = SliceBuffer(f.slice_entries)
        self.slice_by_seq: dict[int, SliceEntry] = {}
        self.sb = ChainedStoreBuffer(
            capacity=f.store_buffer_entries,
            chain_table_size=f.chain_table_size,
            kind=f.store_buffer_kind,
        )
        self.poison_alloc = PoisonAllocator(f.poison_bits)
        self.signature = LoadSignature(bits=f.signature_bits)
        self.checkpoint: _Checkpoint | None = None
        self.next_seq = 0
        # Rally state.
        self.pending_rally_mask = 0
        self.rally_active = False
        self._pass_entries: list[SliceEntry] = []
        self._pass_cursor = 0
        self._pass_mask = 0
        self._rally_wait_until = 0
        self._rally_block: tuple[SliceEntry, int] | None = None
        # Simple-runahead (fallback) state.
        self.simple_ra_start = 0
        self.fallback_reason: str | None = None
        self._shadow_poison: set[int] = set()
        self._shadow_stores: dict[int, object] = {}
        self._rallied_since_fallback = False
        self._stale_check_needed = False
        self._mode_at_cycle_start = NORMAL

    # ==================================================================
    # per-cycle phases
    # ==================================================================
    def step_cycle(self) -> None:
        # Merged copy of CoreModel.step_cycle (phases flattened into one
        # frame; kept in sync with the phase methods below, which remain
        # for direct driving — the golden fixtures pin equivalence).
        # iCFP replaces the conventional store queue with the chained
        # store buffer (drained in the end phase), so the base drain
        # phase would only probe an always-empty queue and is omitted.
        cycle = self.cycle + 1
        self.cycle = cycle
        mode_at_start = self.mode
        # begin_cycle (retire fast path inlined)
        hierarchy = self.hierarchy
        ifetch_mshrs = hierarchy.ifetch_mshrs
        if (ifetch_mshrs._next_ready is not None
                and cycle >= ifetch_mshrs._next_ready):
            ifetch_mshrs.retire_complete(cycle)
        data_mshrs = hierarchy.mshrs
        if data_mshrs._next_ready is not None and cycle >= data_mshrs._next_ready:
            returned = data_mshrs.retire_complete(cycle)
        else:
            returned = NO_MSHRS
        self.returned_mshrs = returned
        if self.mode != NORMAL:
            if returned:
                mask = self.poison_alloc.mask_of_returned(returned)
                if mask:
                    self.pending_rally_mask |= mask
            if not self.rally_active:
                if self._stale_check_needed:
                    self._stale_check_needed = False
                    stale = self.slice.pending_poison() & ~self._in_flight_bits()
                    if stale:
                        self.pending_rally_mask |= stale
                if self.pending_rally_mask and self.slice._active:
                    self._start_rally_pass()
        # do_issue
        ports = self.ports
        ports.int_free = ports.int_capacity
        ports.mem_free = ports.mem_capacity
        progress = False
        slots = self._width
        run_tail = True
        if self.rally_active:
            if self._rally_step():
                slots -= 1
                progress = True
            elif not self.rally_active:
                # The pass ended (or squashed) inside this step: slices
                # reclaimed, tail unblocked, stale check armed — a real
                # state change the leap must not glide over.
                progress = True
            if not self._mt_rally:
                run_tail = False  # tail blocked while a rally is in flight
        fetch_queue = self.fetch_queue
        if run_tail and fetch_queue:
            while slots > 0 and fetch_queue:
                entry = fetch_queue[0]
                if entry.decode_ready > cycle:
                    break
                if self._mode_issue(entry) is not ISSUED:
                    break
                fetch_queue.popleft()
                progress = True
                slots -= 1
        self._progress = progress
        # do_fetch (shared body; guard saves the call when idle)
        if (not self.fetch_blocked and cycle >= self.fetch_resume_cycle
                and self.cursor < self._trace_len
                and len(fetch_queue) < self._fq_depth):
            self.do_fetch()
        # end_cycle: gated store-buffer drain + mode-exit checks
        checkpoint = self.checkpoint
        sb = self.sb
        if sb.ssn_complete + 1 < sb.ssn_tail and sb.drain_step(
                self.hierarchy, cycle, self.committed_memory,
                before_ssn=checkpoint.ssn if checkpoint is not None else None):
            self._progress = True
        mode = self.mode
        if mode == SIMPLE_RA:
            self._maybe_resume_advance()
        elif mode == ADVANCE:
            self._maybe_exit_advance()
        if self.mode is not mode_at_start:
            # A mode transition on an otherwise idle cycle (advance
            # falling back to simple runahead on a full slice, the
            # fallback resuming advance, advance exiting) swaps the
            # head's issue rules mid-stall: the same head can issue
            # next cycle under the new mode, so the leap must step
            # through the boundary rather than scan past it.
            self._progress = True
        if not self._progress:
            self._leap_to_horizon()

    def begin_cycle(self) -> None:
        # Flattened super() chain: this runs every stepped cycle.
        self._mode_at_cycle_start = self.mode
        returned = self.hierarchy.retire_mshrs(self.cycle)
        self.returned_mshrs = returned
        if self.mode == NORMAL:
            return
        if returned:
            mask = self.poison_alloc.mask_of_returned(returned)
            if mask:
                self.pending_rally_mask |= mask
        if not self.rally_active:
            if self._stale_check_needed:
                # Entries captured *while* a pass was in flight can carry
                # a bit whose miss returned during that very pass; that
                # bit will never "return" again.  Re-queue any active
                # bits with no in-flight fill behind them so the next
                # pass sweeps them up.
                self._stale_check_needed = False
                stale = self.slice.pending_poison() & ~self._in_flight_bits()
                if stale:
                    self.pending_rally_mask |= stale
            if self.pending_rally_mask and self.slice.active_count():
                self._start_rally_pass()

    def _in_flight_bits(self) -> int:
        mask = 0
        for mshr in self.hierarchy.mshrs.pending():
            if mshr.poison_bit is not None:
                mask |= 1 << mshr.poison_bit
        return mask

    def do_issue(self) -> None:
        ports = self.ports
        ports.int_free = ports.int_capacity
        ports.mem_free = ports.mem_capacity
        slots = self._width
        if self.rally_active:
            if self._rally_step():
                # The rally slot did real work this cycle.
                slots -= 1
                self._progress = True
            elif not self.rally_active:
                # Pass ended (or squashed) this cycle — a state change
                # the leap must not skip.
                self._progress = True
            if not self.features.mt_rally:
                return  # tail blocked while a rally is in flight
        fetch_queue = self.fetch_queue
        if not fetch_queue:
            return
        cycle = self.cycle
        while slots > 0 and fetch_queue:
            entry = fetch_queue[0]
            if entry.decode_ready > cycle:
                break
            # Read _mode_issue per iteration: an issue can flip the mode
            # (e.g. a load entering advance) mid-cycle.
            if self._mode_issue(entry) is not ISSUED:
                break
            fetch_queue.popleft()
            self._progress = True
            slots -= 1

    def end_cycle(self) -> None:
        checkpoint = self.checkpoint
        gate = checkpoint.ssn if checkpoint is not None else None
        if self.sb.drain_step(self.hierarchy, self.cycle,
                              self.committed_memory, before_ssn=gate):
            self._progress = True
        mode = self.mode
        if mode == SIMPLE_RA:
            self._maybe_resume_advance()
        elif mode == ADVANCE:
            self._maybe_exit_advance()
        if self.mode is not self._mode_at_cycle_start:
            # Same rule as the merged step: a mode flip swaps the
            # head's issue rules, so the leap must step the boundary.
            self._progress = True

    def done(self) -> bool:
        return (
            self.mode == NORMAL
            and self.cursor >= self._trace_len
            and not self.fetch_queue
            and self.sb.empty
            and self.cycle >= self.last_completion
        )

    def next_event_cycle(self) -> int | None:
        """Horizon: rally waits, blocked rallies, the gated SB drain, and
        the rally-start triggers that only a stepped ``begin_cycle`` can
        act on (the pending rally mask and the stale-bit re-queue) —
        without exporting those, a leap could glide over the very cycle
        that would have launched the next rally pass."""
        hints = []
        cycle = self.cycle
        if self.rally_active:
            if self._rally_wait_until > cycle:
                hints.append(self._rally_wait_until)
        elif self.mode != NORMAL and self.slice._active:
            # begin_cycle would start a rally pass on the next stepped
            # cycle if any bits are queued — either directly in
            # pending_rally_mask or re-queued by the deferred stale
            # check (read-only here: the flag is cleared on the stepped
            # cycle that performs the check).
            if self.pending_rally_mask:
                hints.append(cycle + 1)
            elif (self._stale_check_needed
                    and self.slice.pending_poison() & ~self._in_flight_bits()):
                hints.append(cycle + 1)
        if self._rally_block is not None:
            hints.append(self._rally_block[1])
        drain = self.sb.next_event_cycle(cycle)
        if drain is not None:
            hints.append(drain)
        return min(hints) if hints else None

    def _head_wakeup(self, entry: FetchEntry) -> int:
        """Mode-exact wake-up of the issue head (leap contract: never
        later than the cycle the issue path would accept the entry).

        * ``normal``    — sources and destination (WAW) must be ready.
        * ``advance``   — poisoned sources never wait (the instruction
          slices out instead); no WAW stall.
        * ``simple_ra`` — *shadow*-poisoned sources never wait; every
          other source (including main-poisoned ones, which the issue
          path checks only after the scoreboard) waits; no WAW stall.
        """
        earliest = entry.decode_ready
        reg_ready = self.reg_ready
        mode = self.mode
        if mode == SIMPLE_RA:
            shadow = self._shadow_poison
            for src in entry.dyn.srcs:
                if src not in shadow and reg_ready[src] > earliest:
                    earliest = reg_ready[src]
            return earliest
        poison = self.main_rf.poison
        normal = mode == NORMAL
        for src in entry.dyn.srcs:
            if (normal or not poison[src]) and reg_ready[src] > earliest:
                earliest = reg_ready[src]
        dst = entry.dyn.dst
        if (normal and dst is not None and dst != ZERO_REG
                and reg_ready[dst] > earliest):
            earliest = reg_ready[dst]
        return earliest

    # ==================================================================
    # issue paths
    # ==================================================================
    def try_issue(self, entry: FetchEntry) -> str:
        return self._mode_issue(entry)

    # ------------------------------------------------------------------
    # normal mode
    # ------------------------------------------------------------------
    def _try_issue_normal(self, entry: FetchEntry) -> str:
        dyn = entry.dyn
        idx = dyn.index
        cycle = self.cycle
        reg_ready = self.reg_ready
        ports = self.ports
        if self._port_int[idx]:
            if ports.int_free <= 0:
                self.stats.stalls.port += 1
                return STALLED
        elif ports.mem_free <= 0:
            self.stats.stalls.port += 1
            return STALLED
        nsrc = self._nsrc[idx]
        if nsrc:
            if reg_ready[self._src0[idx]] > cycle:
                self.stats.stalls.src_wait += 1
                return STALLED
            if nsrc > 1:
                if reg_ready[self._src1[idx]] > cycle:
                    self.stats.stalls.src_wait += 1
                    return STALLED
                if nsrc > 2:
                    for src in self._srcs[idx][2:]:
                        if reg_ready[src] > cycle:
                            self.stats.stalls.src_wait += 1
                            return STALLED
        dst = self._dst[idx]
        if dst is not None and dst != ZERO_REG and reg_ready[dst] > cycle:
            self.stats.stalls.waw_wait += 1
            return STALLED

        kind = self._kind[idx]
        if kind == KIND_LOAD:
            return self._normal_load(dyn, entry)
        if kind == KIND_STORE:
            if self.sb.full:
                self.stats.stalls.store_buffer_full += 1
                return STALLED
            self.sb.allocate(dyn.addr, dyn.store_val, 0, -1)
            self._finish_issue(dyn, entry, cycle + 1)
            return ISSUED
        completion = cycle + self._exec_done[idx]
        self._finish_issue(dyn, entry, completion)
        return ISSUED

    def _normal_load(self, dyn: DynInst, entry: FetchEntry) -> str:
        fwd = self.sb.forward(dyn.addr)
        if fwd is not None:
            if type(fwd) is IndexedStall:
                self.stats.stalls.store_buffer_full += 1
                return STALLED  # wait for the conflicting store to drain
            self.stats.store_forward_hits += 1
            self.stats.store_forward_hops += fwd.excess_hops
            self._check_forward(fwd, dyn)
            self._finish_issue(dyn, entry, self.cycle + self._l1d_hit_latency
                               + fwd.excess_hops)
            return ISSUED
        ready = self.hierarchy.data_hit_cycle(dyn.addr, self.cycle)
        if ready is not None:
            # L1 hit: record_miss is a no-op and never advance-qualifying.
            self._finish_issue(dyn, entry, ready)
            return ISSUED
        result = self.hierarchy.data_access(dyn.addr, self.cycle)
        if result.stalled:
            self.stats.stalls.mshr_full += 1
            return STALLED
        self.record_miss(result, dyn.index)
        if self._qualifies_for_advance(result):
            # The defining transition: checkpoint and keep flowing.
            self._enter_advance()
            self.ports.mem_free -= 1
            return self._advance_missing_load(dyn, entry, result)
        self._finish_issue(dyn, entry, result.ready_cycle)
        return ISSUED

    def _finish_issue(self, dyn: DynInst, entry: FetchEntry, completion: int) -> None:
        """Common issue epilogue for normal-mode instructions."""
        if self._port_int[dyn.index]:
            self.ports.int_free -= 1
        else:
            self.ports.mem_free -= 1
        self.commit(dyn, entry, completion)
        if dyn.dst is not None:
            if self.mode == NORMAL:
                self.main_rf.write_normal(dyn.dst, dyn.result)
            else:
                self.main_rf.write_advance(dyn.dst, dyn.result,
                                           self._take_seq(), 0)

    # ------------------------------------------------------------------
    # advance mode
    # ------------------------------------------------------------------
    def _try_issue_advance(self, entry: FetchEntry) -> str:
        dyn = entry.dyn
        idx = dyn.index
        poison_of = self.main_rf.poison
        reg_ready = self.reg_ready
        cycle = self.cycle
        src_poison = 0
        # Non-poisoned inputs must be timing-ready (either to execute or
        # to be captured as slice side inputs).
        nsrc = self._nsrc[idx]
        if nsrc:
            src = self._src0[idx]
            poison = poison_of[src]
            if poison:
                src_poison = poison
            elif reg_ready[src] > cycle:
                self.stats.stalls.src_wait += 1
                return STALLED
            if nsrc > 1:
                src = self._src1[idx]
                poison = poison_of[src]
                if poison:
                    src_poison |= poison
                elif reg_ready[src] > cycle:
                    self.stats.stalls.src_wait += 1
                    return STALLED
                if nsrc > 2:
                    for src in self._srcs[idx][2:]:
                        poison = poison_of[src]
                        if poison:
                            src_poison |= poison
                        elif reg_ready[src] > cycle:
                            self.stats.stalls.src_wait += 1
                            return STALLED

        kind = self._kind[idx]
        if kind == KIND_STORE:
            return self._advance_store(dyn, entry, src_poison)

        if src_poison:
            # Miss-dependent: divert to the slice buffer.
            return self._capture_slice(dyn, entry, src_poison)

        # Miss-independent: execute and commit.
        ports = self.ports
        port_int = self._port_int[idx]
        if port_int:
            if ports.int_free <= 0:
                self.stats.stalls.port += 1
                return STALLED
        elif ports.mem_free <= 0:
            self.stats.stalls.port += 1
            return STALLED
        if kind == KIND_LOAD:
            return self._advance_load(dyn, entry)
        completion = cycle + self._exec_done[idx]
        if port_int:
            ports.int_free -= 1
        else:
            ports.mem_free -= 1
        self._commit_advance(dyn, entry, completion)
        return ISSUED

    def _advance_load(self, dyn: DynInst, entry: FetchEntry) -> str:
        fwd = self.sb.forward(dyn.addr)
        if fwd is not None:
            if type(fwd) is IndexedStall:
                self._enter_simple_ra(dyn.index, "indexed_stall")
                return STALLED
            self.stats.store_forward_hits += 1
            self.stats.store_forward_hops += fwd.excess_hops
            if fwd.poison:
                # Forwarding from a miss-dependent store poisons the load.
                return self._capture_slice(dyn, entry, fwd.poison)
            self._check_forward(fwd, dyn)
            self.ports.mem_free -= 1
            self._commit_advance(dyn, entry, self.cycle + self._l1d_hit_latency
                                 + fwd.excess_hops)
            return ISSUED
        ready = self.hierarchy.data_hit_cycle(dyn.addr, self.cycle)
        if ready is not None:
            # L1 hit: cache-sourced, never advance-qualifying.
            self.signature.insert(dyn.addr)
            self.ports.mem_free -= 1
            self._commit_advance(dyn, entry, ready)
            return ISSUED
        result = self.hierarchy.data_access(dyn.addr, self.cycle)
        if result.stalled:
            self.stats.stalls.mshr_full += 1
            return STALLED
        self.record_miss(result, dyn.index)
        if self._qualifies_for_advance(result):
            self.ports.mem_free -= 1
            return self._advance_missing_load(dyn, entry, result)
        # Cache-sourced value: vulnerable to external stores.
        self.signature.insert(dyn.addr)
        self.ports.mem_free -= 1
        self._commit_advance(dyn, entry, result.ready_cycle)
        return ISSUED

    def _advance_missing_load(self, dyn: DynInst, entry: FetchEntry,
                              result: MemResult) -> str:
        """A load whose miss we advance past: poison and slice it."""
        mask = self.poison_alloc.bit_for(result.mshr)
        return self._capture_slice(dyn, entry, mask, self_poison=True)

    def _advance_store(self, dyn: DynInst, entry: FetchEntry,
                       src_poison: int) -> str:
        addr_src, data_src = dyn.srcs[0], dyn.srcs[1]
        addr_poison = self.main_rf.poison[addr_src]
        data_poison = self.main_rf.poison[data_src]
        if addr_poison:
            # A store with an unknown address removes all forwarding
            # guarantees for younger loads (Section 3.2).
            self.stats.stalls.poisoned_store_addr += 1
            self._enter_simple_ra(dyn.index, "poisoned_store_addr")
            return STALLED
        if self.sb.full:
            self._enter_simple_ra(dyn.index, "store_buffer_full")
            return STALLED
        if not data_poison:
            if self.ports.mem_free <= 0:
                self.stats.stalls.port += 1
                return STALLED
            self.sb.allocate(dyn.addr, dyn.store_val, 0, self.next_seq)
            self.ports.mem_free -= 1
            self._commit_advance(dyn, entry, self.cycle + 1)
            return ISSUED
        # Data-poisoned store: hold a store-buffer slot (so younger loads
        # see the poison) and re-execute via the slice buffer.
        if self.slice.full:
            self._enter_simple_ra(dyn.index, "slice_buffer_full")
            return STALLED
        ssn = self.sb.allocate(dyn.addr, None, data_poison, self.next_seq)
        return self._capture_slice(dyn, entry, data_poison, ssn=ssn)

    def _capture_slice(self, dyn: DynInst, entry: FetchEntry, poison: int,
                       self_poison: bool = False, ssn: int | None = None) -> str:
        """Divert a miss-dependent instruction into the slice buffer."""
        if self.slice.full:
            self._enter_simple_ra(dyn.index, "slice_buffer_full")
            return STALLED
        seq = self._take_seq()
        captured: dict[int, object] = {}
        producer_seq: dict[int, int] = {}
        for src in dyn.srcs:
            mask = self.main_rf.poison[src]
            if mask and not self_poison:
                producer_seq[src] = self.main_rf.last_writer[src]
            else:
                captured[src] = self.main_rf.values[src]
        slice_entry = SliceEntry(dyn, seq, captured, poison,
                                 ssn_limit=self.sb.ssn_tail,
                                 predicted_ok=entry.predicted_ok,
                                 producer_seq=producer_seq, ssn=ssn)
        self.slice.append(slice_entry)
        self.slice_by_seq[seq] = slice_entry
        if self.rally_active:
            self._stale_check_needed = True
        self.stats.slice_captures += 1
        self.stats.advance_instructions += 1
        if self._phase_of is not None:
            self._phase_advance(dyn.index)
        if dyn.dst is not None:
            self.main_rf.write_advance(dyn.dst, None, seq, poison)
            self.reg_ready[dyn.dst] = self.cycle  # consumers slice, not stall
        # Poisoned control: a correctly predicted branch just flows on; a
        # mispredicted one leaves fetch blocked until its rally squashes.
        return ISSUED

    def _commit_advance(self, dyn: DynInst, entry: FetchEntry,
                        completion: int) -> None:
        seq = self._take_seq()
        self.commit(dyn, entry, completion)
        self.stats.advance_instructions += 1
        if self._phase_of is not None:
            self._phase_advance(dyn.index)
        if dyn.dst is not None:
            self.main_rf.write_advance(dyn.dst, dyn.result, seq, 0)

    def _take_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    # ------------------------------------------------------------------
    # rally
    # ------------------------------------------------------------------
    def _start_rally_pass(self) -> None:
        self._pass_mask = (self.pending_rally_mask
                           if self.features.nonblocking_rally
                           else self.poison_alloc.full_mask)
        self.pending_rally_mask = 0
        self._pass_entries = list(self.slice.entries())
        self._pass_cursor = 0
        self.rally_active = True
        self._rally_block = None
        self.stats.rally_passes += 1

    def _rally_step(self) -> bool:
        """Process at most one slice instruction.

        Returns True when the rally did real work this cycle; pure waits
        (a blocked load, an in-slice FU dependence) return False so the
        idle-cycle fast-forward can jump them — the wake-up times are
        exported through :meth:`next_event_cycle`.
        """
        if self._rally_block is not None:
            slice_entry, ready = self._rally_block
            if ready > self.cycle:
                return False  # blocking rally: idle until the miss returns
            self._rally_block = None
            self._merge_rally_result(slice_entry, ready)
            self._pass_cursor += 1
            return True
        if self._rally_wait_until > self.cycle:
            return False  # waiting on an in-slice FU dependence
        while self._pass_cursor < len(self._pass_entries):
            slice_entry = self._pass_entries[self._pass_cursor]
            if not slice_entry.active or not (slice_entry.poison & self._pass_mask):
                self._pass_cursor += 1  # banked skip: free
                continue
            return self._process_rally_entry(slice_entry)
        self._end_rally_pass()
        return False

    def _process_rally_entry(self, slice_entry: SliceEntry) -> bool:
        dyn = slice_entry.dyn
        pending = 0
        value_ready = self.cycle
        for src, producer in (list(slice_entry.producer_seq.items())
                              if slice_entry.producer_seq else ()):
            producer_entry = self.slice_by_seq.get(producer)
            if producer_entry is None:
                # Producer merged into main state in an earlier episode;
                # read it like a captured input.
                slice_entry.captured[src] = self.main_rf.values[src]
                del slice_entry.producer_seq[src]
            elif producer_entry.active:
                pending |= producer_entry.poison
            else:
                # Per-visit capture: bind the now-available input so later
                # passes never chase a stale producer (slice overlap case).
                slice_entry.captured[src] = producer_entry.result_value
                del slice_entry.producer_seq[src]
                value_ready = max(value_ready, producer_entry.done_cycle)
        if pending:
            slice_entry.poison = pending
            self.stats.rally_instructions += 1
            if self._phase_of is not None:
                self._phase_rally(dyn.index)
            self._pass_cursor += 1
            return True
        if value_ready > self.cycle:
            self._rally_wait_until = value_ready
            return False
        if self.features.validate:
            self._validate_bindings(slice_entry)

        if dyn.is_load:
            return self._rally_load(slice_entry)
        if dyn.is_store:
            self.sb.update_store(slice_entry.ssn, dyn.store_val, 0)
            self._merge_rally_result(slice_entry, self.cycle + 1)
            self._pass_cursor += 1
            return True
        if dyn.is_control and not slice_entry.predicted_ok:
            # A mispredicted poisoned branch: everything younger than the
            # checkpoint is wrong-path state.  Squash and restart.
            self._squash_to_checkpoint()
            return True
        completion = self.cycle + self._exec_done[dyn.index]
        self._merge_rally_result(slice_entry, completion)
        self._pass_cursor += 1
        return True

    def _rally_load(self, slice_entry: SliceEntry) -> bool:
        dyn = slice_entry.dyn
        fwd = self.sb.forward(dyn.addr, before_ssn=slice_entry.ssn_limit)
        if isinstance(fwd, IndexedStall):
            # Treat like a pending input: revisit next pass.
            self.stats.rally_instructions += 1
            if self._phase_of is not None:
                self._phase_rally(dyn.index)
            self._pass_cursor += 1
            return True
        if isinstance(fwd, ForwardResult):
            if fwd.poison:
                slice_entry.poison = fwd.poison
                self.stats.rally_instructions += 1
                if self._phase_of is not None:
                    self._phase_rally(dyn.index)
                self._pass_cursor += 1
                return True
            self.stats.store_forward_hits += 1
            self.stats.store_forward_hops += fwd.excess_hops
            self._check_forward(fwd, dyn)
            self._merge_rally_result(slice_entry, self.cycle
                                     + self._l1d_hit_latency + fwd.excess_hops)
            self._pass_cursor += 1
            return True
        ready = self.hierarchy.data_hit_cycle(dyn.addr, self.cycle)
        if ready is not None:
            # L1 hit: never advance-qualifying, merges immediately.
            self.signature.insert(dyn.addr)
            self._merge_rally_result(slice_entry, ready)
            self._pass_cursor += 1
            return True
        result = self.hierarchy.data_access(dyn.addr, self.cycle)
        if result.stalled:
            self._rally_wait_until = self.cycle + 1
            return False
        self.record_miss(result, dyn.index)
        if self._qualifies_for_advance(result):
            # Dependent miss discovered during the rally.  Re-deferral
            # must be *bounded*: a load whose line keeps getting evicted
            # between passes (set-thrashing slices — generated blocked
            # kernels whose strides alias a few D$ sets do this) would
            # otherwise re-poison on every visit and the rally would
            # never drain.  After a few chained re-advances, block on
            # this fill and merge — the same forward-progress guarantee
            # the indexed store buffer's younger-entry skip provides.
            if (self.features.nonblocking_rally
                    and slice_entry.redefers < _MAX_RALLY_REDEFERS):
                slice_entry.redefers += 1
                mask = self.poison_alloc.bit_for(result.mshr)
                slice_entry.poison = mask
                self.stats.rally_instructions += 1
                if self._phase_of is not None:
                    self._phase_rally(dyn.index)
                self._pass_cursor += 1
                return True
            self._rally_block = (slice_entry, result.ready_cycle)
            return False
        self.signature.insert(dyn.addr)
        self._merge_rally_result(slice_entry, result.ready_cycle)
        self._pass_cursor += 1
        return True

    def _merge_rally_result(self, slice_entry: SliceEntry, completion: int) -> None:
        dyn = slice_entry.dyn
        self.slice.deactivate(slice_entry)
        slice_entry.result_value = dyn.result
        slice_entry.done_cycle = completion
        if dyn.dst is not None:
            landed = self.main_rf.write_rally(dyn.dst, dyn.result,
                                              slice_entry.seq, 0)
            if landed:
                self.reg_ready[dyn.dst] = completion
        if dyn.is_control:
            self.predictor.update(dyn)
        self.stats.rally_instructions += 1
        self.stats.instructions += 1
        if dyn.is_load:
            self.stats.loads += 1
        elif dyn.is_store:
            self.stats.stores += 1
        if dyn.is_branch:
            self.stats.branches += 1
        if self._phase_of is not None:
            self._phase_rally(dyn.index)
            self._phase_commit(dyn)
        if completion > self.last_completion:
            self.last_completion = completion

    def _end_rally_pass(self) -> None:
        self.rally_active = False
        self._rally_wait_until = 0
        self._pass_entries = []
        # Reclaim head space; producer bindings (slice_by_seq) live until
        # the episode ends so later passes can still read merged results.
        self.slice.reclaim_head()
        self._rallied_since_fallback = True
        self._stale_check_needed = True

    # ------------------------------------------------------------------
    # mode transitions
    # ------------------------------------------------------------------
    def _qualifies_for_advance(self, result: MemResult) -> bool:
        """Which misses trigger/extend advance execution.

        "L2-only" configurations trigger on *long* misses: true DRAM
        fills, or in-flight fills with DRAM-class remaining latency.
        Stream-buffer hits return within L2-hit-class latency, so they
        count as short misses (like D$ misses that hit the L2).
        """
        level = result.level
        if level == MEMORY:
            return True
        if self.features.advance_on == "all":
            return level in (L2, STREAM, PENDING)
        if level == PENDING and result.mshr is not None and result.mshr.is_l2:
            threshold = 2 * self._l2_hit_latency
            return result.ready_cycle - self.cycle > threshold
        return False

    def _enter_advance(self) -> None:
        self.main_rf.checkpoint()
        self.checkpoint = _Checkpoint(
            cursor=0,  # patched below by the triggering load's entry
            ssn=self.sb.ssn_tail,
            cycle=self.cycle,
            committed=(self.stats.instructions, self.stats.loads,
                       self.stats.stores, self.stats.branches),
            committed_phases=None if self._phase_stats is None else tuple(
                (p.instructions, p.loads, p.stores, p.branches)
                for p in self._phase_stats
            ),
        )
        # The triggering load is at the head of the fetch queue.
        if self.fetch_queue:
            self.checkpoint.cursor = self.fetch_queue[0].dyn.index
        self.mode = ADVANCE
        self._mode_issue = self._try_issue_advance
        self.next_seq = 0
        self.stats.advance_entries += 1

    def _maybe_exit_advance(self) -> None:
        if self.rally_active or self.slice._active:
            return
        # Every deferred instruction has merged; advance state is final.
        self.slice.reclaim_head()
        self.slice_by_seq.clear()
        if self.features.validate and self.main_rf.any_poisoned():
            raise AssertionError("register poison survived advance exit")
        self.main_rf.poison = [0] * NUM_REGS
        self.main_rf.release()
        self.checkpoint = None
        self.mode = NORMAL
        self._mode_issue = self._try_issue_normal
        self.signature.clear()
        self.pending_rally_mask = 0

    def _enter_simple_ra(self, dyn_index: int, reason: str) -> None:
        if self.mode == SIMPLE_RA:
            return
        self.mode = SIMPLE_RA
        self._mode_issue = self._try_issue_simple_ra
        self.simple_ra_start = dyn_index
        self.fallback_reason = reason
        self._shadow_poison = set()
        self._shadow_stores = {}
        self._rallied_since_fallback = False
        self.stats.simple_runahead_entries += 1

    def _maybe_resume_advance(self) -> None:
        reason = self.fallback_reason
        resume = False
        if self.slice._active == 0 and not self.rally_active:
            # The whole advance episode has merged: resuming lets
            # _maybe_exit_advance release the checkpoint, which unblocks
            # the store-buffer drain (a full SB can never drain while
            # the commit gate is up, so waiting on `not sb.full` alone
            # would deadlock).
            resume = True
        elif reason == "slice_buffer_full":
            slice_buf = self.slice
            resume = len(slice_buf._entries) < slice_buf.capacity
        elif reason == "store_buffer_full":
            resume = not self.sb.full
        else:  # poisoned_store_addr / indexed_stall: retry after rallies
            resume = self._rallied_since_fallback
        if not resume:
            return
        self.mode = ADVANCE
        self._mode_issue = self._try_issue_advance
        self.fallback_reason = None
        self.cursor = self.simple_ra_start
        self.fetch_queue.clear()
        self.fetch_blocked = False
        self.fetch_resume_cycle = self.cycle + 1
        self._last_fetch_line = -1
        self._shadow_poison = set()
        self._shadow_stores = {}
        self._maybe_exit_advance()

    def _squash_to_checkpoint(self) -> None:
        ckpt = self.checkpoint
        assert ckpt is not None
        self.main_rf.restore()
        self.slice.flush()
        self.slice_by_seq.clear()
        self.sb.squash_to(ckpt.ssn)
        self.cursor = ckpt.cursor
        self.fetch_queue.clear()
        self.fetch_blocked = False
        self.fetch_resume_cycle = self.cycle + 1
        self._last_fetch_line = -1
        self.mode = NORMAL
        self._mode_issue = self._try_issue_normal
        self.checkpoint = None
        self.signature.clear()
        self.rally_active = False
        self.pending_rally_mask = 0
        self._rally_block = None
        self._rally_wait_until = 0
        self._pass_entries = []
        self._pass_cursor = 0
        self._shadow_poison = set()
        self._shadow_stores = {}
        self.fallback_reason = None
        # Un-count everything committed inside the squashed region.
        base = ckpt.committed
        self.stats.instructions = base[0]
        self.stats.loads = base[1]
        self.stats.stores = base[2]
        self.stats.branches = base[3]
        if ckpt.committed_phases is not None:
            for phase, saved in zip(self._phase_stats, ckpt.committed_phases):
                (phase.instructions, phase.loads,
                 phase.stores, phase.branches) = saved
        self.stats.squashes += 1
        self.reg_ready = [self.cycle] * NUM_REGS

    # ------------------------------------------------------------------
    # simple runahead (fallback) mode
    # ------------------------------------------------------------------
    def _try_issue_simple_ra(self, entry: FetchEntry) -> str:
        dyn = entry.dyn
        idx = dyn.index
        cycle = self.cycle
        shadow = self._shadow_poison
        reg_ready = self.reg_ready
        poison_of = self.main_rf.poison
        poisoned = False
        nsrc = self._nsrc[idx]
        if nsrc:
            src = self._src0[idx]
            if src in shadow:
                poisoned = True
            else:
                if reg_ready[src] > cycle:
                    self.stats.stalls.src_wait += 1
                    return STALLED
                if poison_of[src]:
                    poisoned = True
            if nsrc > 1:
                src = self._src1[idx]
                if src in shadow:
                    poisoned = True
                else:
                    if reg_ready[src] > cycle:
                        self.stats.stalls.src_wait += 1
                        return STALLED
                    if poison_of[src]:
                        poisoned = True
                if nsrc > 2:
                    for src in self._srcs[idx][2:]:
                        if src in shadow:
                            poisoned = True
                        else:
                            if reg_ready[src] > cycle:
                                self.stats.stalls.src_wait += 1
                                return STALLED
                            if poison_of[src]:
                                poisoned = True
        completion = cycle + 1
        if not poisoned:
            ports = self.ports
            port_int = self._port_int[idx]
            if port_int:
                if ports.int_free <= 0:
                    self.stats.stalls.port += 1
                    return STALLED
                ports.int_free -= 1
            else:
                if ports.mem_free <= 0:
                    self.stats.stalls.port += 1
                    return STALLED
                ports.mem_free -= 1
            kind = self._kind[idx]
            if kind == KIND_LOAD:
                if dyn.addr in self._shadow_stores:
                    completion = cycle + self._l1d_hit_latency
                elif (ready := self.hierarchy.data_hit_cycle(
                        dyn.addr, cycle)) is not None:
                    completion = ready  # L1 hit: never advance-qualifying
                else:
                    result = self.hierarchy.data_access(dyn.addr, cycle)
                    if result.stalled:
                        return STALLED
                    self.record_miss(result, idx)
                    if self._qualifies_for_advance(result):
                        poisoned = True  # prefetch issued; poison the dest
                    else:
                        completion = result.ready_cycle
            elif kind == KIND_STORE:
                self._shadow_stores[dyn.addr] = dyn.store_val
            else:
                completion = cycle + self._exec_done[idx]
        dst = dyn.dst
        if dst is not None:
            if poisoned:
                shadow.add(dst)
                reg_ready[dst] = cycle
            else:
                shadow.discard(dst)
                reg_ready[dst] = completion
        if dyn.is_control:
            self.predictor.update(dyn)
            if not entry.predicted_ok and not poisoned:
                self.fetch_blocked = False
                self.fetch_resume_cycle = completion
                self._last_fetch_line = -1
            # A poisoned mispredicted control leaves fetch blocked: the
            # shadow path cannot recover it, so fetch idles until the
            # fallback resolves and execution rewinds.
        self.stats.advance_instructions += 1
        if self._phase_of is not None:
            self._phase_advance(idx)
        return ISSUED

    # ------------------------------------------------------------------
    # multiprocessor safety
    # ------------------------------------------------------------------
    def external_store(self, addr: int) -> bool:
        """An external (other-core) store probes the load signature.

        Returns True if it forced a squash to the checkpoint.
        """
        if self.mode == NORMAL or self.checkpoint is None:
            return False
        if not self.signature.probe(addr):
            return False
        self._squash_to_checkpoint()
        return True

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _check_forward(self, fwd: ForwardResult, dyn: DynInst) -> None:
        if self.features.validate and fwd.value != dyn.result:
            raise AssertionError(
                f"store-buffer forwarded {fwd.value!r} to load #{dyn.index}, "
                f"functional value is {dyn.result!r}"
            )

    def _validate_bindings(self, slice_entry: SliceEntry) -> None:
        dyn = slice_entry.dyn
        for i, src in enumerate(dyn.srcs):
            if src in slice_entry.captured:
                got = slice_entry.captured[src]
                want = dyn.src_vals[i]
                if got != want:
                    raise AssertionError(
                        f"slice input mismatch on #{dyn.index} src r{src}: "
                        f"captured {got!r}, functional {want!r}"
                    )

    def validate_final_state(self) -> list[str]:
        """Compare merged architectural state against the golden trace."""
        problems = []
        final = self.trace.final_state
        for reg in range(NUM_REGS):
            if self.main_rf.values[reg] != final.regs[reg]:
                problems.append(
                    f"reg {reg}: {self.main_rf.values[reg]!r} != "
                    f"{final.regs[reg]!r}"
                )
        for addr, value in self.committed_memory.items():
            if final.memory.get(addr, 0) != value:
                problems.append(
                    f"mem[{addr:#x}]: {value!r} != {final.memory.get(addr, 0)!r}"
                )
        stored = {d.addr for d in self.trace if d.is_store}
        if set(self.committed_memory) != stored:
            missing = stored - set(self.committed_memory)
            extra = set(self.committed_memory) - stored
            problems.append(f"memory coverage: missing={missing} extra={extra}")
        return problems
