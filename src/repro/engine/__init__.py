"""Timing engine: cycle-level in-order core model and results."""

from .base import CoreModel, FetchEntry, ISSUED, STALLED, SimulationDiverged
from .batch import BatchJob, LaneParams, plan_batches, run_lanes
from .result import SimResult

__all__ = [
    "BatchJob",
    "CoreModel",
    "FetchEntry",
    "ISSUED",
    "LaneParams",
    "STALLED",
    "SimulationDiverged",
    "SimResult",
    "plan_batches",
    "run_lanes",
]
