"""Timing engine: cycle-level in-order core model and results."""

from .base import CoreModel, FetchEntry, ISSUED, STALLED, SimulationDiverged
from .result import SimResult

__all__ = [
    "CoreModel",
    "FetchEntry",
    "ISSUED",
    "STALLED",
    "SimulationDiverged",
    "SimResult",
]
