"""Simulation results."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pipeline.stats import CoreStats, PhaseStats


@dataclass
class SimResult:
    """Outcome of one timing simulation.

    ``model`` names the microarchitecture ("in-order", "runahead",
    "multipass", "sltp", "icfp"), ``workload`` the kernel.  Speedups are
    cycle ratios — all models of a workload execute the same dynamic
    instruction stream, so cycles are directly comparable.

    ``phase_stats`` is the per-phase attribution of the run, one bucket
    per declared :attr:`~repro.isa.program.Program.phase_regions` entry
    (``None`` for programs that declare none).  Every bucket counter
    sums exactly to the matching :class:`CoreStats` aggregate.
    """

    model: str
    workload: str
    stats: CoreStats
    phase_stats: list[PhaseStats] | None = field(default=None)

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def instructions(self) -> int:
        return self.stats.instructions

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def speedup_over(self, baseline: "SimResult") -> float:
        """Speedup of this run relative to ``baseline`` (1.0 = equal)."""
        if baseline.workload != self.workload:
            raise ValueError(
                f"cannot compare {self.workload!r} against {baseline.workload!r}"
            )
        if self.cycles == 0:
            return 0.0
        return baseline.cycles / self.cycles

    def percent_speedup_over(self, baseline: "SimResult") -> float:
        """Percent speedup as plotted in Figures 5-8."""
        return (self.speedup_over(baseline) - 1.0) * 100.0

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.model}/{self.workload}: {self.cycles} cycles, "
            f"{self.instructions} insts, IPC {self.ipc:.3f}"
        )
