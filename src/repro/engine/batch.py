"""Batched multi-config execution: one trace pass, many config lanes.

Campaign sweeps re-simulate the *same* (workload, model) pair under
dozens of configurations — the Figure 6 latency sweep alone runs each
kernel trace once per L2 latency point.  The scalar engine pays the
whole per-job setup bill (trace materialisation, warm-state snapshots,
hot-array binding) once per configuration; this module amortises it by
advancing a *lane-vector* of configurations over one shared
:class:`~repro.functional.trace.TraceHot` in bounded time slices.

Lane model
----------
A **lane** is one configuration of the batch: one core instance bound
to a lane index into :class:`LaneParams`, the structure-of-arrays table
of config-dependent constants (pipeline widths, queue depths, cache
line geometry, hit latencies).  Cores read their hot constants by
indexing the shared columns — ``params.width[lane]`` — instead of
closing over a private config, which is what makes a batch a vector of
lanes over one trace rather than N unrelated simulations.

Scheduling is wavefront-style with **per-lane event horizons**: the
driver advances every live lane up to a chunk boundary via
``CoreModel.run_until`` and keeps per-lane clock/done columns.  A lane
that finishes drops out of the wavefront immediately; a lane whose
event-horizon leap overshoots the boundary simply waits (its clock is
already beyond the chunk), so neither finished nor leaping lanes ever
stall the rest of the batch.

Byte-identity contract
----------------------
Lanes share only *read-only* state: the trace's flat arrays and the
warm-snapshot stash (keyed by hierarchy geometry, order-independent).
Every mutable structure — hierarchy, predictor, scoreboard, stats — is
per-lane, and ``run_until`` performs exactly the scalar ``run`` loop's
checks in the scalar order.  A batched simulation is therefore
*byte-identical* to the scalar engine, pinned by the golden fixtures
and ``tests/engine/test_batch_differential.py``.

The numpy-backed columns are optional: :func:`lane_column` falls back
to :mod:`array` (and plain ints come back out either way — bindings
cast at read time), so the backend is pure-python clean.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from functools import cached_property
from hashlib import sha256

try:  # numpy-optional: columns degrade to array('q') without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy present in CI image
    _np = None

HAVE_NUMPY = _np is not None

#: Cycles per wavefront time slice.  Large enough that slice-switch
#: overhead vanishes against ~µs/cycle simulation cost, small enough
#: that a short lane exits the wavefront promptly.
DEFAULT_CHUNK = 50_000


def lane_column(values) -> "object":
    """A signed-64-bit SoA column (numpy when available, else array)."""
    values = list(values)
    if _np is not None:
        return _np.array(values, dtype=_np.int64)
    return array("q", values)


class LaneParams:
    """Structure-of-arrays table of per-lane config constants.

    One column per config-dependent constant the hot ``step_cycle`` /
    issue paths consume; row *i* holds lane *i*'s value.  Cores bind
    ``int(column[lane])`` at construction — the per-lane indexing
    replaces the former pattern of closing each constant over a private
    :class:`~repro.pipeline.config.MachineConfig`.
    """

    #: (column name, attribute path into a MachineConfig)
    COLUMNS = (
        ("width", ("width",)),
        ("int_ports", ("int_ports",)),
        ("mem_ports", ("mem_ports",)),
        ("frontend_depth", ("frontend_depth",)),
        ("fetch_queue_depth", ("fetch_queue_depth",)),
        ("store_buffer_entries", ("store_buffer_entries",)),
        ("max_cycles", ("max_cycles",)),
        ("l1i_line_bytes", ("hierarchy", "l1i", "line_bytes")),
        ("l1d_line_bytes", ("hierarchy", "l1d", "line_bytes")),
        ("l1d_hit_latency", ("hierarchy", "l1d", "hit_latency")),
        ("l2_hit_latency", ("hierarchy", "l2", "hit_latency")),
    )

    __slots__ = tuple(name for name, _path in COLUMNS) + ("n_lanes",)

    def __init__(self, machine_configs) -> None:
        machine_configs = list(machine_configs)
        self.n_lanes = len(machine_configs)
        for name, path in self.COLUMNS:
            rows = []
            for cfg in machine_configs:
                value = cfg
                for attr in path:
                    value = getattr(value, attr)
                rows.append(value)
            setattr(self, name, lane_column(rows))

    @classmethod
    def for_configs(cls, machine_configs) -> "LaneParams":
        return cls(machine_configs)

    @classmethod
    def of(cls, machine_config) -> "LaneParams":
        """A one-lane table (the scalar engine's degenerate batch)."""
        return cls((machine_config,))


def run_lanes(cores, chunk: int = DEFAULT_CHUNK) -> list:
    """Advance a lane-vector of cores to completion; results per lane.

    The wavefront driver: per-lane ``clocks``/``done`` columns track the
    batch, and every outer iteration advances each live lane up to the
    current chunk boundary.  ``run_until`` honours each lane's own event
    horizons internally (leaps included), so a lane that jumps past the
    boundary just sits out later slices until the boundary catches up,
    and a finished lane leaves the wavefront at once.
    """
    from ..obs import trace as obs_trace

    n = len(cores)
    clocks = lane_column([0] * n)
    done = array("b", bytes(n))
    while True:
        live = [lane for lane in range(n) if not done[lane]]
        if not live:
            break
        # The next boundary trails the *slowest* live lane: lanes whose
        # leaps already overshot it are skipped for free, and no slice
        # is wasted on a region where every live clock has moved past.
        horizon = chunk + min(clocks[lane] for lane in live)
        # Joint leap: no live lane can act before the min of the lanes'
        # own event horizons (the provably-complete per-lane scan), so
        # the boundary never lands inside a region where every lane is
        # stalled.  For leap-enabled lanes this is subsumed — each lane
        # leaps past dead regions internally regardless of the boundary
        # — but it keeps small-chunk and reference-mode (``leap=False``)
        # batches from slicing through cycles nobody can use.
        joint = min(cores[lane].leap_horizon() for lane in live)
        if joint > horizon:
            horizon = joint
        with obs_trace.span("batch.wavefront", lanes=n, live=len(live),
                            boundary=int(horizon)):
            for lane in live:
                core = cores[lane]
                if core.run_until(horizon):
                    done[lane] = 1
                clocks[lane] = core.cycle
    return [core.finalize() for core in cores]


@dataclass(frozen=True)
class BatchJob:
    """A lane-vector of compatible :class:`~repro.exec.job.SimJob`s.

    Compatibility means identical (model, workload, instruction budget):
    every lane replays the same trace on the same machine model, while
    the rest of each job's config (latencies, stream buffers, warm-up,
    feature flags) varies per lane.  Memo/store identity stays per
    member job — :meth:`run` returns one result per lane, in member
    order, and the scheduler splits them back into per-fingerprint
    records before any flush.
    """

    jobs: tuple

    def __post_init__(self) -> None:
        if len(self.jobs) < 2:
            raise ValueError("a BatchJob needs at least 2 lanes")
        first = self.jobs[0]
        for job in self.jobs[1:]:
            if (job.model != first.model or job.workload != first.workload
                    or job.config.instructions != first.config.instructions):
                raise ValueError(
                    "incompatible batch lanes: grouping requires identical "
                    "(model, workload, instructions)")

    # Delegates so scheduler helpers (labels, trace prewarm keys) treat
    # a batch like the job it stands for.
    @property
    def model(self) -> str:
        return self.jobs[0].model

    @property
    def workload(self):
        return self.jobs[0].workload

    @property
    def config(self):
        return self.jobs[0].config

    @cached_property
    def fingerprint(self) -> str:
        """Batch task identity (fault rolls, labels) — *not* a result
        key; results are keyed by the member jobs' own fingerprints."""
        digest = sha256("\n".join(j.fingerprint for j in self.jobs).encode())
        return "batch:" + digest.hexdigest()

    @property
    def member_fingerprints(self) -> tuple:
        return tuple(job.fingerprint for job in self.jobs)

    def run(self) -> list:
        """Simulate every lane over one shared trace; results per lane."""
        # Local imports: repro.exec and repro.harness drive their jobs
        # through cores, so top-level imports would be circular.
        from ..exec.cache import TRACE_CACHE
        from ..harness.experiment import make_core

        first = self.jobs[0]
        trace = TRACE_CACHE.get(first.workload, first.config.instructions)
        params = LaneParams.for_configs(
            job.config.machine_config() for job in self.jobs)
        cores = [make_core(job.model, trace, job.config,
                           lane_params=params, lane=lane)
                 for lane, job in enumerate(self.jobs)]
        return run_lanes(cores)


def plan_batches(jobs, width: int) -> list:
    """Group compatible jobs into :class:`BatchJob`s, preserving order.

    ``width`` caps lanes per batch (0 = unbounded).  Jobs that share
    (model, workload, instructions) join the most recent open group for
    that key; a group of one stays a plain job.  Each group occupies the
    position of its first member, so result ordering and strict-mode
    failure ordering follow the input like the scalar path.
    """
    if width == 1 or len(jobs) < 2:
        return list(jobs)
    units: list = []
    open_groups: dict = {}
    for job in jobs:
        key = (job.model, job.workload, job.config.instructions)
        lanes = open_groups.get(key)
        if lanes is None or (width > 1 and len(lanes) >= width):
            lanes = [job]
            open_groups[key] = lanes
            units.append(lanes)
        else:
            lanes.append(job)
    return [lanes[0] if len(lanes) == 1 else BatchJob(jobs=tuple(lanes))
            for lanes in units]
