"""Cycle-level in-order core model with an event-horizon scheduler.

:class:`CoreModel` is both the vanilla in-order baseline *and* the
substrate the latency-tolerant models (Runahead, Multipass, SLTP, iCFP)
subclass.  Per cycle it runs four phases::

    begin_cycle()   # miss returns, mode transitions (subclass hook)
    do_issue()      # in-order issue of up to `width` instructions
    do_fetch()      # refill the fetch queue through the I$ + predictor
    drain + end_cycle()

The model is execute-driven over a pre-materialised dynamic trace:
instructions know their operands, addresses, and branch outcomes, so
timing decisions (stall-on-use, forwarding, miss classification) are
made with real dataflow, and re-execution (rallies, runahead replays)
revisits the same trace records.

A vanilla in-order pipeline stalls at the first instruction that *uses*
a missing load's result — not at the miss itself — which the scoreboard
reproduces naturally; independent misses already overlap through the
non-blocking hierarchy's MSHRs.

Event-horizon scheduling
------------------------
The paper's headline scenario — hundreds of dead cycles under an
all-level miss — is exactly the one a naive cycle loop is slowest at.
Every stateful component therefore exposes a ``next_event_cycle()``
*horizon*: the earliest future cycle at which its state can change
(MSHR fills, store drains, the fetch-resume latch, scoreboard ready
times, subclass mode events).  Whenever a stepped cycle makes no
progress, :meth:`CoreModel._leap_to_horizon` jumps the clock directly
to the minimum of those horizons instead of idling through the stall
region one cycle at a time.  The leap fires only after a no-progress
cycle, so per-cycle observables (issue order, stall attribution,
fetch timestamps) are bit-identical to a cycle-by-cycle simulation —
see ``tests/engine/test_idle_skip.py`` and the golden fixtures in
``tests/engine/test_golden_regression.py``.

The per-cycle phases index the trace's flat :class:`~repro.functional.
trace.TraceHot` arrays (operands, port kinds, execute latencies, miss
addresses) rather than chasing per-object attributes; the arrays are
built once per trace and shared by every model that replays it.
"""

from __future__ import annotations

import os
from collections import deque

from ..branch.predictor import BranchPredictor
from ..functional.trace import DynInst, KIND_LOAD, KIND_STORE, Trace
from ..obs import trace as _obs_trace
from ..isa.registers import NUM_REGS, ZERO_REG
from ..memory.hierarchy import MemoryHierarchy, MemResult
from ..pipeline.config import MachineConfig
from ..pipeline.resources import PortSet
from ..pipeline.stats import CoreStats, PhaseStats
from ..pipeline.store_queue import StoreQueue
from .batch import LaneParams
from .result import SimResult

#: try_issue outcomes.
ISSUED = "issued"
STALLED = "stalled"


class FetchEntry:
    """A fetched instruction waiting in the front-end latches."""

    __slots__ = ("dyn", "decode_ready", "predicted_ok")

    def __init__(self, dyn: DynInst, decode_ready: int, predicted_ok: bool) -> None:
        self.dyn = dyn
        self.decode_ready = decode_ready
        self.predicted_ok = predicted_ok


class SimulationDiverged(RuntimeError):
    """The cycle loop exceeded the configured safety limit."""


class CoreModel:
    """Vanilla 2-way superscalar in-order pipeline (the paper's baseline)."""

    name = "in-order"

    def __init__(
        self,
        trace: Trace,
        config: MachineConfig | None = None,
        hierarchy: MemoryHierarchy | None = None,
        predictor: BranchPredictor | None = None,
        lane_params: LaneParams | None = None,
        lane: int = 0,
        leap: bool | None = None,
    ) -> None:
        self.trace = trace
        self.config = config if config is not None else MachineConfig.hpca09()
        self.hierarchy = (
            hierarchy if hierarchy is not None
            else MemoryHierarchy(self.config.hierarchy)
        )
        self.predictor = predictor if predictor is not None else BranchPredictor()
        self.stats = CoreStats()

        # Config-dependent constants are indexed out of a LaneParams
        # structure-of-arrays table rather than closed over: a scalar
        # core owns a one-lane table, a batched core shares its batch's
        # table and reads its own lane.  ``int()`` keeps numpy-backed
        # columns from leaking int64 scalars into cycle arithmetic.
        if lane_params is None:
            lane_params = LaneParams.of(self.config)
            lane = 0
        self.lane_params = lane_params
        self.lane = lane

        self.cycle = 0
        self.reg_ready = [0] * NUM_REGS
        self.fetch_queue: deque[FetchEntry] = deque()
        self.cursor = 0
        self.fetch_blocked = False
        self.fetch_resume_cycle = 0
        self._ifetch_ready = 0
        self._last_fetch_line = -1
        self.ports = PortSet(int(lane_params.int_ports[lane]),
                             int(lane_params.mem_ports[lane]))
        self.store_queue = StoreQueue(
            int(lane_params.store_buffer_entries[lane]))
        self.committed_memory: dict[int, object] = {}
        self.last_completion = 0
        self.returned_mshrs = []
        self._progress = False

        # Reference mode: ``leap=False`` (or ``REPRO_NO_LEAP=1`` in the
        # environment) disables the event-horizon leap entirely, making
        # this core a supported cycle-by-cycle differential baseline —
        # the engine steps every stall cycle individually and must
        # produce bit-identical results (see tests/engine/
        # test_idle_skip.py and `make leap-audit`).
        if leap is None:
            leap = os.environ.get("REPRO_NO_LEAP", "") not in ("1", "true", "yes")
        self._leap = leap

        # Hot-loop bindings: flat per-trace arrays plus the per-lane
        # config scalars the per-cycle phases touch, hoisted out of the
        # object graph once per simulation.
        cfg = self.config
        hot = trace.hot
        self._insts = trace.insts
        self._trace_len = len(trace.insts)
        self._kind = hot.kind
        self._srcs = hot.srcs
        self._nsrc = hot.nsrc
        self._src0 = hot.src0
        self._src1 = hot.src1
        self._dst = hot.dst
        self._exec_done = hot.exec_done
        self._port_int = hot.port_int
        self._width = int(lane_params.width[lane])
        self._fq_depth = int(lane_params.fetch_queue_depth[lane])
        self._frontend_depth = int(lane_params.frontend_depth[lane])
        self._l1i_line_bytes = int(lane_params.l1i_line_bytes[lane])
        self._iline = hot.iline(self._l1i_line_bytes)
        self._l1d_hit_latency = int(lane_params.l1d_hit_latency[lane])
        self._l2_hit_latency = int(lane_params.l2_hit_latency[lane])
        self._max_cycles = int(lane_params.max_cycles[lane])

        # Phase attribution (observation only).  Multi-region programs
        # get live per-commit bucketing — one flat-array lookup guarded
        # by a single `is not None` check on the commit path.  Single-
        # region programs (the whole named suite) keep `_phase_of is
        # None`, so the hot paths pay nothing and the one bucket is
        # synthesised from the aggregates at run end.
        regions = trace.program.phase_regions
        self._phase_regions = regions
        if len(regions) > 1:
            self._phase_of = trace.phase_index()
            self._phase_stats = [PhaseStats(name=name)
                                 for name, _lo, _hi in regions]
            self._phase_cur = 0  # execution starts in the first region
            self._phase_mark = 0
        else:
            self._phase_of = None
            self._phase_stats = None

        # Leap-audit probe (observation only, ``REPRO_TRACE`` gated):
        # leap counts, leapt-cycle totals, and horizon-source tallies
        # feed the obs metrics registry at finalize.  ``None`` when
        # tracing is off — the leap path then pays one ``is not None``
        # check per taken leap and the commit path pays nothing.
        self._obs_probe = ({"leaps": 0, "leapt": 0, "sources": {}}
                           if _obs_trace.TRACER is not None else None)

        if cfg.warm_icache or cfg.warm_dcache:
            # Snapshot reuse is only sound when the hierarchy started
            # empty, i.e. we built it ourselves just above.
            self._warm_hierarchy(reusable=hierarchy is None)

    def _warm_hierarchy(self, reusable: bool) -> None:
        """Warm the caches, reusing a prior snapshot where possible.

        Warm-up is pure construction-time work that depends only on the
        program image and the hierarchy geometry — every model of a
        workload (and every sweep value that keeps the hierarchy config)
        produces the identical warm tag store.  The first core to warm a
        trace stashes copies of the I$/D$/L2 sets on the trace object;
        later cores load them instead of replaying the insert loop.

        Checkpoints are also durable: when the disk store is enabled
        (``REPRO_STORE`` / ``REPRO_CACHE_DIR``), the snapshot is keyed
        by its own sub-fingerprint (program image digest + geometry +
        warm flags) and shared across all five models *and across
        runs* — a fresh process loads the checkpoint instead of
        replaying warm-up at all.
        """
        # Local import: repro.exec drives its jobs through cores, so a
        # top-level import would be circular.
        from ..exec.store import (default_store, warm_fingerprint,
                                  warm_geometry_key)

        cfg = self.config
        hier = self.hierarchy
        if not reusable:
            if cfg.warm_icache:
                self._warm_icache()
            if cfg.warm_dcache:
                self._warm_dcache()
            return
        key = warm_geometry_key(cfg)
        snapshots = getattr(self.trace, "warm_snapshots", None)
        if snapshots is None:
            snapshots = self.trace.warm_snapshots = {}
        snap = snapshots.get(key)
        if snap is None:
            disk = default_store()
            sub_fp = (warm_fingerprint(self.trace.program, key)
                      if disk is not None else None)
            if disk is not None:
                snap = disk.get_warm(sub_fp)
                if snap is not None:
                    snapshots[key] = snap
            if snap is None:
                if cfg.warm_icache:
                    self._warm_icache()
                if cfg.warm_dcache:
                    self._warm_dcache()
                snap = (hier.l1i.export_sets(), hier.l1d.export_sets(),
                        hier.l2.export_sets())
                snapshots[key] = snap
                if disk is not None:
                    disk.put_warm(sub_fp, snap)
                return
        hier.l1i.load_sets(snap[0])
        hier.l1d.load_sets(snap[1])
        hier.l2.load_sets(snap[2])

    def _warm_icache(self) -> None:
        """Pre-install the program's code lines in the L1I and L2."""
        cfg = self.config.hierarchy
        from ..isa.program import CODE_BASE, INST_BYTES

        code_bytes = len(self.trace.program) * INST_BYTES
        for pc in range(CODE_BASE, CODE_BASE + code_bytes, cfg.l1i.line_bytes):
            self.hierarchy.l2.insert(cfg.l2.line_addr(pc))
            self.hierarchy.l1i.insert(cfg.l1i.line_addr(pc))

    def _warm_dcache(self) -> None:
        """Pre-install the data image's lines in the L2 (not the L1D).

        Descending address order: kernels place hot structures at low
        addresses and cold regions high, so inserting high-to-low leaves
        the low (hot) lines most-recently-used when a structure exceeds
        the L2.  The L1 is deliberately left cold: hot working sets
        re-warm through cheap L2 hits within the first couple of
        thousand instructions, while scan windows larger than the L1
        would thrash it from any starting state — pre-filling it would
        only distort the first pass.
        """
        cfg = self.config.hierarchy
        # Descending insertion leaves the lowest `assoc` lines of every
        # set resident; everything else would be evicted immediately, so
        # skip inserting it at all (pure construction-time optimisation).
        per_set: dict[int, int] = {}
        assoc = cfg.l2.assoc
        line_addr = cfg.l2.line_addr
        set_index_of = cfg.l2.set_index
        insert = self.hierarchy.l2.insert
        get_count = per_set.get
        for addr in sorted(self.trace.program.data):
            l2_line = line_addr(addr)
            set_index = set_index_of(l2_line)
            count = get_count(set_index, 0)
            if count >= assoc:
                continue
            insert(l2_line)
            per_set[set_index] = count + 1
        program = self.trace.program
        regions = program.hot_regions
        if not regions and program.hot_region is not None:
            regions = (program.hot_region,)  # externally built Program
        for hot in regions:
            for addr in range(hot[0], hot[1], cfg.l1d.line_bytes):
                self.hierarchy.l1d.insert(cfg.l1d.line_addr(addr))

    # ==================================================================
    # main loop
    # ==================================================================
    def run(self) -> SimResult:
        """Simulate to completion and return the result."""
        # The limit is past the divergence guard, so a scalar run either
        # completes or raises — it never yields at the boundary.
        self.run_until(self._max_cycles + 2)
        return self.finalize()

    def run_until(self, limit: int) -> bool:
        """Advance until done or ``cycle >= limit``; True iff done.

        The batch wavefront's entry point: a lane runs its own event
        horizons (leaps included) inside the slice and simply yields at
        the boundary, so callers interleave lanes without perturbing any
        lane's cycle-by-cycle behaviour.
        """
        max_cycles = self._max_cycles
        step_cycle = self.step_cycle
        done = self.done
        trace_len = self._trace_len
        # `cursor >= len(trace)` is a necessary condition of every
        # model's done() — pre-filtering it keeps the completion check
        # out of the per-cycle loop until the run is actually draining.
        while not (self.cursor >= trace_len and done()):
            if self.cycle >= limit:
                return False
            if self.cycle > max_cycles:
                raise SimulationDiverged(
                    f"{self.name}: exceeded {max_cycles} cycles "
                    f"({self.stats.instructions}/{trace_len} committed)"
                )
            step_cycle()
        return True

    def finalize(self) -> SimResult:
        """Seal aggregate stats and package the result (after run_until
        reports completion)."""
        self.stats.cycles = max(self.cycle, self.last_completion)
        self.stats.branch_mispredicts = self.predictor.mispredictions
        if self._obs_probe is not None:
            self._record_probe()
        return SimResult(self.name, self.trace.program.name, self.stats,
                         phase_stats=self._finalize_phase_stats())

    def _record_probe(self) -> None:
        """Publish the leap-audit probe into the obs metrics registry.

        Observation only — reads sealed aggregates, mutates nothing the
        simulation can see.  Step cycles are derived (total − leapt), so
        the hot loop never counts them.
        """
        from ..obs import metrics as _obs_metrics

        probe = self._obs_probe
        registry = _obs_metrics.REGISTRY
        leapt = probe["leapt"]
        registry.counter("engine.leaps").inc(probe["leaps"])
        registry.counter("engine.cycles.leapt").inc(leapt)
        registry.counter("engine.cycles.stepped").inc(
            max(0, self.stats.cycles - leapt))
        for source, count in probe["sources"].items():
            registry.counter(f"engine.horizon.{source}").inc(count)
        if self.stats.cycles:
            # Commits per kilocycle, one histogram per model: the
            # leap-audit open item's "does leaping skew commit rate"
            # question gets its distribution.
            registry.histogram(f"engine.commit_kipc.{self.name}").observe(
                1000.0 * self.stats.instructions / self.stats.cycles)

    def step_cycle(self) -> None:
        """Advance the simulation by one cycle (tests drive this directly
        to observe or perturb mid-flight state)."""
        self.cycle += 1
        self._progress = False
        self.begin_cycle()
        self.do_issue()
        self.do_fetch()
        if self.store_queue.drain_step(self.hierarchy, self.cycle,
                                       self.committed_memory):
            self._progress = True
        self.end_cycle()
        if not self._progress:
            self._leap_to_horizon()

    def done(self) -> bool:
        return (
            self.cursor >= self._trace_len
            and not self.fetch_queue
            and self.store_queue.empty
            and self.cycle >= self.last_completion
        )

    # ==================================================================
    # per-cycle phases (subclass hooks)
    # ==================================================================
    def begin_cycle(self) -> None:
        """Default: collect miss-return events for this cycle."""
        self.returned_mshrs = self.hierarchy.retire_mshrs(self.cycle)

    def end_cycle(self) -> None:
        """Subclass hook (mode-exit checks and the like)."""

    def do_issue(self) -> None:
        """In-order issue of up to ``width`` instructions."""
        ports = self.ports
        ports.int_free = ports.int_capacity
        ports.mem_free = ports.mem_capacity
        fetch_queue = self.fetch_queue
        if not fetch_queue:
            return
        slots = self._width
        cycle = self.cycle
        try_issue = self.try_issue
        while slots > 0 and fetch_queue:
            entry = fetch_queue[0]
            if entry.decode_ready > cycle:
                break
            if try_issue(entry) is not ISSUED:
                break
            fetch_queue.popleft()
            self._progress = True
            slots -= 1

    def do_fetch(self) -> None:
        """Fetch up to ``width`` instructions through the I$."""
        cycle = self.cycle
        if self.fetch_blocked or cycle < self.fetch_resume_cycle:
            return
        cursor = self.cursor
        trace_len = self._trace_len
        if cursor >= trace_len:
            return
        fetch_queue = self.fetch_queue
        room = self._fq_depth - len(fetch_queue)
        if room <= 0:
            return
        width = self._width
        limit = width if width < room else room
        insts = self._insts
        iline = self._iline
        frontend_depth = self._frontend_depth
        last_line = self._last_fetch_line
        ifetch_ready = self._ifetch_ready
        predictor_predict = self.predictor.predict
        append = fetch_queue.append
        new_entry = FetchEntry.__new__
        fetched = 0
        while fetched < limit and cursor < trace_len:
            dyn = insts[cursor]
            line = iline[cursor]
            if line != last_line:
                result = self.hierarchy.fetch_access(dyn.pc, cycle)
                if result.stalled:
                    break
                last_line = line
                ifetch_ready = result.ready_cycle
            # Pipelined front end: decode+reg-read after the (possibly
            # stale-line) I$ data returns, never less than the full
            # fetch-to-issue depth from this cycle.
            decode_ready = cycle + frontend_depth
            data_ready = ifetch_ready + 2
            if data_ready > decode_ready:
                decode_ready = data_ready
            is_control = dyn.is_control
            predicted_ok = True
            if is_control:
                predicted_ok = predictor_predict(dyn)
            # Frame-free construction: this allocation runs once per
            # fetched instruction across every model and replay.
            entry = new_entry(FetchEntry)
            entry.dyn = dyn
            entry.decode_ready = decode_ready
            entry.predicted_ok = predicted_ok
            append(entry)
            cursor += 1
            fetched += 1
            if is_control and not predicted_ok:
                # Wrong path from here: hold fetch until the branch resolves.
                self.fetch_blocked = True
                break
            if dyn.taken:
                # Correctly predicted taken: one-cycle redirect bubble.
                self.fetch_resume_cycle = cycle + 1
                last_line = -1
                break
        if fetched:
            self._progress = True
        self.cursor = cursor
        self._last_fetch_line = last_line
        self._ifetch_ready = ifetch_ready

    # ==================================================================
    # issue + execute
    # ==================================================================
    def try_issue(self, entry: FetchEntry) -> str:
        """Attempt to issue the head instruction this cycle."""
        dyn = entry.dyn
        idx = dyn.index
        cycle = self.cycle
        ports = self.ports
        port_int = self._port_int[idx]
        if port_int:
            if ports.int_free <= 0:
                self.stats.stalls.port += 1
                return STALLED
        elif ports.mem_free <= 0:
            self.stats.stalls.port += 1
            return STALLED
        reg_ready = self.reg_ready
        nsrc = self._nsrc[idx]
        if nsrc:
            if reg_ready[self._src0[idx]] > cycle:
                self.stats.stalls.src_wait += 1
                return STALLED
            if nsrc > 1:
                if reg_ready[self._src1[idx]] > cycle:
                    self.stats.stalls.src_wait += 1
                    return STALLED
                if nsrc > 2:
                    for src in self._srcs[idx][2:]:
                        if reg_ready[src] > cycle:
                            self.stats.stalls.src_wait += 1
                            return STALLED
        dst = self._dst[idx]
        if dst is not None and dst != ZERO_REG and reg_ready[dst] > cycle:
            self.stats.stalls.waw_wait += 1
            return STALLED
        kind = self._kind[idx]
        if kind == KIND_LOAD:
            completion = self.execute_load(dyn)
            if completion is None:
                return STALLED
        elif kind == KIND_STORE:
            completion = self.execute_store(dyn)
            if completion is None:
                return STALLED
        else:
            completion = cycle + self._exec_done[idx]
        if port_int:
            ports.int_free -= 1
        else:
            ports.mem_free -= 1
        self.commit(dyn, entry, completion)
        return ISSUED

    def execute(self, dyn: DynInst, entry: FetchEntry) -> int | None:
        """Compute the completion cycle; None on a structural stall.

        Kept as a standalone hook for direct driving in tests; the hot
        issue path dispatches on the flat ``kind`` array instead.
        """
        kind = self._kind[dyn.index]
        if kind == KIND_LOAD:
            return self.execute_load(dyn)
        if kind == KIND_STORE:
            return self.execute_store(dyn)
        return self.cycle + self._exec_done[dyn.index]

    def execute_load(self, dyn: DynInst) -> int | None:
        hit = self.store_queue.forward(dyn.addr)
        if hit is not None:
            self.stats.store_forward_hits += 1
            return self.cycle + self._l1d_hit_latency
        # L1 hits dominate most traces; the fast probe skips the full
        # data_access arm walk (record_miss is a no-op for L1 hits).
        ready = self.hierarchy.data_hit_cycle(dyn.addr, self.cycle)
        if ready is not None:
            return ready
        result = self.hierarchy.data_access(dyn.addr, self.cycle)
        if result.stalled:
            self.stats.stalls.mshr_full += 1
            return None
        self.record_miss(result, dyn.index)
        return result.ready_cycle

    def execute_store(self, dyn: DynInst) -> int | None:
        if self.store_queue.full:
            self.stats.stalls.store_buffer_full += 1
            return None
        self.store_queue.push(dyn.addr, dyn.store_val, self.cycle)
        return self.cycle + 1

    def commit(self, dyn: DynInst, entry: FetchEntry, completion: int) -> None:
        """Book-keeping for a successfully issued instruction."""
        dst = dyn.dst
        if dst is not None:
            self.reg_ready[dst] = completion
        stats = self.stats
        stats.instructions += 1
        if dyn.is_load:
            stats.loads += 1
        elif dyn.is_store:
            stats.stores += 1
        if dyn.is_branch:
            stats.branches += 1
        if self._phase_of is not None:
            self._phase_commit(dyn)
        if dyn.is_control:
            self.resolve_control(dyn, entry, completion)
        if completion > self.last_completion:
            self.last_completion = completion

    def resolve_control(self, dyn: DynInst, entry: FetchEntry, completion: int) -> None:
        self.predictor.update(dyn)
        if not entry.predicted_ok:
            # Redirect the front end at resolve; refill penalty follows
            # from the decode_ready computed at the new fetch time.
            self.fetch_blocked = False
            self.fetch_resume_cycle = completion
            self._last_fetch_line = -1

    def record_miss(self, result: MemResult, index: int = -1) -> None:
        """Fold one hierarchy access into miss/MLP statistics.

        ``index`` is the dynamic index of the accessing instruction;
        with phase attribution active it routes the miss counters into
        that instruction's phase bucket as well (callers that lack an
        instruction context omit it and charge the aggregates only).
        """
        stats = self.stats
        if result.level == "mshr":
            stats.secondary_misses += 1
        elif result.l1_miss:
            stats.l1d_misses += 1
        if result.l2_miss:
            stats.l2_misses += 1
        if result.new_fill:
            stats.d_mlp.add(self.cycle, result.ready_cycle)
            if result.l2_miss:
                stats.l2_mlp.add(self.cycle, result.ready_cycle)
        if self._phase_of is not None and index >= 0:
            phase = self._phase_stats[self._phase_of[index]]
            if result.level == "mshr":
                phase.secondary_misses += 1
            elif result.l1_miss:
                phase.l1d_misses += 1
            if result.l2_miss:
                phase.l2_misses += 1

    # ==================================================================
    # phase attribution (observation only — never a timing input)
    # ==================================================================
    def _phase_commit(self, dyn: DynInst) -> None:
        """Charge one committed instruction to its phase bucket.

        Called only when attribution is live (``_phase_of`` non-None).
        A commit whose phase differs from the current one also settles
        the elapsed cycle span against the outgoing phase, so the
        buckets' cycle counters partition ``[0, stats.cycles)`` exactly.
        """
        index = self._phase_of[dyn.index]
        if index != self._phase_cur:
            cycle = self.cycle
            self._phase_stats[self._phase_cur].cycles += cycle - self._phase_mark
            self._phase_mark = cycle
            self._phase_cur = index
        phase = self._phase_stats[index]
        phase.instructions += 1
        if dyn.is_load:
            phase.loads += 1
        elif dyn.is_store:
            phase.stores += 1
        if dyn.is_branch:
            phase.branches += 1

    def _phase_advance(self, index: int) -> None:
        """Mirror one ``advance_instructions`` increment (guarded call)."""
        self._phase_stats[self._phase_of[index]].advance_instructions += 1

    def _phase_rally(self, index: int) -> None:
        """Mirror one ``rally_instructions`` increment (guarded call)."""
        self._phase_stats[self._phase_of[index]].rally_instructions += 1

    def _finalize_phase_stats(self) -> list[PhaseStats] | None:
        """The run's phase buckets, with the tail cycle span settled."""
        regions = self._phase_regions
        if not regions:
            return None
        if self._phase_stats is None:
            # Single region: the one bucket is the aggregate, by
            # definition — synthesised here so the hot paths never pay.
            return [PhaseStats.from_aggregate(regions[0][0], self.stats)]
        total = self.stats.cycles
        self._phase_stats[self._phase_cur].cycles += total - self._phase_mark
        self._phase_mark = total
        return self._phase_stats

    # ==================================================================
    # event-horizon leap
    # ==================================================================
    def _scan_horizons(self, cycle: int) -> tuple[int, str | None]:
        """The earliest future wake-up and which component supplies it.

        The single candidate scan behind both the leap and the obs
        probe's horizon-source tally: each stateful component exposes
        its earliest future event through the ``next_event_cycle()``
        contract (MSHR files via the hierarchy, the store queue,
        subclass machinery via :meth:`next_event_cycle`); the scoreboard
        wake-up of the issue head and the fetch-resume latch are folded
        in directly.  Returns ``(best, source)``; ``best == 0`` means no
        future event was found (cycle counts start at 1).

        Completeness is the leap's correctness contract: every deferred
        action of every mode must be represented here (or by a subclass
        hook this scans), because a leap past an unlisted wake-up skips
        work a stepped cycle would have done.  ``make leap-audit`` (the
        full leap-vs-stepped differential sweep) guards it.
        """
        # Track the earliest future wake-up incrementally — this runs on
        # every idle cycle, so no candidate list is materialised.
        best = 0
        source = None
        fetch_queue = self.fetch_queue
        if fetch_queue:
            c = self._head_wakeup(fetch_queue[0])
            if c > cycle:
                best = c
                source = "head"
        # The front end acts (appends entries, with any I$ latency folded
        # into their decode_ready) on every cycle it is eligible: not
        # branch-blocked, past the resume latch (taken-branch bubble,
        # runahead restart, SLTP's SRL drain push), with queue room and
        # trace left.  Its wake-up is therefore exactly the resume latch;
        # NOT the last I$ fill time — a line change probes the I$ fresh
        # and can hit immediately.  When the latch is in the past, a
        # fetch that failed this cycle was I$-MSHR-stalled (side-effect
        # free), and its retry rides the hierarchy's fill horizon below.
        if (self.cursor < self._trace_len and not self.fetch_blocked
                and len(fetch_queue) < self._fq_depth):
            c = self.fetch_resume_cycle
            if c > cycle and (not best or c < best):
                best = c
                source = "fetch"
        c = self.store_queue.next_event_cycle(cycle)
        if c is not None and c > cycle and (not best or c < best):
            best = c
            source = "store_queue"
        c = self.hierarchy.next_event_cycle()
        if c is not None and c > cycle and (not best or c < best):
            best = c
            source = "hierarchy"
        c = self.next_event_cycle()
        if c is not None and c > cycle and (not best or c < best):
            best = c
            source = "subclass"
        c = self.last_completion
        if c > cycle and (not best or c < best):
            best = c
            source = "completion"
        return best, source

    def _leap_to_horizon(self) -> None:
        """Jump the clock to the next cycle anything can happen.

        Pure optimisation: when a cycle makes no progress, every wake-up
        source is a known future timestamp (:meth:`_scan_horizons`), so
        the clock leaps to the minimum instead of idling through the
        stall region one cycle at a time.  ``leap=False`` cores skip
        this entirely — they are the cycle-by-cycle reference.
        """
        if not self._leap:
            return
        cycle = self.cycle
        best, source = self._scan_horizons(cycle)
        if best > cycle + 1:
            probe = self._obs_probe
            if probe is not None:
                probe["leaps"] += 1
                probe["leapt"] += best - 1 - cycle
                probe["sources"][source] = probe["sources"].get(source, 0) + 1
            self.cycle = best - 1  # the loop increments before phases

    def leap_horizon(self) -> int:
        """Earliest future cycle this core can act (public probe).

        The batch wavefront consults this to raise slice boundaries
        jointly: after a completed :meth:`step_cycle` any pending leap
        is already folded into the clock, so a progressing (or freshly
        leapt) lane answers ``cycle + 1``, while an idle lane whose leap
        is disabled or capped reports its true scan horizon.
        """
        if self._progress:
            return self.cycle + 1
        best, _source = self._scan_horizons(self.cycle)
        if best > self.cycle + 1:
            return best
        return self.cycle + 1

    def next_event_cycle(self) -> int | None:
        """Subclass horizon hook: earliest future cycle the subclass's
        own machinery (mode timers, rally waits, gated drains) can act."""
        return None

    def _head_wakeup(self, entry: FetchEntry) -> int:
        """Earliest cycle the queue head could issue (for the leap).

        The base model stalls on source *and* destination (WAW)
        readiness; latency-tolerant subclasses override this to match
        their own stall rules.
        """
        earliest = entry.decode_ready
        reg_ready = self.reg_ready
        for src in entry.dyn.srcs:
            ready = reg_ready[src]
            if ready > earliest:
                earliest = ready
        dst = entry.dyn.dst
        if dst is not None and dst != ZERO_REG:
            ready = reg_ready[dst]
            if ready > earliest:
                earliest = ready
        return earliest
