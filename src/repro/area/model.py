"""Analytical area model for Section 5.3 (CACTI-4.1 substitute).

The paper uses a modified CACTI 4.1 to estimate each scheme's extra
structures at 45 nm: Runahead 0.12, Multipass 0.22, SLTP 0.36, and
iCFP 0.26 mm^2.  CACTI is not available offline, so this module uses a
transparent first-order model::

    area(structure) = entries * bits * BIT_AREA[kind] * port_factor(ports)

with one bit-area constant per cell type (SRAM, CAM match cell, shadow
bitcell checkpoint) and a quadratic port factor (array area is wire
dominated, so it grows roughly with the square of the port count).  The
constants are calibrated so the four schemes land near the paper's
numbers while keeping the *structure inventories* honest — each entry
below names a real structure with its real geometry from Table 1 and
Sections 3.1-3.4.
"""

from __future__ import annotations

from dataclasses import dataclass

#: mm^2 per bit at 45 nm, by cell type (calibrated; see module docstring).
#: The shadow cell is a 6-ported register-file bitcell plus its shadow
#: checkpoint cell [Ergin et al.], which is an order of magnitude larger
#: than a plain 6T SRAM bit.
BIT_AREA = {
    "sram": 1.68e-6,
    "cam": 2.56e-6,      # match cell + comparator
    "shadow": 2.54e-5,   # multi-port RF bitcell + shadow checkpoint cell
}


def port_factor(ports: int) -> float:
    """Wire-dominated growth with port count (1 port = 1.0)."""
    return (0.45 + 0.55 * ports) ** 2


@dataclass(frozen=True)
class Structure:
    """One hardware structure in a scheme's overhead inventory."""

    name: str
    entries: int
    bits_per_entry: int
    kind: str = "sram"
    ports: int = 1

    @property
    def area_mm2(self) -> float:
        return (self.entries * self.bits_per_entry
                * BIT_AREA[self.kind] * port_factor(self.ports))


#: Register-file geometry: 48 architectural registers x 64 bits.
_REGS, _REG_BITS = 48, 64

#: Structure inventories (Section 5.3's accounting).
SCHEMES: dict[str, tuple[Structure, ...]] = {
    "runahead": (
        Structure("poison bits", _REGS, 1),
        Structure("RF checkpoint (shadow)", _REGS, _REG_BITS, "shadow"),
        Structure("runahead cache", 256, 32 + 64 + 1),
    ),
    "multipass": (
        Structure("poison bits", _REGS, 1),
        Structure("RF checkpoint (shadow)", _REGS, _REG_BITS, "shadow"),
        Structure("forwarding cache", 256, 32 + 64 + 1),
        Structure("result buffer", 128, 64 + 8, ports=2),
        Structure("load disambiguation", 256, 40, "cam", ports=2),
    ),
    "sltp": (
        Structure("poison bits", _REGS, 1),
        Structure("RF checkpoints (x2, shadow)", 2 * _REGS, _REG_BITS,
                  "shadow"),
        Structure("store redo log (SRL)", 128, 40 + 64, ports=2),
        Structure("load queue", 256, 40 + 64, "cam", ports=2),
    ),
    "icfp": (
        Structure("poison vectors", _REGS, 8),
        Structure("last-writer seq numbers", _REGS, 10),
        Structure("RF checkpoint (shadow)", _REGS, _REG_BITS, "shadow"),
        # Three ports: tail insert, forwarding walk, and drain/rally
        # update proceed concurrently (Sections 3.1-3.2).
        Structure("chained store buffer", 128, 40 + 64 + 8 + 10, ports=3),
        Structure("chain table", 512, 16, ports=3),
        Structure("load signature", 1024, 1),
    ),
}

#: The paper's CACTI-derived numbers, for reference and tests.
PAPER_AREA_MM2 = {
    "runahead": 0.12,
    "multipass": 0.22,
    "sltp": 0.36,
    "icfp": 0.26,
}

#: Area of the whole 2-way in-order core (paper: 4-8 mm^2 at 45 nm).
CORE_AREA_RANGE_MM2 = (4.0, 8.0)


def scheme_area(scheme: str) -> float:
    """Total overhead of one scheme in mm^2."""
    return sum(s.area_mm2 for s in SCHEMES[scheme])


def area_overheads() -> dict[str, dict[str, float]]:
    """Per-scheme, per-structure area breakdown in mm^2."""
    return {
        scheme: {s.name: s.area_mm2 for s in structures}
        for scheme, structures in SCHEMES.items()
    }


def overhead_fraction_of_core(scheme: str, core_mm2: float = 6.0) -> float:
    """Scheme overhead relative to a 2-way in-order core."""
    return scheme_area(scheme) / core_mm2
