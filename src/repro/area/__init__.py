"""Analytical area model (Section 5.3)."""

from .model import (
    BIT_AREA,
    CORE_AREA_RANGE_MM2,
    PAPER_AREA_MM2,
    SCHEMES,
    Structure,
    area_overheads,
    overhead_fraction_of_core,
    port_factor,
    scheme_area,
)

__all__ = [
    "Structure",
    "SCHEMES",
    "BIT_AREA",
    "PAPER_AREA_MM2",
    "CORE_AREA_RANGE_MM2",
    "scheme_area",
    "area_overheads",
    "overhead_fraction_of_core",
    "port_factor",
]
