"""The vanilla in-order baseline.

This is :class:`~repro.engine.base.CoreModel` unchanged: the pipeline
stalls at the first instruction that uses a missing load's value, while
independent accesses behind it in the fetch queue wait.  Table 1's
non-blocking hierarchy still overlaps misses that issue before the
pipeline blocks.
"""

from __future__ import annotations

from ..engine.base import CoreModel


class InOrderCore(CoreModel):
    """2-way superscalar stall-on-use in-order pipeline."""

    name = "in-order"
