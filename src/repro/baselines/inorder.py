"""The vanilla in-order baseline.

This is :class:`~repro.engine.base.CoreModel` unchanged except for a
merged per-cycle hot path: the pipeline stalls at the first instruction
that uses a missing load's value, while independent accesses behind it
in the fetch queue wait.  Table 1's non-blocking hierarchy still
overlaps misses that issue before the pipeline blocks.
"""

from __future__ import annotations

from ..engine.base import CoreModel, ISSUED
from ..memory.hierarchy import NO_MSHRS


class InOrderCore(CoreModel):
    """2-way superscalar stall-on-use in-order pipeline."""

    name = "in-order"

    def step_cycle(self) -> None:
        # Merged copy of CoreModel.step_cycle (phases flattened into one
        # frame; the base phase methods remain the reference semantics —
        # the golden fixtures pin equivalence).
        cycle = self.cycle + 1
        self.cycle = cycle
        # begin_cycle (retire fast path inlined)
        hierarchy = self.hierarchy
        ifetch_mshrs = hierarchy.ifetch_mshrs
        if (ifetch_mshrs._next_ready is not None
                and cycle >= ifetch_mshrs._next_ready):
            ifetch_mshrs.retire_complete(cycle)
        data_mshrs = hierarchy.mshrs
        if data_mshrs._next_ready is not None and cycle >= data_mshrs._next_ready:
            self.returned_mshrs = data_mshrs.retire_complete(cycle)
        else:
            self.returned_mshrs = NO_MSHRS
        # do_issue
        ports = self.ports
        ports.int_free = ports.int_capacity
        ports.mem_free = ports.mem_capacity
        progress = False
        fetch_queue = self.fetch_queue
        if fetch_queue:
            slots = self._width
            try_issue = self.try_issue
            while slots > 0 and fetch_queue:
                entry = fetch_queue[0]
                if entry.decode_ready > cycle:
                    break
                if try_issue(entry) is not ISSUED:
                    break
                fetch_queue.popleft()
                progress = True
                slots -= 1
        self._progress = progress
        # do_fetch (shared body; guard saves the call when idle)
        if (not self.fetch_blocked and cycle >= self.fetch_resume_cycle
                and self.cursor < self._trace_len
                and len(fetch_queue) < self._fq_depth):
            self.do_fetch()
        # store drain
        store_queue = self.store_queue
        if store_queue._queue and store_queue.drain_step(
                self.hierarchy, cycle, self.committed_memory):
            self._progress = True
        if not self._progress:
            self._leap_to_horizon()
