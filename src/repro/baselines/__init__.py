"""Baseline microarchitectures the paper compares against."""

from .inorder import InOrderCore
from .multipass import MultipassCore
from .runahead import RunaheadCore
from .runahead_cache import RunaheadCache
from .sltp import SLTPCore, sltp_features

__all__ = [
    "InOrderCore",
    "RunaheadCore",
    "RunaheadCache",
    "MultipassCore",
    "SLTPCore",
    "sltp_features",
]
