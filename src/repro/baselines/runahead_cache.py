"""Runahead cache (Mutlu et al., HPCA 2003; Table 1: 256 entries).

A small direct-mapped structure that holds the results of runahead-mode
stores so runahead loads can forward from them.  Forwarding is
"best-effort": a conflicting store simply overwrites the previous
occupant, and the paper (Section 3.2) stresses that this is acceptable
for Runahead *only* because all runahead results are thrown away —
iCFP's committed advance state needs the lossless chained store buffer
instead.
"""

from __future__ import annotations


class RunaheadCache:
    """Direct-mapped word-granular forwarding cache for runahead stores."""

    def __init__(self, entries: int = 256) -> None:
        if entries & (entries - 1):
            raise ValueError("runahead cache entries must be a power of two")
        self.entries = entries
        self._addrs: list[int | None] = [None] * entries
        self._values: list = [None] * entries
        self._poison: list[bool] = [False] * entries
        self.writes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _index(self, addr: int) -> int:
        return (addr >> 3) & (self.entries - 1)

    def write(self, addr: int, value, poisoned: bool = False) -> None:
        """Record a runahead store (displacing any conflicting entry)."""
        index = self._index(addr)
        if self._addrs[index] is not None and self._addrs[index] != addr:
            self.evictions += 1
        self._addrs[index] = addr
        self._values[index] = value
        self._poison[index] = poisoned
        self.writes += 1

    def read(self, addr: int):
        """(value, poisoned) for a forwarding hit, else ``None``."""
        index = self._index(addr)
        if self._addrs[index] == addr:
            self.hits += 1
            return (self._values[index], self._poison[index])
        self.misses += 1
        return None

    def flush(self) -> None:
        """Runahead period ended: all contents are discarded."""
        self._addrs = [None] * self.entries
        self._values = [None] * self.entries
        self._poison = [False] * self.entries
