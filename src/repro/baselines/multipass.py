""""Flea-flicker" Multipass pipelining (Barnes, Ryoo & Hwu, MICRO 2005).

Multipass extends Runahead with a *result buffer*: advance passes save
the results of miss-independent instructions, and later passes over the
same region reuse them — a reused instruction's consumers need not wait
on its latency, so each pass runs faster ("breaking data-dependences
and increasing ILP").  Unlike SLTP/iCFP, every post-miss instruction is
still re-processed on every pass; reuse accelerates but does not skip.

Configuration per Section 5.1: advances under all L2 misses and under
*primary* data-cache misses; blocks on secondary data-cache misses.
"""

from __future__ import annotations

from ..engine.base import FetchEntry, ISSUED
from ..functional.trace import DynInst
from ..isa.instructions import OpClass
from .runahead import RUNAHEAD, RunaheadCore


class MultipassCore(RunaheadCore):
    """Runahead with result reuse across passes."""

    name = "multipass"

    def __init__(self, trace, config=None, hierarchy=None, predictor=None,
                 advance_on: str = "l2_d1", result_buffer_entries: int = 128,
                 **kwargs) -> None:
        super().__init__(trace, config=config, hierarchy=hierarchy,
                         predictor=predictor, advance_on=advance_on, **kwargs)
        self.result_buffer_entries = result_buffer_entries
        #: dyn.index -> completion latency class reuse marker.
        self._results: set[int] = set()
        self.result_reuses = 0

    # ------------------------------------------------------------------
    def try_issue(self, entry: FetchEntry) -> str:
        dyn = entry.dyn
        if dyn.index in self._results:
            return self._issue_reused(entry)
        return super().try_issue(entry)

    def _issue_reused(self, entry: FetchEntry) -> str:
        """Replay an instruction whose result a previous pass recorded.

        The saved result breaks the data dependence: no source wait, no
        cache access, single-cycle completion.  It still occupies an
        issue slot and port (Multipass re-processes everything).
        """
        dyn = entry.dyn
        if not self.ports.available(dyn.opclass):
            self.stats.stalls.port += 1
            from ..engine.base import STALLED

            return STALLED
        self.ports.acquire(dyn.opclass)
        completion = self.cycle + 1
        self.result_reuses += 1
        if self.mode == RUNAHEAD:
            self._shadow_poison.discard(dyn.dst) if dyn.dst is not None else None
            if dyn.dst is not None:
                self.reg_ready[dyn.dst] = completion
            self.stats.advance_instructions += 1
            if dyn.is_control:
                self.predictor.update(dyn)
                if not entry.predicted_ok:
                    self.fetch_blocked = False
                    self.fetch_resume_cycle = completion
                    self._last_fetch_line = -1
        else:
            # Architectural pass: the instruction commits with its saved
            # result; stores still enter the store queue for real.
            if dyn.opclass is OpClass.STORE:
                if self.store_queue.full:
                    self.stats.stalls.store_buffer_full += 1
                    from ..engine.base import STALLED

                    return STALLED
                self.store_queue.push(dyn.addr, dyn.store_val, self.cycle)
            if dyn.dst is not None:
                self.reg_ready[dyn.dst] = completion
            self._results.discard(dyn.index)  # consumed architecturally
            self.commit(dyn, entry, completion)
        return ISSUED

    # ------------------------------------------------------------------
    def _runahead_writeback(self, dyn: DynInst, poisoned: bool,
                            completion: int) -> None:
        super()._runahead_writeback(dyn, poisoned, completion)
        if (not poisoned and dyn.index not in self._results
                and len(self._results) < self.result_buffer_entries
                and dyn.opclass is not OpClass.STORE):
            self._results.add(dyn.index)

    def _exit_runahead(self) -> None:
        super()._exit_runahead()
        # Results for instructions older than the restart point can never
        # be replayed again; free their buffer slots.
        self._results = {i for i in self._results if i >= self.cursor}
