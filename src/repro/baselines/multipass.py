""""Flea-flicker" Multipass pipelining (Barnes, Ryoo & Hwu, MICRO 2005).

Multipass extends Runahead with a *result buffer*: advance passes save
the results of miss-independent instructions, and later passes over the
same region reuse them — a reused instruction's consumers need not wait
on its latency, so each pass runs faster ("breaking data-dependences
and increasing ILP").  Unlike SLTP/iCFP, every post-miss instruction is
still re-processed on every pass; reuse accelerates but does not skip.

Configuration per Section 5.1: advances under all L2 misses and under
*primary* data-cache misses; blocks on secondary data-cache misses.
"""

from __future__ import annotations

from ..engine.base import FetchEntry, ISSUED, STALLED
from ..functional.trace import DynInst
from ..memory.hierarchy import NO_MSHRS
from .runahead import RUNAHEAD, RunaheadCore


class MultipassCore(RunaheadCore):
    """Runahead with result reuse across passes."""

    name = "multipass"

    def __init__(self, trace, config=None, hierarchy=None, predictor=None,
                 advance_on: str = "l2_d1", result_buffer_entries: int = 128,
                 **kwargs) -> None:
        super().__init__(trace, config=config, hierarchy=hierarchy,
                         predictor=predictor, advance_on=advance_on, **kwargs)
        self.result_buffer_entries = result_buffer_entries
        #: dyn.index -> completion latency class reuse marker.
        self._results: set[int] = set()
        self.result_reuses = 0

    # ------------------------------------------------------------------
    def _head_wakeup(self, entry: FetchEntry) -> int:
        """A reusable head waits for nothing but decode: the saved
        result breaks its data dependences (:meth:`_issue_reused` checks
        only port availability, which the leap never waits on)."""
        if entry.dyn.index in self._results:
            return entry.decode_ready
        return super()._head_wakeup(entry)

    def try_issue(self, entry: FetchEntry) -> str:
        if entry.dyn.index in self._results:
            return self._issue_reused(entry)
        return self._mode_issue(entry)

    def do_issue(self) -> None:
        # Specialised copy of CoreModel.do_issue with the result-reuse
        # check inlined ahead of the mode-bound issue path.
        ports = self.ports
        ports.int_free = ports.int_capacity
        ports.mem_free = ports.mem_capacity
        fetch_queue = self.fetch_queue
        if not fetch_queue:
            return
        slots = self._width
        cycle = self.cycle
        results = self._results
        while slots > 0 and fetch_queue:
            entry = fetch_queue[0]
            if entry.decode_ready > cycle:
                break
            if entry.dyn.index in results:
                status = self._issue_reused(entry)
            else:
                status = self._mode_issue(entry)
            if status is not ISSUED:
                break
            fetch_queue.popleft()
            self._progress = True
            slots -= 1

    def step_cycle(self) -> None:
        # Merged copy of RunaheadCore.step_cycle with the result-reuse
        # check inlined into the issue loop (kept in sync with the phase
        # methods; the golden fixtures pin its equivalence).
        cycle = self.cycle + 1
        self.cycle = cycle
        # begin_cycle (retire fast path inlined)
        hierarchy = self.hierarchy
        ifetch_mshrs = hierarchy.ifetch_mshrs
        if (ifetch_mshrs._next_ready is not None
                and cycle >= ifetch_mshrs._next_ready):
            ifetch_mshrs.retire_complete(cycle)
        data_mshrs = hierarchy.mshrs
        if data_mshrs._next_ready is not None and cycle >= data_mshrs._next_ready:
            self.returned_mshrs = data_mshrs.retire_complete(cycle)
        else:
            self.returned_mshrs = NO_MSHRS
        if self.mode == RUNAHEAD and cycle >= self._trigger_ready:
            self._exit_runahead()
        # do_issue (with result reuse)
        ports = self.ports
        ports.int_free = ports.int_capacity
        ports.mem_free = ports.mem_capacity
        progress = False
        fetch_queue = self.fetch_queue
        if fetch_queue:
            slots = self._width
            results = self._results
            while slots > 0 and fetch_queue:
                entry = fetch_queue[0]
                if entry.decode_ready > cycle:
                    break
                if entry.dyn.index in results:
                    status = self._issue_reused(entry)
                else:
                    status = self._mode_issue(entry)
                if status is not ISSUED:
                    break
                fetch_queue.popleft()
                progress = True
                slots -= 1
        self._progress = progress
        # do_fetch (shared body; guard saves the call when idle)
        if (not self.fetch_blocked and cycle >= self.fetch_resume_cycle
                and self.cursor < self._trace_len
                and len(fetch_queue) < self._fq_depth):
            self.do_fetch()
        # store drain
        store_queue = self.store_queue
        if store_queue._queue and store_queue.drain_step(
                self.hierarchy, cycle, self.committed_memory):
            self._progress = True
        if not self._progress:
            self._leap_to_horizon()

    def _issue_reused(self, entry: FetchEntry) -> str:
        """Replay an instruction whose result a previous pass recorded.

        The saved result breaks the data dependence: no source wait, no
        cache access, single-cycle completion.  It still occupies an
        issue slot and port (Multipass re-processes everything).
        """
        dyn = entry.dyn
        idx = dyn.index
        ports = self.ports
        if self._port_int[idx]:
            if ports.int_free <= 0:
                self.stats.stalls.port += 1
                return STALLED
            ports.int_free -= 1
        else:
            if ports.mem_free <= 0:
                self.stats.stalls.port += 1
                return STALLED
            ports.mem_free -= 1
        completion = self.cycle + 1
        self.result_reuses += 1
        if self.mode == RUNAHEAD:
            dst = dyn.dst
            if dst is not None:
                self._shadow_poison.discard(dst)
                self.reg_ready[dst] = completion
            self.stats.advance_instructions += 1
            if self._phase_of is not None:
                self._phase_advance(idx)
            if dyn.is_control:
                self.predictor.update(dyn)
                if not entry.predicted_ok:
                    self.fetch_blocked = False
                    self.fetch_resume_cycle = completion
                    self._last_fetch_line = -1
        else:
            # Architectural pass: the instruction commits with its saved
            # result; stores still enter the store queue for real.
            if dyn.is_store:
                if self.store_queue.full:
                    self.stats.stalls.store_buffer_full += 1
                    return STALLED
                self.store_queue.push(dyn.addr, dyn.store_val, self.cycle)
            dst = dyn.dst
            if dst is not None:
                self.reg_ready[dst] = completion
            self._results.discard(idx)  # consumed architecturally
            self.commit(dyn, entry, completion)
        return ISSUED

    # ------------------------------------------------------------------
    def _runahead_writeback(self, dyn: DynInst, poisoned: bool,
                            completion: int) -> None:
        # Flattened parent body (this runs once per runahead instruction).
        dst = dyn.dst
        if dst is not None:
            if poisoned:
                self._shadow_poison.add(dst)
                self.reg_ready[dst] = self.cycle
            else:
                self._shadow_poison.discard(dst)
                self.reg_ready[dst] = completion
        self.stats.advance_instructions += 1
        if self._phase_of is not None:
            self._phase_advance(dyn.index)
        if not poisoned and not dyn.is_store:
            results = self._results
            if (dyn.index not in results
                    and len(results) < self.result_buffer_entries):
                results.add(dyn.index)

    def _exit_runahead(self) -> None:
        super()._exit_runahead()
        # Results for instructions older than the restart point can never
        # be replayed again; free their buffer slots.
        self._results = {i for i in self._results if i >= self.cursor}
