"""SLTP — Simple Latency Tolerant Processor (Nekkalapu et al., ICCD 2008).

SLTP, like iCFP, commits miss-independent advance instructions and
defers miss-dependent slices; it differs in exactly the ways Section 4
of the paper calls out, each of which this model reproduces on top of
the shared advance/rally engine:

* **Single blocking rallies.**  One register file with two checkpoints
  and no last-writer tracking means the main register file can only be
  reconciled when the *entire* slice has re-executed: rallies stall at
  pending loads instead of re-poisoning them, and the tail cannot run
  during a rally (``nonblocking_rally=False, mt_rally=False``).
* **SRL-based data memory (Store Redo Log).**  Advance stores write a
  FIFO log *and* speculatively write the data cache (from which
  miss-independent loads forward for free).  When a rally begins, the
  speculatively-written lines are flushed (raising later miss rates —
  the galgel pathology) and the SRL must drain to the cache interleaved
  with slice re-execution; the tail resumes only after the drain
  completes.  Store->load poison propagation uses idealised memory
  dependence prediction (Table 1), which the associative-oracle lookup
  of the shared store buffer provides.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.icfp import ADVANCE, ICFPCore, ICFPFeatures
from ..engine.base import FetchEntry, ISSUED, STALLED
from ..functional.trace import DynInst
from ..isa.instructions import OpClass


def sltp_features(advance_on: str = "l2", validate: bool = False) -> ICFPFeatures:
    """The SLTP point in the engine's feature space."""
    return ICFPFeatures(
        store_buffer_kind="assoc",   # idealised dependence pred. + load queue
        nonblocking_rally=False,
        mt_rally=False,
        poison_bits=1,
        advance_on=advance_on,
        validate=validate,
    )


class SLTPCore(ICFPCore):
    """SLTP: blocking rallies + SRL memory system."""

    name = "sltp"

    def __init__(self, trace, config=None, hierarchy=None, predictor=None,
                 features: ICFPFeatures | None = None,
                 advance_on: str = "l2", **kwargs) -> None:
        feats = features if features is not None else sltp_features(advance_on)
        feats = replace(feats, nonblocking_rally=False, mt_rally=False,
                        poison_bits=1)
        super().__init__(trace, config=config, hierarchy=hierarchy,
                         predictor=predictor, features=feats, **kwargs)
        #: L1 lines written speculatively during the current episode.
        self._spec_lines: set[int] = set()
        self._flushed_this_episode = False
        self.spec_line_flushes = 0

    # ------------------------------------------------------------------
    # SRL behaviours layered over the shared engine
    # ------------------------------------------------------------------
    def _advance_store(self, dyn: DynInst, entry: FetchEntry,
                       src_poison: int) -> str:
        status = super()._advance_store(dyn, entry, src_poison)
        if status is ISSUED and self.mode == ADVANCE:
            addr_poison = self.main_rf.poison[dyn.srcs[0]]
            if not addr_poison:
                # Speculative cache write: younger miss-independent loads
                # forward through the cache itself.
                result = self.hierarchy.data_access(dyn.addr, self.cycle,
                                                    is_store=True)
                if not result.stalled:
                    self._spec_lines.add(result.line_addr)
        return status

    def _start_rally_pass(self) -> None:
        if not self._flushed_this_episode and self._spec_lines:
            # SRL rule: speculatively-written lines cannot survive into
            # the rally; flush them (later accesses will miss).
            for line in self._spec_lines:
                if self.hierarchy.l1d.invalidate(line):
                    self.spec_line_flushes += 1
            self._spec_lines.clear()
            self._flushed_this_episode = True
        super()._start_rally_pass()

    def _end_rally_pass(self) -> None:
        super()._end_rally_pass()
        # Slice re-execution is interleaved with the SRL drain in program
        # order, and the tail cannot resume until the drain completes:
        # charge one cycle per logged store still in the SRL.
        srl_occupancy = len(self.sb)
        if srl_occupancy:
            resume = self.cycle + srl_occupancy
            if resume > self.fetch_resume_cycle:
                self.fetch_resume_cycle = resume

    def _maybe_exit_advance(self) -> None:
        was_advance = self.mode == ADVANCE
        super()._maybe_exit_advance()
        if was_advance and self.mode != ADVANCE:
            self._spec_lines.clear()
            self._flushed_this_episode = False

    def _squash_to_checkpoint(self) -> None:
        for line in self._spec_lines:
            self.hierarchy.l1d.invalidate(line)
        self._spec_lines.clear()
        self._flushed_this_episode = False
        super()._squash_to_checkpoint()
