"""Runahead execution (Dundas & Mudge 1997; Mutlu et al. 2003).

On a qualifying miss the core checkpoints *at the missing load* and
keeps executing purely for the memory-level parallelism: runahead
instructions poison-propagate, prefetch through the real hierarchy, and
forward store data through a best-effort runahead cache — but nothing
commits.  When the triggering miss returns, everything is thrown away
and execution restarts from the checkpointed load (which now hits).

Configurations follow Section 5.1 / Figure 6:

* ``advance_on="l2"``       — enter runahead on L2 misses only, and
  *block* on data-cache misses encountered while running ahead (the
  paper's default, best at a 20-cycle L2);
* ``advance_on="l2_d1"``    — also enter on *primary* D$ misses;
* ``advance_on="all"``      — additionally poison (rather than block on)
  secondary D$ misses while running ahead (the "D$-nb" option of
  Figure 1e/f).
"""

from __future__ import annotations

from ..engine.base import CoreModel, FetchEntry, ISSUED, STALLED
from ..functional.trace import DynInst, KIND_LOAD, KIND_STORE
from ..isa.registers import ZERO_REG
from ..memory.hierarchy import (L2, MEMORY, NO_MSHRS, PENDING, STREAM,
                                MemResult)
from .runahead_cache import RunaheadCache

NORMAL = "normal"
RUNAHEAD = "runahead"


class RunaheadCore(CoreModel):
    """In-order pipeline with Runahead execution."""

    name = "runahead"

    def __init__(self, trace, config=None, hierarchy=None, predictor=None,
                 advance_on: str = "l2", runahead_cache_entries: int = 256,
                 lane_params=None, lane=0, leap=None) -> None:
        super().__init__(trace, config=config, hierarchy=hierarchy,
                         predictor=predictor, lane_params=lane_params,
                         lane=lane, leap=leap)
        if advance_on not in ("l2", "l2_d1", "all"):
            raise ValueError(f"unknown advance_on: {advance_on}")
        self.advance_on = advance_on
        self.mode = NORMAL
        self.ra_cache = RunaheadCache(runahead_cache_entries)
        self._shadow_poison: set[int] = set()
        self._trigger_ready = 0
        self._ckpt_cursor = 0
        self._ckpt_reg_ready: list[int] | None = None
        #: Mode-bound issue path (rebound on mode transitions) — saves a
        #: dispatch hop per issue attempt on the hot path.
        self._mode_issue = self._try_issue_normal

    # ==================================================================
    # mode control
    # ==================================================================
    def begin_cycle(self) -> None:
        # Flattened super() chain: this runs every stepped cycle.
        self.returned_mshrs = self.hierarchy.retire_mshrs(self.cycle)
        if self.mode == RUNAHEAD and self.cycle >= self._trigger_ready:
            self._exit_runahead()

    def next_event_cycle(self) -> int | None:
        """Horizon: a runahead period ends when the trigger miss fills."""
        if self.mode == RUNAHEAD:
            return self._trigger_ready
        return None

    def _head_wakeup(self, entry: FetchEntry) -> int:
        """Match :meth:`_try_issue_runahead`'s stall rules while running
        ahead: shadow-poisoned sources never wait on the scoreboard (they
        poison-propagate instead) and there is no WAW/destination stall.
        The base rule would overestimate the wake-up — and an
        overestimated horizon lets the leap skip issueable cycles."""
        if self.mode != RUNAHEAD:
            return super()._head_wakeup(entry)
        earliest = entry.decode_ready
        shadow = self._shadow_poison
        reg_ready = self.reg_ready
        for src in entry.dyn.srcs:
            if src not in shadow and reg_ready[src] > earliest:
                earliest = reg_ready[src]
        return earliest

    def done(self) -> bool:
        # A runahead period always ends with a restore; the run can only
        # finish in normal mode, after the architectural re-execution.
        return (
            self.mode == NORMAL
            and self.cursor >= self._trace_len
            and not self.fetch_queue
            and self.store_queue.empty
            and self.cycle >= self.last_completion
        )

    def _qualifies_entry(self, result: MemResult) -> bool:
        """Should this normal-mode miss start a runahead period?

        Only *long* misses are worth a runahead period: true DRAM fills
        or in-flight fills with DRAM-class remaining latency.  Stream-
        buffer hits return in L2-hit-class time — entering runahead on
        them costs the restart penalty for almost no look-ahead.
        """
        level = result.level
        if level == MEMORY:
            return True
        if (level == PENDING and result.mshr is not None
                and result.mshr.is_l2):
            threshold = 2 * self._l2_hit_latency
            if result.ready_cycle - self.cycle > threshold:
                return True
        if self.advance_on in ("l2_d1", "all") and level in (L2, PENDING):
            # Primary D$ miss: qualify only if it is the lone outstanding
            # demand miss (otherwise it is a secondary miss).
            return self.hierarchy.outstanding_demand_misses(self.cycle) <= 1
        return False

    def _enter_runahead(self, dyn: DynInst, result: MemResult) -> None:
        self.mode = RUNAHEAD
        self._mode_issue = self._try_issue_runahead
        self._trigger_ready = result.ready_cycle
        self._ckpt_cursor = dyn.index
        self._ckpt_reg_ready = list(self.reg_ready)
        self._shadow_poison = set()
        self.stats.advance_entries += 1

    def _exit_runahead(self) -> None:
        """The triggering miss returned: discard everything and replay."""
        self.mode = NORMAL
        self._mode_issue = self._try_issue_normal
        self.cursor = self._ckpt_cursor
        self.fetch_queue.clear()
        self.fetch_blocked = False
        self.fetch_resume_cycle = self.cycle + 1
        self._last_fetch_line = -1
        self.reg_ready = self._ckpt_reg_ready or [self.cycle] * len(self.reg_ready)
        self._ckpt_reg_ready = None
        self._shadow_poison = set()
        self.ra_cache.flush()

    # ==================================================================
    # issue
    # ==================================================================
    def try_issue(self, entry: FetchEntry) -> str:
        return self._mode_issue(entry)

    def do_issue(self) -> None:
        # Specialised copy of CoreModel.do_issue that invokes the
        # mode-bound issue path directly (re-read per iteration: an
        # issue can start or end a runahead period mid-cycle).
        ports = self.ports
        ports.int_free = ports.int_capacity
        ports.mem_free = ports.mem_capacity
        fetch_queue = self.fetch_queue
        if not fetch_queue:
            return
        slots = self._width
        cycle = self.cycle
        while slots > 0 and fetch_queue:
            entry = fetch_queue[0]
            if entry.decode_ready > cycle:
                break
            if self._mode_issue(entry) is not ISSUED:
                break
            fetch_queue.popleft()
            self._progress = True
            slots -= 1

    def step_cycle(self) -> None:
        # Merged copy of CoreModel.step_cycle (begin/issue/drain phases
        # flattened into one frame; the phase methods above are kept in
        # sync for direct driving).  This is the per-cycle hot path —
        # the golden fixtures pin its equivalence.
        cycle = self.cycle + 1
        self.cycle = cycle
        # begin_cycle (retire fast path inlined)
        hierarchy = self.hierarchy
        ifetch_mshrs = hierarchy.ifetch_mshrs
        if (ifetch_mshrs._next_ready is not None
                and cycle >= ifetch_mshrs._next_ready):
            ifetch_mshrs.retire_complete(cycle)
        data_mshrs = hierarchy.mshrs
        if data_mshrs._next_ready is not None and cycle >= data_mshrs._next_ready:
            self.returned_mshrs = data_mshrs.retire_complete(cycle)
        else:
            self.returned_mshrs = NO_MSHRS
        if self.mode == RUNAHEAD and cycle >= self._trigger_ready:
            self._exit_runahead()
        # do_issue
        ports = self.ports
        ports.int_free = ports.int_capacity
        ports.mem_free = ports.mem_capacity
        progress = False
        fetch_queue = self.fetch_queue
        if fetch_queue:
            slots = self._width
            while slots > 0 and fetch_queue:
                entry = fetch_queue[0]
                if entry.decode_ready > cycle:
                    break
                if self._mode_issue(entry) is not ISSUED:
                    break
                fetch_queue.popleft()
                progress = True
                slots -= 1
        self._progress = progress
        # do_fetch (shared body; guard saves the call when idle)
        if (not self.fetch_blocked and cycle >= self.fetch_resume_cycle
                and self.cursor < self._trace_len
                and len(fetch_queue) < self._fq_depth):
            self.do_fetch()
        # store drain
        store_queue = self.store_queue
        if store_queue._queue and store_queue.drain_step(
                self.hierarchy, cycle, self.committed_memory):
            self._progress = True
        if not self._progress:
            self._leap_to_horizon()

    def _try_issue_normal(self, entry: FetchEntry) -> str:
        dyn = entry.dyn
        idx = dyn.index
        cycle = self.cycle
        ports = self.ports
        port_int = self._port_int[idx]
        if port_int:
            if ports.int_free <= 0:
                self.stats.stalls.port += 1
                return STALLED
        elif ports.mem_free <= 0:
            self.stats.stalls.port += 1
            return STALLED
        reg_ready = self.reg_ready
        nsrc = self._nsrc[idx]
        if nsrc:
            if reg_ready[self._src0[idx]] > cycle:
                self.stats.stalls.src_wait += 1
                return STALLED
            if nsrc > 1:
                if reg_ready[self._src1[idx]] > cycle:
                    self.stats.stalls.src_wait += 1
                    return STALLED
                if nsrc > 2:
                    for src in self._srcs[idx][2:]:
                        if reg_ready[src] > cycle:
                            self.stats.stalls.src_wait += 1
                            return STALLED
        dst = self._dst[idx]
        if dst is not None and dst != ZERO_REG and reg_ready[dst] > cycle:
            self.stats.stalls.waw_wait += 1
            return STALLED
        kind = self._kind[idx]
        if kind == KIND_LOAD:
            hit = self.store_queue.forward(dyn.addr)
            if hit is not None:
                self.stats.store_forward_hits += 1
                completion = cycle + self._l1d_hit_latency
            elif (ready := self.hierarchy.data_hit_cycle(dyn.addr,
                                                         cycle)) is not None:
                # L1 hit: record_miss is a no-op and an L1 hit never
                # qualifies a runahead entry, so skip both.
                completion = ready
            else:
                result = self.hierarchy.data_access(dyn.addr, cycle)
                if result.stalled:
                    self.stats.stalls.mshr_full += 1
                    return STALLED
                self.record_miss(result, dyn.index)
                if self._qualifies_entry(result):
                    # Checkpoint at the load and run ahead; the load is
                    # the first runahead instruction (discarded later).
                    self._enter_runahead(dyn, result)
                    ports.mem_free -= 1
                    self._runahead_writeback(dyn, poisoned=True,
                                             completion=cycle + 1)
                    return ISSUED
                completion = result.ready_cycle
        elif kind == KIND_STORE:
            if self.store_queue.full:
                self.stats.stalls.store_buffer_full += 1
                return STALLED
            self.store_queue.push(dyn.addr, dyn.store_val, cycle)
            completion = cycle + 1
        else:
            completion = cycle + self._exec_done[idx]
        if port_int:
            ports.int_free -= 1
        else:
            ports.mem_free -= 1
        self.commit(dyn, entry, completion)
        return ISSUED

    # ------------------------------------------------------------------
    # runahead mode
    # ------------------------------------------------------------------
    def _try_issue_runahead(self, entry: FetchEntry) -> str:
        dyn = entry.dyn
        idx = dyn.index
        cycle = self.cycle
        shadow = self._shadow_poison
        reg_ready = self.reg_ready
        poisoned = False
        nsrc = self._nsrc[idx]
        if nsrc:
            src = self._src0[idx]
            if src in shadow:
                poisoned = True
            elif reg_ready[src] > cycle:
                self.stats.stalls.src_wait += 1
                return STALLED
            if nsrc > 1:
                src = self._src1[idx]
                if src in shadow:
                    poisoned = True
                elif reg_ready[src] > cycle:
                    self.stats.stalls.src_wait += 1
                    return STALLED
                if nsrc > 2:
                    for src in self._srcs[idx][2:]:
                        if src in shadow:
                            poisoned = True
                        elif reg_ready[src] > cycle:
                            self.stats.stalls.src_wait += 1
                            return STALLED
        ports = self.ports
        port_int = self._port_int[idx]
        if port_int:
            if ports.int_free <= 0:
                self.stats.stalls.port += 1
                return STALLED
        elif ports.mem_free <= 0:
            self.stats.stalls.port += 1
            return STALLED

        completion = cycle + 1
        kind = self._kind[idx]
        if not poisoned:
            if kind == KIND_LOAD:
                status, completion, poisoned = self._runahead_load(dyn)
                if status is not ISSUED:
                    return status
            elif kind == KIND_STORE:
                self.ra_cache.write(dyn.addr, dyn.store_val, poisoned=False)
            else:
                completion = cycle + self._exec_done[idx]
        elif kind == KIND_STORE:
            # Poisoned data (or address): best-effort poison propagation.
            addr_poisoned = dyn.srcs[0] in shadow
            if not addr_poisoned:
                self.ra_cache.write(dyn.addr, None, poisoned=True)

        if port_int:
            ports.int_free -= 1
        else:
            ports.mem_free -= 1
        self._runahead_writeback(dyn, poisoned, completion)
        if dyn.is_control:
            self.predictor.update(dyn)
            if not entry.predicted_ok:
                if poisoned:
                    # Wrong path with no way to recover until the period
                    # ends; fetch stays blocked.
                    pass
                else:
                    self.fetch_blocked = False
                    self.fetch_resume_cycle = completion
                    self._last_fetch_line = -1
        return ISSUED

    def _runahead_load(self, dyn: DynInst):
        """Returns (status, completion, poisoned)."""
        fwd = self.ra_cache.read(dyn.addr)
        if fwd is not None:
            return ISSUED, self.cycle + self._l1d_hit_latency, fwd[1]
        hit = self.store_queue.forward(dyn.addr)
        if hit is not None:
            self.stats.store_forward_hits += 1
            return ISSUED, self.cycle + self._l1d_hit_latency, False
        ready = self.hierarchy.data_hit_cycle(dyn.addr, self.cycle)
        if ready is not None:
            # L1 hit: never L2-class, never a D$ miss — plain completion.
            return ISSUED, ready, False
        result = self.hierarchy.data_access(dyn.addr, self.cycle)
        if result.stalled:
            self.stats.stalls.mshr_full += 1
            return STALLED, 0, False
        self.record_miss(result, dyn.index)
        if self._is_l2_class(result):
            return ISSUED, self.cycle + 1, True  # poison, keep flowing
        if result.l1_miss and self.advance_on == "all":
            return ISSUED, self.cycle + 1, True  # D$-nb option
        return ISSUED, result.ready_cycle, False  # D$-blocking (default)

    def _is_l2_class(self, result: MemResult) -> bool:
        """Long-latency (DRAM-class) misses poison during runahead."""
        if result.level == MEMORY:
            return True
        if result.level in (STREAM, PENDING):
            threshold = 2 * self._l2_hit_latency
            return result.ready_cycle - self.cycle > threshold
        return False

    def _runahead_writeback(self, dyn: DynInst, poisoned: bool,
                            completion: int) -> None:
        dst = dyn.dst
        if dst is not None:
            if poisoned:
                self._shadow_poison.add(dst)
                self.reg_ready[dst] = self.cycle
            else:
                self._shadow_poison.discard(dst)
                self.reg_ready[dst] = completion
        self.stats.advance_instructions += 1
        if self._phase_of is not None:
            self._phase_advance(dyn.index)
