"""Declarative workload specifications.

A :class:`WorkloadSpec` *is* a workload: a named, seeded sequence of
phases, each an archetype (:data:`repro.workloads.archetypes.ARCHETYPES`)
with a :class:`~repro.workloads.builders.KernelParams` tuning record.
Specs are frozen dataclasses of primitives, which buys three properties
the campaign infrastructure builds on:

* **picklable** — a spec rides inside a :class:`~repro.exec.job.SimJob`
  to pooled worker processes, which rebuild the program from it;
* **fingerprintable** — :func:`repro.exec.fingerprint.canonical` folds
  the whole spec into the job's sha256 fingerprint, so generated
  workloads memoize in RAM and persist in the disk store exactly like
  the named suite (two specs share records iff they are field-for-field
  equal);
* **serialisable** — the JSON round-trip (:func:`spec_to_payload` /
  :func:`payload_to_spec`) is the ``repro wgen generate`` file format.

The program itself is materialised lazily by the phase composer
(:mod:`repro.wgen.compose`) on whichever process needs the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from functools import cached_property

from ..exec.fingerprint import fingerprint
from ..workloads.builders import KernelParams

#: Spec-file format tag (the ``repro wgen generate`` output).
SPEC_SCHEMA = "repro.wgen/v1"


@dataclass(frozen=True)
class PhaseSpec:
    """One phase: an archetype plus its tuning knobs.

    ``params.iterations`` must be *finite* — it is the phase's trip
    count before control falls through to the next phase (the composer
    wraps the whole phase sequence in an endless outer loop; the
    functional executor's instruction budget bounds dynamic length, as
    it does for the named suite).
    """

    archetype: str
    params: KernelParams

    def __post_init__(self) -> None:
        from ..workloads.archetypes import ARCHETYPES

        if self.archetype not in ARCHETYPES:
            raise ValueError(
                f"unknown archetype {self.archetype!r}; "
                f"choose from {sorted(ARCHETYPES)}"
            )


@dataclass(frozen=True)
class WorkloadSpec:
    """A generated workload: named, seeded, phase-structured.

    ``seed`` records the generator seed the spec was sampled with
    (provenance; phase layouts randomise from their own
    ``params.seed``).  ``description`` is free text for listings.
    """

    name: str
    phases: tuple[PhaseSpec, ...]
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("WorkloadSpec needs a non-empty name")
        if not self.phases:
            raise ValueError(f"workload {self.name!r} needs >= 1 phase")
        object.__setattr__(self, "phases", tuple(self.phases))

    @cached_property
    def fingerprint(self) -> str:
        """Deterministic sha256 identity of the full spec."""
        return fingerprint("wgen", self)

    @property
    def short_id(self) -> str:
        return self.fingerprint[:10]

    @property
    def archetype_mix(self) -> str:
        """Human-readable phase chain, e.g. ``hash_join>streaming``."""
        return ">".join(p.archetype for p in self.phases)


def workload_name(workload) -> str:
    """Display/table key of a workload reference.

    The harness accepts suite kernel names (``str``) and
    :class:`WorkloadSpec` instances interchangeably; result tables are
    keyed by this name in both cases.
    """
    return workload if isinstance(workload, str) else workload.name


# ----------------------------------------------------------------------
# JSON round-trip (the `repro wgen generate` file format)
# ----------------------------------------------------------------------
_PARAM_FIELDS = tuple(f.name for f in fields(KernelParams))
_PARAM_DEFAULTS = KernelParams()


def spec_to_payload(spec: WorkloadSpec) -> dict:
    """One spec as a JSON-ready dict (non-default params only)."""
    return {
        "name": spec.name,
        "seed": spec.seed,
        "description": spec.description,
        "fingerprint": spec.fingerprint,
        "phases": [
            {
                "archetype": phase.archetype,
                "params": {
                    name: getattr(phase.params, name)
                    for name in _PARAM_FIELDS
                    if getattr(phase.params, name)
                    != getattr(_PARAM_DEFAULTS, name)
                },
            }
            for phase in spec.phases
        ],
    }


def payload_to_spec(payload: dict) -> WorkloadSpec:
    """Rebuild a spec from :func:`spec_to_payload` output.

    The recorded fingerprint, when present, is verified — a spec file
    edited by hand (or written by a different KernelParams revision)
    must fail loudly, not silently name different store records.
    """
    spec = WorkloadSpec(
        name=str(payload["name"]),
        phases=tuple(
            PhaseSpec(
                archetype=str(phase["archetype"]),
                params=KernelParams(**phase.get("params", {})),
            )
            for phase in payload["phases"]
        ),
        seed=int(payload.get("seed", 0)),
        description=str(payload.get("description", "")),
    )
    recorded = payload.get("fingerprint")
    if recorded is not None and recorded != spec.fingerprint:
        raise ValueError(
            f"spec {spec.name!r}: recorded fingerprint {recorded[:12]}... "
            f"does not match the rebuilt spec ({spec.fingerprint[:12]}...); "
            "the file was edited or written by an incompatible version"
        )
    return spec


def suite_to_payload(specs, generator: dict | None = None) -> dict:
    """A whole generated suite as the spec-file payload."""
    return {
        "schema": SPEC_SCHEMA,
        "generator": dict(generator or {}),
        "specs": [spec_to_payload(spec) for spec in specs],
    }


def payload_to_suite(payload: dict) -> list[WorkloadSpec]:
    if payload.get("schema") != SPEC_SCHEMA:
        raise ValueError(
            f"not a {SPEC_SCHEMA} spec file (schema={payload.get('schema')!r})"
        )
    return [payload_to_spec(entry) for entry in payload["specs"]]


def with_phase_iterations(spec: WorkloadSpec, iterations: int) -> WorkloadSpec:
    """A copy of ``spec`` with every phase's trip count replaced."""
    return replace(spec, phases=tuple(
        PhaseSpec(p.archetype, replace(p.params, iterations=iterations))
        for p in spec.phases
    ))
