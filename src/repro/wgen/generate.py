"""Seeded procedural workload generation — the "suite of N" mode.

``generate_suite(count, seed)`` samples ``count`` workload specs from a
parameter space spanning every archetype family, deterministically: the
only randomness source is one ``random.Random(seed)``, so the same
``(count, seed, knobs)`` always yields byte-identical specs — and hence
identical fingerprints, traces, and store records — on any process and
any ``PYTHONHASHSEED``.

Sampling ranges mirror the spread the fixed suite was tuned to (Table
2): footprints from cache-resident to many-times-L2, compute densities
from scan-like to arithmetic-dense, branch entropy from none to
coin-flip.  Multi-phase workloads chain 1..``max_phases`` archetypes
(pointer-chase -> compute -> streaming and every other combination),
opening the phase-change scenarios a frozen suite cannot express.
"""

from __future__ import annotations

import random

from ..workloads.builders import KernelParams
from .spec import PhaseSpec, WorkloadSpec

KB = 1024
MB = 1024 * KB

#: Archetypes the sampler draws from ("compute" is random_access with
#: cache-resident parameters, so it is covered by that family).
ARCHETYPE_POOL = (
    "pointer_chase",
    "streaming",
    "strided_fp",
    "random_access",
    "branchy",
    "blocked_matrix",
    "hash_join",
)

#: Per-phase trip counts: enough iterations that a phase holds its
#: behaviour for a stretch of the instruction budget, small enough that
#: multi-phase programs actually rotate within one sampled window.
_MIN_ITERATIONS, _MAX_ITERATIONS = 48, 256


def _log_uniform_bytes(rng: random.Random, lo: int, hi: int) -> int:
    """A power-of-two-ish size between lo and hi (log-uniform)."""
    return 1 << rng.randint(lo.bit_length() - 1, hi.bit_length() - 1)


def _sample_phase(rng: random.Random, archetype: str) -> PhaseSpec:
    """One phase's tuning record, sampled per archetype family."""
    footprint = _log_uniform_bytes(rng, 128 * KB, 8 * MB)
    hot = _log_uniform_bytes(rng, 8 * KB, 64 * KB)
    compute = rng.choice((0, 1, 2, 4, 7, 12, 20, 34))
    seed = rng.randint(1, 1 << 30)
    iterations = rng.randint(_MIN_ITERATIONS, _MAX_ITERATIONS)
    common = dict(footprint_bytes=footprint, hot_bytes=hot, compute=compute,
                  iterations=iterations, seed=seed)
    if archetype == "pointer_chase":
        params = KernelParams(
            chains=rng.choice((1, 1, 2, 3)),
            arc_loads=rng.choice((0, 1, 1, 2)),
            arc_bytes=_log_uniform_bytes(rng, 128 * KB, 4 * MB),
            use_fp=rng.random() < 0.3,
            **common)
    elif archetype in ("streaming", "strided_fp"):
        params = KernelParams(
            stride_bytes=rng.choice((8, 16, 16, 64)),
            cold_period=rng.choice((0, 8, 16, 32, 64)),
            cold_random=rng.random() < 0.25,
            stores=rng.random() < 0.4,
            use_fp=True if archetype == "strided_fp" else rng.random() < 0.6,
            **common)
    elif archetype == "random_access":
        params = KernelParams(
            cold_period=rng.choice((8, 16, 32)),
            use_fp=rng.random() < 0.2,
            **common)
    elif archetype == "branchy":
        params = KernelParams(
            stride_bytes=64,
            cold_period=rng.choice((0, 8, 16)),
            **common)
    elif archetype == "blocked_matrix":
        params = KernelParams(
            stride_bytes=rng.choice((512, 1024, 4096)),
            stores=rng.random() < 0.6,
            use_fp=True,
            **common)
    else:  # hash_join
        params = KernelParams(
            unpredictable_branches=rng.choice((0.0, 0.25, 0.5, 1.0)),
            chain_depth=rng.randint(1, 3),
            stores=rng.random() < 0.5,
            **common)
    return PhaseSpec(archetype=archetype, params=params)


def generate_workload(rng: random.Random, name: str, seed: int,
                      max_phases: int = 3,
                      archetypes=ARCHETYPE_POOL) -> WorkloadSpec:
    """Sample one phase-structured workload from ``rng``."""
    # Favour 1-2 phases, allow up to the ceiling (uniform tail weight).
    weights = ((6, 3, 1) + (1,) * max(0, max_phases - 3))[:max_phases]
    n_phases = rng.choices(range(1, len(weights) + 1), weights=weights)[0]
    phases = tuple(_sample_phase(rng, rng.choice(list(archetypes)))
                   for _ in range(n_phases))
    mix = ">".join(p.archetype for p in phases)
    return WorkloadSpec(name=name, phases=phases, seed=seed,
                        description=f"generated: {mix}")


def generate_suite(count: int, seed: int, max_phases: int = 3,
                   archetypes=ARCHETYPE_POOL) -> list[WorkloadSpec]:
    """``count`` deterministic workload specs for generator ``seed``."""
    if count < 1:
        raise ValueError("count must be >= 1")
    if max_phases < 1:
        raise ValueError("max_phases must be >= 1")
    unknown = [a for a in archetypes if a not in ARCHETYPE_POOL]
    if unknown:
        raise ValueError(f"unknown archetypes: {unknown}; "
                         f"choose from {list(ARCHETYPE_POOL)}")
    # Non-default sampler knobs produce different specs for the same
    # seed, so their names must not collide with the canonical
    # ``gen{seed}_NN`` series (the registry rejects one name binding
    # two specs); a short knob digest keeps them distinct.
    if max_phases == 3 and tuple(archetypes) == ARCHETYPE_POOL:
        prefix = f"gen{seed}"
    else:
        import hashlib

        knobs = repr((max_phases, tuple(archetypes)))
        prefix = f"gen{seed}v{hashlib.sha256(knobs.encode()).hexdigest()[:6]}"
    rng = random.Random(seed)
    return [
        generate_workload(rng, f"{prefix}_{index:02d}", seed,
                          max_phases=max_phases, archetypes=archetypes)
        for index in range(count)
    ]
