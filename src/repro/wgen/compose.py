"""The phase-structured program composer.

``build_workload`` turns a :class:`~repro.wgen.spec.WorkloadSpec` into a
runnable :class:`~repro.workloads.builders.Kernel` by stitching the
archetype builders of :mod:`repro.workloads.archetypes` — written as
standalone whole programs — into one multi-phase program:

* each phase's builder emits inside an
  :meth:`~repro.isa.assembler.Assembler.subprogram` scope, so its labels
  (``inner``, ``join``, ...) cannot collide with another phase's;
* the builder's final ``halt`` becomes a jump to the next phase's entry
  label, and the last phase jumps back to phase 0 — the composed
  program cycles through its phases forever, exactly like the named
  suite's unbounded kernels, with the functional executor's instruction
  budget bounding dynamic length;
* each phase's data lives in its own
  :data:`~repro.workloads.builders.PHASE_REGION_BYTES` slice of the
  address space (``params.data_base`` is overridden per phase), so a
  pointer-chase phase and a streaming phase never alias each other's
  structures.

Phase *trip counts* (``params.iterations``) are finite and control how
long each phase runs before handing off — the knob behind
pointer-chase -> compute-bound -> streaming programs whose behaviour
*changes* within one sampling window, which no fixed-suite kernel does.
"""

from __future__ import annotations

from dataclasses import replace

from ..isa.assembler import Assembler
from ..workloads.archetypes import ARCHETYPES
from ..workloads.builders import DATA_BASE, PHASE_REGION_BYTES, Kernel
from .spec import WorkloadSpec

#: Phase entry labels (unscoped, owned by the composer).
_PHASE_LABEL = "__phase{index}"


def phase_data_base(index: int) -> int:
    """Data-segment base of phase ``index`` in a composed program."""
    return DATA_BASE + index * PHASE_REGION_BYTES


def phase_region_name(index: int, archetype: str) -> str:
    """Display name of phase ``index`` in attribution tables."""
    return f"p{index}:{archetype}"


def build_workload(spec: WorkloadSpec) -> Kernel:
    """Materialise a spec into an assembled multi-phase kernel."""
    assembler = Assembler(spec.name)
    count = len(spec.phases)
    for index, phase in enumerate(spec.phases):
        params = replace(phase.params, data_base=phase_data_base(index))
        successor = _PHASE_LABEL.format(index=(index + 1) % count)
        assembler.label(_PHASE_LABEL.format(index=index))
        with assembler.subprogram(f"p{index}", halt_to=successor):
            ARCHETYPES[phase.archetype](assembler, params)
    program = assembler.assemble()
    # Phase attribution map: phases are emitted contiguously, so phase
    # i's static code is [label(__phase i), label(__phase i+1)) and the
    # last phase runs to the end of the program.  The timing models
    # bucket committed stats by these regions (observation only).
    bounds = [program.labels[_PHASE_LABEL.format(index=i)]
              for i in range(count)] + [len(program.instructions)]
    program.phase_regions = tuple(
        (phase_region_name(i, spec.phases[i].archetype),
         bounds[i], bounds[i + 1])
        for i in range(count)
    )
    return Kernel(
        name=spec.name,
        program=program,
        archetype=spec.archetype_mix,
        params=spec.phases[0].params,
        description=spec.description,
    )
