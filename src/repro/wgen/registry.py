"""Name registry and workload-reference resolution.

The harness layers (suite runner, sweeps, figures, CLI) identify
workloads by *reference*: either a named-suite kernel (``str``) or a
generated :class:`~repro.wgen.spec.WorkloadSpec`.  Execution never
needs a registry — specs are self-contained and travel inside job
specs — but names are how humans and the CLI address things, so this
module keeps a process-wide ``name -> spec`` table:

* ``register`` / ``registered`` back ``repro wgen list`` and let a
  session refer to generated workloads by name (``resolve`` falls back
  to the registry for names outside the fixed suite);
* ``resolve_workloads`` normalises a mixed reference list, expanding
  the two CLI shorthands — ``@file.json`` (a ``repro wgen generate``
  spec file) and ``gen:N[:SEED]`` (an inline seeded suite of N).
"""

from __future__ import annotations

import json

from ..workloads.suite import ALL_KERNELS
from .spec import WorkloadSpec, payload_to_suite

#: Process-wide name -> spec table (pool workers never need it: specs
#: travel inside SimJobs).
_REGISTRY: dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    """Make ``spec`` addressable by name; returns it for chaining.

    Re-registering the identical spec is a no-op; binding a suite
    kernel's name or a different spec under a taken name is an error —
    a name must never silently change which workload it means.
    """
    if spec.name in ALL_KERNELS:
        raise ValueError(
            f"{spec.name!r} is a named-suite kernel; generated workloads "
            "must not shadow it"
        )
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise ValueError(
            f"workload name {spec.name!r} already registered with a "
            "different spec"
        )
    _REGISTRY[spec.name] = spec
    return spec


def registered() -> dict[str, WorkloadSpec]:
    """A snapshot of the registry (name -> spec)."""
    return dict(_REGISTRY)


def clear() -> None:
    """Forget all registered specs (tests)."""
    _REGISTRY.clear()


def resolve(name: str) -> str | WorkloadSpec:
    """A single name to a workload reference (suite name or spec)."""
    if name in ALL_KERNELS:
        return name
    spec = _REGISTRY.get(name)
    if spec is not None:
        return spec
    raise KeyError(
        f"unknown workload {name!r}: neither a suite kernel nor a "
        "registered generated workload"
    )


def load_spec_file(path: str) -> list[WorkloadSpec]:
    """Load and register the specs of a ``repro wgen generate`` file."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return [register(spec) for spec in payload_to_suite(payload)]


def resolve_workloads(refs) -> list:
    """Normalise a mixed workload-reference list for the harness.

    Accepts suite kernel names, registered generated names,
    :class:`WorkloadSpec` instances, ``@path.json`` spec files, and
    ``gen:N[:SEED]`` inline generated suites; returns a flat list of
    suite names and specs (the shapes ``SimJob`` accepts).  Specs
    arriving by value or by file are registered as a side effect.
    """
    from .generate import generate_suite

    resolved: list = []
    for ref in refs:
        if isinstance(ref, WorkloadSpec):
            resolved.append(register(ref))
        elif ref.startswith("@"):
            resolved.extend(load_spec_file(ref[1:]))
        elif ref.startswith("gen:"):
            parts = ref.split(":")
            if len(parts) not in (2, 3) or not parts[1].isdigit() or (
                    len(parts) == 3 and not parts[2].isdigit()):
                raise ValueError(
                    f"bad generated-suite reference {ref!r}: use gen:N or "
                    "gen:N:SEED"
                )
            count = int(parts[1])
            seed = int(parts[2]) if len(parts) == 3 else 0
            resolved.extend(register(spec)
                            for spec in generate_suite(count, seed))
        else:
            resolved.append(resolve(ref))
    return resolved
