"""Workload characterisation: Table-2-style self-documentation.

Generated suites must be as legible as the named one, whose Table 2
characterisation was hand-tuned.  This pipeline runs the *functional*
executor over a workload (through the engine's trace cache, so the
trace is shared with any timing campaign at the same budget) and
reports, per kernel:

* the instruction mix (loads / stores / branches per kilo-instruction),
* the data footprint in 64-byte lines,
* **miss proxies** — misses per kilo-instruction of the raw address
  stream against the Table 1 D$ (32 KB/4-way) and L2 (1 MB/8-way) tag
  arrays, replayed through the same :class:`~repro.memory.cache.Cache`
  LRU model the timing hierarchy uses.  No MSHRs, stream buffers, or
  victim caches — these are locality measures of the *workload*, not
  predictions of any machine's miss rate;
* a **branch-mispredict proxy** — a per-PC 2-bit-counter predictor over
  the trace's branch outcomes (entropy of the control stream, not a PPM
  prediction);
* dataflow structure — the ILP bound and the chained-load fraction /
  depth of :mod:`repro.functional.analysis` (the dependent-miss
  signature of Figures 1c/1d).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..functional.analysis import dataflow_stats, load_chain_stats
from ..memory.cache import Cache
from ..memory.hierarchy import HierarchyConfig
from .spec import WorkloadSpec, workload_name


@dataclass
class PhaseCharacterization:
    """Functional proxies for one phase of a composed workload.

    The same counters the timing models' phase attribution buckets at
    retirement, measured on the functional side — so the per-phase
    timing view (``repro phases``) and the per-phase functional view
    (``repro wgen characterize``) line up phase for phase.
    """

    name: str
    instructions: int
    loads_per_ki: float
    stores_per_ki: float
    branches_per_ki: float
    footprint_lines: int
    d_mpki: float
    l2_mpki: float


@dataclass
class Characterization:
    """One workload's functional characterisation."""

    name: str
    mix: str                     # archetype (suite) or phase chain (wgen)
    instructions: int
    loads_per_ki: float
    stores_per_ki: float
    branches_per_ki: float
    footprint_lines: int
    d_mpki: float                # D$ miss proxy (32 KB/4-way tag replay)
    l2_mpki: float               # L2 miss proxy (1 MB/8-way tag replay)
    branch_mpki: float           # 2-bit-counter mispredict proxy
    ilp_bound: float
    chained_load_fraction: float
    max_chain_depth: int
    #: Per-phase proxies (empty for single-phase programs).
    phases: tuple[PhaseCharacterization, ...] = ()


def _miss_proxies(trace, hierarchy: HierarchyConfig,
                  phase_of=None, per_phase=None) -> tuple[int, int]:
    """(D$, L2) tag-array misses of the trace's raw address stream.

    With ``phase_of``/``per_phase`` given, each miss is also charged to
    the accessing instruction's phase bucket (``per_phase`` is a list of
    ``[d_misses, l2_misses]`` pairs) — the shared tag arrays still walk
    the whole stream once, so cross-phase interference is represented
    exactly as the timing hierarchy sees it.
    """
    l1d = Cache(hierarchy.l1d)
    l2 = Cache(hierarchy.l2)
    d_misses = l2_misses = 0
    for dyn in trace:
        addr = dyn.addr
        if addr is None:
            continue
        if not l1d.lookup(hierarchy.l1d.line_addr(addr)):
            d_misses += 1
            if phase_of is not None:
                per_phase[phase_of[dyn.index]][0] += 1
            l1d.insert(hierarchy.l1d.line_addr(addr))
            if not l2.lookup(hierarchy.l2.line_addr(addr)):
                l2_misses += 1
                if phase_of is not None:
                    per_phase[phase_of[dyn.index]][1] += 1
                l2.insert(hierarchy.l2.line_addr(addr))
    return d_misses, l2_misses


def _characterize_phases(trace, regions, phase_of,
                         phase_misses) -> tuple[PhaseCharacterization, ...]:
    """Per-phase mix/footprint rows for a multi-phase trace."""
    count = len(regions)
    insts = [0] * count
    loads = [0] * count
    stores = [0] * count
    branches = [0] * count
    lines: list[set[int]] = [set() for _ in range(count)]
    for dyn in trace:
        phase = phase_of[dyn.index]
        insts[phase] += 1
        if dyn.is_load:
            loads[phase] += 1
        elif dyn.is_store:
            stores[phase] += 1
        if dyn.is_branch:
            branches[phase] += 1
        if dyn.addr is not None:
            lines[phase].add(dyn.addr // 64)
    rows = []
    for i, (name, _lo, _hi) in enumerate(regions):
        per_ki = 1000.0 / max(1, insts[i])
        rows.append(PhaseCharacterization(
            name=name,
            instructions=insts[i],
            loads_per_ki=loads[i] * per_ki,
            stores_per_ki=stores[i] * per_ki,
            branches_per_ki=branches[i] * per_ki,
            footprint_lines=len(lines[i]),
            d_mpki=phase_misses[i][0] * per_ki,
            l2_mpki=phase_misses[i][1] * per_ki,
        ))
    return tuple(rows)


def _branch_mispredicts(trace) -> int:
    """Mispredicts of a per-PC 2-bit saturating counter (entropy proxy)."""
    counters: dict[int, int] = {}
    mispredicts = 0
    for dyn in trace:
        if not dyn.is_branch:
            continue
        counter = counters.get(dyn.pc, 2)
        if (counter >= 2) != dyn.taken:
            mispredicts += 1
        if dyn.taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        counters[dyn.pc] = counter
    return mispredicts


def characterize(workload, instructions: int,
                 hierarchy: HierarchyConfig | None = None) -> Characterization:
    """Characterise one workload (suite kernel name or WorkloadSpec).

    The trace comes from the engine's cache, so a characterisation
    immediately before or after a timing campaign at the same budget
    re-executes nothing.
    """
    from ..exec.cache import TRACE_CACHE

    hierarchy = hierarchy if hierarchy is not None else HierarchyConfig.hpca09()
    trace = TRACE_CACHE.get(workload, instructions)
    n = len(trace)
    per_ki = 1000.0 / max(1, n)
    regions = trace.program.phase_regions
    phase_of = trace.phase_index() if len(regions) > 1 else None
    phase_misses = [[0, 0] for _ in regions] if phase_of is not None else None
    d_misses, l2_misses = _miss_proxies(trace, hierarchy,
                                        phase_of, phase_misses)
    flow = dataflow_stats(trace)
    chains = load_chain_stats(trace)
    if isinstance(workload, WorkloadSpec):
        mix = workload.archetype_mix
    else:
        from ..workloads.suite import _SUITE_SPEC

        mix = _SUITE_SPEC[workload][0]
    return Characterization(
        name=workload_name(workload),
        mix=mix,
        instructions=n,
        loads_per_ki=trace.num_loads * per_ki,
        stores_per_ki=trace.num_stores * per_ki,
        branches_per_ki=trace.num_branches * per_ki,
        footprint_lines=trace.mem_footprint_lines(),
        d_mpki=d_misses * per_ki,
        l2_mpki=l2_misses * per_ki,
        branch_mpki=_branch_mispredicts(trace) * per_ki,
        ilp_bound=flow.ilp_bound,
        chained_load_fraction=chains.chained_load_fraction,
        max_chain_depth=chains.max_chain_depth,
        phases=(_characterize_phases(trace, regions, phase_of, phase_misses)
                if phase_of is not None else ()),
    )


def characterize_suite(workloads, instructions: int) -> list[Characterization]:
    """Characterise a whole (named or generated) suite."""
    return [characterize(w, instructions) for w in workloads]


def format_characterizations(rows: list[Characterization]) -> str:
    """The Table-2-style text table ``repro wgen characterize`` prints."""
    lines = [
        "Workload characterisation (functional proxies, "
        f"{rows[0].instructions if rows else 0} instructions)",
        f"{'workload':16s} {'ld/KI':>6s} {'st/KI':>6s} {'br/KI':>6s} "
        f"{'D$/KI':>6s} {'L2/KI':>6s} {'brMP/KI':>8s} {'lines':>7s} "
        f"{'ILP':>5s} {'chain':>6s} {'depth':>6s}  mix",
    ]
    for row in rows:
        lines.append(
            f"{row.name:16s} {row.loads_per_ki:6.1f} {row.stores_per_ki:6.1f} "
            f"{row.branches_per_ki:6.1f} {row.d_mpki:6.1f} {row.l2_mpki:6.1f} "
            f"{row.branch_mpki:8.1f} {row.footprint_lines:7d} "
            f"{row.ilp_bound:5.1f} {row.chained_load_fraction:6.0%} "
            f"{row.max_chain_depth:6d}  {row.mix}"
        )
        for phase in row.phases:
            lines.append(
                f"  {phase.name:14s} {phase.loads_per_ki:6.1f} "
                f"{phase.stores_per_ki:6.1f} {phase.branches_per_ki:6.1f} "
                f"{phase.d_mpki:6.1f} {phase.l2_mpki:6.1f} {'':8s} "
                f"{phase.footprint_lines:7d} {'':5s} {'':6s} {'':6s}  "
                f"({phase.instructions} insts)"
            )
    return "\n".join(lines)
