"""Procedural workload generation and characterisation (``repro.wgen``).

The layer between the ISA/functional core and the campaign harness that
turns the workload suite from a constant into an axis: declarative
:class:`WorkloadSpec`s (:mod:`.spec`), a phase-structured composer over
the archetype builders (:mod:`.compose`), a seeded suite-of-N sampler
(:mod:`.generate`), a Table-2-style characterisation pipeline
(:mod:`.characterize`), and the name registry / CLI-shorthand resolver
(:mod:`.registry`).  Generated workloads run through ``run_suite``, the
sweeps, and the figures interchangeably with the named suite — traces
land in the engine's trace cache and results in the RAM memo and the
persistent store, keyed by fingerprints the spec composes into.
"""

from .characterize import (
    Characterization,
    PhaseCharacterization,
    characterize,
    characterize_suite,
    format_characterizations,
)
from .compose import build_workload, phase_data_base
from .generate import ARCHETYPE_POOL, generate_suite, generate_workload
from .registry import (
    load_spec_file,
    register,
    registered,
    resolve,
    resolve_workloads,
)
from .spec import (
    PhaseSpec,
    WorkloadSpec,
    payload_to_spec,
    payload_to_suite,
    spec_to_payload,
    suite_to_payload,
    with_phase_iterations,
    workload_name,
)

__all__ = [
    "ARCHETYPE_POOL",
    "Characterization",
    "PhaseCharacterization",
    "PhaseSpec",
    "WorkloadSpec",
    "build_workload",
    "characterize",
    "characterize_suite",
    "format_characterizations",
    "generate_suite",
    "generate_workload",
    "load_spec_file",
    "payload_to_spec",
    "payload_to_suite",
    "phase_data_base",
    "register",
    "registered",
    "resolve",
    "resolve_workloads",
    "spec_to_payload",
    "suite_to_payload",
    "with_phase_iterations",
    "workload_name",
]
