"""Structured span tracing: append-only JSONL event logs per process.

The tracer answers "where did the wall-clock go" for a campaign that
spans three execution layers (in-process engine, process pool, lease
fabric).  Every instrumented site opens a *span* — a named interval
with arbitrary ``args`` — or drops an instant *event* (lease
transitions, worker deaths).  Spans nest implicitly: Chrome's trace
viewer (and :mod:`repro.obs.export`) reconstructs the hierarchy from
timestamp containment per (pid, tid) track, so emitting a span costs
one appended line and no bookkeeping.

Activation and the zero-overhead contract
-----------------------------------------
Tracing is off unless ``REPRO_TRACE`` is set (the CLI's ``--trace``
sets it).  The hot-path guard is a single module-level check:
``TRACER is None`` — :func:`span`/:func:`event` return a shared no-op
immediately, and engine-level probes skip collection entirely.  The
observation-only law (pinned in tier-1, measured by ``make bench``):
tracing on vs. off is byte-identical in every result and stat, and the
off cost is ~zero.

Durability mirrors the fabric ledger: one file per process under
``<store>/obs/`` (``REPRO_OBS_DIR`` overrides), append-only, one JSON
object per line, flushed per event — a SIGKILL can tear at most the
final line, and the reader (:func:`iter_events`) skips torn lines.
Forked children (pool and fabric workers) inherit the parent's tracer;
the first emit in a new pid reopens a fresh per-process file, so
concurrent writers never interleave.
"""

from __future__ import annotations

import json
import os
import threading
import time

#: Span/event log schema version (bump on incompatible record changes).
OBS_SCHEMA = 1


def default_obs_dir() -> str:
    """``REPRO_OBS_DIR`` if set, else ``<store root>/obs``."""
    env = os.environ.get("REPRO_OBS_DIR")
    if env:
        return env
    from ..exec.store import cache_dir

    return os.path.join(cache_dir(), "obs")


class _NoopSpan:
    """Shared do-nothing context manager for the tracing-off path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP = _NoopSpan()


class _Span:
    """One open interval; emits a complete ("X") record on exit."""

    __slots__ = ("_tracer", "name", "args", "_wall_us", "_perf")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self):
        self._wall_us = time.time_ns() // 1_000
        self._perf = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb):
        dur_us = (time.perf_counter_ns() - self._perf) // 1_000
        if exc_type is not None:
            self.args = dict(self.args)
            self.args["error"] = exc_type.__name__
        self._tracer.emit({"ph": "X", "name": self.name,
                           "ts": self._wall_us, "dur": dur_us,
                           "args": self.args})
        return False


class Tracer:
    """Per-process append-only JSONL span writer.

    One :class:`Tracer` serves a whole process tree: fork children
    inherit it, and :meth:`emit` reopens a fresh ``<label>-<pid>.jsonl``
    whenever the pid changed since the last write.  Writes are one
    ``write()`` + ``flush()`` per record — crash-safe like the ledger.
    """

    def __init__(self, root: str, label: str = "proc") -> None:
        self.root = root
        self.label = label
        self._lock = threading.Lock()
        self._pid: int | None = None
        self._handle = None
        self.path: str | None = None

    # -- plumbing ------------------------------------------------------
    def _reopen(self, pid: int) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - closing is best-effort
                pass
        os.makedirs(self.root, exist_ok=True)
        self.path = os.path.join(self.root, f"{self.label}-{pid}.jsonl")
        self._handle = open(self.path, "a", encoding="utf-8")
        self._pid = pid
        # Track identity first, so the exporter can name the track even
        # if the process dies mid-span.
        self._write({"ph": "M", "name": "process_name", "pid": pid,
                     "args": {"name": f"{self.label}-{pid}"},
                     "schema": OBS_SCHEMA})

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":"),
                                      default=str) + "\n")
        self._handle.flush()

    def emit(self, record: dict) -> None:
        """Append one event record (pid/tid stamped here)."""
        pid = os.getpid()
        with self._lock:
            try:
                if pid != self._pid:
                    self._reopen(pid)
                record.setdefault("pid", pid)
                record.setdefault("tid", threading.get_native_id())
                self._write(record)
            except OSError:
                # Observability must never fail the campaign: a full or
                # read-only disk silently drops the event.
                pass

    # -- recording API -------------------------------------------------
    def span(self, name: str, **args) -> _Span:
        return _Span(self, name, args)

    def event(self, name: str, **args) -> None:
        self.emit({"ph": "i", "name": name,
                   "ts": time.time_ns() // 1_000, "args": args})

    def emit_metrics(self, snapshot: dict, scope: str = "process") -> None:
        """Append a metrics-registry snapshot (skipped by the Chrome
        exporter's span stream, merged by ``repro obs export``)."""
        self.emit({"ph": "metrics", "ts": time.time_ns() // 1_000,
                   "scope": scope, "metrics": snapshot})

    def set_label(self, label: str) -> None:
        """Rename this process's track (workers call it with their id);
        takes effect at the next (re)open, so set it before emitting."""
        if label != self.label:
            self.label = label
            self._pid = None  # force reopen under the new name

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:  # pragma: no cover
                    pass
                self._handle = None
                self._pid = None


#: THE module-level enabled check.  ``None`` = tracing off; hot paths
#: test this one global and nothing else.
TRACER: Tracer | None = None

#: Last ``REPRO_TRACE`` value :func:`refresh` acted on (so repeated
#: refreshes at campaign entry are a dict probe, not a reconfigure).
_ENV_SEEN: str | None = None


def enabled() -> bool:
    """Is span tracing active in this process?"""
    return TRACER is not None


def activate(root: str | None = None, label: str = "proc") -> Tracer:
    """Turn tracing on explicitly (tests and the CLI use this)."""
    global TRACER, _ENV_SEEN
    TRACER = Tracer(root if root is not None else default_obs_dir(),
                    label=label)
    _ENV_SEEN = os.environ.get("REPRO_TRACE") or None
    return TRACER


def deactivate() -> None:
    global TRACER, _ENV_SEEN
    if TRACER is not None:
        TRACER.close()
    TRACER = None
    _ENV_SEEN = None


def refresh() -> Tracer | None:
    """Re-read ``REPRO_TRACE`` (campaign/worker entry points call this).

    Truthy values ("1", a path...) activate; unset/empty/"0" deactivate.
    A value that is a path (contains a separator or names an existing
    directory) selects the obs directory directly.
    """
    global _ENV_SEEN
    env = os.environ.get("REPRO_TRACE") or None
    if env in ("0", "false", "no", "off"):
        env = None
    if env == _ENV_SEEN:
        return TRACER
    if env is None:
        deactivate()
        return None
    root = env if (os.sep in env or os.path.isdir(env)) else None
    tracer = activate(root)
    _ENV_SEEN = env
    return tracer


def span(name: str, **args):
    """A span context manager, or a shared no-op when tracing is off."""
    tracer = TRACER
    if tracer is None:
        return _NOOP
    return tracer.span(name, **args)


def event(name: str, **args) -> None:
    """An instant event; free when tracing is off."""
    tracer = TRACER
    if tracer is not None:
        tracer.event(name, **args)


# ----------------------------------------------------------------------
# reading the logs back
# ----------------------------------------------------------------------
def iter_events(path: str):
    """Yield event records from one JSONL log, skipping torn lines.

    A crash can tear at most the final line of an append-only log;
    any undecodable line is skipped rather than raised, mirroring the
    ledger's torn-lease tolerance.
    """
    try:
        handle = open(path, encoding="utf-8")
    except OSError:
        return
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                yield record


def obs_log_paths(obs_dir: str) -> list[str]:
    """Every per-process log under ``obs_dir``, sorted by name."""
    try:
        names = sorted(os.listdir(obs_dir))
    except OSError:
        return []
    return [os.path.join(obs_dir, name) for name in names
            if name.endswith(".jsonl")]
