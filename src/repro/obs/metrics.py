"""The metrics registry: named counters, gauges, and histograms.

One merge-safe facility behind every tally in the stack.  The
:class:`~repro.exec.report.CampaignReport` counters, the store's
``counters.json`` session deltas, the fabric's per-worker lease stats,
and the engine's leap-audit probes all mirror into a process-local
:class:`MetricsRegistry`, whose snapshot (:meth:`MetricsRegistry.snapshot`)
is a plain JSON-able dict designed so that snapshots from *any* number
of processes merge by addition (:func:`merge_snapshots`) — counters
and histogram buckets sum, gauges keep the latest sample.

Everything is stdlib, allocation-light, and safe to leave enabled:
an ``inc()`` is a dict probe and an integer add.  The expensive parts
(engine-level probes, snapshot emission into the obs log) only run when
span tracing is on — the same single module-level check
(:func:`repro.obs.trace.enabled`) guards both.

Histograms use power-of-two buckets keyed by bit length, so two
histograms merge by summing sparse bucket dicts with no binning
negotiation.
"""

from __future__ import annotations

import threading


class Counter:
    """Monotonic count; merges by addition."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-observed value; merges by latest sample (seq-stamped)."""

    __slots__ = ("name", "value", "seq")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.seq = 0

    def set(self, value: float) -> None:
        self.value = value
        self.seq += 1


class Histogram:
    """Count/sum/min/max plus sparse power-of-two buckets.

    ``observe(v)`` drops ``v`` into bucket ``int(v).bit_length()``
    (negatives clamp to bucket 0), so bucket ``b`` covers
    ``[2**(b-1), 2**b)``.  Two histograms merge by summing buckets.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value).bit_length() if value > 0 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instruments, created on first use, snapshot/merge-able."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            with self._lock:
                inst = self._counters.setdefault(name, Counter(name))
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            with self._lock:
                inst = self._gauges.setdefault(name, Gauge(name))
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(name, Histogram(name))
        return inst

    def count_into(self, prefix: str, tallies: dict) -> None:
        """Mirror a dict of numeric tallies as ``<prefix>.<key>`` counters
        (the CampaignReport / worker-stats / store-counters bridge)."""
        for key, value in tallies.items():
            if isinstance(value, (int, float)) and value:
                self.counter(f"{prefix}.{key}").inc(int(value))

    def snapshot(self) -> dict:
        """A JSON-able snapshot; the unit :func:`merge_snapshots` takes."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, c in self._counters.items():
            if c.value:
                out["counters"][name] = c.value
        for name, g in self._gauges.items():
            if g.seq:
                out["gauges"][name] = {"value": g.value, "seq": g.seq}
        for name, h in self._histograms.items():
            if h.count:
                out["histograms"][name] = {
                    "count": h.count, "sum": h.total,
                    "min": h.min, "max": h.max,
                    "buckets": {str(k): v for k, v in
                                sorted(h.buckets.items())}}
        return out

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def merge_snapshots(snapshots) -> dict:
    """Fold any number of per-process snapshots into one.

    Counters and histogram count/sum/buckets add; min/max widen; a
    gauge keeps the sample with the highest ``seq`` (ties: last wins).
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, sample in snap.get("gauges", {}).items():
            held = merged["gauges"].get(name)
            if held is None or sample.get("seq", 0) >= held.get("seq", 0):
                merged["gauges"][name] = dict(sample)
        for name, hist in snap.get("histograms", {}).items():
            held = merged["histograms"].setdefault(
                name, {"count": 0, "sum": 0.0, "min": None, "max": None,
                       "buckets": {}})
            held["count"] += hist.get("count", 0)
            held["sum"] += hist.get("sum", 0.0)
            for bound in ("min", "max"):
                value = hist.get(bound)
                if value is not None:
                    pick = min if bound == "min" else max
                    held[bound] = (value if held[bound] is None
                                   else pick(held[bound], value))
            for bucket, count in hist.get("buckets", {}).items():
                held["buckets"][bucket] = (
                    held["buckets"].get(bucket, 0) + count)
    return merged


#: Process-wide default registry (fork children inherit a copy and
#: publish their deltas through the obs log's metrics records).
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)
