"""Merge per-process obs logs and export Chrome trace-event JSON.

``repro obs export --chrome`` turns a traced campaign — any mix of the
coordinator, pool workers, and fabric workers, each with its own
append-only JSONL log under ``<store>/obs/`` — into one Chrome
trace-event file (the JSON Array Format with a ``traceEvents`` wrapper)
that chrome://tracing and https://ui.perfetto.dev render as a timeline
with one track per process: the whole multi-worker fabric campaign on
one screen, lease churn and store flushes included.

The span records are already almost Chrome events ("X" complete events
with microsecond ``ts``/``dur``); export normalises timestamps to the
earliest event (Perfetto dislikes epoch-sized numbers), maps instant
records to phase "i", forwards ``process_name`` metadata, and folds
``metrics`` records out of the event stream into one merged registry
snapshot returned alongside (and embedded under the top-level
``repro`` key, where trace viewers ignore it).
"""

from __future__ import annotations

import json

from .metrics import merge_snapshots
from .trace import iter_events, obs_log_paths


def merge_logs(obs_dir: str) -> list[dict]:
    """Every record from every per-process log, in timestamp order."""
    records: list[dict] = []
    for path in obs_log_paths(obs_dir):
        records.extend(iter_events(path))
    records.sort(key=lambda r: r.get("ts", 0))
    return records


def split_records(records):
    """``(spans_and_instants, metadata, metrics_snapshots)``.

    Metrics records are cumulative per process (a long-lived process
    emits one per campaign), so only the latest snapshot per pid
    survives — merging then sums across *processes*, never across a
    process's own history.
    """
    spans, meta = [], []
    last_snapshot: dict[int, dict] = {}
    for record in records:
        ph = record.get("ph")
        if ph in ("X", "i"):
            spans.append(record)
        elif ph == "M":
            meta.append(record)
        elif ph == "metrics":
            snap = record.get("metrics")
            if snap:
                last_snapshot[record.get("pid", 0)] = snap
    return spans, meta, list(last_snapshot.values())


def to_chrome(records) -> dict:
    """Convert merged obs records to a Chrome trace-event document."""
    spans, meta, snapshots = split_records(records)
    base = min((r["ts"] for r in spans if "ts" in r), default=0)
    events: list[dict] = []
    named: set[int] = set()
    for record in meta:
        pid = record.get("pid", 0)
        if record.get("name") == "process_name" and pid not in named:
            named.add(pid)
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": record.get("args", {})})
    for record in spans:
        event = {"ph": record["ph"], "name": record.get("name", "?"),
                 "ts": record.get("ts", base) - base,
                 "pid": record.get("pid", 0), "tid": record.get("tid", 0),
                 "cat": "repro", "args": record.get("args", {})}
        if record["ph"] == "X":
            event["dur"] = record.get("dur", 0)
        else:
            event["s"] = "t"  # thread-scoped instant
        events.append(event)
    return {"traceEvents": events,
            "displayTimeUnit": "ms",
            "repro": {"metrics": merge_snapshots(snapshots),
                      "records": len(records)}}


def export_chrome(obs_dir: str, output: str) -> dict:
    """Merge ``obs_dir`` and write Chrome JSON to ``output``.

    Returns a small summary dict (event/track counts) for the CLI.
    """
    document = to_chrome(merge_logs(obs_dir))
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    events = document["traceEvents"]
    return {"output": output,
            "events": sum(1 for e in events if e["ph"] in ("X", "i")),
            "tracks": len({e["pid"] for e in events}),
            "metrics": len(document["repro"]["metrics"]["counters"])}


def summarize(records) -> dict:
    """Span-name histogram + merged metrics (``repro obs export`` text)."""
    spans, _meta, snapshots = split_records(records)
    by_name: dict[str, dict] = {}
    for record in spans:
        row = by_name.setdefault(record.get("name", "?"),
                                 {"count": 0, "total_us": 0})
        row["count"] += 1
        row["total_us"] += record.get("dur", 0)
    return {"spans": by_name, "metrics": merge_snapshots(snapshots)}
