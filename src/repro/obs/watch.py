"""Live campaign watch: render fabric ledgers as an in-terminal view.

``repro campaign status --watch`` (one campaign) and ``repro top``
(every ledger under the store) tail the durable coordination state a
fabric campaign already writes — the ledger's done/failed markers,
lease files, per-worker stats records — plus the obs logs' merged
metrics, and redraw a compact dashboard each interval: per-worker
state, lease ages, throughput (sims/sec, cells/min), and an ETA
extrapolated from the completion rate since the watch began.

Everything here is read-only and torn-read tolerant (a mid-write
manifest reports "initialising", never a crash), so a watch can point
at a live campaign — or a dead one — from any process.  The rendering
is pure (snapshot dicts in, text out), which is what the tests pin;
the loop around it is a thin clear-screen-and-sleep driver.
"""

from __future__ import annotations

import os
import time

#: Manifest reads are retried once across this gap before a ledger is
#: reported as still initialising (mid-write torn read).
META_RETRY = 0.05


def read_meta(ledger, retries: int = 1, delay: float = META_RETRY):
    """``ledger.meta()`` with one retry across a torn mid-write read."""
    meta = ledger.meta()
    for _ in range(retries):
        if meta is not None:
            break
        time.sleep(delay)
        meta = ledger.meta()
    return meta


def lease_table(ledger, now: float) -> list[dict]:
    """Every live lease: fingerprint, holder, age, state."""
    rows = []
    for fp in sorted(ledger._marker_fingerprints("leases")):
        record, state = ledger.read_lease(fp, now)
        if state == "missing":
            continue
        rows.append({
            "fingerprint": fp[:12],
            "worker": record.get("worker", "?") if record else "?",
            "age": (now - float(record["acquired"])) if record else 0.0,
            "state": state})
    return rows


def campaign_snapshot(ledger, now: float | None = None) -> dict:
    """One ledger's full watch snapshot (status + workers + leases)."""
    now = now if now is not None else time.time()
    meta = read_meta(ledger)
    if meta is None:
        # Manifest unreadable after a retry: the coordinator is mid-
        # create (or the record is torn) — report that, don't guess.
        return {"campaign": os.path.basename(ledger.root),
                "initialising": True, "total": 0, "done": 0, "failed": 0,
                "remaining": 0, "workers": [], "leases": []}
    status = ledger.status(now)
    workers = []
    for stats in ledger.worker_stats():
        path = os.path.join(ledger._dir("workers"),
                            str(stats.get("worker", "?")) + ".json")
        try:
            flushed_ago = now - os.stat(path).st_mtime
        except OSError:
            flushed_ago = None
        workers.append(dict(stats, flushed_ago=flushed_ago))
    status["initialising"] = False
    status["workers"] = workers
    status["leases"] = lease_table(ledger, now)
    return status


class WatchState:
    """Completion-rate tracker across refreshes of one watch session.

    The rate is measured from the first sample (not instantaneous), so
    the ETA stabilises instead of whipsawing with each poll.
    """

    def __init__(self) -> None:
        self._first: tuple[float, int] | None = None

    def observe(self, now: float, done: int) -> dict:
        if self._first is None:
            self._first = (now, done)
        t0, d0 = self._first
        elapsed = now - t0
        rate = (done - d0) / elapsed if elapsed > 0.5 else 0.0
        return {"rate": rate, "elapsed": elapsed}


def _fmt_age(seconds: float | None) -> str:
    if seconds is None:
        return "?"
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def format_snapshot(snap: dict, rates: dict | None = None) -> str:
    """Render one campaign snapshot as the watch's text block."""
    lines = []
    name = snap.get("campaign", "?")
    if snap.get("initialising"):
        lines.append(f"{name}  initialising (manifest mid-write)")
        return "\n".join(lines)
    total = snap.get("total", 0)
    done = snap.get("done", 0)
    pct = (100.0 * done / total) if total else 0.0
    head = (f"{name}  {done}/{total} done ({pct:.0f}%)"
            f"  failed {snap.get('failed', 0)}"
            f"  remaining {snap.get('remaining', 0)}"
            f"  leases {snap.get('leases_held', 0)} held")
    expired = snap.get("leases_expired", 0)
    torn = snap.get("leases_torn", 0)
    if expired or torn:
        head += f" ({expired} expired, {torn} torn)"
    lines.append(head)
    if rates:
        rate = rates.get("rate", 0.0)
        line = f"  throughput {rate:.2f} sims/sec ({rate * 60:.0f} cells/min)"
        remaining = snap.get("remaining", 0)
        if rate > 0 and remaining:
            line += f"  eta {_fmt_age(remaining / rate)}"
        elif remaining == 0 and total:
            line += "  complete"
        lines.append(line)
    for worker in snap.get("workers", []):
        lines.append(
            f"  worker {worker.get('worker', '?'):<14}"
            f" done {worker.get('completed', 0):>4}"
            f" adopted {worker.get('adopted', 0):>3}"
            f" failed {worker.get('failed', 0):>3}"
            f" retries {worker.get('retries', 0):>3}"
            f" leases {worker.get('leases_issued', 0)}"
            f"/{worker.get('leases_stolen', 0)}s"
            f"/{worker.get('leases_lost', 0)}L"
            f"  flushed {_fmt_age(worker.get('flushed_ago'))} ago")
    for lease in snap.get("leases", []):
        lines.append(
            f"  lease {lease['fingerprint']}  {lease['worker']:<14}"
            f" {lease['state']:<8} age {_fmt_age(lease['age'])}")
    return "\n".join(lines)


def render_screen(snapshots: list[dict], states: dict,
                  now: float | None = None) -> str:
    """The whole dashboard: one block per campaign + a footer."""
    now = now if now is not None else time.time()
    blocks = []
    for snap in snapshots:
        state = states.setdefault(snap.get("campaign", "?"), WatchState())
        rates = (None if snap.get("initialising")
                 else state.observe(now, snap.get("done", 0)))
        blocks.append(format_snapshot(snap, rates))
    if not blocks:
        blocks.append("no campaign ledgers found")
    stamp = time.strftime("%H:%M:%S", time.localtime(now))
    return "\n\n".join(blocks) + f"\n\n[{stamp}] ctrl-c to exit"


def watch_loop(snapshot_fn, *, interval: float = 1.0,
               iterations: int | None = None, out=None,
               clear: bool = True) -> int:
    """Redraw ``snapshot_fn()`` every ``interval`` seconds.

    ``iterations`` bounds the loop for tests (None = until ctrl-c);
    returns the number of refreshes drawn.  ``clear`` uses the ANSI
    home+clear sequence; tests pass ``clear=False`` and a StringIO.
    """
    import sys

    out = out if out is not None else sys.stdout
    states: dict = {}
    drawn = 0
    try:
        while iterations is None or drawn < iterations:
            text = render_screen(snapshot_fn(), states)
            if clear:
                out.write("\x1b[2J\x1b[H")
            out.write(text + "\n")
            out.flush()
            drawn += 1
            if iterations is not None and drawn >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return drawn
