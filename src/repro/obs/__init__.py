"""repro.obs — the unified telemetry subsystem.

Zero-dependency observability for the whole execution stack:

- :mod:`repro.obs.trace` — structured span tracing to append-only
  per-process JSONL logs under ``<store>/obs/``, activated by
  ``REPRO_TRACE`` / ``--trace``; off costs one module-level check.
- :mod:`repro.obs.metrics` — named counters/gauges/histograms with
  merge-safe snapshots; the one facility behind CampaignReport tallies,
  store counters, fabric lease stats, and the engine's leap-audit
  probes.
- :mod:`repro.obs.export` — merge obs logs, export Chrome trace-event
  JSON (``repro obs export --chrome``) for Perfetto timelines.
- :mod:`repro.obs.watch` — live dashboards (``repro campaign status
  --watch``, ``repro top``).

The non-negotiable contract (pinned in tier-1, measured by
``make bench``): tracing on vs. off is byte-identical in every result
and stat — spans observe, they never steer.
"""

from . import metrics
from .export import export_chrome, merge_logs, summarize, to_chrome
from .metrics import REGISTRY, MetricsRegistry, merge_snapshots
from .trace import (
    OBS_SCHEMA,
    Tracer,
    activate,
    deactivate,
    default_obs_dir,
    enabled,
    event,
    iter_events,
    obs_log_paths,
    refresh,
    span,
)

__all__ = [
    "OBS_SCHEMA",
    "MetricsRegistry",
    "REGISTRY",
    "Tracer",
    "activate",
    "deactivate",
    "default_obs_dir",
    "enabled",
    "event",
    "export_chrome",
    "iter_events",
    "merge_logs",
    "merge_snapshots",
    "metrics",
    "obs_log_paths",
    "refresh",
    "span",
    "summarize",
    "to_chrome",
]
