"""Small fully-associative victim buffer (Table 1: 8-entry L1, 4-entry L2)."""

from __future__ import annotations

from collections import OrderedDict


class VictimBuffer:
    """Holds recently evicted lines; a hit swaps the line back upstream.

    Entries map line address -> dirty flag, in FIFO order.  A zero-entry
    buffer is legal and never hits, which lets configurations disable the
    structure without special cases.
    """

    def __init__(self, entries: int) -> None:
        self.capacity = entries
        self._lines: OrderedDict[int, bool] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._lines)

    def insert(self, line_addr: int, dirty: bool = False):
        """Add an evicted line; returns a pushed-out ``(line, dirty)`` or None."""
        if self.capacity == 0:
            return (line_addr, dirty)
        if line_addr in self._lines:
            self._lines[line_addr] = self._lines[line_addr] or dirty
            return None
        self._lines[line_addr] = dirty
        if len(self._lines) > self.capacity:
            return self._lines.popitem(last=False)
        return None

    def extract(self, line_addr: int):
        """On a hit, remove and return ``(line, dirty)``; else ``None``."""
        if line_addr in self._lines:
            dirty = self._lines.pop(line_addr)
            self.hits += 1
            return (line_addr, dirty)
        self.misses += 1
        return None

    def probe(self, line_addr: int) -> bool:
        return line_addr in self._lines
