"""Hardware stream-buffer prefetcher (Table 1: 8 buffers x 8 x 128-byte blocks).

Stream buffers sit at the L2 miss interface, after the style of Jouppi:
an L2 miss that does not match any buffer allocates a new stream that
prefetches sequential lines ahead of the miss; an L2 miss that hits a
buffer consumes the prefetched line (much cheaper than DRAM) and tops
the stream up.  Prefetches consume real memory-bus bandwidth via the
shared :class:`~repro.memory.main_memory.MainMemory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .main_memory import MainMemory


@dataclass
class _PrefetchedLine:
    line_addr: int
    ready_cycle: int


@dataclass
class StreamBuffer:
    """One sequential stream of prefetched lines."""

    depth: int
    next_line: int = -1
    queue: list[_PrefetchedLine] = field(default_factory=list)
    last_used_cycle: int = -1
    live: bool = False

    def probe(self, line_addr: int) -> _PrefetchedLine | None:
        for entry in self.queue:
            if entry.line_addr == line_addr:
                return entry
        return None


class StreamPrefetcher:
    """A file of sequential stream buffers with LRU stream replacement."""

    def __init__(self, memory: MainMemory, num_buffers: int = 8,
                 depth: int = 8) -> None:
        self.memory = memory
        self.buffers = [StreamBuffer(depth=depth) for _ in range(num_buffers)]
        self.prefetch_issues = 0
        self.hits = 0
        self.allocations = 0

    def enabled(self) -> bool:
        return bool(self.buffers)

    # ------------------------------------------------------------------
    def lookup(self, line_addr: int, cycle: int):
        """Probe the stream buffers for an L2 demand miss.

        On a hit, consumes the stream up to and including the line, tops
        the stream back up, and returns the cycle the line is available.
        Returns ``None`` on a miss *without* allocating — callers issue
        the demand fill first (demand beats prefetch onto the bus) and
        then call :meth:`train`.
        """
        if not self.buffers:
            return None
        for buf in self.buffers:
            if not buf.live:
                continue
            entry = buf.probe(line_addr)
            if entry is None:
                continue
            # Consume the stream up to and including the hit line.
            while buf.queue and buf.queue[0].line_addr != line_addr:
                buf.queue.pop(0)
            hit = buf.queue.pop(0)
            buf.last_used_cycle = cycle
            self.hits += 1
            self._top_up(buf, cycle)
            return hit.ready_cycle
        return None

    def train(self, line_addr: int, cycle: int) -> None:
        """Allocate a new stream after a demand miss that hit no buffer."""
        if self.buffers:
            self._allocate(line_addr, cycle)

    def access(self, line_addr: int, cycle: int):
        """Probe-then-train in one call (convenience for tests)."""
        ready = self.lookup(line_addr, cycle)
        if ready is None:
            self.train(line_addr, cycle)
        return ready

    # ------------------------------------------------------------------
    def _allocate(self, line_addr: int, cycle: int) -> None:
        """Start a new stream at ``line_addr + 1`` in the LRU buffer."""
        victim = min(self.buffers, key=lambda b: (b.live, b.last_used_cycle))
        victim.live = True
        victim.queue.clear()
        victim.next_line = line_addr + 1
        victim.last_used_cycle = cycle
        self.allocations += 1
        self._top_up(victim, cycle)

    def _top_up(self, buf: StreamBuffer, cycle: int) -> None:
        """Issue prefetches until the buffer is at depth."""
        while len(buf.queue) < buf.depth:
            ready = self.memory.read_line(cycle, prefetch=True)
            self.prefetch_issues += 1
            buf.queue.append(_PrefetchedLine(buf.next_line, ready))
            buf.next_line += 1

    def outstanding(self, cycle: int) -> int:
        """Prefetched lines still in flight at ``cycle`` (diagnostics)."""
        return sum(
            1
            for buf in self.buffers
            for entry in buf.queue
            if entry.ready_cycle > cycle
        )
