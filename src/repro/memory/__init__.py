"""Memory hierarchy substrate: caches, MSHRs, buses, DRAM, prefetchers."""

from .bus import Bus
from .cache import Cache, CacheConfig
from .hierarchy import (
    L1,
    L2,
    MEMORY,
    PENDING,
    STALL,
    STREAM,
    VICTIM,
    HierarchyConfig,
    MemoryHierarchy,
    MemResult,
)
from .main_memory import MainMemory
from .mshr import MSHR, MSHRFile, MSHRFull
from .prefetch import StreamBuffer, StreamPrefetcher
from .victim import VictimBuffer

__all__ = [
    "Bus",
    "Cache",
    "CacheConfig",
    "MainMemory",
    "MSHR",
    "MSHRFile",
    "MSHRFull",
    "StreamBuffer",
    "StreamPrefetcher",
    "VictimBuffer",
    "HierarchyConfig",
    "MemoryHierarchy",
    "MemResult",
    "L1",
    "VICTIM",
    "PENDING",
    "L2",
    "STREAM",
    "MEMORY",
    "STALL",
]
