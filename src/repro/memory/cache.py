"""Set-associative cache model with LRU replacement and write-back state.

The timing engines treat caches as *tag stores*: a lookup answers
"would this access hit, and what got evicted", while access latencies
are composed by :class:`~repro.memory.hierarchy.MemoryHierarchy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level (Table 1 of the paper)."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError(f"{self.name}: size not divisible by assoc*line")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{self.name}: set count must be a power of two")

    @cached_property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)

    def line_addr(self, addr: int) -> int:
        return addr // self.line_bytes

    def set_index(self, line_addr: int) -> int:
        return line_addr & (self.num_sets - 1)


class Cache:
    """One level of cache: an array of LRU-ordered sets of line tags.

    Each set is a list of ``(line_addr, dirty)`` tuples ordered
    most-recently-used first.  All methods take full line addresses
    (byte address // line size), which keeps the hierarchy honest about
    differing line sizes between levels.

    Entries are immutable tuples (dirty-bit changes replace the entry):
    snapshot export/load then only needs to copy the per-set lists, not
    every entry — one core per campaign cell loads a warm snapshot, so
    this is construction-critical.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: list[list[tuple]] = [[] for _ in range(config.num_sets)]
        #: Set-index mask, pre-computed: set selection is on the lookup
        #: fast path of every model, every cycle.
        self._set_mask = config.num_sets - 1
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def lookup(self, line_addr: int, update_lru: bool = True) -> bool:
        """True if ``line_addr`` is present; promotes it to MRU on a hit."""
        way_list = self._sets[line_addr & self._set_mask]
        for i, entry in enumerate(way_list):
            if entry[0] == line_addr:
                if update_lru and i:
                    way_list.insert(0, way_list.pop(i))
                self.hits += 1
                return True
        self.misses += 1
        return False

    def lookup_if_present(self, line_addr: int) -> bool:
        """``lookup`` that backs out of misses: a hit promotes to MRU and
        counts exactly like :meth:`lookup`, but a miss has *no* side
        effects — the caller is expected to fall back to the full access
        path, whose own lookup then counts the miss once."""
        way_list = self._sets[line_addr & self._set_mask]
        for i, entry in enumerate(way_list):
            if entry[0] == line_addr:
                if i:
                    way_list.insert(0, way_list.pop(i))
                self.hits += 1
                return True
        return False

    def probe(self, line_addr: int) -> bool:
        """Presence check with no LRU or statistics side effects."""
        way_list = self._sets[line_addr & self._set_mask]
        return any(entry[0] == line_addr for entry in way_list)

    def insert(self, line_addr: int, dirty: bool = False):
        """Install ``line_addr`` as MRU.

        Returns ``(victim_line_addr, victim_dirty)`` if an eviction was
        required, else ``None``.  Re-inserting a present line refreshes
        its LRU position and ORs in ``dirty``.
        """
        way_list = self._sets[line_addr & self._set_mask]
        for i, entry in enumerate(way_list):
            if entry[0] == line_addr:
                refreshed = (line_addr, entry[1] or dirty)
                if i:
                    way_list.pop(i)
                    way_list.insert(0, refreshed)
                else:
                    way_list[0] = refreshed
                return None
        way_list.insert(0, (line_addr, dirty))
        if len(way_list) > self.config.assoc:
            return way_list.pop()
        return None

    def mark_dirty(self, line_addr: int) -> bool:
        """Set the dirty bit of a present line; True if the line was found."""
        way_list = self._sets[line_addr & self._set_mask]
        for i, entry in enumerate(way_list):
            if entry[0] == line_addr:
                if not entry[1]:
                    way_list[i] = (line_addr, True)
                return True
        return False

    def invalidate(self, line_addr: int) -> bool:
        """Remove a line (SLTP flushes speculatively-written lines this way)."""
        way_list = self._sets[line_addr & self._set_mask]
        for i, entry in enumerate(way_list):
            if entry[0] == line_addr:
                way_list.pop(i)
                return True
        return False

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    # ------------------------------------------------------------------
    # tag-store snapshots (warm-state reuse across same-config cores)
    # ------------------------------------------------------------------
    def export_sets(self) -> list[list[tuple]]:
        """A copy of the tag store (lines + dirty bits + LRU order).

        Entries are immutable, so copying the way lists suffices.
        """
        return [way_list.copy() for way_list in self._sets]

    def load_sets(self, sets: list[list[tuple]]) -> None:
        """Replace the tag store with a copy of ``sets``."""
        self._sets = [way_list.copy() for way_list in sets]
