"""Memory-side bus with finite bandwidth and demand priority.

Table 1: "400 cycle latency to the first 16 bytes, 4 cycles to each
additional 16 byte chunk" — a 128-byte L2 line therefore occupies the
data bus for 32 cycles, which bounds exploitable memory-level
parallelism at roughly ``latency / occupancy = 400 / 32 = 12.5``
(Section 5.1 notes the simulated machine "can only practically exploit
an L2 MLP of 12").

Two scheduling classes model demand priority: demand fills serialise
only against other demand fills, while prefetches and write-backs queue
behind *all* previously scheduled traffic.  This keeps a stream-buffer
top-up burst from delaying the very demand misses it was triggered by,
at the cost of slight bandwidth over-commit when the two classes
overlap (documented in DESIGN.md).
"""

from __future__ import annotations


class Bus:
    """Serialises line transfers: at most one every ``occupancy`` cycles
    per class, with the low-priority class queuing behind everything."""

    def __init__(self, occupancy: int) -> None:
        if occupancy < 1:
            raise ValueError("bus occupancy must be >= 1")
        self.occupancy = occupancy
        self._next_free_demand = 0
        self._next_free_any = 0
        self.transfers = 0
        self.busy_cycles = 0

    def schedule(self, earliest: int, demand: bool = True) -> int:
        """Reserve a transfer slot; returns the cycle the transfer *ends*."""
        if demand:
            start = max(earliest, self._next_free_demand)
            end = start + self.occupancy
            self._next_free_demand = end
            if end > self._next_free_any:
                self._next_free_any = end
        else:
            start = max(earliest, self._next_free_any)
            end = start + self.occupancy
            self._next_free_any = end
        self.transfers += 1
        self.busy_cycles += self.occupancy
        return end

    @property
    def next_free(self) -> int:
        return self._next_free_any

    def next_event_cycle(self, cycle: int) -> int | None:
        """Event-horizon contract: the cycle the bus next goes idle, or
        None when it already is at ``cycle``.  Fill completion times
        already embed bus scheduling (MSHR ``ready_cycle``), so core
        models need not consult this directly — it exists for symmetry
        and diagnostics (e.g. utilisation probes that want the
        drain-out time)."""
        next_free = self._next_free_any
        return next_free if next_free > cycle else None

    def utilisation(self, total_cycles: int) -> float:
        """Fraction of ``total_cycles`` the bus spent transferring data."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)
