"""Main-memory timing model (Table 1 parameters)."""

from __future__ import annotations

from .bus import Bus


class MainMemory:
    """DRAM with a fixed access latency and a bandwidth-limited data bus.

    A request issued at cycle ``t`` returns its critical chunk at
    ``t + latency`` provided the data bus has a free slot; back-to-back
    line fills are spaced by the bus occupancy (32 cycles for a 128-byte
    line at 4 cycles per 16-byte chunk).
    """

    def __init__(self, latency: int = 400, chunk_cycles: int = 4,
                 chunk_bytes: int = 16, line_bytes: int = 128) -> None:
        self.latency = latency
        self.chunk_cycles = chunk_cycles
        self.chunk_bytes = chunk_bytes
        self.line_bytes = line_bytes
        occupancy = chunk_cycles * (line_bytes // chunk_bytes)
        self.bus = Bus(occupancy)
        self.reads = 0
        self.writebacks = 0

    @property
    def line_occupancy(self) -> int:
        """Data-bus cycles one full line transfer occupies."""
        return self.bus.occupancy

    def read_line(self, cycle: int, prefetch: bool = False) -> int:
        """Issue a line fill at ``cycle``; returns the data-ready cycle.

        Demand fills (``prefetch=False``) serialise only against other
        demand fills; prefetch fills queue behind all earlier traffic.
        """
        self.reads += 1
        earliest_data = cycle + self.latency
        return self.bus.schedule(earliest_data - self.bus.occupancy,
                                 demand=not prefetch)

    def write_line(self, cycle: int) -> int:
        """Issue a write-back; consumes bus bandwidth, returns completion."""
        self.writebacks += 1
        return self.bus.schedule(cycle, demand=False)
