"""Miss-status holding registers.

MSHRs track in-flight line fills.  A second miss to a pending line is a
*secondary* miss: it merges into the existing MSHR and shares its fill
time instead of issuing a new memory transaction.  iCFP additionally
hangs its poison-vector bit assignment off the MSHR (one bit per MSHR,
round-robin — Section 3.4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class MSHR:
    """One outstanding line fill."""

    line_addr: int
    issue_cycle: int
    ready_cycle: int
    #: Poison-vector bit index assigned by the iCFP engine (None elsewhere).
    poison_bit: int | None = None
    #: Demand merges observed while in flight (secondary-miss count).
    merges: int = 0
    #: True if the fill was initiated by a prefetch, not a demand access.
    is_prefetch: bool = False
    #: True if the fill also missed in the L2 (drives 'L2-only' advance
    #: triggers in the Figure 6 configurations).
    is_l2: bool = False


class MSHRFull(Exception):
    """Raised when allocation is attempted with no free MSHR."""


@dataclass
class MSHRFile:
    """A bounded file of MSHRs indexed by line address.

    The file tracks its own *event horizon* — the earliest pending fill
    time — incrementally, so the every-cycle retire sweep and the leap
    engine's :meth:`next_event_cycle` probe are O(1) on the (dominant)
    cycles where nothing completes.  ``ready_cycle`` is immutable after
    allocation, which is what makes the cached minimum sound.
    """

    capacity: int
    _pending: dict[int, MSHR] = field(default_factory=dict)
    allocations: int = 0
    merges: int = 0
    full_stalls: int = 0
    #: Cached min(ready_cycle) over pending fills; None when empty.
    _next_ready: int | None = None

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        return len(self._pending) >= self.capacity

    def get(self, line_addr: int) -> MSHR | None:
        """The pending MSHR for ``line_addr``, or None."""
        return self._pending.get(line_addr)

    def allocate(self, line_addr: int, issue_cycle: int, ready_cycle: int,
                 is_prefetch: bool = False, is_l2: bool = False) -> MSHR:
        """Allocate an MSHR for a new line fill."""
        if line_addr in self._pending:
            raise ValueError(f"line {line_addr:#x} already pending")
        if self.full:
            self.full_stalls += 1
            raise MSHRFull(f"no free MSHR for line {line_addr:#x}")
        mshr = MSHR(line_addr, issue_cycle, ready_cycle,
                    is_prefetch=is_prefetch, is_l2=is_l2)
        self._pending[line_addr] = mshr
        self.allocations += 1
        next_ready = self._next_ready
        if next_ready is None or ready_cycle < next_ready:
            self._next_ready = ready_cycle
        return mshr

    def merge(self, line_addr: int) -> MSHR:
        """Record a secondary miss on a pending line."""
        mshr = self._pending[line_addr]
        mshr.merges += 1
        self.merges += 1
        return mshr

    def retire_complete(self, cycle: int) -> list[MSHR]:
        """Remove and return all MSHRs whose fills completed by ``cycle``."""
        next_ready = self._next_ready
        if next_ready is None or cycle < next_ready:
            return []  # every-cycle fast path: nothing can have finished
        pending = self._pending
        done = [m for m in pending.values() if m.ready_cycle <= cycle]
        for mshr in done:
            del pending[mshr.line_addr]
        self._next_ready = (min(m.ready_cycle for m in pending.values())
                            if pending else None)
        return done

    def pending(self) -> list[MSHR]:
        return list(self._pending.values())

    def next_event_cycle(self) -> int | None:
        """Earliest pending fill time (the file's event horizon), or None.

        O(1): the minimum is maintained incrementally by allocate/retire.
        """
        return self._next_ready

    #: Backwards-compatible name from the pre-horizon engine.
    next_ready_cycle = next_event_cycle

    def outstanding_demand(self, cycle: int) -> int:
        """Number of demand fills still in flight at ``cycle``."""
        return sum(
            1
            for m in self._pending.values()
            if not m.is_prefetch and m.ready_cycle > cycle
        )
