"""Miss-status holding registers.

MSHRs track in-flight line fills.  A second miss to a pending line is a
*secondary* miss: it merges into the existing MSHR and shares its fill
time instead of issuing a new memory transaction.  iCFP additionally
hangs its poison-vector bit assignment off the MSHR (one bit per MSHR,
round-robin — Section 3.4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MSHR:
    """One outstanding line fill."""

    line_addr: int
    issue_cycle: int
    ready_cycle: int
    #: Poison-vector bit index assigned by the iCFP engine (None elsewhere).
    poison_bit: int | None = None
    #: Demand merges observed while in flight (secondary-miss count).
    merges: int = 0
    #: True if the fill was initiated by a prefetch, not a demand access.
    is_prefetch: bool = False
    #: True if the fill also missed in the L2 (drives 'L2-only' advance
    #: triggers in the Figure 6 configurations).
    is_l2: bool = False


class MSHRFull(Exception):
    """Raised when allocation is attempted with no free MSHR."""


@dataclass
class MSHRFile:
    """A bounded file of MSHRs indexed by line address."""

    capacity: int
    _pending: dict[int, MSHR] = field(default_factory=dict)
    allocations: int = 0
    merges: int = 0
    full_stalls: int = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        return len(self._pending) >= self.capacity

    def get(self, line_addr: int) -> MSHR | None:
        """The pending MSHR for ``line_addr``, or None."""
        return self._pending.get(line_addr)

    def allocate(self, line_addr: int, issue_cycle: int, ready_cycle: int,
                 is_prefetch: bool = False, is_l2: bool = False) -> MSHR:
        """Allocate an MSHR for a new line fill."""
        if line_addr in self._pending:
            raise ValueError(f"line {line_addr:#x} already pending")
        if self.full:
            self.full_stalls += 1
            raise MSHRFull(f"no free MSHR for line {line_addr:#x}")
        mshr = MSHR(line_addr, issue_cycle, ready_cycle,
                    is_prefetch=is_prefetch, is_l2=is_l2)
        self._pending[line_addr] = mshr
        self.allocations += 1
        return mshr

    def merge(self, line_addr: int) -> MSHR:
        """Record a secondary miss on a pending line."""
        mshr = self._pending[line_addr]
        mshr.merges += 1
        self.merges += 1
        return mshr

    def retire_complete(self, cycle: int) -> list[MSHR]:
        """Remove and return all MSHRs whose fills completed by ``cycle``."""
        if not self._pending:  # every-cycle fast path
            return []
        done = [m for m in self._pending.values() if m.ready_cycle <= cycle]
        for mshr in done:
            del self._pending[mshr.line_addr]
        return done

    def pending(self) -> list[MSHR]:
        return list(self._pending.values())

    def next_ready_cycle(self) -> int | None:
        """Earliest pending fill time (idle-skip wake-up), or None.

        Unlike ``pending()`` this allocates no list — it sits on the
        every-idle-cycle path of the core models.
        """
        if not self._pending:
            return None
        return min(m.ready_cycle for m in self._pending.values())

    def outstanding_demand(self, cycle: int) -> int:
        """Number of demand fills still in flight at ``cycle``."""
        return sum(
            1
            for m in self._pending.values()
            if not m.is_prefetch and m.ready_cycle > cycle
        )
