"""The assembled memory hierarchy (Table 1 of the paper).

Two-level write-back hierarchy: 32 KB 4-way L1I and L1D (64-byte lines,
8-entry D$ victim buffer), a 1 MB 8-way unified L2 (128-byte lines,
4-entry victim buffer, 20-cycle hit), 64 data MSHRs, 8x8-line stream
buffers, and a 400-cycle DRAM behind a bandwidth-limited bus.

The hierarchy is a *timing* model: every access mutates tag state
immediately and returns the cycle at which data becomes usable; in-flight
fills are represented by MSHRs, so younger accesses to a pending line
merge rather than re-issue.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import Cache, CacheConfig
from .main_memory import MainMemory
from .mshr import MSHR, MSHRFile, MSHRFull
from .prefetch import StreamPrefetcher
from .victim import VictimBuffer

#: Levels an access can be served from.
L1 = "l1"
VICTIM = "victim"
PENDING = "mshr"  # secondary miss merged into an in-flight fill
L2 = "l2"
STREAM = "stream"
MEMORY = "mem"
STALL = "stall"  # no MSHR free; the access must retry

#: Shared empty miss-return list for the (dominant) cycles where no fill
#: completes.  Callers treat retire results as read-only.
NO_MSHRS: list = []


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of the whole hierarchy."""

    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    l1d_victim_entries: int = 8
    l2_victim_entries: int = 4
    mshr_entries: int = 64
    ifetch_mshr_entries: int = 8
    memory_latency: int = 400
    memory_chunk_cycles: int = 4
    memory_chunk_bytes: int = 16
    stream_buffers: int = 8
    stream_depth: int = 8

    @staticmethod
    def hpca09(l2_hit_latency: int = 20, stream_buffers: int = 8) -> "HierarchyConfig":
        """The paper's Table 1 configuration (L2 latency varies in Fig. 6)."""
        return HierarchyConfig(
            l1i=CacheConfig("l1i", 32 * 1024, 4, 64, 3),
            l1d=CacheConfig("l1d", 32 * 1024, 4, 64, 3),
            l2=CacheConfig("l2", 1024 * 1024, 8, 128, l2_hit_latency),
            stream_buffers=stream_buffers,
        )


@dataclass(slots=True)
class MemResult:
    """Outcome of one hierarchy access.

    ``ready_cycle`` is when the data is usable by the pipeline.
    ``level`` says where the access was served from.  ``l1_miss`` and
    ``l2_miss`` flag *demand* misses (merges into pending fills count as
    L1 misses but not as fresh L2 misses).  ``mshr`` is the in-flight
    fill the access created or merged into, if any.
    """

    ready_cycle: int
    level: str
    line_addr: int
    l1_miss: bool = False
    l2_miss: bool = False
    mshr: MSHR | None = None
    new_fill: bool = False

    @property
    def stalled(self) -> bool:
        return self.level == STALL

    @property
    def hit(self) -> bool:
        return self.level == L1


class MemoryHierarchy:
    """L1I + L1D + unified L2 + stream buffers + DRAM."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config if config is not None else HierarchyConfig.hpca09()
        cfg = self.config
        self.l1i = Cache(cfg.l1i)
        self.l1d = Cache(cfg.l1d)
        self.l2 = Cache(cfg.l2)
        self.l1d_victims = VictimBuffer(cfg.l1d_victim_entries)
        self.l2_victims = VictimBuffer(cfg.l2_victim_entries)
        self.memory = MainMemory(
            latency=cfg.memory_latency,
            chunk_cycles=cfg.memory_chunk_cycles,
            chunk_bytes=cfg.memory_chunk_bytes,
            line_bytes=cfg.l2.line_bytes,
        )
        self.prefetcher = StreamPrefetcher(
            self.memory, num_buffers=cfg.stream_buffers, depth=cfg.stream_depth
        )
        self.mshrs = MSHRFile(cfg.mshr_entries)
        self.ifetch_mshrs = MSHRFile(cfg.ifetch_mshr_entries)
        # Demand statistics (loads + stores).
        self.data_accesses = 0
        self.l1d_misses = 0
        self.l2_misses = 0
        self.secondary_misses = 0
        # Hot-path scalars (data_access/fetch_access run per issue attempt).
        self._l1d_line_bytes = cfg.l1d.line_bytes
        self._l1i_line_bytes = cfg.l1i.line_bytes
        self._l2_line_bytes = cfg.l2.line_bytes
        self._l1d_lat = cfg.l1d.hit_latency
        self._l1i_lat = cfg.l1i.hit_latency
        self._l2_lat = cfg.l2.hit_latency

    # ------------------------------------------------------------------
    # data side
    # ------------------------------------------------------------------
    def data_access(self, addr: int, cycle: int, is_store: bool = False) -> MemResult:
        """Access the data side; returns timing plus miss classification."""
        line = addr // self._l1d_line_bytes
        lat = self._l1d_lat
        self.data_accesses += 1

        mshrs = self.mshrs
        pending = mshrs._pending.get(line) if mshrs._pending else None
        if pending is not None and pending.ready_cycle > cycle:
            # Secondary miss: merges into the in-flight fill.  Counted
            # separately from fresh misses (Table 2 counts line fills).
            mshrs.merge(line)
            self.secondary_misses += 1
            if is_store:
                self.l1d.mark_dirty(line)
            ready = pending.ready_cycle
            hit_ready = cycle + lat
            return MemResult(
                ready_cycle=hit_ready if hit_ready > ready else ready,
                level=PENDING,
                line_addr=line,
                l1_miss=True,
                mshr=pending,
            )

        if self.l1d.lookup(line):
            if is_store:
                self.l1d.mark_dirty(line)
            return MemResult(cycle + lat, L1, line)

        swapped = self.l1d_victims.extract(line)
        if swapped is not None:
            self._install_l1d(line, dirty=swapped[1] or is_store, cycle=cycle)
            self.l1d_misses += 1
            return MemResult(cycle + lat + 1, VICTIM, line, l1_miss=True)

        # L1 and victim missed: go to L2 (and below).  An MSHR is needed
        # for the L1 fill; if none is free the access must retry.
        if mshrs.full:
            mshrs.full_stalls += 1
            return MemResult(cycle + 1, STALL, line)

        self.l1d_misses += 1
        l2_line = addr // self._l2_line_bytes
        l2_lat = self._l2_lat

        if self.l2.lookup(l2_line):
            ready = cycle + lat + l2_lat
            level = L2
            l2_miss = False
        else:
            swapped_l2 = self.l2_victims.extract(l2_line)
            if swapped_l2 is not None:
                self._install_l2(l2_line, dirty=swapped_l2[1], cycle=cycle)
                ready = cycle + lat + l2_lat + 1
                level = L2
                l2_miss = False
            else:
                self.l2_misses += 1
                l2_miss = True
                stream_ready = self.prefetcher.lookup(l2_line, cycle)
                if stream_ready is not None:
                    ready = max(cycle + lat + l2_lat, stream_ready)
                    level = STREAM
                else:
                    # Demand fill first, then train a new stream behind it.
                    ready = max(cycle + lat, self.memory.read_line(cycle))
                    self.prefetcher.train(l2_line, cycle)
                    level = MEMORY
                self._install_l2(l2_line, dirty=False, cycle=cycle)

        self._install_l1d(line, dirty=is_store, cycle=cycle)
        mshr = self.mshrs.allocate(line, cycle, ready, is_l2=l2_miss)
        return MemResult(ready, level, line, l1_miss=True, l2_miss=l2_miss,
                         mshr=mshr, new_fill=True)

    def data_hit_cycle(self, addr: int, cycle: int,
                       is_store: bool = False) -> int | None:
        """Fast path for the dominant L1-hit case; None → take the full
        :meth:`data_access` walk.

        Byte-identical to data_access on the hit arm: same counter
        increments (``data_accesses`` here, ``hits`` inside the tag
        probe), same MRU promotion, same dirty marking, same ready
        cycle.  On any other arm — a live pending fill on the line, or
        an L1 tag miss — it touches *nothing* (``lookup_if_present``
        has no miss side effects) so data_access replays from scratch
        and counts the access exactly once.
        """
        line = addr // self._l1d_line_bytes
        mshrs = self.mshrs
        if mshrs._pending:
            pending = mshrs._pending.get(line)
            if pending is not None and pending.ready_cycle > cycle:
                return None
        if not self.l1d.lookup_if_present(line):
            return None
        self.data_accesses += 1
        if is_store:
            self.l1d.mark_dirty(line)
        return cycle + self._l1d_lat

    # ------------------------------------------------------------------
    # instruction side
    # ------------------------------------------------------------------
    def fetch_access(self, pc: int, cycle: int) -> MemResult:
        """Access the instruction side (L1I backed by the unified L2)."""
        line = pc // self._l1i_line_bytes
        lat = self._l1i_lat

        ifetch_mshrs = self.ifetch_mshrs
        pending = (ifetch_mshrs._pending.get(line)
                   if ifetch_mshrs._pending else None)
        if pending is not None and pending.ready_cycle > cycle:
            ifetch_mshrs.merge(line)
            return MemResult(max(cycle + lat, pending.ready_cycle), PENDING,
                             line, l1_miss=True, mshr=pending)

        if self.l1i.lookup(line):
            return MemResult(cycle + lat, L1, line)

        if ifetch_mshrs.full:
            return MemResult(cycle + 1, STALL, line)

        l2_line = pc // self._l2_line_bytes
        if self.l2.lookup(l2_line):
            ready = cycle + lat + self._l2_lat
            level = L2
            l2_miss = False
        else:
            l2_miss = True
            # Sequential code is exactly what stream buffers were built
            # for; the instruction stream shares them with data.
            stream_ready = self.prefetcher.lookup(l2_line, cycle)
            if stream_ready is not None:
                ready = max(cycle + lat + self._l2_lat, stream_ready)
                level = STREAM
            else:
                ready = max(cycle + lat, self.memory.read_line(cycle))
                self.prefetcher.train(l2_line, cycle)
                level = MEMORY
            self._install_l2(l2_line, dirty=False, cycle=cycle)
        self.l1i.insert(line)
        mshr = self.ifetch_mshrs.allocate(line, cycle, ready, is_l2=l2_miss)
        return MemResult(ready, level, line, l1_miss=True, l2_miss=l2_miss,
                         mshr=mshr, new_fill=True)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def retire_mshrs(self, cycle: int) -> list[MSHR]:
        """Free data MSHRs whose fills completed; returns them (miss-return
        events — the iCFP engine keys rally passes off this list).

        Runs every stepped cycle, so the no-completion case short-circuits
        on the MSHR files' cached horizons without entering them.
        """
        ifetch = self.ifetch_mshrs
        if ifetch._next_ready is not None and cycle >= ifetch._next_ready:
            ifetch.retire_complete(cycle)
        data = self.mshrs
        if data._next_ready is not None and cycle >= data._next_ready:
            return data.retire_complete(cycle)
        return NO_MSHRS

    def next_event_cycle(self) -> int | None:
        """The hierarchy's event horizon: the earliest cycle any pending
        fill (data or instruction side) completes, or None when idle."""
        data = self.mshrs._next_ready
        ifetch = self.ifetch_mshrs._next_ready
        if data is None:
            return ifetch
        if ifetch is None or data < ifetch:
            return data
        return ifetch

    def flush_line(self, addr: int) -> bool:
        """Invalidate the L1D line holding ``addr`` (SLTP speculative-line
        flush).  Returns True if a line was dropped."""
        return self.l1d.invalidate(self.config.l1d.line_addr(addr))

    def outstanding_demand_misses(self, cycle: int) -> int:
        return self.mshrs.outstanding_demand(cycle)

    # ------------------------------------------------------------------
    def _install_l1d(self, line: int, dirty: bool, cycle: int) -> None:
        victim = self.l1d.insert(line, dirty=dirty)
        if victim is None:
            return
        pushed = self.l1d_victims.insert(*victim)
        if pushed is not None and pushed[1]:
            # Dirty line leaves the L1 domain: write back into the L2.
            l2_line = pushed[0] * self.config.l1d.line_bytes // self.config.l2.line_bytes
            if not self.l2.mark_dirty(l2_line):
                self._install_l2(l2_line, dirty=True, cycle=cycle)

    def _install_l2(self, l2_line: int, dirty: bool, cycle: int) -> None:
        victim = self.l2.insert(l2_line, dirty=dirty)
        if victim is None:
            return
        # Enforce inclusion: drop L1 copies of the evicted L2 line.
        ratio = self.config.l2.line_bytes // self.config.l1d.line_bytes
        for i in range(ratio):
            self.l1d.invalidate(victim[0] * ratio + i)
            self.l1i.invalidate(victim[0] * ratio + i)
        pushed = self.l2_victims.insert(*victim)
        if pushed is not None and pushed[1]:
            self.memory.write_line(cycle)
