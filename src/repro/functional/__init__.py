"""Functional simulation: golden-reference execution and trace capture."""

from .executor import ExecutionError, FunctionalExecutor, run_program
from .state import ArchState, to_signed64
from .trace import DynInst, Trace

__all__ = [
    "ArchState",
    "to_signed64",
    "DynInst",
    "Trace",
    "FunctionalExecutor",
    "ExecutionError",
    "run_program",
]
