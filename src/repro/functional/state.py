"""Architectural state for functional execution.

State is deliberately simple: 48 flat registers (integer values are kept
as signed 64-bit, floating-point registers hold Python floats) and a
sparse word-granular memory image.  The timing models validate
themselves against this state — after any simulation, the merged
register file and drained memory must match a pure functional run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.program import WORD_BYTES
from ..isa.registers import FP_BASE, NUM_REGS, ZERO_REG

_MASK64 = (1 << 64) - 1


def to_signed64(value: int) -> int:
    """Wrap an unbounded int to signed 64-bit two's complement."""
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


@dataclass
class ArchState:
    """Registers plus sparse data memory.

    ``regs[0]`` (``r0``) is hardwired to zero: writes are dropped by
    :meth:`write_reg` and the slot always reads zero.
    """

    regs: list = field(default_factory=lambda: [0] * NUM_REGS)
    memory: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for i in range(FP_BASE, NUM_REGS):
            if self.regs[i] == 0:
                self.regs[i] = 0.0

    def read_reg(self, reg: int):
        return self.regs[reg]

    def write_reg(self, reg: int, value) -> None:
        if reg == ZERO_REG:
            return
        self.regs[reg] = value

    def read_mem(self, addr: int):
        """Load the 8-byte word at ``addr`` (0 when never written)."""
        if addr % WORD_BYTES:
            raise ValueError(f"unaligned load address: {addr:#x}")
        return self.memory.get(addr, 0)

    def write_mem(self, addr: int, value) -> None:
        if addr % WORD_BYTES:
            raise ValueError(f"unaligned store address: {addr:#x}")
        self.memory[addr] = value

    def copy(self) -> "ArchState":
        return ArchState(regs=list(self.regs), memory=dict(self.memory))

    def registers_equal(self, other: "ArchState") -> bool:
        return self.regs == other.regs

    def memory_equal(self, other: "ArchState") -> bool:
        """Compare memories, treating absent words as zero."""
        keys = self.memory.keys() | other.memory.keys()
        return all(self.memory.get(k, 0) == other.memory.get(k, 0) for k in keys)

    def diff(self, other: "ArchState") -> list[str]:
        """Human-readable mismatches (for test failure messages)."""
        from ..isa.registers import reg_name

        lines = []
        for i in range(NUM_REGS):
            if self.regs[i] != other.regs[i]:
                lines.append(f"{reg_name(i)}: {self.regs[i]!r} != {other.regs[i]!r}")
        keys = sorted(self.memory.keys() | other.memory.keys())
        for k in keys:
            a, b = self.memory.get(k, 0), other.memory.get(k, 0)
            if a != b:
                lines.append(f"mem[{k:#x}]: {a!r} != {b!r}")
        return lines
