"""Trace analysis: the workload-characterisation toolkit.

These are the measurements the workload suite was tuned with (DESIGN.md
§2) and the quantities the paper reasons about qualitatively: how much
instruction-level parallelism a trace has (dataflow height), how deep
its load-load dependence chains run (pointer chasing — the dependent
misses of Figures 1c/1d), and how its working set grows (which cache
levels its misses will come from).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..isa.registers import NUM_REGS, ZERO_REG
from .trace import Trace


@dataclass
class DataflowStats:
    """Register-dataflow structure of a trace."""

    #: Length of the longest register dependence chain.
    critical_path: int
    #: len(trace) / critical_path — the trace's inherent ILP bound.
    ilp_bound: float
    #: Mean distance (in dynamic instructions) from producer to consumer.
    mean_dependence_distance: float


def dataflow_stats(trace: Trace) -> DataflowStats:
    """Compute dataflow height and dependence distances.

    Memory dependences are ignored (the timing models handle those via
    the store buffer); this is the register-dataflow bound an idealised
    machine with perfect memory could reach.
    """
    depth = [0] * NUM_REGS
    writer_index = [-1] * NUM_REGS
    critical = 0
    distance_sum = 0
    distance_count = 0
    for dyn in trace:
        height = 0
        for src in dyn.srcs:
            if src == ZERO_REG:
                continue
            height = max(height, depth[src])
            if writer_index[src] >= 0:
                distance_sum += dyn.index - writer_index[src]
                distance_count += 1
        height += 1
        if dyn.dst is not None and dyn.dst != ZERO_REG:
            depth[dyn.dst] = height
            writer_index[dyn.dst] = dyn.index
        critical = max(critical, height)
    n = len(trace)
    return DataflowStats(
        critical_path=critical,
        ilp_bound=(n / critical) if critical else 0.0,
        mean_dependence_distance=(
            distance_sum / distance_count if distance_count else 0.0
        ),
    )


@dataclass
class LoadChainStats:
    """Load-to-load dependence structure (pointer-chasing signature)."""

    #: Depth of the deepest load->load dependence chain.
    max_chain_depth: int
    #: Fraction of loads whose address depends on another load.
    chained_load_fraction: float
    #: Histogram {chain depth -> number of loads at that depth}.
    depth_histogram: dict[int, int]


def load_chain_stats(trace: Trace) -> LoadChainStats:
    """Classify loads by their load-dependence depth.

    Depth 0: address computed from non-load values (art-style streams).
    Depth k: address transitively depends on k earlier loads (mcf-style
    chains — each level is a serialised memory round trip).
    """
    load_depth = [0] * NUM_REGS  # per register: loads feeding its value
    histogram: Counter[int] = Counter()
    loads = 0
    chained = 0
    max_depth = 0
    for dyn in trace:
        height = 0
        for src in dyn.srcs:
            if src != ZERO_REG:
                height = max(height, load_depth[src])
        if dyn.is_load:
            loads += 1
            histogram[height] += 1
            if height > 0:
                chained += 1
            max_depth = max(max_depth, height)
            result_depth = height + 1
        else:
            result_depth = height
        if dyn.dst is not None and dyn.dst != ZERO_REG:
            load_depth[dyn.dst] = result_depth
    return LoadChainStats(
        max_chain_depth=max_depth,
        chained_load_fraction=(chained / loads) if loads else 0.0,
        depth_histogram=dict(histogram),
    )


@dataclass
class WorkingSetStats:
    """Footprint growth of a trace's data accesses."""

    #: Total distinct 64-byte lines touched.
    total_lines: int
    #: Lines needed to cover the given fraction of accesses.
    lines_for_90_percent: int
    #: line -> access count, most-touched first (truncated to top_n).
    hottest_lines: list[tuple[int, int]]


def working_set_stats(trace: Trace, line_bytes: int = 64,
                      top_n: int = 8) -> WorkingSetStats:
    """Measure the data working set and its concentration."""
    counts: Counter[int] = Counter()
    for dyn in trace:
        if dyn.addr is not None:
            counts[dyn.addr // line_bytes] += 1
    if not counts:
        return WorkingSetStats(0, 0, [])
    total_accesses = sum(counts.values())
    covered = 0
    lines_needed = 0
    for _, count in counts.most_common():
        covered += count
        lines_needed += 1
        if covered >= 0.9 * total_accesses:
            break
    return WorkingSetStats(
        total_lines=len(counts),
        lines_for_90_percent=lines_needed,
        hottest_lines=counts.most_common(top_n),
    )


def characterise(trace: Trace) -> str:
    """One-paragraph textual characterisation of a trace."""
    flow = dataflow_stats(trace)
    chains = load_chain_stats(trace)
    footprint = working_set_stats(trace)
    kind = "pointer-chasing" if chains.chained_load_fraction > 0.3 else (
        "streaming/compute")
    return (
        f"{len(trace)} instructions, ILP bound {flow.ilp_bound:.1f} "
        f"(critical path {flow.critical_path}); "
        f"{trace.num_loads} loads of which "
        f"{chains.chained_load_fraction:.0%} are load-chained "
        f"(max depth {chains.max_chain_depth}) -> {kind}; "
        f"{footprint.total_lines} lines touched, 90% of accesses in "
        f"{footprint.lines_for_90_percent}"
    )
