"""Functional executor: runs programs and materialises dynamic traces."""

from __future__ import annotations

from ..isa.instructions import Opcode
from ..isa.program import CODE_BASE, INST_BYTES, Program, pc_of
from .state import ArchState, to_signed64
from .trace import DynInst, Trace


class ExecutionError(RuntimeError):
    """Raised on invalid execution (bad PC, unaligned access, ...)."""


class FunctionalExecutor:
    """Interprets programs over :class:`ArchState`.

    The executor is the golden reference: every timing model's committed
    architectural state is compared against :attr:`state` after a run.
    """

    def __init__(self, program: Program, initial_state: ArchState | None = None) -> None:
        self.program = program
        self.state = initial_state if initial_state is not None else ArchState()
        if initial_state is None:
            for addr, value in program.data.items():
                self.state.memory[addr] = value
        self.pc = CODE_BASE
        self.halted = False
        self.dynamic_count = 0

    # ------------------------------------------------------------------
    def step(self) -> DynInst:
        """Execute one instruction, returning its dynamic record."""
        if self.halted:
            raise ExecutionError("program already halted")
        index = (self.pc - CODE_BASE) // INST_BYTES
        if not 0 <= index < len(self.program.instructions):
            raise ExecutionError(f"PC out of range: {self.pc:#x}")
        inst = self.program.instructions[index]
        dyn = DynInst(self.dynamic_count, self.pc, inst)
        self.dynamic_count += 1
        self._execute(dyn)
        self.pc = dyn.next_pc
        return dyn

    def run(self, max_instructions: int = 1_000_000) -> Trace:
        """Run to ``halt`` or until ``max_instructions``; return the trace."""
        insts: list[DynInst] = []
        while not self.halted and len(insts) < max_instructions:
            insts.append(self.step())
        return Trace(
            program=self.program,
            insts=insts,
            final_state=self.state.copy(),
            completed=self.halted,
        )

    # ------------------------------------------------------------------
    def _execute(self, dyn: DynInst) -> None:
        state = self.state
        inst = dyn.inst
        op = inst.op
        vals = tuple(state.read_reg(s) for s in inst.srcs)
        dyn.src_vals = vals

        if op is Opcode.ADD:
            result = to_signed64(vals[0] + vals[1])
        elif op is Opcode.SUB:
            result = to_signed64(vals[0] - vals[1])
        elif op is Opcode.AND:
            result = to_signed64(vals[0] & vals[1])
        elif op is Opcode.OR:
            result = to_signed64(vals[0] | vals[1])
        elif op is Opcode.XOR:
            result = to_signed64(vals[0] ^ vals[1])
        elif op is Opcode.SLT:
            result = 1 if vals[0] < vals[1] else 0
        elif op is Opcode.SHL:
            result = to_signed64(vals[0] << (vals[1] & 63))
        elif op is Opcode.SHR:
            result = to_signed64((vals[0] & ((1 << 64) - 1)) >> (vals[1] & 63))
        elif op is Opcode.ADDI:
            result = to_signed64(vals[0] + inst.imm)
        elif op is Opcode.ANDI:
            result = to_signed64(vals[0] & inst.imm)
        elif op is Opcode.ORI:
            result = to_signed64(vals[0] | inst.imm)
        elif op is Opcode.SLTI:
            result = 1 if vals[0] < inst.imm else 0
        elif op is Opcode.SHLI:
            result = to_signed64(vals[0] << (inst.imm & 63))
        elif op is Opcode.LUI:
            result = to_signed64(inst.imm)
        elif op is Opcode.MUL:
            result = to_signed64(vals[0] * vals[1])
        elif op is Opcode.FADD:
            result = vals[0] + vals[1]
        elif op is Opcode.FSUB:
            result = vals[0] - vals[1]
        elif op is Opcode.FMUL:
            result = vals[0] * vals[1]
        elif op is Opcode.FMADD:
            result = vals[0] * vals[1] + vals[2]
        elif op is Opcode.CVTIF:
            result = float(vals[0])
        elif op is Opcode.CVTFI:
            result = to_signed64(int(vals[0]))
        elif op is Opcode.LD or op is Opcode.LDF:
            addr = to_signed64(vals[0] + inst.imm)
            dyn.addr = addr
            result = state.read_mem(addr)
            if op is Opcode.LDF and isinstance(result, int):
                result = float(result)
        elif op is Opcode.ST or op is Opcode.STF:
            addr = to_signed64(vals[0] + inst.imm)
            dyn.addr = addr
            dyn.store_val = vals[1]
            state.write_mem(addr, vals[1])
            return
        elif op is Opcode.BEQ:
            self._branch(dyn, vals[0] == vals[1])
            return
        elif op is Opcode.BNE:
            self._branch(dyn, vals[0] != vals[1])
            return
        elif op is Opcode.BLT:
            self._branch(dyn, vals[0] < vals[1])
            return
        elif op is Opcode.BGE:
            self._branch(dyn, vals[0] >= vals[1])
            return
        elif op is Opcode.J:
            self._jump(dyn, pc_of(self.program.labels[inst.target]))
            return
        elif op is Opcode.JAL:
            result = dyn.pc + INST_BYTES
            state.write_reg(inst.dst, result)
            dyn.result = result
            self._jump(dyn, pc_of(self.program.labels[inst.target]))
            return
        elif op is Opcode.JR:
            self._jump(dyn, vals[0])
            return
        elif op is Opcode.HALT:
            self.halted = True
            return
        elif op is Opcode.NOP:
            return
        else:  # pragma: no cover - defensive
            raise ExecutionError(f"unimplemented opcode: {op}")

        state.write_reg(inst.dst, result)
        dyn.result = result

    def _branch(self, dyn: DynInst, taken: bool) -> None:
        target = pc_of(self.program.labels[dyn.inst.target])
        dyn.taken = taken
        dyn.target_pc = target
        if taken:
            dyn.next_pc = target

    def _jump(self, dyn: DynInst, target: int) -> None:
        dyn.taken = True
        dyn.target_pc = target
        dyn.next_pc = target


def run_program(program: Program, max_instructions: int = 1_000_000) -> Trace:
    """Convenience wrapper: execute ``program`` and return its trace."""
    return FunctionalExecutor(program).run(max_instructions=max_instructions)
