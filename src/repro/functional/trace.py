"""Dynamic instruction traces.

The functional executor materialises each program into an indexable
:class:`Trace` of :class:`DynInst` records.  Timing models *replay*
traces: Runahead re-execution, Multipass passes, and iCFP rallies all
revisit the same records.  Records carry values (operands, results,
addresses) so that iCFP's merge and forwarding machinery can be checked
for architectural correctness, not just timed.

For the timing hot loops the trace also exposes :class:`TraceHot`: the
per-instruction attributes consulted by ``do_issue``/``try_issue``
flattened into parallel lists indexed by dynamic instruction number.
The arrays are built once per trace and cached on it, so every model,
sweep value, and rally pass that replays the (engine-cached) trace
shares one set of flat lists instead of chasing Python objects.
"""

from __future__ import annotations

from ..isa.instructions import EXEC_LATENCY, Instruction, OpClass

#: Issue-kind codes in :attr:`TraceHot.kind` (small ints compare faster
#: than enum members in the issue loops).
KIND_OTHER = 0
KIND_LOAD = 1
KIND_STORE = 2



class DynInst:
    """One dynamic instruction instance.

    Attributes
    ----------
    index:
        Position in the dynamic stream (0-based).
    pc / next_pc:
        Byte PC of this instruction and of its dynamic successor.
    inst:
        The static :class:`Instruction`.
    srcs / dst:
        Flat register operands (copies of the static operands, kept here
        because the timing inner loops touch them constantly).
    src_vals:
        Operand values read during functional execution.
    result:
        Value written to ``dst`` (loads: the loaded value), else ``None``.
    addr:
        Byte address for memory operations, else ``None``.
    store_val:
        Value written to memory for stores, else ``None``.
    taken / target_pc:
        Control-flow outcome for branches and jumps.
    is_load / is_store / is_mem / is_branch / is_control:
        Precomputed classification flags.  These are plain slot
        attributes (not properties): the timing models read them
        millions of times per simulation.
    """

    __slots__ = (
        "index",
        "pc",
        "next_pc",
        "inst",
        "op",
        "opclass",
        "srcs",
        "dst",
        "src_vals",
        "result",
        "addr",
        "store_val",
        "taken",
        "target_pc",
        "is_load",
        "is_store",
        "is_mem",
        "is_branch",
        "is_control",
    )

    def __init__(self, index: int, pc: int, inst: Instruction) -> None:
        self.index = index
        self.pc = pc
        self.next_pc = pc + 4
        self.inst = inst
        self.op = inst.op
        opclass = inst.opclass
        self.opclass = opclass
        self.srcs = inst.srcs
        self.dst = inst.dst
        self.src_vals: tuple = ()
        self.result = None
        self.addr: int | None = None
        self.store_val = None
        self.taken = False
        self.target_pc: int | None = None
        is_load = opclass is OpClass.LOAD
        is_store = opclass is OpClass.STORE
        is_branch = opclass is OpClass.BRANCH
        self.is_load = is_load
        self.is_store = is_store
        self.is_mem = is_load or is_store
        self.is_branch = is_branch
        self.is_control = is_branch or opclass is OpClass.JUMP

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.addr is not None:
            extra = f" @{self.addr:#x}"
        return f"<DynInst #{self.index} pc={self.pc:#x} {self.inst}{extra}>"


class TraceHot:
    """Parallel per-instruction arrays for the timing-model issue loops.

    One entry per dynamic instruction, indexed by ``DynInst.index``.
    Every field the per-cycle paths consult repeatedly lives here as a
    flat list, so the inner loops do a single indexed load instead of an
    attribute chase per field.
    """

    __slots__ = ("kind", "srcs", "dst", "exec_done", "port_int",
                 "is_control", "is_branch", "taken", "addr", "store_val",
                 "pc", "nsrc", "src0", "src1", "_ilines")

    def __init__(self, insts) -> None:
        # Single source of truth for port classification: the pipeline's
        # own table.  Local import: keeps repro.functional importable
        # without the pipeline package (and any future cycles) at
        # module-load time; this runs once per trace.
        from ..pipeline.resources import INT_PORT, port_kind

        n = len(insts)
        self.kind = kind = [KIND_OTHER] * n
        self.srcs = srcs = [()] * n
        self.dst = dst = [None] * n
        #: Execute latency for non-memory ops (memory timing comes from
        #: the hierarchy / store buffers instead).
        self.exec_done = exec_done = [1] * n
        self.port_int = port_int = [False] * n
        self.is_control = is_control = [False] * n
        self.is_branch = is_branch = [False] * n
        self.taken = taken = [False] * n
        self.addr = addr = [None] * n
        self.store_val = store_val = [None] * n
        self.pc = pc = [0] * n
        #: Unrolled source operands: the scoreboard loops run per issue
        #: attempt, and almost every instruction has <= 2 sources, so the
        #: hot paths check src0/src1 scalars and fall back to the full
        #: tuple only for wider ops (see ``nsrc``).
        self.nsrc = nsrc = [0] * n
        self.src0 = src0 = [0] * n
        self.src1 = src1 = [0] * n
        #: I$ line index per instruction, keyed by line size (the one
        #: config-dependent input); built on first use per geometry.
        self._ilines: dict[int, list[int]] = {}
        for i, dyn in enumerate(insts):
            opclass = dyn.opclass
            if dyn.is_load:
                kind[i] = KIND_LOAD
            elif dyn.is_store:
                kind[i] = KIND_STORE
            dyn_srcs = dyn.srcs
            srcs[i] = dyn_srcs
            count = len(dyn_srcs)
            nsrc[i] = count
            if count:
                src0[i] = dyn_srcs[0]
                if count > 1:
                    src1[i] = dyn_srcs[1]
            dst[i] = dyn.dst
            exec_done[i] = EXEC_LATENCY[opclass]
            port_int[i] = port_kind(opclass) == INT_PORT
            is_control[i] = dyn.is_control
            is_branch[i] = dyn.is_branch
            taken[i] = dyn.taken
            addr[i] = dyn.addr
            store_val[i] = dyn.store_val
            pc[i] = dyn.pc

    def iline(self, line_bytes: int) -> list[int]:
        """Per-instruction I$ line index at ``line_bytes`` granularity."""
        lines = self._ilines.get(line_bytes)
        if lines is None:
            lines = self._ilines[line_bytes] = [
                pc // line_bytes for pc in self.pc
            ]
        return lines


class Trace:
    """An indexable dynamic instruction stream plus final state.

    Attributes
    ----------
    program:
        The program that generated the trace.
    insts:
        Dynamic instruction records in execution order.
    final_state:
        Architectural state after the last traced instruction — the
        golden reference for timing-model validation.
    completed:
        True when the program reached ``halt`` within the instruction
        budget; False when the trace was truncated at the budget.
    """

    def __init__(self, program, insts, final_state, completed: bool) -> None:
        self.program = program
        self.insts = insts
        self.final_state = final_state
        self.completed = completed
        # Built at materialization: the records are final once the trace
        # exists, and the engine's trace cache shares the arrays across
        # every simulation of this trace.
        self._hot = TraceHot(insts)
        self._phase_index: list[int] | None = None
        self._num_loads: int | None = None
        self._num_stores: int | None = None
        self._num_branches: int | None = None
        self._footprints: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.insts)

    def __getitem__(self, index: int) -> DynInst:
        return self.insts[index]

    def __iter__(self):
        return iter(self.insts)

    @property
    def hot(self) -> TraceHot:
        """The flat issue-loop arrays (built once at materialization).

        Timing models never mutate traces, so one array set serves every
        core (and, through the engine's trace cache, every campaign
        cell) that replays this trace.
        """
        return self._hot

    def with_phase_regions(self, regions) -> "Trace":
        """The same dynamic stream under a different phase-region map.

        For differential probes and benches that compare attribution
        on/off/forced over one trace: the records (and therefore every
        timing decision) are shared; only the observation map differs.
        """
        import dataclasses

        program = dataclasses.replace(self.program,
                                      phase_regions=tuple(regions))
        return Trace(program, self.insts, self.final_state, self.completed)

    def phase_index(self) -> list[int]:
        """Per-dynamic-instruction phase index (flat, like the hot arrays).

        Derived once from the program's static ``phase_regions`` map and
        cached: a dynamic instruction's phase is a table lookup on its
        static index.  Only multi-phase programs ever ask (the engine
        synthesises the single bucket from aggregates at run end), so
        single-phase simulations never pay for the build.
        """
        index = self._phase_index
        if index is None:
            from ..isa.program import CODE_BASE, INST_BYTES

            regions = self.program.phase_regions
            static = [0] * len(self.program.instructions)
            for phase, (_name, lo, hi) in enumerate(regions):
                for i in range(lo, hi):
                    static[i] = phase
            index = self._phase_index = [
                static[(pc - CODE_BASE) // INST_BYTES] for pc in self._hot.pc
            ]
        return index

    # ------------------------------------------------------------------
    # characterisation helpers (used by workload tuning tests/benches)
    # ------------------------------------------------------------------
    def count(self, predicate) -> int:
        return sum(1 for d in self.insts if predicate(d))

    @property
    def num_loads(self) -> int:
        if self._num_loads is None:
            self._num_loads = self.count(lambda d: d.is_load)
        return self._num_loads

    @property
    def num_stores(self) -> int:
        if self._num_stores is None:
            self._num_stores = self.count(lambda d: d.is_store)
        return self._num_stores

    @property
    def num_branches(self) -> int:
        if self._num_branches is None:
            self._num_branches = self.count(lambda d: d.is_branch)
        return self._num_branches

    def mem_footprint_lines(self, line_bytes: int = 64) -> int:
        """Distinct cache lines touched by data accesses (memoized —
        sweeps ask per point, the answer never changes per trace)."""
        cached = self._footprints.get(line_bytes)
        if cached is None:
            lines = {d.addr // line_bytes
                     for d in self.insts if d.addr is not None}
            cached = self._footprints[line_bytes] = len(lines)
        return cached
