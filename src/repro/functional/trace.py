"""Dynamic instruction traces.

The functional executor materialises each program into an indexable
:class:`Trace` of :class:`DynInst` records.  Timing models *replay*
traces: Runahead re-execution, Multipass passes, and iCFP rallies all
revisit the same records.  Records carry values (operands, results,
addresses) so that iCFP's merge and forwarding machinery can be checked
for architectural correctness, not just timed.
"""

from __future__ import annotations

from ..isa.instructions import Instruction, OpClass
from ..isa.program import Program


class DynInst:
    """One dynamic instruction instance.

    Attributes
    ----------
    index:
        Position in the dynamic stream (0-based).
    pc / next_pc:
        Byte PC of this instruction and of its dynamic successor.
    inst:
        The static :class:`Instruction`.
    srcs / dst:
        Flat register operands (copies of the static operands, kept here
        because the timing inner loops touch them constantly).
    src_vals:
        Operand values read during functional execution.
    result:
        Value written to ``dst`` (loads: the loaded value), else ``None``.
    addr:
        Byte address for memory operations, else ``None``.
    store_val:
        Value written to memory for stores, else ``None``.
    taken / target_pc:
        Control-flow outcome for branches and jumps.
    """

    __slots__ = (
        "index",
        "pc",
        "next_pc",
        "inst",
        "op",
        "opclass",
        "srcs",
        "dst",
        "src_vals",
        "result",
        "addr",
        "store_val",
        "taken",
        "target_pc",
    )

    def __init__(self, index: int, pc: int, inst: Instruction) -> None:
        self.index = index
        self.pc = pc
        self.next_pc = pc + 4
        self.inst = inst
        self.op = inst.op
        self.opclass = inst.opclass
        self.srcs = inst.srcs
        self.dst = inst.dst
        self.src_vals: tuple = ()
        self.result = None
        self.addr: int | None = None
        self.store_val = None
        self.taken = False
        self.target_pc: int | None = None

    @property
    def is_load(self) -> bool:
        return self.opclass is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opclass is OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.opclass is OpClass.LOAD or self.opclass is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.opclass is OpClass.BRANCH

    @property
    def is_control(self) -> bool:
        return self.opclass is OpClass.BRANCH or self.opclass is OpClass.JUMP

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.addr is not None:
            extra = f" @{self.addr:#x}"
        return f"<DynInst #{self.index} pc={self.pc:#x} {self.inst}{extra}>"


class Trace:
    """An indexable dynamic instruction stream plus final state.

    Attributes
    ----------
    program:
        The program that generated the trace.
    insts:
        Dynamic instruction records in execution order.
    final_state:
        Architectural state after the last traced instruction — the
        golden reference for timing-model validation.
    completed:
        True when the program reached ``halt`` within the instruction
        budget; False when the trace was truncated at the budget.
    """

    def __init__(self, program: Program, insts, final_state, completed: bool) -> None:
        self.program = program
        self.insts = insts
        self.final_state = final_state
        self.completed = completed

    def __len__(self) -> int:
        return len(self.insts)

    def __getitem__(self, index: int) -> DynInst:
        return self.insts[index]

    def __iter__(self):
        return iter(self.insts)

    # ------------------------------------------------------------------
    # characterisation helpers (used by workload tuning tests/benches)
    # ------------------------------------------------------------------
    def count(self, predicate) -> int:
        return sum(1 for d in self.insts if predicate(d))

    @property
    def num_loads(self) -> int:
        return self.count(lambda d: d.is_load)

    @property
    def num_stores(self) -> int:
        return self.count(lambda d: d.is_store)

    @property
    def num_branches(self) -> int:
        return self.count(lambda d: d.is_branch)

    def mem_footprint_lines(self, line_bytes: int = 64) -> int:
        """Distinct cache lines touched by data accesses."""
        lines = {d.addr // line_bytes for d in self.insts if d.addr is not None}
        return len(lines)
