"""Return address stack (Table 1: 32-entry)."""

from __future__ import annotations


class RAS:
    """Circular return-address stack.

    ``push`` on calls (``jal``), ``pop`` on returns (``jr``).  The stack
    wraps silently on overflow — matching hardware, deep call chains
    overwrite the oldest entries and the corresponding returns
    mispredict.
    """

    def __init__(self, entries: int = 32) -> None:
        self.capacity = entries
        self._stack = [0] * entries
        self._top = 0  # number of logically valid entries, saturating
        self._ptr = 0  # physical top-of-stack index
        self.pushes = 0
        self.pops = 0

    def push(self, return_pc: int) -> None:
        self._stack[self._ptr] = return_pc
        self._ptr = (self._ptr + 1) % self.capacity
        self._top = min(self._top + 1, self.capacity)
        self.pushes += 1

    def pop(self) -> int | None:
        """Predicted return address, or None when logically empty."""
        self.pops += 1
        if self._top == 0:
            return None
        self._ptr = (self._ptr - 1) % self.capacity
        self._top -= 1
        return self._stack[self._ptr]

    def __len__(self) -> int:
        return self._top
