"""PPM-like tag-based direction predictor (Michaud, JILP 2005).

Table 1 of the paper specifies a "24 Kbyte 3-table PPM direction
predictor".  The predictor here follows the PPM structure: a tagless
bimodal base table plus two partially-tagged tables indexed by
progressively longer global-history hashes.  Prediction comes from the
longest-history table whose tag matches; update follows the standard
PPM/TAGE policy (update the provider, allocate a longer-history entry on
a misprediction).
"""

from __future__ import annotations


def _fold(value: int, bits: int) -> int:
    """Fold an arbitrarily long integer into ``bits`` bits by XOR."""
    mask = (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


class PPMPredictor:
    """Three-table PPM direction predictor with global history.

    The default geometry spends roughly 24 KB: a 16K-entry 2-bit bimodal
    base (4 KB) plus two 4K-entry tagged tables with 8-bit tags and
    2-bit counters (~10 KB together); the remainder of the paper's
    budget covers the structures we do not model bit-exactly.

    Tagged-table state is stored as parallel flat lists per level
    (``tag`` / ``counter`` / ``useful`` / ``valid``): one core is built
    per campaign cell, so table construction must be list-multiply
    cheap, not thousands of per-entry objects.
    """

    def __init__(self, base_entries: int = 16384, tagged_entries: int = 4096,
                 tag_bits: int = 8, history_lengths: tuple[int, int] = (8, 32)) -> None:
        if base_entries & (base_entries - 1) or tagged_entries & (tagged_entries - 1):
            raise ValueError("table sizes must be powers of two")
        self.base = [0] * base_entries  # 2-bit: 0..3, taken when >= 2
        self.base_mask = base_entries - 1
        levels = len(history_lengths)
        self.tag_table = [[0] * tagged_entries for _ in range(levels)]
        #: 2-bit signed counter: -2..1, taken when >= 0.
        self.counter_table = [[0] * tagged_entries for _ in range(levels)]
        self.useful_table = [[0] * tagged_entries for _ in range(levels)]
        self.valid_table = [[False] * tagged_entries for _ in range(levels)]
        self.tagged_mask = tagged_entries - 1
        self.tag_bits = tag_bits
        self.history_lengths = history_lengths
        self.history = 0
        self.lookups = 0
        self.mispredicts = 0
        #: Index/tag computation is a pure function of (pc, the longest
        #: history window); loops re-predict the same few branches under
        #: recurring history patterns, so memoize it (bounded).
        self._longest_mask = (1 << max(history_lengths)) - 1
        self._index_memo: dict = {}

    # ------------------------------------------------------------------
    def _indices(self, pc: int):
        """(base_index, [(table, index, tag), ...]) for ``pc``."""
        key = (pc, self.history & self._longest_mask)
        memo = self._index_memo
        cached = memo.get(key)
        if cached is not None:
            return cached
        base_index = (pc >> 2) & self.base_mask
        tagged = []
        index_bits = self.tagged_mask.bit_length()
        for level, hist_len in enumerate(self.history_lengths):
            hist = self.history & ((1 << hist_len) - 1)
            index = ((pc >> 2) ^ _fold(hist, index_bits)) & self.tagged_mask
            tag = ((pc >> 9) ^ _fold(hist, self.tag_bits)) & ((1 << self.tag_bits) - 1)
            tagged.append((level, index, tag))
        if len(memo) >= (1 << 16):
            memo.clear()
        result = memo[key] = (base_index, tagged)
        return result

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc``."""
        self.lookups += 1
        base_index, tagged = self._indices(pc)
        for level, index, tag in reversed(tagged):  # longest history first
            if self.valid_table[level][index] and self.tag_table[level][index] == tag:
                return self.counter_table[level][index] >= 0
        return self.base[base_index] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved outcome and advance global history."""
        base_index, tagged = self._indices(pc)
        provider_level = None
        for level, index, tag in reversed(tagged):
            if self.valid_table[level][index] and self.tag_table[level][index] == tag:
                provider_level = level
                counters = self.counter_table[level]
                predicted = counters[index] >= 0
                counters[index] = _saturate(counters[index] + (1 if taken else -1), -2, 1)
                if predicted == taken:
                    useful = self.useful_table[level]
                    useful[index] = min(useful[index] + 1, 3)
                break
        else:
            predicted = self.base[base_index] >= 2
            self.base[base_index] = _saturate(
                self.base[base_index] + (1 if taken else -1), 0, 3
            )

        if predicted != taken:
            self.mispredicts += 1
            self._allocate(tagged, provider_level, taken)
        self.history = ((self.history << 1) | (1 if taken else 0)) & ((1 << 64) - 1)

    def _allocate(self, tagged, provider_level, taken: bool) -> None:
        """On a mispredict, claim an entry in a longer-history table."""
        start = 0 if provider_level is None else provider_level + 1
        for level, index, tag in tagged[start:]:
            useful = self.useful_table[level]
            if not self.valid_table[level][index] or useful[index] == 0:
                self.tag_table[level][index] = tag
                self.counter_table[level][index] = 0 if taken else -1
                useful[index] = 0
                self.valid_table[level][index] = True
                return
            useful[index] -= 1

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


def _saturate(value: int, lo: int, hi: int) -> int:
    return max(lo, min(hi, value))
