"""Branch target buffer (Table 1: 2K-entry)."""

from __future__ import annotations


class BTB:
    """Direct-mapped tagged target buffer.

    Maps a branch/jump PC to its most recent taken target.  A miss (or
    tag mismatch) means the front end cannot redirect until the branch
    resolves, even if the direction predictor says "taken".
    """

    def __init__(self, entries: int = 2048) -> None:
        if entries & (entries - 1):
            raise ValueError("BTB entries must be a power of two")
        self.mask = entries - 1
        self._tags = [None] * entries
        self._targets = [0] * entries
        self.lookups = 0
        self.hits = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self.mask

    def predict(self, pc: int) -> int | None:
        """Predicted target of the control instruction at ``pc``, or None."""
        self.lookups += 1
        index = self._index(pc)
        if self._tags[index] == pc:
            self.hits += 1
            return self._targets[index]
        return None

    def update(self, pc: int, target: int) -> None:
        index = self._index(pc)
        self._tags[index] = pc
        self._targets[index] = target
