"""Branch prediction substrate: PPM direction predictor, BTB, RAS."""

from .btb import BTB
from .ppm import PPMPredictor
from .predictor import BranchPredictor
from .ras import RAS

__all__ = ["PPMPredictor", "BTB", "RAS", "BranchPredictor"]
