"""Front-end branch prediction facade: PPM + BTB + RAS."""

from __future__ import annotations

from ..isa.instructions import Opcode
from ..functional.trace import DynInst
from .btb import BTB
from .ppm import PPMPredictor
from .ras import RAS


class BranchPredictor:
    """Combines direction, target, and return-address prediction.

    The timing engines call :meth:`predict` when a control instruction
    is fetched and :meth:`update` when it resolves.  ``predict`` returns
    whether the *dynamic* outcome recorded in the trace matches the
    prediction — the engines turn a mismatch into a front-end redirect
    at execute.
    """

    def __init__(self, ppm: PPMPredictor | None = None, btb: BTB | None = None,
                 ras: RAS | None = None) -> None:
        self.ppm = ppm if ppm is not None else PPMPredictor()
        self.btb = btb if btb is not None else BTB()
        self.ras = ras if ras is not None else RAS()
        self.predictions = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------
    def predict(self, dyn: DynInst) -> bool:
        """Predict ``dyn``; True when the prediction is correct.

        Training happens separately in :meth:`update` (at resolve), but
        RAS speculation (push/pop) happens here, at fetch, as in a real
        front end.
        """
        self.predictions += 1
        op = dyn.op
        if op is Opcode.JAL:
            self.ras.push(dyn.pc + 4)
            correct = True  # direct call: target known at decode
        elif op is Opcode.JR:
            predicted_target = self.ras.pop()
            if predicted_target is None:
                predicted_target = self.btb.predict(dyn.pc)
            correct = predicted_target == dyn.target_pc
        elif op is Opcode.J:
            correct = True  # direct jump: target known at decode
        elif dyn.is_branch:
            taken_pred = self.ppm.predict(dyn.pc)
            if taken_pred == dyn.taken:
                correct = True
            else:
                correct = False
            # Direct conditional branches carry their target in the
            # instruction, so direction is the only source of error.
        else:
            correct = True
        if not correct:
            self.mispredictions += 1
        return correct

    def update(self, dyn: DynInst) -> None:
        """Train predictor state with the resolved outcome."""
        if dyn.is_branch:
            self.ppm.update(dyn.pc, dyn.taken)
        if dyn.taken and dyn.target_pc is not None:
            self.btb.update(dyn.pc, dyn.target_pc)

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
