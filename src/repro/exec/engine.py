"""The campaign scheduler: memoize, dedupe, fan out, survive, reassemble.

``run_jobs`` is the one entry point the harness uses.  It guarantees
results identical to sequential execution: a simulation is a
deterministic function of its :class:`~repro.exec.job.SimJob` spec, so
where the result is computed (this process, a pooled worker, a retried
attempt after a crash, an earlier call via the memo, or an earlier
*run* via the disk store) cannot change it.

Each fresh fingerprint resolves through three tiers:

1. RAM memo (:data:`~repro.exec.cache.RESULT_CACHE`),
2. disk store (:mod:`~repro.exec.store`, ``REPRO_CACHE_DIR``) — batched
   load before the pool; each computed result is flushed *the moment it
   completes*, so a crashed campaign resumes from its last finished
   cell, not from zero,
3. compute (the pool, or in-process at ``jobs=1``).

Fault tolerance (the reliability substrate for the distributed fabric):
jobs are submitted as individual futures, not a ``pool.map`` batch, so

* a per-job wall-clock timeout (:class:`RetryPolicy.job_timeout`,
  ``REPRO_JOB_TIMEOUT``) reaps slow cells and retries them;
* a retryable failure (an injected chaos fault, a timeout) is
  re-submitted with capped exponential backoff, at most
  :class:`RetryPolicy.max_attempts` (``REPRO_RETRIES`` + 1) times;
* a dead worker (``BrokenProcessPool`` — the OOM-killer case) costs
  only the in-flight work: completed futures keep their results, the
  pool is resurrected, and unfinished jobs are resubmitted;
* after :class:`RetryPolicy.max_pool_breaks` pool deaths the engine
  degrades gracefully to sequential in-process execution (with a fresh
  retry budget), which always terminates;
* everything the engine absorbed is tallied in a
  :class:`~repro.exec.report.CampaignReport` — robustness is
  observable, never silent.

Failures that survive retries are *annotated* with the failing job's
fingerprint and workload, and ``disk.flush_counters()`` plus every
already-completed result's store flush happen regardless (try/finally),
so one bad cell never discards its siblings' work.

Deterministic fault injection lives in :mod:`repro.exec.faults`
(``REPRO_FAULTS`` / :func:`~repro.exec.faults.injected_faults`).

Worker count resolution, everywhere in the engine:

1. explicit ``workers=`` argument,
2. ``REPRO_JOBS`` environment variable (the CLI's ``--jobs`` sets it),
3. ``os.cpu_count()``.

``jobs=1`` (however it was resolved) runs sequentially in-process — no
pool, no pickling, no forked interpreters (but still with bounded
retries for injected faults).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..obs import trace as obs_trace
from .cache import RESULT_CACHE
from .faults import InjectedFault, active_injector, mark_worker_process
from .report import CampaignReport, JobFailure


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else ``os.cpu_count()``."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


def batch_width() -> int:
    """Lane cap for batched execution (``REPRO_BATCH`` / ``--batch``).

    Unset or ``1`` → scalar path (the default escape hatch: every job
    is its own task, exactly the pre-batch engine).  ``0`` or ``auto``
    → unbounded (one batch per compatible group).  ``N >= 2`` → at most
    N lanes per batch.
    """
    env = os.environ.get("REPRO_BATCH")
    if not env:
        return 1
    if env.strip().lower() == "auto":
        return 0
    try:
        width = int(env)
    except ValueError:
        raise ValueError(
            f"REPRO_BATCH must be an integer or 'auto', got {env!r}"
        ) from None
    return max(0, width)


def fabric_workers() -> int:
    """``REPRO_FABRIC_WORKERS``: lease-fabric worker count (0 = off).

    The CLI's ``--fabric N`` sets it; pool and fabric worker processes
    pin it to 0 so execution never nests a fabric inside a worker.
    """
    env = os.environ.get("REPRO_FABRIC_WORKERS")
    if not env:
        return 0
    try:
        return max(0, int(env))
    except ValueError:
        raise ValueError(
            f"REPRO_FABRIC_WORKERS must be an integer, got {env!r}"
        ) from None


class RetryExhaustedError(RuntimeError):
    """A job failed every allowed attempt; carries its identity."""

    def __init__(self, label: str, fingerprint: str, attempts: int,
                 last: BaseException) -> None:
        super().__init__(
            f"job {label} (fingerprint {fingerprint[:16]}) failed "
            f"{attempts} attempts; last error: {last}")
        self.label = label
        self.fingerprint = fingerprint
        self.attempts = attempts
        self.__cause__ = last


@dataclass(frozen=True)
class RetryPolicy:
    """Fault-tolerance knobs for one campaign.

    ``max_attempts`` bounds executions per job *per regime* (pooled,
    then sequential-degraded — degradation grants a fresh budget, since
    pool casualties say nothing about the job itself).  ``job_timeout``
    (seconds, pooled execution only) reaps attempts that overrun it.
    Backoff before a retry is ``min(cap, base * 2**(attempt-1))``.
    ``max_pool_breaks`` worker-pool deaths are survived by resurrection
    before the engine degrades to sequential in-process execution.
    """

    max_attempts: int = 4
    job_timeout: float | None = None
    backoff_base: float = 0.02
    backoff_cap: float = 0.5
    max_pool_breaks: int = 3

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """``REPRO_RETRIES`` (extra attempts) / ``REPRO_JOB_TIMEOUT``."""
        kwargs: dict[str, object] = {}
        retries = os.environ.get("REPRO_RETRIES")
        if retries:
            try:
                kwargs["max_attempts"] = max(1, int(retries) + 1)
            except ValueError:
                raise ValueError(
                    f"REPRO_RETRIES must be an integer, got {retries!r}"
                ) from None
        timeout = os.environ.get("REPRO_JOB_TIMEOUT")
        if timeout:
            try:
                seconds = float(timeout)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOB_TIMEOUT must be a number, got {timeout!r}"
                ) from None
            kwargs["job_timeout"] = seconds if seconds > 0 else None
        return cls(**kwargs)


def _backoff(policy: RetryPolicy, attempt: int) -> float:
    return min(policy.backoff_cap,
               policy.backoff_base * (2 ** max(0, attempt - 1)))


def _worker_init() -> None:
    """Pool workers run their own jobs sequentially (no nested pools,
    and never a nested fabric)."""
    os.environ["REPRO_JOBS"] = "1"
    os.environ["REPRO_FABRIC_WORKERS"] = "0"
    mark_worker_process()
    # Fork children inherit the parent's tracer; spans they emit land
    # in their own per-pid log (the tracer reopens on pid change).
    # Spawn platforms re-derive activation from the inherited env here.
    obs_trace.refresh()


def _pool(workers: int) -> ProcessPoolExecutor:
    # Prefer fork: workers inherit imported modules *and* the parent's
    # warm trace cache, so they never re-execute kernels the parent
    # already traced.  (Spawn platforms still work — jobs re-derive
    # everything from their picklable specs.)
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        ctx = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=workers, mp_context=ctx,
                               initializer=_worker_init)


def _run_job(job):
    """Module-level trampoline so the pool can pickle it."""
    return job.run()


def _invoke(fn, arg, key: str, attempt: int, delay: float):
    """One execution attempt, on whichever process runs it.

    ``delay`` implements retry backoff *inside* the worker, so the
    parent's scheduling loop never blocks on it.  The active fault
    injector (env / override, inherited through fork) gets first shot.
    """
    if delay > 0:
        time.sleep(delay)
    injector = active_injector()
    if injector is not None:
        injector.on_job_attempt(key, attempt)
    tracer = obs_trace.TRACER
    if tracer is None:
        return fn(arg)
    with tracer.span("attempt", fp=key[:16], attempt=attempt):
        return fn(arg)


class _Task:
    """One schedulable unit: a SimJob, a BatchJob, or a map item."""

    __slots__ = ("index", "fn", "arg", "key", "label", "attempts", "seq",
                 "members")

    def __init__(self, index: int, fn, arg, key: str, label: str,
                 members: tuple | None = None) -> None:
        self.index = index
        self.fn = fn
        self.arg = arg
        self.key = key        # fault-roll / fingerprint identity
        self.label = label    # human identity for error messages
        self.attempts = 0     # executions started in the current regime
        self.seq = 0          # executions started ever (fault re-roll index)
        #: Member-job fingerprints when this task is a BatchJob (results
        #: and failures split back to them); None for a plain job.
        self.members = members


def _annotate(exc: BaseException, task: _Task) -> BaseException:
    """Attach the job's identity to an escaping exception (once)."""
    if not getattr(exc, "_repro_noted", False):
        try:
            exc.add_note(f"campaign job failed: {task.label} "
                         f"(fingerprint {task.key[:16]})")
            exc._repro_noted = True
        except Exception:  # pragma: no cover - frozen/odd exception types
            pass
    return exc


def _fail(task: _Task, exc: BaseException, kind: str,
          failures: dict[int, BaseException],
          report: CampaignReport) -> None:
    failures[task.index] = _annotate(exc, task)
    # A failed batch fails every member job: store/report identity stays
    # per-job even though the attempt was shared.
    for fingerprint in (task.members if task.members is not None
                        else (task.key,)):
        report.failures.append(JobFailure(
            label=task.label, fingerprint=fingerprint, kind=kind,
            error=str(exc)))


def _retry_or_fail(task: _Task, exc: BaseException, policy: RetryPolicy,
                   failures: dict[int, BaseException],
                   report: CampaignReport, resubmit) -> None:
    """Retryable failure: resubmit within budget, else record exhaustion."""
    if task.attempts >= policy.max_attempts:
        _fail(task, RetryExhaustedError(task.label, task.key,
                                        task.attempts, exc),
              "retries-exhausted", failures, report)
    else:
        report.retries += 1
        resubmit(task)


def _run_tasks_sequential(tasks, policy: RetryPolicy,
                          report: CampaignReport, record,
                          failures: dict[int, BaseException],
                          fresh_budget: bool = False) -> None:
    """In-process execution with bounded retries (the jobs=1 path, and
    the graceful-degradation target when pools keep dying)."""
    for task in tasks:
        if fresh_budget:
            task.attempts = 0
        with obs_trace.span("job", fp=task.key[:16], label=task.label):
            _run_one_sequential(task, policy, report, record, failures)


def _run_one_sequential(task, policy: RetryPolicy, report: CampaignReport,
                        record, failures: dict[int, BaseException]) -> None:
    """One task's bounded in-process retry loop (the ``job`` span body)."""
    while True:
        task.attempts += 1
        task.seq += 1
        report.attempts += 1
        try:
            result = _invoke(task.fn, task.arg, task.key, task.seq, 0.0)
        except InjectedFault as exc:
            if task.attempts >= policy.max_attempts:
                _fail(task, RetryExhaustedError(task.label, task.key,
                                                task.attempts, exc),
                      "retries-exhausted", failures, report)
                return
            report.retries += 1
            time.sleep(_backoff(policy, task.attempts))
        except (KeyboardInterrupt, SystemExit):
            # An interrupted cell is not a failed cell: let the
            # interrupt surface (completed cells are already
            # flushed) so a rerun resumes it instead of reporting
            # a phantom job failure.
            raise
        except BaseException as exc:
            _fail(task, exc, "exception", failures, report)
            return
        else:
            record(task, result)
            return


def _run_tasks_pooled(tasks, workers: int, policy: RetryPolicy,
                      report: CampaignReport, record,
                      failures: dict[int, BaseException]) -> None:
    """Per-job future submission with timeouts, retries, resurrection.

    Completed futures keep their results across a pool death; after
    ``policy.max_pool_breaks`` deaths the remaining work degrades to
    sequential in-process execution (fresh retry budget — a pool
    casualty is evidence about the pool, not the job).
    """
    queue: deque[_Task] = deque(tasks)
    breaks = 0
    while queue:
        if breaks >= policy.max_pool_breaks:
            report.degradations += 1
            _run_tasks_sequential(list(queue), policy, report, record,
                                  failures, fresh_budget=True)
            return
        queue, broke = _one_pool_round(queue, workers, policy, report,
                                       record, failures)
        if broke:
            breaks += 1
            time.sleep(_backoff(policy, breaks))


def _one_pool_round(queue: deque, workers: int, policy: RetryPolicy,
                    report: CampaignReport, record,
                    failures: dict[int, BaseException]):
    """One pool lifetime; returns (requeue, broke).

    Runs until the queue drains or the pool must be torn down: a worker
    death (``BrokenProcessPool`` fails every pending future at once) or
    a per-job timeout (a running future cannot be cancelled, so the
    whole pool is abandoned; ``shutdown(wait=False)`` leaves the
    stragglers to finish dying on their own).
    """
    requeue: deque[_Task] = deque()
    pool = _pool(min(workers, len(queue)))
    pending: dict = {}
    broke = False

    def submit(task: _Task, delay: float = 0.0) -> None:
        nonlocal broke
        task.attempts += 1
        task.seq += 1
        report.attempts += 1
        # A batch is N simulations in one attempt; its wall-clock budget
        # scales with the lane count so batching never trips a timeout
        # a scalar campaign would have survived.
        lanes = len(task.members) if task.members is not None else 1
        deadline = (time.monotonic() + policy.job_timeout * lanes
                    if policy.job_timeout else None)
        try:
            future = pool.submit(_invoke, task.fn, task.arg, task.key,
                                 task.seq, delay)
        except BrokenProcessPool:
            # The pool died between completions; the task is innocent.
            if not broke:
                broke = True
                report.pool_breaks += 1
            requeue.append(task)
            return
        pending[future] = (task, deadline)

    def resubmit(task: _Task) -> None:
        if broke:
            requeue.append(task)
        else:
            submit(task, delay=_backoff(policy, task.attempts))

    try:
        for task in queue:
            submit(task)
        while pending and not broke:
            timeout = None
            if policy.job_timeout:
                deadlines = [d for (_t, d) in pending.values()
                             if d is not None]
                if deadlines:
                    timeout = max(0.0, min(deadlines) - time.monotonic())
            done, _ = wait(list(pending), timeout=timeout,
                           return_when=FIRST_COMPLETED)
            for future in done:
                task, _deadline = pending.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    # The casualty and every sibling retry on a fresh
                    # pool; completed futures in `done` keep their
                    # results below.  Counted once per pool lifetime.
                    if not broke:
                        broke = True
                        report.pool_breaks += 1
                    requeue.append(task)
                except InjectedFault as exc:
                    _retry_or_fail(task, exc, policy, failures, report,
                                   resubmit)
                except CancelledError:  # pragma: no cover - defensive
                    requeue.append(task)
                except (KeyboardInterrupt, SystemExit):
                    raise  # interrupted, not failed — surface it
                except BaseException as exc:
                    _fail(task, exc, "exception", failures, report)
                else:
                    record(task, result)
            if policy.job_timeout and not broke:
                now = time.monotonic()
                overdue = [f for f, (_t, d) in pending.items()
                           if d is not None and d <= now]
                if overdue:
                    broke = True  # cannot cancel running futures
                    for future in overdue:
                        task, _deadline = pending.pop(future)
                        report.timeouts += 1
                        _retry_or_fail(task, TimeoutError(
                            f"attempt exceeded {policy.job_timeout}s"),
                            policy, failures, report, resubmit)
        # Drain whatever the teardown left behind: futures that did
        # finish keep their results; the rest go back on the queue
        # (innocent casualties — no attempt penalty, but `seq` still
        # advances on resubmission, so injected faults re-roll).
        for future, (task, _deadline) in list(pending.items()):
            if future.done() and not future.cancelled():
                try:
                    record(task, future.result())
                    continue
                except InjectedFault as exc:
                    _retry_or_fail(task, exc, policy, failures, report,
                                   lambda t: requeue.append(t))
                    continue
                except BrokenProcessPool:
                    pass
                except (KeyboardInterrupt, SystemExit):
                    raise  # interrupted, not failed — surface it
                except BaseException as exc:
                    _fail(task, exc, "exception", failures, report)
                    continue
            requeue.append(task)
    finally:
        pool.shutdown(wait=not broke, cancel_futures=True)
    return requeue, broke


def _job_label(job) -> str:
    workload = getattr(job.workload, "name", job.workload)
    label = f"{job.model} on {workload}"
    lanes = getattr(job, "jobs", None)
    if lanes is not None:  # a BatchJob: one label for the whole vector
        label += f" [batch of {len(lanes)}]"
    return label


def _prewarm_traces(jobs) -> dict:
    """Generate each distinct trace once, in the parent, before forking.

    Chunking splits one workload's jobs across workers; without this,
    every such worker would re-run the functional executor for the same
    kernel.  Warming the parent's trace cache first means fork hands
    every worker the already-built trace — trace generation stays
    exactly-once per (workload, instructions) across the whole campaign.

    A workload whose trace generation *raises* must not abort the
    campaign: its exception is returned (keyed by trace key) so the
    engine fails only that workload's jobs and runs everything else.
    """
    from .cache import TRACE_CACHE

    failed: dict = {}
    for key in {(job.workload, job.config.instructions) for job in jobs}:
        workload, instructions = key
        with obs_trace.span("workload",
                            workload=str(getattr(workload, "name", workload)),
                            instructions=instructions):
            try:
                TRACE_CACHE.get(*key)
            except Exception as exc:
                failed[key] = exc
    return failed


def _resolve_cached(jobs, memo: bool, disk,
                    report: CampaignReport, results: list):
    """The memo and disk tiers, shared by the pool and fabric paths.

    Fills ``results`` in place for every cache hit and returns
    ``(positions, fresh)``: the index positions of each fresh
    fingerprint and the deduplicated jobs still needing compute.
    """
    positions: dict[str, list[int]] = {}
    fresh: list = []
    for i, job in enumerate(jobs):
        key = job.fingerprint
        if memo:
            cached = RESULT_CACHE.get(key)
            if cached is not None:
                results[i] = cached
                report.memo_hits += 1
                continue
        if key in positions:
            positions[key].append(i)
        else:
            positions[key] = [i]
            fresh.append(job)
    if fresh and disk is not None:
        # Batched disk tier: one lookup per fresh fingerprint, before
        # any pool spins up.  Hits feed the RAM memo so the rest of the
        # process never touches the disk for them again.
        loaded = disk.get_results([job.fingerprint for job in fresh])
        if loaded:
            missing = []
            for job in fresh:
                key = job.fingerprint
                result = loaded.get(key)
                if result is None:
                    missing.append(job)
                    continue
                report.store_hits += 1
                if memo:
                    RESULT_CACHE.put(key, result)
                for i in positions[key]:
                    results[i] = result
            fresh = missing
    return positions, fresh


def run_jobs(jobs, *, workers: int | None = None, memo: bool = True,
             store=None, report: CampaignReport | None = None,
             strict: bool = True,
             policy: RetryPolicy | None = None,
             fabric=None) -> list:
    """Execute ``jobs`` (SimJobs); results in input order.

    Fingerprint-identical jobs execute once, whether the duplicate is in
    this batch, in the :data:`~repro.exec.cache.RESULT_CACHE` from an
    earlier campaign, or in the on-disk store from an earlier *process*.
    ``memo=False`` bypasses both cross-call tiers entirely (benchmarks
    measuring raw throughput use it) but still dedupes within the batch.

    With ``REPRO_BATCH`` (``--batch``) set to anything but 1, fresh
    jobs that share (model, workload, instructions) are grouped into
    :class:`~repro.engine.batch.BatchJob` lane-vectors that advance all
    their configs over one shared trace.  Batching is pure scheduling:
    results are byte-identical to the scalar path, and memoization,
    store flushes, and failure reporting stay keyed by each member
    job's own fingerprint (a faulted batch retries whole per the
    :class:`RetryPolicy`, then fails every member if exhausted).

    ``store`` selects the disk tier: ``None`` resolves it from the
    environment (``REPRO_STORE`` / ``REPRO_CACHE_DIR``; off when
    ``memo=False``), ``False`` disables it, and an explicit
    :class:`~repro.exec.store.ResultStore` forces one (benchmarks pass
    hermetic temp stores this way, with any ``memo`` setting).  Each
    computed result is flushed to the store the moment it completes, so
    a killed campaign resumed in a fresh process replays only the cells
    that had not yet finished.

    ``report`` (a :class:`~repro.exec.report.CampaignReport`) collects
    attempts/retries/timeouts/pool-breaks/degradations/store-errors;
    ``policy`` overrides the env-resolved :class:`RetryPolicy`.

    With ``strict=True`` (default) a permanently failed job re-raises
    its exception — annotated with fingerprint and workload — *after*
    all other jobs have completed and flushed.  ``strict=False``
    instead records failures in the report and leaves ``None`` in the
    failed slots, so one bad workload cannot abort a campaign.

    ``fabric`` routes execution through the lease-based multi-worker
    fabric (:func:`~repro.exec.fabric.run_jobs_fabric`): ``None``
    consults ``REPRO_FABRIC_WORKERS`` (the CLI's ``--fabric`` sets it;
    0/unset = off), an integer N spawns N fabric workers, ``True``
    uses the fabric's default count, and ``False`` forces the
    in-process path (the fabric's own degradation escape hatch).
    """
    from ..engine.batch import plan_batches
    from .store import resolve_store

    # One env read per campaign entry: hot paths below only test the
    # module-level TRACER global (the zero-overhead contract).
    obs_trace.refresh()
    if fabric is not False:
        requested = fabric
        if requested is None:
            requested = fabric_workers() or None
        if requested:
            from .fabric import run_jobs_fabric

            return run_jobs_fabric(
                jobs,
                workers=(None if requested is True else int(requested)),
                memo=memo, store=store, report=report, strict=strict,
                policy=policy)

    jobs = list(jobs)
    workers = workers if workers is not None else default_jobs()
    policy = policy if policy is not None else RetryPolicy.from_env()
    report = report if report is not None else CampaignReport()
    disk = None if (store is None and not memo) else resolve_store(store)
    report.jobs += len(jobs)
    results: list = [None] * len(jobs)
    # Entered/exited by hand so the span covers the whole campaign —
    # cache resolution through the final counter flush — without
    # re-indenting the scheduler.  A no-op singleton when tracing is off.
    campaign_span = obs_trace.span(
        "campaign", jobs=len(jobs), workers=workers,
        mode="pool" if workers > 1 else "sequential")
    campaign_span.__enter__()
    # One report may span several campaigns (sweeps accumulate): mirror
    # only this campaign's delta into the metrics registry at the end.
    tallies_before = (report.tallies() if obs_trace.TRACER is not None
                      else None)
    positions, fresh = _resolve_cached(jobs, memo, disk, report, results)

    failures: dict[int, BaseException] = {}
    corrupt_before = disk.corrupt if disk is not None else 0
    store_unwritable = False

    def flush_one(key: str, result) -> None:
        # Incremental durability: the cell is memoized and flushed to
        # disk the moment it completes — a crash after this point can
        # never cost this simulation again.
        nonlocal store_unwritable
        report.computed += 1
        if memo:
            RESULT_CACHE.put(key, result)
        if disk is not None and not store_unwritable:
            if not disk.put_result(key, result):
                store_unwritable = True  # read-only fs: stop trying
                report.store_errors += 1
        for i in positions[key]:
            results[i] = result

    def record(task: _Task, result) -> None:
        if task.members is None:
            flush_one(task.key, result)
            return
        # A batch returns one SimResult per lane, in member order; each
        # flushes under its own job fingerprint — memo/store identity is
        # untouched by how the work was scheduled.
        for fingerprint, lane_result in zip(task.members, result):
            flush_one(fingerprint, lane_result)

    try:
        if fresh:
            units = plan_batches(fresh, batch_width())
            tasks = [
                _Task(index=i, fn=_run_job, arg=unit, key=unit.fingerprint,
                      label=_job_label(unit),
                      members=getattr(unit, "member_fingerprints", None))
                for i, unit in enumerate(units)]
            if workers > 1 and len(fresh) > 1:
                trace_failures = _prewarm_traces(fresh)
                runnable = []
                for task in tasks:
                    trace_key = (task.arg.workload,
                                 task.arg.config.instructions)
                    if trace_key in trace_failures:
                        _fail(task, trace_failures[trace_key], "trace",
                              failures, report)
                    else:
                        runnable.append(task)
                if runnable:
                    _run_tasks_pooled(runnable,
                                      min(workers, len(runnable)),
                                      policy, report, record, failures)
            else:
                _run_tasks_sequential(tasks, policy, report, record,
                                      failures)
            if failures and strict:
                raise failures[min(failures)]
    finally:
        if disk is not None:
            report.store_errors += disk.corrupt - corrupt_before
            disk.flush_counters()
        tracer = obs_trace.TRACER
        if tracer is not None:
            from ..obs import metrics as obs_metrics

            tallies = report.tallies()
            if tallies_before is not None:
                tallies = {name: value - tallies_before.get(name, 0)
                           for name, value in tallies.items()}
            obs_metrics.REGISTRY.count_into("campaign", tallies)
            tracer.emit_metrics(obs_metrics.REGISTRY.snapshot(),
                                scope="campaign")
        campaign_span.__exit__(None, None, None)
    return results


def parallel_map(fn, items, *, workers: int | None = None,
                 report: CampaignReport | None = None,
                 policy: RetryPolicy | None = None) -> list:
    """Ordered ``map(fn, items)``, pooled when workers > 1.

    For campaign pieces that are not plain SimJobs (the Figure 1
    scenario micro-programs, for instance).  ``fn`` must be a
    module-level callable and ``items`` picklable; there is no memo,
    but the fault-tolerant scheduler (retries, pool resurrection,
    sequential degradation) is the same one ``run_jobs`` uses — ``fn``
    must therefore be deterministic, which every campaign piece already
    guarantees.
    """
    items = list(items)
    workers = workers if workers is not None else default_jobs()
    policy = policy if policy is not None else RetryPolicy.from_env()
    report = report if report is not None else CampaignReport()
    report.jobs += len(items)
    name = getattr(fn, "__name__", "fn")
    tasks = [_Task(index=i, fn=fn, arg=item, key=f"{name}:{i}",
                   label=f"{name}[{i}]")
             for i, item in enumerate(items)]
    results: dict[int, object] = {}
    failures: dict[int, BaseException] = {}

    def record(task: _Task, result) -> None:
        report.computed += 1
        results[task.index] = result

    if workers > 1 and len(items) > 1:
        _run_tasks_pooled(tasks, min(workers, len(items)), policy,
                          report, record, failures)
    else:
        _run_tasks_sequential(tasks, policy, report, record, failures)
    if failures:
        raise failures[min(failures)]
    return [results[i] for i in range(len(items))]
