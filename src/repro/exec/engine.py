"""The campaign scheduler: memoize, dedupe, fan out, reassemble.

``run_jobs`` is the one entry point the harness uses.  It guarantees
results identical to sequential execution: a simulation is a
deterministic function of its :class:`~repro.exec.job.SimJob` spec, so
where the result is computed (this process, a pooled worker, an earlier
call via the memo, or an earlier *run* via the disk store) cannot
change it.

Each fresh fingerprint resolves through three tiers:

1. RAM memo (:data:`~repro.exec.cache.RESULT_CACHE`),
2. disk store (:mod:`~repro.exec.store`, ``REPRO_CACHE_DIR``) — batched
   load before the pool, batched flush after it, so the per-job cost is
   one lookup per fresh fingerprint,
3. compute (the pool, or in-process at ``jobs=1``).

Worker count resolution, everywhere in the engine:

1. explicit ``workers=`` argument,
2. ``REPRO_JOBS`` environment variable (the CLI's ``--jobs`` sets it),
3. ``os.cpu_count()``.

``jobs=1`` (however it was resolved) runs sequentially in-process — no
pool, no pickling, no forked interpreters.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from .cache import RESULT_CACHE


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else ``os.cpu_count()``."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


def _worker_init() -> None:
    """Pool workers run their own jobs sequentially (no nested pools)."""
    os.environ["REPRO_JOBS"] = "1"


def _pool(workers: int) -> ProcessPoolExecutor:
    # Prefer fork: workers inherit imported modules *and* the parent's
    # warm trace cache, so they never re-execute kernels the parent
    # already traced.  (Spawn platforms still work — jobs re-derive
    # everything from their picklable specs.)
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        ctx = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=workers, mp_context=ctx,
                               initializer=_worker_init)


def _run_job(job):
    """Module-level trampoline so the pool can pickle it."""
    return job.run()


def _prewarm_traces(jobs) -> None:
    """Generate each distinct trace once, in the parent, before forking.

    Chunking splits one workload's jobs across workers; without this,
    every such worker would re-run the functional executor for the same
    kernel.  Warming the parent's trace cache first means fork hands
    every worker the already-built trace — trace generation stays
    exactly-once per (workload, instructions) across the whole campaign.
    """
    from .cache import TRACE_CACHE

    for key in {(job.workload, job.config.instructions) for job in jobs}:
        TRACE_CACHE.get(*key)


def _pool_map(fn, items: list, workers: int) -> list:
    chunksize = max(1, len(items) // (workers * 4))
    with _pool(workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


def run_jobs(jobs, *, workers: int | None = None, memo: bool = True,
             store=None) -> list:
    """Execute ``jobs`` (SimJobs); results in input order.

    Fingerprint-identical jobs execute once, whether the duplicate is in
    this batch, in the :data:`~repro.exec.cache.RESULT_CACHE` from an
    earlier campaign, or in the on-disk store from an earlier *process*.
    ``memo=False`` bypasses both cross-call tiers entirely (benchmarks
    measuring raw throughput use it) but still dedupes within the batch.

    ``store`` selects the disk tier: ``None`` resolves it from the
    environment (``REPRO_STORE`` / ``REPRO_CACHE_DIR``; off when
    ``memo=False``), ``False`` disables it, and an explicit
    :class:`~repro.exec.store.ResultStore` forces one (benchmarks pass
    hermetic temp stores this way, with any ``memo`` setting).
    """
    from .store import resolve_store

    jobs = list(jobs)
    workers = workers if workers is not None else default_jobs()
    disk = None if (store is None and not memo) else resolve_store(store)
    results: list = [None] * len(jobs)
    positions: dict[str, list[int]] = {}
    fresh: list = []
    for i, job in enumerate(jobs):
        key = job.fingerprint
        if memo:
            cached = RESULT_CACHE.get(key)
            if cached is not None:
                results[i] = cached
                continue
        if key in positions:
            positions[key].append(i)
        else:
            positions[key] = [i]
            fresh.append(job)
    if fresh and disk is not None:
        # Batched disk tier: one lookup per fresh fingerprint, before
        # any pool spins up.  Hits feed the RAM memo so the rest of the
        # process never touches the disk for them again.
        loaded = disk.get_results([job.fingerprint for job in fresh])
        if loaded:
            missing = []
            for job in fresh:
                key = job.fingerprint
                result = loaded.get(key)
                if result is None:
                    missing.append(job)
                    continue
                if memo:
                    RESULT_CACHE.put(key, result)
                for i in positions[key]:
                    results[i] = result
            fresh = missing
    if fresh:
        if workers > 1 and len(fresh) > 1:
            _prewarm_traces(fresh)
            computed = _pool_map(_run_job, fresh, min(workers, len(fresh)))
        else:
            computed = [job.run() for job in fresh]
        for job, result in zip(fresh, computed):
            key = job.fingerprint
            if memo:
                RESULT_CACHE.put(key, result)
            for i in positions[key]:
                results[i] = result
        if disk is not None:
            # Batched flush: newly computed cells become durable for the
            # next process in one pass.
            disk.put_results((job.fingerprint, result)
                             for job, result in zip(fresh, computed))
    if disk is not None:
        disk.flush_counters()
    return results


def parallel_map(fn, items, *, workers: int | None = None) -> list:
    """Ordered ``map(fn, items)``, pooled when workers > 1.

    For campaign pieces that are not plain SimJobs (the Figure 1
    scenario micro-programs, for instance).  ``fn`` must be a
    module-level callable and ``items`` picklable; there is no memo.
    """
    items = list(items)
    workers = workers if workers is not None else default_jobs()
    if workers > 1 and len(items) > 1:
        return _pool_map(fn, items, min(workers, len(items)))
    return [fn(item) for item in items]
