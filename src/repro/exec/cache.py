"""The engine's in-process memoization levels.

These are the first two tiers of the three-tier lookup path
(RAM memo -> disk store -> compute); the durable third tier lives in
:mod:`repro.exec.store`.

:class:`TraceCache`
    Functional traces keyed by ``(workload, instructions)``, where the
    workload is a named-suite kernel (``str``) or a generated
    :class:`~repro.wgen.spec.WorkloadSpec`.  Trace generation is
    deterministic (seeded kernels, functional execution), so one trace
    serves every model, sweep value, and figure that asks for the same
    workload at the same budget.  Repeated requests return the
    *identical* object — timing models never mutate traces.

:class:`ResultCache`
    :class:`~repro.engine.result.SimResult` keyed by job fingerprint.
    A simulation is a pure function of its :class:`~repro.exec.job.SimJob`
    spec, so a memo hit is indistinguishable from a re-run.  This is what
    stops sweeps and figures from re-simulating the in-order baseline
    for every sweep value.

Both caches are in-process.  Worker processes forked by the pool inherit
the parent's entries and populate their own copies; results flow back to
the parent's :data:`RESULT_CACHE` when the pool collects them.
"""

from __future__ import annotations

from collections import OrderedDict


class TraceCache:
    """Bounded LRU of functional traces keyed by (workload, instructions)."""

    def __init__(self, maxsize: int = 64) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, workload, instructions: int):
        """The trace for ``workload`` at ``instructions``, built on miss.

        ``workload`` is a suite kernel name or a (frozen, hashable)
        :class:`~repro.wgen.spec.WorkloadSpec`, whose program the phase
        composer materialises on first request.
        """
        key = (workload, instructions)
        trace = self._entries.get(key)
        if trace is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return trace
        self.misses += 1
        # Local imports: workloads.suite routes trace_by_name through
        # this module, so a top-level import would be circular (and
        # wgen's composer sits above the same layer).
        from ..obs import trace as obs_trace
        from ..workloads.suite import build_kernel, trace_kernel

        with obs_trace.span(
                "trace.build",
                workload=str(getattr(workload, "name", workload)),
                instructions=instructions):
            if isinstance(workload, str):
                kernel = build_kernel(workload)
            else:
                from ..wgen.compose import build_workload

                kernel = build_workload(workload)
            trace = trace_kernel(kernel, instructions=instructions)
        self._entries[key] = trace
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return trace

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


class ResultCache:
    """Unbounded memo of SimResults keyed by job fingerprint.

    Unbounded is deliberate: a full campaign is a few hundred results of
    a few hundred bytes of counters each, and cross-figure reuse (every
    figure shares the Figure 5 baseline) is the point.
    """

    def __init__(self) -> None:
        self._entries: dict[str, object] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: str):
        result = self._entries.get(key)
        if result is not None:
            self.hits += 1
        else:
            self.misses += 1
        return result

    def put(self, key: str, result) -> None:
        self._entries[key] = result

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide instances.  Tests that count simulator invocations call
#: ``clear()`` on both first.
TRACE_CACHE = TraceCache()
RESULT_CACHE = ResultCache()
