"""Deterministic fault injection (chaos) for the campaign engine.

The engine's fault-tolerance machinery (per-job retries, pool
resurrection, sequential degradation, incremental store flush,
quarantine) is only trustworthy if it is *exercised*, so this module
injects the failures it must survive — deterministically, from a seed,
with no wall-clock or RNG state involved:

* **worker death** — ``os._exit`` inside a pool worker, the OOM-killer
  stand-in.  Only fires in worker processes; an in-process (sequential
  or degraded) execution has no worker to kill, so the roll is ignored
  there and campaigns always terminate.
* **job exception** — a retryable :class:`InjectedFault` raised at the
  start of a job attempt, wherever it runs.
* **slowness** — ``time.sleep(slow_seconds)`` before the job body, the
  slow-cell stand-in that the per-job timeout machinery reaps.
* **store truncation / corruption** — a record's serialised bytes are
  truncated (or garbled) *before* the atomic rename, simulating a torn
  write that the rename discipline cannot see.  The damaged record is
  detected as corrupt on its next read, quarantined, and recomputed.
* **fabric faults** (:mod:`repro.exec.fabric`): a *torn lease write*
  (``lease_torn``) leaves an unreadable lease record, so the job looks
  unprotected and another worker re-leases it; a *heartbeat stall*
  (``heartbeat_stall``) suppresses lease renewals, so a live worker's
  lease expires mid-job and is stolen; a *clock-skewed TTL*
  (``clock_skew``/``clock_skew_seconds``) shifts one worker's notion of
  "now", so it issues already-stale leases and steals early.  All three
  can only cause *duplicate* execution — completion through the
  content-addressed store is idempotent, so the chaos contract (results
  byte-identical to a fault-free run) still holds.

Every decision is a pure function of ``(seed, kind, key, ordinal)``
via sha256 — no RNG object, no ordering sensitivity: the same plan over
the same campaign injects the same faults in any process.  Job faults
key on ``(fingerprint, attempt)``, so a retried attempt re-rolls and a
bounded-retry loop converges; store faults key on the record name and a
per-process write ordinal, so a re-written (healed) record re-rolls too.

Activation, in precedence order:

1. :func:`injected_faults` / :func:`set_fault_plan` — an explicit
   in-process override (tests, benchmarks); forked pool workers
   inherit it.
2. the ``REPRO_FAULTS`` environment variable — comma-separated
   ``knob=value`` pairs matching :class:`FaultPlan` fields, e.g.
   ``REPRO_FAULTS="seed=7,worker_death=0.1,store_truncate=0.05"``.

The contract the chaos tests pin: any injected fault that is
eventually retried to success must leave campaign results
byte-identical to a fault-free run.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields


class InjectedFault(RuntimeError):
    """A deterministically injected, *retryable* job failure."""


#: Fault kinds an injector counts (parent-side observability; worker
#: deaths increment inside the worker that dies, so count them from the
#: parent via :meth:`FaultPlan.would_fail` instead).
FAULT_KINDS = ("worker_death", "job_exception", "slow",
               "store_truncate", "store_corrupt",
               "lease_torn", "heartbeat_stall", "clock_skew")


@dataclass(frozen=True)
class FaultPlan:
    """Seed-driven injection rates (0.0 = never, 1.0 = always)."""

    seed: int = 0
    worker_death: float = 0.0
    job_exception: float = 0.0
    slow: float = 0.0
    slow_seconds: float = 0.02
    store_truncate: float = 0.0
    store_corrupt: float = 0.0
    lease_torn: float = 0.0
    heartbeat_stall: float = 0.0
    clock_skew: float = 0.0
    clock_skew_seconds: float = 1.5

    def any_faults(self) -> bool:
        return any(getattr(self, kind) > 0 for kind in FAULT_KINDS)

    def roll(self, kind: str, key, ordinal: int) -> bool:
        """Deterministic Bernoulli trial: same inputs, same verdict."""
        rate = getattr(self, kind)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.seed}|{kind}|{key}|{ordinal}".encode()).digest()
        return int.from_bytes(digest[:8], "big") < rate * 2.0 ** 64

    def would_fail(self, kind: str, key, ordinal: int = 1) -> bool:
        """Parent-side oracle: would attempt ``ordinal`` inject ``kind``?

        Lets tests and reports reason about worker-side faults (whose
        counters die with the worker) without re-running anything.
        """
        return self.roll(kind, key, ordinal)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` format (``knob=value,...``)."""
        known = {f.name for f in fields(cls)}
        kwargs: dict[str, object] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, value = part.partition("=")
            name = name.strip().replace("-", "_")
            if not sep or name not in known:
                raise ValueError(
                    f"bad fault spec {part!r}: expected knob=value with "
                    f"knob in {sorted(known)}")
            try:
                kwargs[name] = int(value) if name == "seed" else float(value)
            except ValueError:
                raise ValueError(
                    f"bad fault spec {part!r}: {value!r} is not a number"
                ) from None
        return cls(**kwargs)

    def to_env(self) -> str:
        """The ``REPRO_FAULTS`` string reproducing this plan."""
        defaults = FaultPlan()
        return ",".join(
            f"{f.name}={getattr(self, f.name)}" for f in fields(self)
            if getattr(self, f.name) != getattr(defaults, f.name))


class FaultInjector:
    """One plan plus per-process trigger counters and write ordinals."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counts = {kind: 0 for kind in FAULT_KINDS}
        self._write_ordinals: dict[str, int] = {}

    def on_job_attempt(self, key: str, attempt: int) -> None:
        """Inject job-level faults at the start of one attempt.

        May sleep (slowness), kill the current process (worker death —
        pool workers only), or raise :class:`InjectedFault` (retryable).
        """
        plan = self.plan
        if plan.roll("slow", key, attempt):
            self.counts["slow"] += 1
            time.sleep(plan.slow_seconds)
        if (plan.worker_death > 0.0 and in_worker_process()
                and plan.roll("worker_death", key, attempt)):
            self.counts["worker_death"] += 1
            os._exit(73)
        if plan.roll("job_exception", key, attempt):
            self.counts["job_exception"] += 1
            raise InjectedFault(
                f"injected job_exception on {key[:16]} (attempt {attempt})")

    def mangle_record(self, data: str, path: str) -> str | None:
        """Damaged record text to write instead, or ``None`` for clean.

        Truncation drops the tail (a torn write); corruption splices
        NULs into the middle (bit rot).  Either way the record fails
        JSON parsing or the shape check on its next read.
        """
        key = os.path.basename(path)
        ordinal = self._write_ordinals.get(key, 0)
        self._write_ordinals[key] = ordinal + 1
        if self.plan.roll("store_truncate", key, ordinal):
            self.counts["store_truncate"] += 1
            return data[:max(1, len(data) // 2)]
        if self.plan.roll("store_corrupt", key, ordinal):
            self.counts["store_corrupt"] += 1
            mid = len(data) // 2
            return data[:mid] + "\x00!chaos!\x00" + data[mid:]
        return None

    # -- fabric fault hooks (:mod:`repro.exec.fabric`) -----------------
    def mangle_lease(self, data: str, path: str) -> str | None:
        """Torn lease-record text to write instead, or ``None`` for clean.

        A torn lease fails JSON parsing on every later read, so readers
        treat the job as unprotected and re-lease it — the worst a lost
        lease can cost is duplicate (idempotent) work.  Keyed by the
        lease basename and a per-process write ordinal, so renewals and
        re-claims of the same lease re-roll.
        """
        key = os.path.basename(path)
        ordinal = self._write_ordinals.get("lease|" + key, 0)
        self._write_ordinals["lease|" + key] = ordinal + 1
        if self.plan.roll("lease_torn", key, ordinal):
            self.counts["lease_torn"] += 1
            return data[:max(1, len(data) // 2)]
        return None

    def stall_heartbeat(self, worker_id: str, key: str,
                        ordinal: int) -> bool:
        """Should this renewal be skipped (a stalled worker stand-in)?"""
        if self.plan.roll("heartbeat_stall", f"{worker_id}|{key}", ordinal):
            self.counts["heartbeat_stall"] += 1
            return True
        return False

    def clock_skew_for(self, worker_id: str) -> float:
        """Seconds of wall-clock skew this worker perceives (0 = none)."""
        if self.plan.roll("clock_skew", worker_id, 0):
            self.counts["clock_skew"] += 1
            return self.plan.clock_skew_seconds
        return 0.0


# ----------------------------------------------------------------------
# process-wide activation
# ----------------------------------------------------------------------
_IN_WORKER = False
_OVERRIDE: FaultInjector | None = None
_ENV_CACHE: tuple[str, FaultInjector | None] = ("", None)


def mark_worker_process() -> None:
    """Called by the engine's pool initializer: worker deaths may fire."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker_process() -> bool:
    return _IN_WORKER


def set_fault_plan(plan: FaultPlan | None) -> FaultInjector | None:
    """Install (or, with ``None``, remove) the in-process override."""
    global _OVERRIDE
    _OVERRIDE = FaultInjector(plan) if plan is not None else None
    return _OVERRIDE


@contextmanager
def injected_faults(plan: FaultPlan | None):
    """Scoped :func:`set_fault_plan`; yields the injector (counters)."""
    global _OVERRIDE
    previous = _OVERRIDE
    injector = FaultInjector(plan) if plan is not None else None
    _OVERRIDE = injector
    try:
        yield injector
    finally:
        _OVERRIDE = previous


def active_injector() -> FaultInjector | None:
    """The injector in force, or ``None`` when chaos is off.

    Override first, then ``REPRO_FAULTS`` (parsed once per distinct
    value, so workers spawned with the env inherit the plan and tests
    that monkeypatch it get a fresh injector).
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    global _ENV_CACHE
    text = os.environ.get("REPRO_FAULTS", "").strip()
    cached_text, injector = _ENV_CACHE
    if text != cached_text or (text and injector is None):
        try:
            injector = FaultInjector(FaultPlan.parse(text)) if text else None
        except ValueError as exc:
            raise ValueError(f"REPRO_FAULTS: {exc}") from None
        _ENV_CACHE = (text, injector)
    return injector
