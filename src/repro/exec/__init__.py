"""Campaign execution engine.

Every figure, table, and sweep in the reproduction is a *campaign*: a
grid of independent simulations (machine model x kernel x configuration).
This package turns that grid into explicit :class:`SimJob` specs and
executes them through one engine that

* **fingerprints** each job deterministically (:mod:`.fingerprint`), so
  identical simulations are recognised across sweeps and figures;
* **memoizes** in-process (:mod:`.cache`): functional traces by
  ``(kernel, instructions)`` and :class:`~repro.engine.result.SimResult`
  by job fingerprint — the in-order baseline of a sweep runs once, not
  once per sweep value;
* **persists** results across processes (:mod:`.store`): an on-disk,
  content-addressed store under ``REPRO_CACHE_DIR`` (toggle with
  ``REPRO_STORE`` / ``--store``/``--no-store``) makes every campaign
  incremental — a repeated figure grid in a fresh process hits the
  store for every cell it has seen before;
* **parallelises** across a process pool (:mod:`.engine`), controlled by
  ``REPRO_JOBS`` / ``--jobs`` with a sequential in-process fallback at
  ``jobs=1``, and guarantees results identical to sequential execution
  (simulations are deterministic functions of their job spec);
* **survives faults** (:mod:`.engine` + :mod:`.faults`): per-job
  timeouts (``REPRO_JOB_TIMEOUT``), bounded retries with capped
  exponential backoff (``REPRO_RETRIES``), pool resurrection after
  worker death with surviving results kept, graceful degradation to
  sequential execution, incremental store flush (crash-resume for
  free), corrupt-record quarantine, and a deterministic chaos harness
  (``REPRO_FAULTS``) that proves all of it — with every incident
  tallied in a :class:`~repro.exec.report.CampaignReport`;
* **distributes** (:mod:`.fabric` + :mod:`.worker`): a lease-based
  multi-worker campaign fabric (``REPRO_FABRIC_WORKERS`` / ``--fabric``)
  where independent worker processes lease fingerprinted jobs from a
  durable on-disk ledger with TTL + heartbeat renewal, complete them
  idempotently through the store, and survive worker SIGKILLs, torn
  lease writes, clock skew, and coordinator crashes with crash-safe
  resume (``repro campaign submit|status|join``, ``repro worker``).
"""

from .cache import RESULT_CACHE, TRACE_CACHE, ResultCache, TraceCache
from .engine import (
    RetryExhaustedError,
    RetryPolicy,
    default_jobs,
    fabric_workers,
    parallel_map,
    run_jobs,
)
from .fabric import (
    FabricJobError,
    Ledger,
    campaign_fingerprint,
    find_ledger,
    heartbeat_interval,
    lease_ttl,
    list_ledgers,
    run_jobs_fabric,
)
from .faults import (
    FaultInjector,
    FaultPlan,
    InjectedFault,
    active_injector,
    injected_faults,
    set_fault_plan,
)
from .fingerprint import canonical, fingerprint
from .job import SimJob
from .report import CampaignReport, JobFailure
from .store import (
    ENGINE_VERSION,
    STORE_SCHEMA,
    ResultStore,
    default_store,
    resolve_store,
    store_enabled,
)
from .worker import FabricWorker, compute_with_retries

__all__ = [
    "SimJob",
    "run_jobs",
    "run_jobs_fabric",
    "parallel_map",
    "default_jobs",
    "fabric_workers",
    "Ledger",
    "FabricWorker",
    "FabricJobError",
    "campaign_fingerprint",
    "compute_with_retries",
    "find_ledger",
    "list_ledgers",
    "lease_ttl",
    "heartbeat_interval",
    "RetryPolicy",
    "RetryExhaustedError",
    "CampaignReport",
    "JobFailure",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "injected_faults",
    "set_fault_plan",
    "active_injector",
    "fingerprint",
    "canonical",
    "TraceCache",
    "ResultCache",
    "TRACE_CACHE",
    "RESULT_CACHE",
    "ResultStore",
    "default_store",
    "resolve_store",
    "store_enabled",
    "STORE_SCHEMA",
    "ENGINE_VERSION",
]
