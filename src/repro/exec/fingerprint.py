"""Deterministic configuration fingerprints.

A fingerprint is a sha256 digest of a *canonical form*: dataclasses
flatten to ``(qualname, (field, value), ...)`` tuples, mappings sort by
key, and only primitives survive.  No ``hash()`` anywhere — Python's
string hashing is salted per process (``PYTHONHASHSEED``), and these
digests must agree between the scheduler and its worker processes.

Distinct configurations get distinct digests because the canonical form
embeds every field name and the class qualname: two configs collide only
if they are field-for-field equal (or sha256 itself collides).
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from enum import Enum

_PRIMITIVES = (str, int, float, bool, bytes, type(None))


def canonical(obj):
    """Reduce ``obj`` to a deterministic, repr-stable structure.

    Supports primitives, enums, lists/tuples, sets, dicts, and
    dataclasses (recursively) — which covers ``ExperimentConfig``,
    ``ICFPFeatures``, ``MachineConfig``, and anything they nest.
    """
    if isinstance(obj, bool) or isinstance(obj, _PRIMITIVES):
        return obj
    if isinstance(obj, Enum):
        return (type(obj).__qualname__, obj.name)
    if is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__qualname__,
            tuple((f.name, canonical(getattr(obj, f.name)))
                  for f in fields(obj)),
        )
    if isinstance(obj, (list, tuple)):
        return tuple(canonical(item) for item in obj)
    if isinstance(obj, (set, frozenset)):
        return tuple(sorted((repr(canonical(item)) for item in obj)))
    if isinstance(obj, dict):
        return tuple(sorted(
            (repr(canonical(k)), canonical(v)) for k, v in obj.items()
        ))
    raise TypeError(
        f"cannot fingerprint {type(obj).__qualname__!r}: not a dataclass, "
        "primitive, enum, or container of those"
    )


def fingerprint(*parts) -> str:
    """sha256 hex digest of the canonical form of ``parts``."""
    payload = repr(tuple(canonical(p) for p in parts))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
