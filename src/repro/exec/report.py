"""Campaign observability: what the engine survived, not just returned.

A fault-tolerant scheduler that hides every retry, timeout, pool
resurrection, and quarantined record is indistinguishable from a flaky
one.  :class:`CampaignReport` is the ledger the engine fills while it
works; ``run_suite``/figures/sweeps thread it through, and the CLI
prints a one-line summary whenever a campaign had incidents.

One report instance may span several ``run_jobs`` calls (a sweep is
many batched campaigns): counters accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class JobFailure:
    """One permanently failed job (after retries, if it had any)."""

    label: str          # "model on workload" (or the parallel_map item)
    fingerprint: str
    kind: str           # "exception" | "retries-exhausted" | "trace"
    error: str

    def __str__(self) -> str:
        return (f"{self.label} [{self.fingerprint[:12]}] "
                f"{self.kind}: {self.error}")


@dataclass
class CampaignReport:
    """Execution-health counters for one (or more) campaigns."""

    jobs: int = 0           #: job slots requested (memo hits included)
    memo_hits: int = 0      #: served from the RAM memo
    store_hits: int = 0     #: fresh fingerprints loaded from the disk store
    computed: int = 0       #: simulations that actually ran to completion
    attempts: int = 0       #: executions started (retries re-count)
    retries: int = 0        #: re-submissions after a retryable failure
    timeouts: int = 0       #: attempts reaped by the per-job timeout
    pool_breaks: int = 0    #: BrokenProcessPool events survived
    degradations: int = 0   #: falls back to sequential in-process execution
    store_errors: int = 0   #: corrupt records met + failed store writes
    # Fabric lease churn (:mod:`repro.exec.fabric`): issuing a lease is
    # routine, everything after it is something the fabric *survived*.
    leases_issued: int = 0     #: fresh leases claimed on unheld jobs
    leases_expired: int = 0    #: leases observed past their TTL
    leases_stolen: int = 0     #: takeovers of an expired lease
    leases_reclaimed: int = 0  #: takeovers of a torn/unreadable lease
    worker_deaths: int = 0     #: fabric worker processes that died
    failures: list[JobFailure] = field(default_factory=list)

    def incidents(self) -> int:
        """Anything the engine had to absorb (0 = a boring campaign)."""
        return (self.retries + self.timeouts + self.pool_breaks
                + self.degradations + self.store_errors
                + self.leases_expired + self.leases_stolen
                + self.leases_reclaimed + self.worker_deaths
                + len(self.failures))

    def ok(self) -> bool:
        return not self.failures

    def merge(self, other: "CampaignReport") -> "CampaignReport":
        for name in ("jobs", "memo_hits", "store_hits", "computed",
                     "attempts", "retries", "timeouts", "pool_breaks",
                     "degradations", "store_errors", "leases_issued",
                     "leases_expired", "leases_stolen", "leases_reclaimed",
                     "worker_deaths"):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.failures.extend(other.failures)
        return self

    def tallies(self) -> dict:
        """The numeric counters only (what mirrors into the metrics
        registry as ``campaign.<name>`` — failures stay structured)."""
        out = self.as_dict()
        out.pop("failures")
        out["failed_jobs"] = len(self.failures)
        return out

    def to_metrics(self, registry, prefix: str = "campaign") -> None:
        """Mirror these tallies into a
        :class:`repro.obs.metrics.MetricsRegistry`."""
        registry.count_into(prefix, self.tallies())

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "memo_hits": self.memo_hits,
            "store_hits": self.store_hits,
            "computed": self.computed,
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_breaks": self.pool_breaks,
            "degradations": self.degradations,
            "store_errors": self.store_errors,
            "leases_issued": self.leases_issued,
            "leases_expired": self.leases_expired,
            "leases_stolen": self.leases_stolen,
            "leases_reclaimed": self.leases_reclaimed,
            "worker_deaths": self.worker_deaths,
            "failures": [str(f) for f in self.failures],
        }

    def summary(self) -> str:
        parts = [f"{self.jobs} jobs", f"{self.computed} computed",
                 f"{self.memo_hits} memo hits",
                 f"{self.store_hits} store hits"]
        if self.leases_issued:
            parts.append(f"{self.leases_issued} leases")
        for name, label in (("retries", "retries"), ("timeouts", "timeouts"),
                            ("pool_breaks", "pool breaks"),
                            ("degradations", "degradations"),
                            ("store_errors", "store errors"),
                            ("leases_expired", "leases expired"),
                            ("leases_stolen", "leases stolen"),
                            ("leases_reclaimed", "leases reclaimed"),
                            ("worker_deaths", "worker deaths")):
            value = getattr(self, name)
            if value:
                parts.append(f"{value} {label}")
        if self.failures:
            parts.append(f"{len(self.failures)} FAILED")
        return "campaign: " + ", ".join(parts)
